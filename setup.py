"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` (and plain ``python setup.py develop``)
work in offline environments that lack the ``wheel`` package required by
PEP 517 editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'Operating System Support for Mobile Agents' "
                 "(TACOMA, HotOS 1995)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
)
