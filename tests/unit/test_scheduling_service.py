"""Unit tests for the scheduling workload layer: providers, clients, deployment."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.scheduling import (CLIENT_BEHAVIOUR_NAME, SERVICE_AGENT_NAME, TicketIssuer,
                              install_scheduling, make_compute_service_behaviour)
from repro.scheduling.monitor import make_monitor_behaviour
from repro.scheduling.routing import gossip_convergence, make_gossip_behaviour
from repro.scheduling.broker import BROKER_CABINET, BrokerState


def make_kernel(sites=("home", "brokerage", "s1", "s2"), seed=12):
    return Kernel(lan(list(sites)), transport="tcp", config=KernelConfig(rng_seed=seed))


def launch_client(kernel, index=0, delay=0.5, broker_site="brokerage", home="home"):
    briefcase = Briefcase()
    briefcase.set("HOME", home)
    briefcase.set("BROKER_SITE", broker_site)
    briefcase.set("SERVICE", "compute")
    briefcase.set("CLIENT", f"client-{index}")
    kernel.launch(home, CLIENT_BEHAVIOUR_NAME, briefcase, delay=delay)


class TestComputeService:
    def test_busy_time_scales_with_capacity(self):
        kernel = make_kernel()
        kernel.site("s1").capacity = 4.0
        kernel.site("s2").capacity = 1.0
        behaviour = make_compute_service_behaviour(work_seconds=0.4)
        kernel.install_agent("s1", SERVICE_AGENT_NAME, behaviour, replace=True)
        kernel.install_agent("s2", SERVICE_AGENT_NAME, behaviour, replace=True)

        def client(site):
            def body(ctx, bc):
                result = yield ctx.meet(SERVICE_AGENT_NAME, Briefcase())
                return result.value["busy"]
            return kernel.launch(site, body)

        fast_id = client("s1")
        slow_id = client("s2")
        kernel.run()
        assert kernel.result_of(fast_id) < kernel.result_of(slow_id)

    def test_jobs_are_recorded_in_the_service_cabinet(self):
        kernel = make_kernel()
        kernel.install_agent("s1", SERVICE_AGENT_NAME,
                             make_compute_service_behaviour(work_seconds=0.01), replace=True)

        def client(ctx, bc):
            request = Briefcase()
            request.set("CLIENT", "tester")
            yield ctx.meet(SERVICE_AGENT_NAME, request)
            return "ok"

        kernel.launch("s1", client)
        kernel.run()
        jobs = kernel.site("s1").cabinet("service").elements("jobs")
        assert len(jobs) == 1 and jobs[0]["client"] == "tester"

    def test_ticket_required_refuses_unticketed_requests(self):
        kernel = make_kernel()
        issuer = TicketIssuer()
        kernel.install_agent(
            "s1", SERVICE_AGENT_NAME,
            make_compute_service_behaviour(work_seconds=0.01, issuer=issuer,
                                           require_ticket=True),
            replace=True)

        def client(ctx, bc):
            result = yield ctx.meet(SERVICE_AGENT_NAME, Briefcase())
            return result.value

        agent_id = kernel.launch("s1", client)
        kernel.run()
        assert kernel.result_of(agent_id) is None
        assert kernel.site("s1").cabinet("service").elements("refused")

    def test_ticket_required_accepts_valid_ticket(self):
        kernel = make_kernel()
        issuer = TicketIssuer()
        kernel.install_agent(
            "s1", SERVICE_AGENT_NAME,
            make_compute_service_behaviour(work_seconds=0.01, issuer=issuer,
                                           require_ticket=True),
            replace=True)

        def client(ctx, bc):
            ticket = issuer.issue("compute", "alice", "s1", now=ctx.now)
            request = Briefcase()
            request.set("TICKET", ticket.to_wire())
            result = yield ctx.meet(SERVICE_AGENT_NAME, request)
            return result.value

        agent_id = kernel.launch("s1", client)
        kernel.run()
        assert kernel.result_of(agent_id) is not None
        assert issuer.redeemed == 1


class TestMonitorAndGossip:
    def test_monitor_reports_reach_remote_broker(self):
        kernel = make_kernel()
        from repro.scheduling import BROKER_AGENT_NAME, make_broker_behaviour
        kernel.install_agent("brokerage", BROKER_AGENT_NAME, make_broker_behaviour(),
                             replace=True)
        kernel.launch("s1", make_monitor_behaviour(["brokerage"], interval=0.2, rounds=3))
        kernel.run()
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert "s1" in state.loads()
        assert state.reports_seen() >= 1

    def test_local_broker_is_met_without_network_traffic(self):
        kernel = make_kernel(sites=("brokerage",))
        from repro.scheduling import BROKER_AGENT_NAME, make_broker_behaviour
        kernel.install_agent("brokerage", BROKER_AGENT_NAME, make_broker_behaviour(),
                             replace=True)
        kernel.launch("brokerage", make_monitor_behaviour(["brokerage"], rounds=2))
        kernel.run()
        assert kernel.stats.messages_sent == 0
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert "brokerage" in state.loads()

    def test_gossip_spreads_load_tables_between_brokers(self):
        kernel = make_kernel(sites=("b1", "b2", "s1"))
        from repro.scheduling import BROKER_AGENT_NAME, make_broker_behaviour
        for broker_site in ("b1", "b2"):
            kernel.install_agent(broker_site, BROKER_AGENT_NAME, make_broker_behaviour(),
                                 replace=True)
        # Only b1 hears from the monitor directly.
        kernel.launch("s1", make_monitor_behaviour(["b1"], interval=0.2, rounds=2))
        kernel.run(until=1.0)
        # Gossip from b1 to b2.
        kernel.launch("b1", make_gossip_behaviour(["b2"], interval=0.2, rounds=2))
        kernel.run()
        state_b2 = BrokerState(kernel.site("b2").cabinet(BROKER_CABINET))
        assert "s1" in state_b2.loads()

        convergence = gossip_convergence({
            "b1": BrokerState(kernel.site("b1").cabinet(BROKER_CABINET)),
            "b2": state_b2,
        })
        assert convergence["__coverage__"] == pytest.approx(1.0)


class TestDeployment:
    def test_install_scheduling_serves_clients_end_to_end(self):
        kernel = make_kernel()
        deployment = install_scheduling(
            kernel, ["brokerage"],
            [{"site": "s1", "capacity": 2.0}, {"site": "s2", "capacity": 1.0}],
            policy="least-loaded", monitor_rounds=4, work_seconds=0.02)
        kernel.run(until=0.5)
        for index in range(6):
            launch_client(kernel, index, delay=0.5 + index * 0.05)
        kernel.run()

        outcomes = deployment.client_outcomes(["home"])
        assert len(outcomes) == 6
        assert all(outcome["status"] == "served" for outcome in outcomes)
        jobs = deployment.provider_job_counts()
        assert sum(jobs.values()) == 6

    def test_deployment_with_tickets_issues_and_redeems(self):
        kernel = make_kernel()
        deployment = install_scheduling(
            kernel, ["brokerage"],
            [{"site": "s1", "capacity": 1.0}],
            policy="round-robin", with_tickets=True, monitor_rounds=2, work_seconds=0.01)
        kernel.run(until=0.5)
        launch_client(kernel, 0, delay=0.5)
        kernel.run()
        outcomes = deployment.client_outcomes(["home"])
        assert outcomes and outcomes[0]["status"] == "served"
        assert deployment.issuer.issued >= 1
        assert deployment.issuer.redeemed >= 1

    def test_client_with_no_provider_reports_gracefully(self):
        kernel = make_kernel()
        install_scheduling(kernel, ["brokerage"], [], monitor_rounds=1)
        kernel.run(until=0.2)
        launch_client(kernel, 0, delay=0.3)
        kernel.run()
        outcomes = kernel.site("home").cabinet("results").elements("outcomes")
        assert outcomes and outcomes[0]["status"] == "no-provider"

    def test_provider_capacity_is_applied_to_sites(self):
        kernel = make_kernel()
        install_scheduling(kernel, ["brokerage"],
                           [{"site": "s1", "capacity": 7.5}], monitor_rounds=1)
        assert kernel.site("s1").capacity == 7.5
