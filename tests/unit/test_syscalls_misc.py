"""Unit tests for the syscall dataclasses and assorted kernel behaviours
not covered elsewhere (custom registries, run horizons, meet briefcase defaults)."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.registry import BehaviourRegistry
from repro.core.syscalls import (EndMeet, Meet, MeetResult, Sleep, Spawn, Syscall,
                                 Terminate, Transmit)
from repro.net import lan


class TestSyscallDataclasses:
    def test_every_syscall_is_a_syscall(self):
        briefcase = Briefcase()
        for syscall in (Meet("rexec"), EndMeet(), Sleep(1.0), Spawn("rexec"),
                        Transmit("b", "ag_py", briefcase), Terminate()):
            assert isinstance(syscall, Syscall)

    def test_meet_defaults_to_a_fresh_briefcase(self):
        first = Meet("rexec")
        second = Meet("rexec")
        assert isinstance(first.briefcase, Briefcase)
        assert first.briefcase is not second.briefcase

    def test_spawn_defaults(self):
        spawn = Spawn("worker")
        assert spawn.name is None
        assert spawn.code_element is None
        assert isinstance(spawn.briefcase, Briefcase)

    def test_transmit_defaults_to_agent_transfer_kind(self):
        transmit = Transmit("b", "ag_py", Briefcase())
        assert transmit.kind == "agent-transfer"

    def test_end_meet_and_terminate_defaults(self):
        assert EndMeet().value is None
        assert Terminate().result is None
        assert Sleep().duration == 0.0

    def test_meet_result_carries_the_callee_briefcase(self):
        briefcase = Briefcase()
        result = MeetResult(value=1, briefcase=briefcase, agent_id="agent-000001")
        assert result.briefcase is briefcase


class TestKernelWithCustomRegistry:
    def test_private_registry_resolves_launch_names(self):
        registry = BehaviourRegistry()

        def private_worker(ctx, bc):
            yield ctx.sleep(0)
            return "private"

        registry.register("private_worker", private_worker)
        kernel = Kernel(lan(["a", "b"]), registry=registry,
                        config=KernelConfig(rng_seed=1))
        agent_id = kernel.launch("a", "private_worker")
        kernel.run()
        assert kernel.result_of(agent_id) == "private"

    def test_default_registry_names_do_not_leak_into_private_registry(self):
        registry = BehaviourRegistry()
        kernel = Kernel(lan(["a"]), registry=registry, config=KernelConfig(rng_seed=1))
        # "rexec" is installed at the site (so launching it works), but the
        # private registry itself stays empty of the global names.
        assert "rexec" not in registry
        assert kernel.site("a").is_installed("rexec")


class TestRunHorizons:
    def test_run_until_leaves_future_events_queued(self):
        kernel = Kernel(lan(["a"]), config=KernelConfig(rng_seed=1))
        fired = []

        def late_agent(ctx, bc):
            yield ctx.sleep(5.0)
            fired.append(ctx.now)
            return "late"

        kernel.launch("a", late_agent)
        kernel.run(until=1.0)
        assert fired == []
        assert kernel.now == pytest.approx(1.0)
        kernel.run()
        assert len(fired) == 1

    def test_run_max_events_bounds_work(self):
        kernel = Kernel(lan(["a"]), config=KernelConfig(rng_seed=1))

        def ticker(ctx, bc):
            for _ in range(100):
                yield ctx.sleep(0.01)
            return "done"

        kernel.launch("a", ticker)
        executed = kernel.run(max_events=10)
        assert executed == 10
        assert kernel.loop.pending > 0

    def test_now_property_tracks_loop_time(self):
        kernel = Kernel(lan(["a"]), config=KernelConfig(rng_seed=1))
        assert kernel.now == 0.0

        def sleeper(ctx, bc):
            yield ctx.sleep(2.0)

        kernel.launch("a", sleeper)
        kernel.run()
        assert kernel.now >= 2.0

    def test_repr_mentions_sites_and_transport(self):
        kernel = Kernel(lan(["a", "b"]), transport="rsh", config=KernelConfig(rng_seed=1))
        text = repr(kernel)
        assert "2 sites" in text and "rsh" in text


class TestMeetBriefcaseSharing:
    def test_meet_shares_the_briefcase_by_reference(self):
        """The paper's argument-list semantics: callee writes are visible to the caller."""
        kernel = Kernel(lan(["a"]), config=KernelConfig(rng_seed=1))

        def service(ctx, bc):
            bc.put("SHARED", "written-by-callee")
            yield ctx.end_meet(None)

        kernel.install_agent("a", "service", service)

        def client(ctx, bc):
            request = Briefcase()
            yield ctx.meet("service", request)
            return request.get("SHARED")

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == "written-by-callee"

    def test_migrated_briefcase_is_a_copy_not_a_reference(self):
        """Migration serialises the briefcase: later local edits do not travel."""
        kernel = Kernel(lan(["a", "b"]), config=KernelConfig(rng_seed=1))
        from repro.core.codec import code_for

        def remote_probe(ctx, bc):
            ctx.cabinet("probe").put("SEEN", bc.get("MARKER"))
            yield ctx.sleep(0)

        from repro.core.registry import register_behaviour
        register_behaviour("remote_probe", remote_probe, replace=True)
        kernel.install_agent("b", "remote_probe", remote_probe)

        def sender(ctx, bc):
            shipment = Briefcase()
            shipment.set("MARKER", "original")
            shipment.set("HOST", "b")
            shipment.set("CONTACT", "remote_probe")
            shipment.set("CODE", code_for("remote_probe"))
            yield ctx.meet("rexec", shipment)
            # Mutating after the transfer was handed over must not affect
            # what arrives at b (the wire copy was already taken).
            shipment.set("MARKER", "mutated-after-send")
            yield ctx.sleep(1.0)
            return "sent"

        kernel.launch("a", sender)
        kernel.run()
        assert kernel.site("b").cabinet("probe").get("SEEN") == "original"
