"""Unit tests for the electronic-cash primitives: crypto, ECU records, the mint."""

from __future__ import annotations

import random

import pytest

from repro.cash.crypto import Signer, generate_serial, serial_certificate, verify_certificate
from repro.cash.ecu import ECU
from repro.cash.mint import Mint
from repro.core.errors import InvalidECUError


class TestCrypto:
    def test_serials_are_large_and_vary(self):
        rng = random.Random(1)
        serials = {generate_serial(rng) for _ in range(100)}
        assert len(serials) == 100
        assert all(0 <= serial < 2 ** 128 for serial in serials)

    def test_certificate_verifies(self):
        secret = b"\x01" * 32
        certificate = serial_certificate(secret, 12345, 10)
        assert verify_certificate(secret, 12345, 10, certificate)

    def test_certificate_fails_for_wrong_amount(self):
        secret = b"\x01" * 32
        certificate = serial_certificate(secret, 12345, 10)
        assert not verify_certificate(secret, 12345, 999, certificate)

    def test_certificate_fails_for_wrong_secret(self):
        certificate = serial_certificate(b"\x01" * 32, 12345, 10)
        assert not verify_certificate(b"\x02" * 32, 12345, 10, certificate)

    def test_signer_sign_verify(self):
        signer = Signer("alice")
        signature = signer.sign("I paid 10 ECUs")
        assert signer.verify("I paid 10 ECUs", signature)
        assert not signer.verify("I paid 99 ECUs", signature)

    def test_different_signers_produce_different_signatures(self):
        assert Signer("alice").sign("x") != Signer("bob").sign("x")

    def test_signer_with_explicit_secret_is_reproducible(self):
        secret = b"\x07" * 32
        assert Signer("a", secret=secret).sign("x") == Signer("a", secret=secret).sign("x")


class TestECU:
    def test_positive_amount_required(self):
        with pytest.raises(InvalidECUError):
            ECU(amount=0, serial=1, certificate="c")
        with pytest.raises(InvalidECUError):
            ECU(amount=-5, serial=1, certificate="c")

    def test_non_negative_serial_required(self):
        with pytest.raises(InvalidECUError):
            ECU(amount=1, serial=-1, certificate="c")

    def test_wire_round_trip(self):
        ecu = ECU(amount=25, serial=987654321, certificate="cert", mint_id="m")
        assert ECU.from_wire(ecu.to_wire()) == ecu

    def test_from_wire_rejects_malformed_records(self):
        with pytest.raises(InvalidECUError):
            ECU.from_wire({"amount": 10})
        with pytest.raises(InvalidECUError):
            ECU.from_wire({"amount": "lots", "serial": "x", "certificate": 1})

    def test_is_frozen(self):
        ecu = ECU(amount=1, serial=1, certificate="c")
        with pytest.raises(AttributeError):
            ecu.amount = 100   # type: ignore[misc]


class TestMint:
    def test_issue_creates_valid_ecus(self):
        mint = Mint(seed=1)
        ecu = mint.issue(10)
        ok, reason = mint.check(ecu)
        assert ok and reason == "valid"
        assert mint.outstanding_value() == 10
        assert mint.issued_count == 1

    def test_issue_rejects_non_positive_amounts(self):
        with pytest.raises(InvalidECUError):
            Mint(seed=1).issue(0)

    def test_issue_many(self):
        mint = Mint(seed=1)
        ecus = mint.issue_many([1, 2, 3])
        assert [ecu.amount for ecu in ecus] == [1, 2, 3]
        assert mint.outstanding_value() == 6

    def test_foreign_mint_is_rejected(self):
        mint_a = Mint("mint-a", seed=1)
        mint_b = Mint("mint-b", seed=2)
        ecu = mint_a.issue(5)
        ok, reason = mint_b.check(ecu)
        assert not ok and reason == "foreign mint"

    def test_forged_certificate_is_rejected(self):
        mint = Mint(seed=1)
        ecu = mint.issue(5)
        forged = ECU(amount=ecu.amount, serial=ecu.serial, certificate="forged",
                     mint_id=ecu.mint_id)
        ok, reason = mint.check(forged)
        assert not ok and "forged" in reason

    def test_amount_tampering_is_rejected(self):
        mint = Mint(seed=1)
        ecu = mint.issue(5)
        inflated = ECU(amount=500, serial=ecu.serial, certificate=ecu.certificate,
                       mint_id=ecu.mint_id)
        ok, _ = mint.check(inflated)
        assert not ok

    def test_retire_and_reissue_preserves_value(self):
        mint = Mint(seed=1)
        ecu = mint.issue(10)
        fresh = mint.retire_and_reissue(ecu)
        assert sum(replacement.amount for replacement in fresh) == 10
        assert mint.outstanding_value() == 10
        # The old serial is now worthless.
        ok, reason = mint.check(ecu)
        assert not ok and "double spend" in reason

    def test_retire_with_split_makes_change(self):
        mint = Mint(seed=1)
        ecu = mint.issue(10)
        fresh = mint.retire_and_reissue(ecu, split=[7, 2, 1])
        assert sorted(replacement.amount for replacement in fresh) == [1, 2, 7]
        assert mint.outstanding_value() == 10

    def test_split_must_preserve_amount(self):
        mint = Mint(seed=1)
        ecu = mint.issue(10)
        with pytest.raises(InvalidECUError):
            mint.retire_and_reissue(ecu, split=[5, 6])
        with pytest.raises(InvalidECUError):
            mint.retire_and_reissue(ecu, split=[10, 0])

    def test_double_spend_is_detected_and_counted(self):
        mint = Mint(seed=1)
        ecu = mint.issue(10)
        mint.retire_and_reissue(ecu)
        with pytest.raises(InvalidECUError):
            mint.retire_and_reissue(ecu)
        assert mint.double_spend_attempts == 1
        assert mint.rejected_count == 1

    def test_validated_and_retired_value_ledgers(self):
        mint = Mint(seed=1)
        for amount in (5, 7):
            mint.retire_and_reissue(mint.issue(amount))
        assert mint.validated_count == 2
        assert mint.retired_value() == 12
        assert mint.outstanding_value() == 12

    def test_serials_never_reused(self):
        mint = Mint(seed=1)
        seen = set()
        for _ in range(50):
            ecu = mint.issue(1)
            assert ecu.serial not in seen
            seen.add(ecu.serial)
            mint.retire_and_reissue(ecu)
