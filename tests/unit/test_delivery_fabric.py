"""Unit tests for the delivery fabric: per-destination outboxes, batching,
crash/partition semantics, and the message size cache."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.net.message import Message, MessageKind
from repro.net.transport import BATCHABLE_KINDS


def make_kernel(window=0.1, transport="tcp", **config_kwargs):
    return Kernel(lan(["a", "b", "c"], latency=0.01), transport=transport,
                  config=KernelConfig(rng_seed=5, delivery_batch_window=window,
                                      **config_kwargs))


def install_receiver(kernel, site="b", name="receiver"):
    """A contact agent that files what it receives into a cabinet."""

    def receiver(ctx, bc):
        ctx.cabinet("received").put("payloads", dict(bc.items())
                                    if hasattr(bc, "items") else bc.get("X"))
        yield ctx.sleep(0)
        return "got-it"

    kernel.install_agent(site, name, receiver)
    return receiver


def transmit_n(kernel, n, destination="b", kind=MessageKind.FOLDER_DELIVERY,
               source="a", contact="receiver"):
    """Launch a system agent at *source* transmitting *n* messages at once."""

    def sender(ctx, bc):
        accepted = []
        for index in range(n):
            payload = Briefcase()
            payload.set("X", index)
            ok = yield ctx.transmit(destination, contact, payload, kind=kind)
            accepted.append(bool(ok))
        return accepted

    return kernel.launch(source, sender, system=True)


def transmit_spaced(kernel, n, gap, destination="b",
                    kind=MessageKind.FOLDER_DELIVERY, source="a",
                    contact="receiver"):
    """Like transmit_n, but sleeping *gap* simulated seconds between sends."""

    def sender(ctx, bc):
        for index in range(n):
            payload = Briefcase()
            payload.set("X", index)
            yield ctx.transmit(destination, contact, payload, kind=kind)
            yield ctx.sleep(gap)
        return "done"

    return kernel.launch(source, sender, system=True)


class TestBatching:
    def test_same_destination_messages_coalesce_into_one_wire_message(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        sender = transmit_n(kernel, 4)
        kernel.run()
        assert kernel.result_of(sender) == [True] * 4
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.batches == 1
        assert kernel.stats.batched_messages == 4
        assert kernel.arrivals == 4          # every folder reached its contact
        assert kernel.undeliverable == 0

    def test_batch_saves_header_bytes(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run()
        assert kernel.stats.header_bytes_saved == 2 * Message.HEADER_BYTES

    def test_distinct_destinations_use_distinct_outboxes(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel, site="b")
        install_receiver(kernel, site="c")

        def sender(ctx, bc):
            for destination in ("b", "c", "b", "c"):
                payload = Briefcase()
                payload.set("X", destination)
                yield ctx.transmit(destination, "receiver", payload,
                                   kind=MessageKind.FOLDER_DELIVERY)
            return "sent"

        kernel.launch("a", sender, system=True)
        kernel.run()
        assert kernel.stats.messages_sent == 2      # one batch per destination
        assert kernel.stats.batches == 2
        assert kernel.arrivals == 4

    def test_single_message_window_ships_unwrapped(self):
        kernel = make_kernel(window=0.05)
        install_receiver(kernel)
        transmit_n(kernel, 1)
        kernel.run()
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.batches == 0             # no envelope was needed
        assert kernel.stats.per_kind[MessageKind.FOLDER_DELIVERY] == 1
        assert kernel.arrivals == 1

    def test_non_batchable_kinds_bypass_the_fabric(self):
        kernel = make_kernel(window=0.5)
        transmit_n(kernel, 3, kind=MessageKind.CONTROL)
        kernel.run(until=0.01)
        # Control traffic is on the wire immediately, no window wait.
        assert kernel.stats.messages_sent == 3
        assert kernel.transport.pending_outbox_messages() == 0

    def test_window_zero_means_fabric_off(self):
        kernel = make_kernel(window=0.0)
        install_receiver(kernel)
        transmit_n(kernel, 4)
        kernel.run()
        assert kernel.stats.messages_sent == 4
        assert kernel.stats.batches == 0
        assert kernel.arrivals == 4

    def test_agent_transfers_are_never_batched(self):
        assert MessageKind.AGENT_TRANSFER not in BATCHABLE_KINDS
        kernel = make_kernel(window=0.5)
        transmit_n(kernel, 2, kind=MessageKind.AGENT_TRANSFER, contact="ag_py")
        kernel.run(until=0.01)
        assert kernel.stats.messages_sent == 2

    def test_status_reports_batch_and_reach_their_contact(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        sender = transmit_n(kernel, 3, kind=MessageKind.STATUS)
        kernel.run()
        assert kernel.result_of(sender) == [True] * 3
        assert kernel.stats.messages_sent == 1
        # STATUS payloads carrying a contact execute it like a folder
        # delivery instead of rotting in the message cabinet.
        assert kernel.arrivals == 3


class TestFailureSemantics:
    def test_crash_of_destination_drops_pending_outbox(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)     # transmits done, flush far in the future
        assert kernel.transport.pending_outbox_messages() == 3
        dropped_before = kernel.stats.messages_dropped
        kernel.crash_site("b")
        assert kernel.transport.pending_outbox_messages() == 0
        assert kernel.stats.messages_dropped == dropped_before + 3
        kernel.run()
        assert kernel.arrivals == 0

    def test_crash_of_source_drops_pending_outbox(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.01)
        assert kernel.transport.pending_outbox_messages() == 2
        kernel.crash_site("a")
        assert kernel.transport.pending_outbox_messages() == 0
        kernel.run()
        assert kernel.arrivals == 0

    def test_partition_flushes_and_drops_cross_partition_batches(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        assert kernel.transport.pending_outbox_messages() == 3
        dropped_before = kernel.stats.messages_dropped
        kernel.partition([["a"], ["b", "c"]])
        assert kernel.transport.pending_outbox_messages() == 0
        kernel.run()
        # The batch was flushed into the partitioned network and dropped;
        # the loss ledger counts every coalesced message, not one envelope.
        assert kernel.stats.messages_dropped == dropped_before + 3
        assert kernel.arrivals == 0
        kernel.heal_partition()

    def test_partition_leaves_same_side_outboxes_coalescing(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        kernel.partition([["a", "b"], ["c"]])   # sender and receiver together
        # The a->b pair is still routable: its outbox is untouched and keeps
        # coalescing until the window fires, then delivers normally.
        assert kernel.transport.pending_outbox_messages() == 3
        kernel.run()
        assert kernel.arrivals == 3
        kernel.heal_partition()

    def test_destination_down_at_post_time_is_refused_like_unbatched(self):
        # The fabric must not report "accepted" for a destination already
        # known to be unreachable: posting falls through to the immediate
        # path, so the sender sees the same False as with batching off.
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        kernel.crash_site("b")
        sender = transmit_n(kernel, 3)
        kernel.run()
        assert kernel.result_of(sender) == [False] * 3
        assert kernel.transport.pending_outbox_messages() == 0
        assert kernel.arrivals == 0

    def test_in_flight_batch_loss_counts_every_coalesced_message(self):
        kernel = make_kernel(window=0.01)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.015)    # batch flushed and on the wire
        dropped_before = kernel.stats.messages_dropped
        kernel.site("b").mark_crashed()       # kernel side only...
        kernel.topology.mark_down("b")        # ...and now the link too
        kernel.run()
        assert kernel.stats.messages_dropped == dropped_before + 3
        assert kernel.arrivals == 0

    def test_batch_to_kernel_dead_site_counts_every_coalesced_message(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.05)
        # The kernel at b dies while the link stays up: the batch arrives at
        # a site the kernel cannot serve and every folder in it is lost.
        kernel.site("b").mark_crashed()
        kernel.run()
        assert kernel.undeliverable == 3
        assert kernel.site("b").undeliverable == 3


class TestSerializedSetup:
    def test_setup_serializes_at_the_source(self):
        loop_free = make_kernel(window=0.0)
        serialized = make_kernel(window=0.0, serialize_transport_setup=True)
        for kernel in (loop_free, serialized):
            install_receiver(kernel)
            transmit_n(kernel, 10)
            kernel.run()
            assert kernel.arrivals == 10
        # Ten serialized setups take longer than ten concurrent ones.
        assert serialized.now > loop_free.now

    def test_batching_beats_serialized_setup(self):
        # rsh pays a ~0.12s fork per wire message: 20 serialized forks
        # dwarf the flush window, so one envelope wins on simulated time.
        unbatched = make_kernel(window=0.0, transport="rsh",
                                serialize_transport_setup=True)
        batched = make_kernel(window=0.05, transport="rsh",
                              serialize_transport_setup=True)
        for kernel in (unbatched, batched):
            install_receiver(kernel)
            transmit_n(kernel, 20)
            kernel.run()
            assert kernel.arrivals == 20
        assert batched.stats.messages_sent < unbatched.stats.messages_sent
        assert batched.now < unbatched.now


class TestMessageSizeCache:
    def test_size_is_computed_once(self):
        message = Message(source="a", destination="b", kind=MessageKind.DATA,
                          payload={"k": "x" * 1000})
        first = message.size_bytes()
        # Payload mutation after the first size query does not change the
        # charged size: messages are sealed once handed to a transport.
        message.payload["k"] = "x" * 50_000
        assert message.size_bytes() == first

    def test_declared_size_still_takes_precedence(self):
        message = Message(source="a", destination="b", kind=MessageKind.DATA,
                          payload={"big": "x" * 10_000}, declared_size=100)
        assert message.size_bytes() == Message.HEADER_BYTES + 100
        assert message.body_bytes() == 100

    def test_batch_declared_size_is_sum_of_bodies_plus_one_header(self):
        batched = make_kernel(window=0.1)
        unbatched = make_kernel(window=0.0)
        for kernel in (batched, unbatched):
            install_receiver(kernel)
            transmit_n(kernel, 3)
            kernel.run()
            assert kernel.arrivals == 3
        # Identical payload traffic; the envelope pays exactly one header
        # where the unbatched wire paid three.
        assert batched.stats.bytes_sent == \
            unbatched.stats.bytes_sent - 2 * Message.HEADER_BYTES


class TestAdaptiveFlush:
    def test_size_threshold_ships_before_the_window(self):
        kernel = make_kernel(window=10.0, delivery_batch_max_messages=3)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.05)
        # The batch is already on the wire long before the 10 s window.
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.flush_causes["size"] == 1
        assert kernel.transport.pending_outbox_messages() == 0
        kernel.run()
        assert kernel.arrivals == 3
        assert kernel.stats.batches == 1
        assert kernel.stats.batched_messages == 3

    def test_size_threshold_splits_a_stream_into_full_batches(self):
        kernel = make_kernel(window=10.0, delivery_batch_max_messages=2)
        install_receiver(kernel)
        transmit_n(kernel, 6)
        kernel.run()
        assert kernel.arrivals == 6
        assert kernel.stats.batches == 3            # three full batches of 2
        assert kernel.stats.flush_causes["size"] == 3
        assert kernel.stats.messages_sent == 3

    def test_byte_threshold_ships_before_the_window(self):
        from repro.core.codec import wire_size_of
        probe = Briefcase()
        probe.set("X", 0)
        one_message = wire_size_of(probe)
        kernel = make_kernel(window=10.0,
                             delivery_batch_max_bytes=one_message + 1)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.05)
        # The second message tripped the byte threshold.
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.flush_causes["bytes"] == 1
        kernel.run()
        assert kernel.arrivals == 2
        assert kernel.stats.batches == 1

    def test_sliding_window_extends_with_traffic(self):
        # deadline > 0 turns the window into a sliding one: the second
        # message (inside the first window) postpones the flush.
        kernel = make_kernel(window=0.2, delivery_batch_deadline=5.0)
        install_receiver(kernel)
        transmit_spaced(kernel, 2, gap=0.15)
        kernel.run(until=0.30)     # a fixed window would have flushed at ~0.2
        assert kernel.stats.messages_sent == 0
        kernel.run()
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.batches == 1
        assert kernel.arrivals == 2

    def test_deadline_caps_a_sliding_window(self):
        # Steady traffic keeps extending the window; the hard deadline
        # bounds the wait from the first queued message.
        kernel = make_kernel(window=0.2, delivery_batch_deadline=0.5)
        install_receiver(kernel)
        transmit_spaced(kernel, 6, gap=0.1)
        kernel.run(until=0.45)
        assert kernel.stats.messages_sent == 0      # still sliding
        kernel.run()
        assert kernel.stats.flush_causes["deadline"] == 1
        assert kernel.stats.messages_sent <= 2      # deadline batch + the tail
        assert kernel.arrivals == 6

    def test_threshold_flush_event_is_the_batch_delivery(self):
        # post() returns the shipped batch's event on a threshold flush, so
        # the sender still sees "accepted".
        kernel = make_kernel(window=10.0, delivery_batch_max_messages=2)
        install_receiver(kernel)
        sender = transmit_n(kernel, 2)
        kernel.run()
        assert kernel.result_of(sender) == [True, True]


class TestReconfigureReconciliation:
    def test_zeroing_the_window_flushes_armed_outboxes(self):
        # Regression: turning the fabric off used to leave pending messages
        # waiting out the old (here: distant) flush event.
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        assert kernel.transport.pending_outbox_messages() == 3
        kernel.transport.configure_batching(0.0)
        assert kernel.transport.pending_outbox_messages() == 0
        assert kernel.stats.messages_sent == 1      # shipped now, as one batch
        assert kernel.stats.flush_causes["reconfigure"] == 1
        kernel.run()
        assert kernel.arrivals == 3
        assert kernel.stats.messages_dropped == 0   # flushed, not dropped

    def test_shrinking_the_window_rearms_armed_outboxes(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.01)
        kernel.transport.configure_batching(0.05)
        kernel.run(until=0.5)
        # The flush fired on the new 0.05 s window, not the old 10 s one.
        assert kernel.arrivals == 2
        assert kernel.stats.batches == 1

    def test_stale_flush_event_after_reconfigure_is_a_no_op(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.01)
        kernel.transport.configure_batching(0.0)
        sent_after_flush = kernel.stats.messages_sent
        kernel.run()    # drains everything, including the old armed event
        assert kernel.stats.messages_sent == sent_after_flush
        assert kernel.arrivals == 2

    def test_reconfigure_with_unchanged_rules_keeps_sliding_outboxes(self):
        # Reconfiguring must be idempotent: repeating the identical sliding
        # configuration mid-burst must not flush an outbox that the rules
        # say should keep coalescing until last-post + window.
        kernel = make_kernel(window=0.2, delivery_batch_deadline=5.0)
        install_receiver(kernel)
        transmit_spaced(kernel, 2, gap=0.15)
        kernel.run(until=0.25)      # both posted; sliding due is ~0.35
        assert kernel.transport.pending_outbox_messages() == 2
        kernel.transport.configure_batching(0.2, deadline=5.0)
        assert kernel.transport.pending_outbox_messages() == 2  # not flushed
        kernel.run()
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.batches == 1
        assert kernel.arrivals == 2

    def test_tightened_threshold_flushes_already_full_outboxes(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 4)
        kernel.run(until=0.01)
        kernel.transport.configure_batching(10.0, max_messages=3)
        # 4 pending >= the new threshold: the batch left immediately.
        assert kernel.transport.pending_outbox_messages() == 0
        kernel.run()
        assert kernel.arrivals == 4

    def test_negative_adaptive_knobs_rejected(self):
        from repro.core.errors import TransportError
        kernel = make_kernel(window=0.0)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, max_messages=-1)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, max_bytes=-1)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, deadline=-0.5)


class TestCrashDuringArmedFlush:
    def test_crash_while_armed_below_threshold_drops_per_message(self):
        # Site crash between arming and the flush event firing: the same
        # per-message accounting as _drop_outbox.
        kernel = make_kernel(window=10.0, delivery_batch_max_messages=5)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        assert kernel.transport.pending_outbox_messages() == 3
        dropped_before = kernel.stats.messages_dropped
        kernel.crash_site("b")
        assert kernel.stats.messages_dropped == dropped_before + 3
        kernel.run()
        assert kernel.stats.messages_dropped == dropped_before + 3  # no double count
        assert kernel.arrivals == 0

    def test_crash_after_threshold_trigger_counts_per_message(self):
        # The threshold fired and the batch is in flight when the
        # destination dies: in-flight loss counts each coalesced message,
        # matching what _drop_outbox would have charged.
        kernel = make_kernel(window=10.0, delivery_batch_max_messages=3)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        assert kernel.stats.messages_sent == 1      # early flush already shipped
        assert kernel.transport.pending_outbox_messages() == 0
        dropped_before = kernel.stats.messages_dropped
        kernel.site("b").mark_crashed()
        kernel.topology.mark_down("b")
        kernel.run()
        assert kernel.stats.messages_dropped == dropped_before + 3
        assert kernel.arrivals == 0

    def test_partition_mid_batch_does_not_double_count_drops(self):
        kernel = make_kernel(window=10.0, delivery_batch_max_messages=5)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        dropped_before = kernel.stats.messages_dropped
        kernel.partition([["a"], ["b", "c"]])
        kernel.run()
        # Exactly one drop per queued message — the partition flush and the
        # (now stale) armed flush event must not both charge the loss.
        assert kernel.stats.messages_dropped == dropped_before + 3
        assert kernel.stats.flush_causes["partition"] == 1
        assert kernel.arrivals == 0
        kernel.heal_partition()


class TestAdaptiveWindows:
    """Per-destination adaptive windows (repro.flow behind the fabric)."""

    def test_hot_pair_tightens_its_window_below_the_base(self):
        kernel = make_kernel(window=0.5, flow_window_min=0.01,
                             flow_window_max=1.0, flow_target_batch=4)
        install_receiver(kernel)
        transmit_spaced(kernel, 20, gap=0.005)
        kernel.run()
        assert kernel.arrivals == 20
        telemetry = kernel.transport.flow_telemetry()
        info = telemetry[("a", "b")]
        # ~150+ msg/s stream: the window collapses well below the 0.5 seed.
        assert info["window"] < 0.1
        assert info["message_rate"] > 50
        # ...and the tight window produced several batches instead of one.
        assert kernel.stats.batches > 2

    def test_trickle_pair_widens_its_window_to_the_max(self):
        kernel = make_kernel(window=0.05, flow_window_min=0.01,
                             flow_window_max=2.0, flow_target_batch=4)
        install_receiver(kernel)
        transmit_spaced(kernel, 6, gap=0.4)
        kernel.run()
        assert kernel.arrivals == 6
        info = kernel.transport.flow_telemetry()[("a", "b")]
        # ~2.5 msg/s: the ideal window (target/rate ~ 1.6s) is far above
        # the 0.05 s base the pair would otherwise run, within the cap.
        assert 1.0 < info["window"] <= 2.0
        # The wide window let spaced folders share wire messages where the
        # 0.05 base window would have shipped every one alone.
        assert kernel.stats.batches > 0
        assert kernel.stats.messages_sent < 6

    def test_window_tightened_below_elapsed_wait_ships_immediately(self):
        # A pair that was idle long enough to look like a trickle gets a
        # wide window; when a burst re-rates it mid-batch, the recomputed
        # due time (first message + new tight window) may already be in
        # the past — the batch must ship, not strand.
        kernel = make_kernel(window=1.0, flow_window_min=0.01,
                             flow_window_max=1.0, flow_target_batch=2)
        install_receiver(kernel)
        transmit_n(kernel, 8)
        kernel.run()
        assert kernel.arrivals == 8
        assert kernel.transport.pending_outbox_messages() == 0

    def test_per_destination_windows_are_independent(self):
        kernel = make_kernel(window=0.2, flow_window_min=0.01,
                             flow_window_max=1.0, flow_target_batch=4)
        install_receiver(kernel, site="b")
        install_receiver(kernel, site="c")

        def sender(ctx, bc):
            for index in range(30):
                payload = Briefcase()
                payload.set("X", index)
                yield ctx.transmit("b", "receiver", payload,
                                   kind=MessageKind.FOLDER_DELIVERY)
                if index < 4:
                    yield ctx.transmit("c", "receiver", payload,
                                       kind=MessageKind.FOLDER_DELIVERY)
                    yield ctx.sleep(0.3)    # c is a trickle, b stays hot
            return "sent"

        kernel.launch("a", sender, system=True)
        kernel.run()
        telemetry = kernel.transport.flow_telemetry()
        assert telemetry[("a", "b")]["window"] < telemetry[("a", "c")]["window"]

    def test_stats_publish_per_pair_flow_telemetry(self):
        kernel = make_kernel(window=0.2, flow_window_min=0.01,
                             flow_window_max=1.0)
        install_receiver(kernel)
        transmit_n(kernel, 4)
        kernel.run()
        snapshot = kernel.stats.snapshot()
        assert snapshot["flow_pairs"] == 1
        info = snapshot["flow_windows"]["a->b"]
        assert {"window", "message_rate", "bytes_rate"} <= set(info)
        # Fixed-window kernels publish nothing (the telemetry is adaptive).
        fixed = make_kernel(window=0.2)
        install_receiver(fixed)
        transmit_n(fixed, 4)
        fixed.run()
        assert fixed.stats.snapshot()["flow_pairs"] == 0


class TestAdaptiveReconfigureRaces:
    """Resizing the adaptive bounds while outboxes are armed, and crash /
    recovery mid-window: flow state must reset, with no stale flushes."""

    def test_resizing_bounds_while_an_outbox_is_armed_reconciles_it(self):
        kernel = make_kernel(window=5.0, flow_window_min=0.5,
                             flow_window_max=10.0, flow_target_batch=50)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        assert kernel.transport.pending_outbox_messages() == 3
        # Tighten the band under the armed outbox: its recomputed due time
        # (first + clamped window) is already past, so it ships at once.
        kernel.transport.configure_batching(5.0, window_min=0.001,
                                            window_max=0.005)
        assert kernel.transport.pending_outbox_messages() == 0
        assert kernel.stats.flush_causes["reconfigure"] == 1
        kernel.run()
        assert kernel.arrivals == 3
        assert kernel.stats.messages_dropped == 0

    def test_widening_bounds_mid_window_rearms_not_drops(self):
        kernel = make_kernel(window=0.2, flow_window_min=0.1,
                             flow_window_max=0.3)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.01)
        kernel.transport.configure_batching(0.2, window_min=0.1,
                                            window_max=5.0)
        # Still pending (re-armed on the recomputed window), nothing lost.
        kernel.run()
        assert kernel.arrivals == 2
        assert kernel.stats.messages_dropped == 0
        assert kernel.stats.batches == 1

    def test_destination_crash_mid_window_resets_flow_state(self):
        kernel = make_kernel(window=0.5, flow_window_min=0.01,
                             flow_window_max=1.0, flow_target_batch=4)
        install_receiver(kernel)
        transmit_spaced(kernel, 20, gap=0.005)
        kernel.run(until=0.04)                  # hot: tight window learned
        assert ("a", "b") in kernel.transport.flow_telemetry()
        assert kernel.transport.pending_outbox_messages() > 0
        kernel.crash_site("b")
        # Flow state and telemetry for the pair are gone with the crash...
        assert ("a", "b") not in kernel.transport.flow_telemetry()
        assert ("a", "b") not in kernel.stats.flow_windows
        # ...and so is the armed outbox (no stale flush event fires later).
        assert kernel.transport.pending_outbox_messages() == 0
        arrivals_at_crash = kernel.arrivals
        batches_at_crash = kernel.stats.batches
        kernel.run(until=2.0)
        # The sender's later posts are refused at post time (destination
        # down): nothing new arrives, no stale flush ships a batch, and no
        # flow state is re-learned for the dead pair.
        assert kernel.arrivals == arrivals_at_crash
        assert kernel.stats.batches == batches_at_crash
        assert ("a", "b") not in kernel.transport.flow_telemetry()

    def test_recovered_destination_starts_from_the_seed_window(self):
        kernel = make_kernel(window=0.5, flow_window_min=0.01,
                             flow_window_max=1.0, flow_target_batch=4)
        install_receiver(kernel)
        transmit_spaced(kernel, 10, gap=0.005)
        kernel.run(until=0.03)
        kernel.crash_site("b")
        kernel.run(until=1.0)
        kernel.recover_site("b")
        kernel.run(until=1.1)
        # Fresh traffic re-learns from scratch: the first post sees the
        # seed window (clamped base), not the pre-crash hot estimate.
        assert kernel.transport.flow.window_for(("a", "b")) == 0.5
        transmit_n(kernel, 2, contact="receiver")
        kernel.run()
        assert kernel.transport.pending_outbox_messages() == 0
        info = kernel.transport.flow_telemetry().get(("a", "b"))
        assert info is not None and info["messages"] == 2

    def test_fixed_mode_does_no_flow_estimation_on_the_hot_path(self):
        # With adaptive windows off, post() must not build per-pair EWMA
        # state that nothing will ever read.
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        transmit_n(kernel, 5)
        kernel.run()
        assert kernel.arrivals == 5
        assert kernel.transport.flow_telemetry() == {}
        assert kernel.stats.flow_windows == {}

    def test_flow_knob_validation_at_the_transport(self):
        from repro.core.errors import TransportError
        kernel = make_kernel(window=0.0)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, window_min=-0.1)
        with pytest.raises(TransportError):
            # A floor with no ceiling would be silently inert.
            kernel.transport.configure_batching(0.1, window_min=0.5)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, window_max=-1.0)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, window_min=2.0,
                                                window_max=1.0)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, target_batch=0)
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(0.1, ewma_alpha=1.5)


class TestConfigureBatching:
    def test_negative_window_rejected(self):
        kernel = make_kernel(window=0.0)
        from repro.core.errors import TransportError
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(-1.0)

    def test_flush_outboxes_is_idempotent(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.01)
        assert kernel.transport.flush_outboxes() == 1
        assert kernel.transport.flush_outboxes() == 0
        kernel.run()
        assert kernel.arrivals == 2
