"""Unit tests for the delivery fabric: per-destination outboxes, batching,
crash/partition semantics, and the message size cache."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.net.message import Message, MessageKind
from repro.net.transport import BATCHABLE_KINDS


def make_kernel(window=0.1, transport="tcp", **config_kwargs):
    return Kernel(lan(["a", "b", "c"], latency=0.01), transport=transport,
                  config=KernelConfig(rng_seed=5, delivery_batch_window=window,
                                      **config_kwargs))


def install_receiver(kernel, site="b", name="receiver"):
    """A contact agent that files what it receives into a cabinet."""

    def receiver(ctx, bc):
        ctx.cabinet("received").put("payloads", dict(bc.items())
                                    if hasattr(bc, "items") else bc.get("X"))
        yield ctx.sleep(0)
        return "got-it"

    kernel.install_agent(site, name, receiver)
    return receiver


def transmit_n(kernel, n, destination="b", kind=MessageKind.FOLDER_DELIVERY,
               source="a", contact="receiver"):
    """Launch a system agent at *source* transmitting *n* messages at once."""

    def sender(ctx, bc):
        accepted = []
        for index in range(n):
            payload = Briefcase()
            payload.set("X", index)
            ok = yield ctx.transmit(destination, contact, payload, kind=kind)
            accepted.append(bool(ok))
        return accepted

    return kernel.launch(source, sender, system=True)


class TestBatching:
    def test_same_destination_messages_coalesce_into_one_wire_message(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        sender = transmit_n(kernel, 4)
        kernel.run()
        assert kernel.result_of(sender) == [True] * 4
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.batches == 1
        assert kernel.stats.batched_messages == 4
        assert kernel.arrivals == 4          # every folder reached its contact
        assert kernel.undeliverable == 0

    def test_batch_saves_header_bytes(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run()
        assert kernel.stats.header_bytes_saved == 2 * Message.HEADER_BYTES

    def test_distinct_destinations_use_distinct_outboxes(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel, site="b")
        install_receiver(kernel, site="c")

        def sender(ctx, bc):
            for destination in ("b", "c", "b", "c"):
                payload = Briefcase()
                payload.set("X", destination)
                yield ctx.transmit(destination, "receiver", payload,
                                   kind=MessageKind.FOLDER_DELIVERY)
            return "sent"

        kernel.launch("a", sender, system=True)
        kernel.run()
        assert kernel.stats.messages_sent == 2      # one batch per destination
        assert kernel.stats.batches == 2
        assert kernel.arrivals == 4

    def test_single_message_window_ships_unwrapped(self):
        kernel = make_kernel(window=0.05)
        install_receiver(kernel)
        transmit_n(kernel, 1)
        kernel.run()
        assert kernel.stats.messages_sent == 1
        assert kernel.stats.batches == 0             # no envelope was needed
        assert kernel.stats.per_kind[MessageKind.FOLDER_DELIVERY] == 1
        assert kernel.arrivals == 1

    def test_non_batchable_kinds_bypass_the_fabric(self):
        kernel = make_kernel(window=0.5)
        transmit_n(kernel, 3, kind=MessageKind.CONTROL)
        kernel.run(until=0.01)
        # Control traffic is on the wire immediately, no window wait.
        assert kernel.stats.messages_sent == 3
        assert kernel.transport.pending_outbox_messages() == 0

    def test_window_zero_means_fabric_off(self):
        kernel = make_kernel(window=0.0)
        install_receiver(kernel)
        transmit_n(kernel, 4)
        kernel.run()
        assert kernel.stats.messages_sent == 4
        assert kernel.stats.batches == 0
        assert kernel.arrivals == 4

    def test_agent_transfers_are_never_batched(self):
        assert MessageKind.AGENT_TRANSFER not in BATCHABLE_KINDS
        kernel = make_kernel(window=0.5)
        transmit_n(kernel, 2, kind=MessageKind.AGENT_TRANSFER, contact="ag_py")
        kernel.run(until=0.01)
        assert kernel.stats.messages_sent == 2

    def test_status_reports_batch_and_reach_their_contact(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        sender = transmit_n(kernel, 3, kind=MessageKind.STATUS)
        kernel.run()
        assert kernel.result_of(sender) == [True] * 3
        assert kernel.stats.messages_sent == 1
        # STATUS payloads carrying a contact execute it like a folder
        # delivery instead of rotting in the message cabinet.
        assert kernel.arrivals == 3


class TestFailureSemantics:
    def test_crash_of_destination_drops_pending_outbox(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)     # transmits done, flush far in the future
        assert kernel.transport.pending_outbox_messages() == 3
        dropped_before = kernel.stats.messages_dropped
        kernel.crash_site("b")
        assert kernel.transport.pending_outbox_messages() == 0
        assert kernel.stats.messages_dropped == dropped_before + 3
        kernel.run()
        assert kernel.arrivals == 0

    def test_crash_of_source_drops_pending_outbox(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.01)
        assert kernel.transport.pending_outbox_messages() == 2
        kernel.crash_site("a")
        assert kernel.transport.pending_outbox_messages() == 0
        kernel.run()
        assert kernel.arrivals == 0

    def test_partition_flushes_and_drops_cross_partition_batches(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        assert kernel.transport.pending_outbox_messages() == 3
        dropped_before = kernel.stats.messages_dropped
        kernel.partition([["a"], ["b", "c"]])
        assert kernel.transport.pending_outbox_messages() == 0
        kernel.run()
        # The batch was flushed into the partitioned network and dropped;
        # the loss ledger counts every coalesced message, not one envelope.
        assert kernel.stats.messages_dropped == dropped_before + 3
        assert kernel.arrivals == 0
        kernel.heal_partition()

    def test_partition_leaves_same_side_outboxes_coalescing(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.01)
        kernel.partition([["a", "b"], ["c"]])   # sender and receiver together
        # The a->b pair is still routable: its outbox is untouched and keeps
        # coalescing until the window fires, then delivers normally.
        assert kernel.transport.pending_outbox_messages() == 3
        kernel.run()
        assert kernel.arrivals == 3
        kernel.heal_partition()

    def test_destination_down_at_post_time_is_refused_like_unbatched(self):
        # The fabric must not report "accepted" for a destination already
        # known to be unreachable: posting falls through to the immediate
        # path, so the sender sees the same False as with batching off.
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        kernel.crash_site("b")
        sender = transmit_n(kernel, 3)
        kernel.run()
        assert kernel.result_of(sender) == [False] * 3
        assert kernel.transport.pending_outbox_messages() == 0
        assert kernel.arrivals == 0

    def test_in_flight_batch_loss_counts_every_coalesced_message(self):
        kernel = make_kernel(window=0.01)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.015)    # batch flushed and on the wire
        dropped_before = kernel.stats.messages_dropped
        kernel.site("b").mark_crashed()       # kernel side only...
        kernel.topology.mark_down("b")        # ...and now the link too
        kernel.run()
        assert kernel.stats.messages_dropped == dropped_before + 3
        assert kernel.arrivals == 0

    def test_batch_to_kernel_dead_site_counts_every_coalesced_message(self):
        kernel = make_kernel(window=0.1)
        install_receiver(kernel)
        transmit_n(kernel, 3)
        kernel.run(until=0.05)
        # The kernel at b dies while the link stays up: the batch arrives at
        # a site the kernel cannot serve and every folder in it is lost.
        kernel.site("b").mark_crashed()
        kernel.run()
        assert kernel.undeliverable == 3
        assert kernel.site("b").undeliverable == 3


class TestSerializedSetup:
    def test_setup_serializes_at_the_source(self):
        loop_free = make_kernel(window=0.0)
        serialized = make_kernel(window=0.0, serialize_transport_setup=True)
        for kernel in (loop_free, serialized):
            install_receiver(kernel)
            transmit_n(kernel, 10)
            kernel.run()
            assert kernel.arrivals == 10
        # Ten serialized setups take longer than ten concurrent ones.
        assert serialized.now > loop_free.now

    def test_batching_beats_serialized_setup(self):
        # rsh pays a ~0.12s fork per wire message: 20 serialized forks
        # dwarf the flush window, so one envelope wins on simulated time.
        unbatched = make_kernel(window=0.0, transport="rsh",
                                serialize_transport_setup=True)
        batched = make_kernel(window=0.05, transport="rsh",
                              serialize_transport_setup=True)
        for kernel in (unbatched, batched):
            install_receiver(kernel)
            transmit_n(kernel, 20)
            kernel.run()
            assert kernel.arrivals == 20
        assert batched.stats.messages_sent < unbatched.stats.messages_sent
        assert batched.now < unbatched.now


class TestMessageSizeCache:
    def test_size_is_computed_once(self):
        message = Message(source="a", destination="b", kind=MessageKind.DATA,
                          payload={"k": "x" * 1000})
        first = message.size_bytes()
        # Payload mutation after the first size query does not change the
        # charged size: messages are sealed once handed to a transport.
        message.payload["k"] = "x" * 50_000
        assert message.size_bytes() == first

    def test_declared_size_still_takes_precedence(self):
        message = Message(source="a", destination="b", kind=MessageKind.DATA,
                          payload={"big": "x" * 10_000}, declared_size=100)
        assert message.size_bytes() == Message.HEADER_BYTES + 100
        assert message.body_bytes() == 100

    def test_batch_declared_size_is_sum_of_bodies_plus_one_header(self):
        batched = make_kernel(window=0.1)
        unbatched = make_kernel(window=0.0)
        for kernel in (batched, unbatched):
            install_receiver(kernel)
            transmit_n(kernel, 3)
            kernel.run()
            assert kernel.arrivals == 3
        # Identical payload traffic; the envelope pays exactly one header
        # where the unbatched wire paid three.
        assert batched.stats.bytes_sent == \
            unbatched.stats.bytes_sent - 2 * Message.HEADER_BYTES


class TestConfigureBatching:
    def test_negative_window_rejected(self):
        kernel = make_kernel(window=0.0)
        from repro.core.errors import TransportError
        with pytest.raises(TransportError):
            kernel.transport.configure_batching(-1.0)

    def test_flush_outboxes_is_idempotent(self):
        kernel = make_kernel(window=10.0)
        install_receiver(kernel)
        transmit_n(kernel, 2)
        kernel.run(until=0.01)
        assert kernel.transport.flush_outboxes() == 1
        assert kernel.transport.flush_outboxes() == 0
        kernel.run()
        assert kernel.arrivals == 2
