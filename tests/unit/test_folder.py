"""Unit tests for repro.core.folder.Folder."""

from __future__ import annotations

import pytest

from repro.core import Folder
from repro.core.errors import EmptyFolderError, FolderError


class TestConstruction:
    def test_requires_nonempty_string_name(self):
        with pytest.raises(FolderError):
            Folder("")

    def test_requires_string_name(self):
        with pytest.raises(FolderError):
            Folder(123)  # type: ignore[arg-type]

    def test_initial_elements_are_pushed_in_order(self):
        folder = Folder("F", ["a", "b", "c"])
        assert folder.elements() == ["a", "b", "c"]

    def test_starts_empty_without_elements(self):
        folder = Folder("F")
        assert len(folder) == 0
        assert not folder


class TestStackDiscipline:
    def test_push_pop_is_lifo(self):
        folder = Folder("F")
        folder.push("first")
        folder.push("second")
        assert folder.pop() == "second"
        assert folder.pop() == "first"

    def test_peek_does_not_remove(self):
        folder = Folder("F", ["x"])
        assert folder.peek() == "x"
        assert len(folder) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(EmptyFolderError):
            Folder("F").pop()

    def test_peek_empty_raises(self):
        with pytest.raises(EmptyFolderError):
            Folder("F").peek()


class TestQueueDiscipline:
    def test_enqueue_dequeue_is_fifo(self):
        folder = Folder("F")
        folder.enqueue(1)
        folder.enqueue(2)
        folder.enqueue(3)
        assert folder.dequeue() == 1
        assert folder.dequeue() == 2
        assert folder.dequeue() == 3

    def test_front_does_not_remove(self):
        folder = Folder("F", ["head", "tail"])
        assert folder.front() == "head"
        assert len(folder) == 2

    def test_dequeue_empty_raises(self):
        with pytest.raises(EmptyFolderError):
            Folder("F").dequeue()

    def test_front_empty_raises(self):
        with pytest.raises(EmptyFolderError):
            Folder("F").front()

    def test_mixed_stack_and_queue_access(self):
        folder = Folder("F", ["a", "b", "c"])
        assert folder.dequeue() == "a"   # oldest
        assert folder.pop() == "c"       # newest
        assert folder.elements() == ["b"]


class TestElementEncoding:
    def test_bytes_round_trip(self):
        folder = Folder("F")
        folder.push(b"\x00\x01raw")
        assert folder.pop() == b"\x00\x01raw"

    def test_bytearray_becomes_bytes(self):
        folder = Folder("F")
        folder.push(bytearray(b"data"))
        assert folder.pop() == b"data"

    def test_text_round_trip(self):
        folder = Folder("F")
        folder.push("blåbærsyltetøy")
        assert folder.pop() == "blåbærsyltetøy"

    def test_arbitrary_object_round_trip(self):
        folder = Folder("F")
        folder.push({"nested": [1, 2, {"x": None}]})
        assert folder.pop() == {"nested": [1, 2, {"x": None}]}

    def test_unpicklable_object_raises_folder_error(self):
        folder = Folder("F")
        with pytest.raises(FolderError):
            folder.push(lambda x: x)   # local lambdas cannot be pickled

    def test_raw_elements_are_tagged_bytes(self):
        folder = Folder("F", [b"raw", "text", 42])
        raw = folder.raw_elements()
        assert all(isinstance(item, bytes) for item in raw)
        assert len(raw) == 3


class TestWholeFolderOperations:
    def test_clear_empties(self):
        folder = Folder("F", [1, 2, 3])
        folder.clear()
        assert len(folder) == 0

    def test_extend_appends_in_order(self):
        folder = Folder("F", [1])
        folder.extend([2, 3])
        assert folder.elements() == [1, 2, 3]

    def test_replace_swaps_contents(self):
        folder = Folder("F", [1, 2])
        folder.replace(["a", "b", "c"])
        assert folder.elements() == ["a", "b", "c"]

    def test_copy_is_independent(self):
        folder = Folder("F", [1])
        clone = folder.copy()
        clone.push(2)
        assert folder.elements() == [1]
        assert clone.elements() == [1, 2]
        assert clone.name == "F"

    def test_iteration_yields_decoded_elements(self):
        folder = Folder("F", ["a", "b"])
        assert list(folder) == ["a", "b"]

    def test_equality_compares_name_and_elements(self):
        assert Folder("F", [1]) == Folder("F", [1])
        assert Folder("F", [1]) != Folder("G", [1])
        assert Folder("F", [1]) != Folder("F", [2])
        assert Folder("F") != "not a folder"

    def test_repr_mentions_name_and_count(self):
        assert "F" in repr(Folder("F", [1, 2]))
        assert "2" in repr(Folder("F", [1, 2]))


class TestWireModel:
    def test_wire_size_grows_with_content(self):
        small = Folder("F", ["x"])
        large = Folder("F", ["x" * 1000])
        assert large.wire_size() > small.wire_size()

    def test_wire_size_includes_per_element_framing(self):
        empty = Folder("F")
        one = Folder("F", [b""])
        assert one.wire_size() > empty.wire_size()

    def test_to_wire_from_wire_round_trip(self):
        folder = Folder("F", [b"raw", "text", {"k": 1}])
        rebuilt = Folder.from_wire(folder.to_wire())
        assert rebuilt == folder

    def test_from_wire_rejects_non_bytes_elements(self):
        with pytest.raises(FolderError):
            Folder.from_wire({"name": "F", "elements": ["not-bytes"]})
