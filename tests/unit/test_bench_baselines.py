"""Unit tests for the client-server pull baseline agents (repro.bench.baselines)."""

from __future__ import annotations

import pytest

from repro.bench import (DataGatherParams, build_gather_kernel, install_data_servers,
                         launch_pull_client, pull_summary)
from repro.bench.baselines import (DATA_SERVER_NAME, DATA_SINK_NAME, PULL_CABINET,
                                   data_server_behaviour)
from repro.core import Briefcase, Folder, Kernel, KernelConfig
from repro.net import FailureSchedule, lan


PARAMS = DataGatherParams(n_sites=3, records_per_site=20, record_bytes=100,
                          selectivity=0.2, seed=9, topology="lan")


@pytest.fixture
def kernel():
    kernel = build_gather_kernel(PARAMS)
    install_data_servers(kernel, PARAMS.home_name, PARAMS.data_site_names())
    return kernel


class TestDataServer:
    def test_request_without_home_is_ignored(self, kernel):
        def client(ctx, bc):
            result = yield ctx.meet(DATA_SERVER_NAME, Briefcase())
            return result.value

        agent_id = kernel.launch("data00", client)
        kernel.run()
        assert kernel.result_of(agent_id) == 0
        assert kernel.stats.messages_sent == 0

    def test_served_records_are_tagged_with_their_origin(self, kernel):
        request = Folder("REQUEST", [{"home": PARAMS.home_name, "requested_at": 0.0}])

        def requester(ctx, bc):
            result = yield ctx.send_folder(request, "data01", DATA_SERVER_NAME)
            return result.value

        kernel.launch(PARAMS.home_name, requester)
        kernel.run()
        cabinet = kernel.site(PARAMS.home_name).cabinet(PULL_CABINET)
        assert cabinet.elements("responded") == ["data01"]
        assert len(cabinet.elements("raw")) == PARAMS.records_per_site


class TestPullClient:
    def test_full_pull_gathers_everything(self, kernel):
        launch_pull_client(kernel, PARAMS.home_name, PARAMS.data_site_names())
        kernel.run(until=PARAMS.run_until)
        summary = pull_summary(kernel, PARAMS.home_name)
        assert summary["sites_responded"] == PARAMS.n_sites
        assert summary["records_received"] == PARAMS.n_sites * PARAMS.records_per_site
        assert summary["relevant_found"] > 0

    def test_pull_summary_empty_before_any_run(self):
        kernel = Kernel(lan(["home"]), config=KernelConfig(rng_seed=1))
        assert pull_summary(kernel, "home") == {}

    def test_crashed_data_site_is_reported_as_missing(self, kernel):
        FailureSchedule().crash("data02", at=0.0).install(kernel)
        launch_pull_client(kernel, PARAMS.home_name, PARAMS.data_site_names(),
                           poll_interval=0.05, max_polls=20)
        kernel.run(until=PARAMS.run_until)
        summary = pull_summary(kernel, PARAMS.home_name)
        assert summary["sites_responded"] == PARAMS.n_sites - 1
        assert summary["records_received"] == (PARAMS.n_sites - 1) * PARAMS.records_per_site
        # The client burned its poll budget waiting for the dead site.
        assert summary["polls"] == 20

    def test_pull_does_not_modify_the_data_sites(self, kernel):
        from repro.bench.workloads import DATA_CABINET, RECORDS_FOLDER
        before = {site: len(kernel.site(site).cabinet(DATA_CABINET).folder(RECORDS_FOLDER,
                                                                           create=True))
                  for site in PARAMS.data_site_names()}
        launch_pull_client(kernel, PARAMS.home_name, PARAMS.data_site_names())
        kernel.run(until=PARAMS.run_until)
        after = {site: len(kernel.site(site).cabinet(DATA_CABINET).folder(RECORDS_FOLDER))
                 for site in PARAMS.data_site_names()}
        assert before == after
