"""Unit tests for the rear-guard machinery (guards, releases, relaunches)."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Folder, Kernel, KernelConfig
from repro.core.codec import code_for
from repro.fault.rearguard import (REARGUARD_CABINET, RELEASE_AGENT_NAME, guard_snapshot,
                                   install_fault_agents, make_release_folder, pending_guards,
                                   rear_guard_behaviour, release_agent_behaviour)
from repro.net import lan


@pytest.fixture
def kernel():
    kernel = Kernel(lan(["a", "b", "c"]), transport="tcp", config=KernelConfig(rng_seed=7))
    install_fault_agents(kernel)
    return kernel


def make_snapshot(target="b", ft_id="ft-1"):
    """A minimal shippable snapshot: runs the shell agent at the target."""
    shipment = Briefcase()
    shipment.set("FT_ID", ft_id)
    shipment.set("TARGET_SITE", target)
    shipment.set("CODE", code_for("shell"))
    shipment.folder("ITINERARY", create=True).enqueue("c")
    return shipment


def spawn_guard(kernel, site="a", ft_id="ft-1", protects_seq=1, per_hop=0.2,
                max_relaunches=2, snapshot=None):
    briefcase = guard_snapshot(ft_id, protects_seq,
                               snapshot if snapshot is not None else make_snapshot(ft_id=ft_id),
                               per_hop_time=per_hop, max_relaunches=max_relaunches)
    return kernel.launch(site, rear_guard_behaviour, briefcase, name="guard")


class TestReleaseAgent:
    def test_release_folder_shape(self):
        folder = make_release_folder("ft-1", 3, done=True)
        assert folder.name == "FT_RELEASE"
        assert folder.elements() == [{"ft_id": "ft-1", "reached_seq": 3, "done": True}]

    def test_release_agent_records_notices(self, kernel):
        def sender(ctx, bc):
            result = yield ctx.send_folder(make_release_folder("ft-1", 2), "b",
                                           RELEASE_AGENT_NAME)
            return result.value

        agent_id = kernel.launch("a", sender)
        kernel.run()
        assert kernel.result_of(agent_id) is True
        releases = kernel.site("b").cabinet(REARGUARD_CABINET).elements("releases")
        assert releases == [{"ft_id": "ft-1", "reached_seq": 2, "done": False}]

    def test_release_agent_ignores_malformed_notices(self, kernel):
        def sender(ctx, bc):
            folder = Folder("FT_RELEASE", ["not a dict", {"no_ft_id": 1}])
            result = yield ctx.send_folder(folder, "b", RELEASE_AGENT_NAME)
            return result.value

        kernel.launch("a", sender)
        kernel.run()
        assert kernel.site("b").cabinet(REARGUARD_CABINET).elements("releases") == []

    def test_install_fault_agents_covers_every_site(self, kernel):
        for name in kernel.site_names():
            assert kernel.site(name).is_installed(RELEASE_AGENT_NAME)


class TestBatchedReleases:
    def test_release_folder_lists_released_hops(self):
        folder = make_release_folder("ft-1", 5, released_seqs=[3, 1])
        assert folder.elements() == [{"ft_id": "ft-1", "reached_seq": 5,
                                      "done": False, "released_seqs": [1, 3]}]

    def test_release_folder_without_seqs_keeps_legacy_shape(self):
        folder = make_release_folder("ft-1", 3, done=True)
        assert folder.elements() == [{"ft_id": "ft-1", "reached_seq": 3,
                                      "done": True}]

    def test_release_agent_acknowledges_an_envelope_once(self, kernel):
        # One envelope carrying several notices is acknowledged exactly
        # once — not once per notice, as N separate couriers would be.
        def sender(ctx, bc):
            folder = Folder("FT_RELEASE", [
                {"ft_id": "ft-1", "reached_seq": 3, "done": False},
                {"ft_id": "ft-2", "reached_seq": 7, "done": True},
            ])
            result = yield ctx.send_folder(folder, "b", RELEASE_AGENT_NAME)
            return result.value

        agent_id = kernel.launch("a", sender)
        kernel.run()
        assert kernel.result_of(agent_id) is True   # the courier accepted it
        cabinet = kernel.site("b").cabinet(REARGUARD_CABINET)
        assert len(cabinet.elements("releases")) == 2
        acks = cabinet.elements("release_acks")
        assert len(acks) == 1
        assert acks[0]["notices"] == 2

    def test_multi_hop_notice_retires_guards_by_reached_seq(self, kernel):
        # A single envelope listing several released hops retires every
        # matching guard at the site.
        early = spawn_guard(kernel, site="b", ft_id="ft-1", protects_seq=1,
                            per_hop=1.0)
        later = spawn_guard(kernel, site="b", ft_id="ft-1", protects_seq=3,
                            per_hop=1.0)
        kernel.site("b").cabinet(REARGUARD_CABINET).put(
            "releases", {"ft_id": "ft-1", "reached_seq": 5, "done": False,
                         "released_seqs": [1, 3]})
        kernel.run(until=30.0)
        assert kernel.result_of(early) == "released"
        assert kernel.result_of(later) == "released"


class TestRelaunchBudget:
    """Pin the relaunch budget semantics: a guard with max_relaunches=N
    relaunches exactly N times, never N+1 — even when every relaunched twin
    also stalls (nothing ever sends a release here)."""

    def test_exactly_two_relaunches_for_budget_of_two(self, kernel):
        guard_id = spawn_guard(kernel, protects_seq=1, per_hop=0.05,
                               max_relaunches=2)
        kernel.run(until=120.0)     # far past any further deadline
        relaunches = kernel.site("a").cabinet(REARGUARD_CABINET).elements("relaunches")
        assert [entry["attempt"] for entry in relaunches] == [1, 2]
        outcomes = kernel.site("a").cabinet(REARGUARD_CABINET).elements("guard_outcomes")
        assert outcomes[-1]["outcome"] == "gave-up"
        assert outcomes[-1]["relaunches"] == 2
        assert kernel.result_of(guard_id) == "gave-up"

    def test_budget_of_zero_never_relaunches(self, kernel):
        guard_id = spawn_guard(kernel, protects_seq=1, per_hop=0.05,
                               max_relaunches=0)
        kernel.run(until=60.0)
        assert kernel.site("a").cabinet(REARGUARD_CABINET).elements("relaunches") == []
        assert kernel.stats.migrations == 0
        assert kernel.result_of(guard_id) == "gave-up"

    def test_relaunch_ships_as_batchable_ft_relaunch_kind(self, kernel):
        from repro.net.message import MessageKind
        spawn_guard(kernel, protects_seq=1, per_hop=0.1, max_relaunches=1)
        kernel.run(until=30.0)
        # The snapshot re-shipment went out as ft-relaunch (fabric-eligible),
        # not as a plain agent transfer — and still counts as a migration.
        assert kernel.stats.per_kind[MessageKind.FT_RELAUNCH] >= 1
        assert kernel.stats.per_kind.get(MessageKind.AGENT_TRANSFER, 0) == 0
        assert kernel.stats.migrations >= 1


class TestRearGuard:
    def test_guard_terminates_when_release_arrives(self, kernel):
        guard_id = spawn_guard(kernel, protects_seq=1)
        # A release saying the computation reached hop 2 retires a guard
        # protecting hop 1.
        kernel.site("a").cabinet(REARGUARD_CABINET).put(
            "releases", {"ft_id": "ft-1", "reached_seq": 2, "done": False})
        kernel.run(until=30.0)
        assert kernel.result_of(guard_id) == "released"
        assert kernel.stats.migrations == 0     # never had to relaunch

    def test_done_release_retires_guard_regardless_of_seq(self, kernel):
        guard_id = spawn_guard(kernel, protects_seq=5)
        kernel.site("a").cabinet(REARGUARD_CABINET).put(
            "releases", {"ft_id": "ft-1", "reached_seq": 0, "done": True})
        kernel.run(until=30.0)
        assert kernel.result_of(guard_id) == "released"

    def test_release_for_other_computation_is_ignored(self, kernel):
        guard_id = spawn_guard(kernel, protects_seq=1, max_relaunches=0, per_hop=0.1)
        kernel.site("a").cabinet(REARGUARD_CABINET).put(
            "releases", {"ft_id": "other", "reached_seq": 99, "done": True})
        kernel.run(until=30.0)
        assert kernel.result_of(guard_id) == "gave-up"

    def test_silence_triggers_relaunch_of_the_snapshot(self, kernel):
        guard_id = spawn_guard(kernel, protects_seq=1, per_hop=0.1, max_relaunches=1)
        kernel.run(until=30.0)
        # The guard relaunched the snapshot: an agent transfer went to b and
        # the shell agent there was started by ag_py.
        assert kernel.stats.migrations >= 1
        relaunches = kernel.site("a").cabinet(REARGUARD_CABINET).elements("relaunches")
        assert relaunches and relaunches[0]["accepted"] is True
        assert kernel.result_of(guard_id) in ("relaunched", "gave-up")

    def test_guard_gives_up_after_max_relaunches(self, kernel):
        guard_id = spawn_guard(kernel, protects_seq=1, per_hop=0.05, max_relaunches=2)
        kernel.run(until=60.0)
        outcomes = kernel.site("a").cabinet(REARGUARD_CABINET).elements("guard_outcomes")
        assert outcomes[-1]["outcome"] == "gave-up"
        assert outcomes[-1]["relaunches"] == 2
        assert kernel.result_of(guard_id) == "gave-up"

    def test_relaunch_skips_unreachable_target(self, kernel):
        kernel.crash_site("b")
        snapshot = make_snapshot(target="b")
        guard_id = spawn_guard(kernel, per_hop=0.1, max_relaunches=1, snapshot=snapshot)
        kernel.run(until=30.0)
        # b is down, so the relaunch skipped ahead to the itinerary entry c.
        relaunches = kernel.site("a").cabinet(REARGUARD_CABINET).elements("relaunches")
        assert relaunches and relaunches[0]["accepted"] is True
        assert kernel.arrivals == 1
        assert kernel.agents_at("c", active_only=False)   # the shell ran at c
        assert kernel.result_of(guard_id) in ("relaunched", "gave-up")

    def test_relaunch_with_everything_down_is_not_accepted(self, kernel):
        kernel.crash_site("b")
        kernel.crash_site("c")
        spawn_guard(kernel, per_hop=0.1, max_relaunches=1)
        kernel.run(until=30.0)
        relaunches = kernel.site("a").cabinet(REARGUARD_CABINET).elements("relaunches")
        assert relaunches and relaunches[0]["accepted"] is False

    def test_pending_guards_reports_outcomes_across_sites(self, kernel):
        spawn_guard(kernel, site="a", ft_id="ft-1", per_hop=0.05, max_relaunches=0)
        spawn_guard(kernel, site="b", ft_id="ft-2", per_hop=0.05, max_relaunches=0)
        kernel.run(until=30.0)
        outcomes = pending_guards(kernel)
        assert len(outcomes) == 2
        assert {entry["guard_site"] for entry in outcomes} == {"a", "b"}
