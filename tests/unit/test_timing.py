"""The repro.core.timing seam: protocols, default timer, and repro.rt.

The fast half of the realtime coverage: scheduler semantics with tiny
real sleeps (milliseconds).  The workload-level parity suite lives in
``tests/integration/test_realtime_backend.py``.
"""

from __future__ import annotations

import pytest

from repro.core.errors import KernelError
from repro.core.timing import (PAST_EPSILON, Clock, ScheduledEvent, Scheduler,
                               default_timer)
from repro.net import simclock
from repro.net.simclock import EventLoop, SimClock
from repro.rt import AsyncioScheduler, WallClock

# ---------------------------------------------------------------------------
# protocols and the shared timer
# ---------------------------------------------------------------------------


def test_default_timer_is_monotonic_seconds():
    first = default_timer()
    second = default_timer()
    assert isinstance(first, float)
    assert second >= first


def test_past_epsilon_reexported_from_simclock():
    # PAST_EPSILON moved to repro.core.timing; the historical simclock
    # import path must keep working.
    assert simclock.PAST_EPSILON == PAST_EPSILON
    assert "PAST_EPSILON" in simclock.__all__


def test_sim_pair_satisfies_the_protocols():
    loop = EventLoop()
    assert isinstance(loop, Scheduler)
    assert isinstance(loop.clock, Clock)
    assert isinstance(loop.schedule(0.0, lambda: None), ScheduledEvent)


def test_realtime_pair_satisfies_the_protocols():
    scheduler = AsyncioScheduler()
    try:
        assert isinstance(scheduler, Scheduler)
        assert isinstance(scheduler.clock, Clock)
        assert isinstance(scheduler.clock, WallClock)
        assert not isinstance(scheduler.clock, SimClock)
    finally:
        scheduler.close()


def test_arbitrary_object_does_not_satisfy_scheduler():
    assert not isinstance(object(), Scheduler)


# ---------------------------------------------------------------------------
# WallClock
# ---------------------------------------------------------------------------


def test_wallclock_starts_near_zero_and_advances():
    ticks = iter([10.0, 10.5, 11.0, 11.25])
    clock = WallClock(timer=lambda: next(ticks))
    assert clock.now == pytest.approx(0.5)
    assert clock.now == pytest.approx(1.0)


def test_wallclock_floor_never_rewinds():
    ticks = iter([0.0, 0.1, 5.0])
    clock = WallClock(timer=lambda: next(ticks))
    clock._advance_to(2.0)  # an event at t=2 fired (sleep woke early)
    assert clock.now == 2.0  # floored, though only 0.1 wall elapsed
    clock._advance_to(1.0)  # never rewinds
    assert clock.now == 5.0  # wall time overtook the floor


# ---------------------------------------------------------------------------
# AsyncioScheduler semantics
# ---------------------------------------------------------------------------


@pytest.fixture
def rt():
    scheduler = AsyncioScheduler()
    yield scheduler
    scheduler.close()


@pytest.mark.realtime
def test_events_fire_in_time_order_with_real_waiting(rt):
    fired = []
    rt.schedule(0.02, lambda: fired.append("late"))
    rt.schedule(0.005, lambda: fired.append("early"))
    start = default_timer()
    executed = rt.run()
    elapsed = default_timer() - start
    assert executed == 2
    assert fired == ["early", "late"]
    assert elapsed >= 0.02  # really slept the horizon out
    assert rt.processed == 2
    assert rt.pending == 0


@pytest.mark.realtime
def test_cancelled_events_do_not_fire(rt):
    fired = []
    handle = rt.schedule(0.01, lambda: fired.append("cancelled"))
    rt.schedule(0.012, lambda: fired.append("kept"))
    handle.cancel()
    assert rt.run() == 1
    assert fired == ["kept"]


@pytest.mark.realtime
def test_schedule_at_clamps_past_timestamps(rt):
    # Wall time moved past the deadline before schedule_at was reached:
    # the realtime scheduler forgives it (the sim loop raises instead).
    fired = []
    rt.schedule_at(rt.now - 5.0, lambda: fired.append("late-but-run"))
    assert rt.run() == 1
    assert fired == ["late-but-run"]


@pytest.mark.realtime
def test_run_until_sleeps_out_the_horizon_and_leaves_rest_queued(rt):
    fired = []
    rt.schedule(0.005, lambda: fired.append("due"))
    rt.schedule(60.0, lambda: fired.append("beyond"))
    executed = rt.run_until(0.02)
    assert executed == 1
    assert fired == ["due"]
    assert rt.pending == 1  # the far event stays queued
    assert rt.now >= 0.02  # clock floored at the horizon


@pytest.mark.realtime
def test_run_max_events_budget_stops_early(rt):
    fired = []
    for index in range(4):
        rt.schedule(0.001 * index, lambda i=index: fired.append(i))
    assert rt.run(max_events=2) == 2
    assert fired == [0, 1]
    assert rt.pending == 2
    assert rt.run() == 2  # a later run picks the rest up


@pytest.mark.realtime
def test_callbacks_schedule_more_events(rt):
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            rt.schedule(0.001, lambda: chain(depth + 1))

    rt.schedule(0.001, lambda: chain(0))
    assert rt.run() == 4
    assert fired == [0, 1, 2, 3]


def test_closed_scheduler_refuses_to_run():
    scheduler = AsyncioScheduler()
    scheduler.close()
    scheduler.close()  # idempotent
    scheduler.schedule(0.0, lambda: None)
    with pytest.raises(KernelError, match="closed"):
        scheduler.run()
