"""Unit tests for the storm expert system and the hub-side expert agent."""

from __future__ import annotations

import pytest

from repro.apps.stormcast import (EXPERT_AGENT_NAME, PREDICTIONS_CABINET, StormExpert,
                                  WeatherReading, make_expert_behaviour)
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan


def reading(wind=5.0, pressure=1013.0, humidity=50.0, station="st"):
    return WeatherReading(station=station, timestamp=0.0, wind_speed=wind,
                          pressure=pressure, temperature=0.0, humidity=humidity)


class TestScoringRules:
    def test_calm_reading_scores_zero(self):
        assert StormExpert().score_reading(reading()) == 0.0

    def test_wind_tiers(self):
        expert = StormExpert()
        assert expert.score_reading(reading(wind=21.0)) == 1.0
        assert expert.score_reading(reading(wind=26.0)) == 2.0
        assert expert.score_reading(reading(wind=35.0)) == 3.0

    def test_pressure_tiers(self):
        expert = StormExpert()
        assert expert.score_reading(reading(pressure=984.0)) == 1.0
        assert expert.score_reading(reading(pressure=974.0)) == 2.0
        assert expert.score_reading(reading(pressure=960.0)) == 3.0

    def test_humidity_bonus(self):
        expert = StormExpert()
        assert expert.score_reading(reading(wind=26.0, humidity=95.0)) == 2.5

    def test_level_thresholds(self):
        expert = StormExpert(watch_threshold=1.0, warning_threshold=2.0, severe_threshold=3.0)
        assert expert.level_for(0.5) == "calm"
        assert expert.level_for(1.5) == "watch"
        assert expert.level_for(2.5) == "warning"
        assert expert.level_for(3.5) == "severe"


class TestPrediction:
    def test_no_observations_means_calm(self):
        prediction = StormExpert().predict("st", [])
        assert prediction.warning_level == "calm"
        assert prediction.evidence_count == 0

    def test_repeated_precursors_raise_a_warning(self):
        observations = [reading(wind=30.0, pressure=970.0, humidity=95.0) for _ in range(5)]
        prediction = StormExpert().predict("st", observations, issued_at=9.0)
        assert prediction.warning_level in ("warning", "severe")
        assert prediction.evidence_count == 5
        assert prediction.peak_wind == 30.0
        assert prediction.min_pressure == 970.0
        assert prediction.issued_at == 9.0

    def test_single_outlier_is_capped_at_watch(self):
        observations = [reading() for _ in range(50)] + [reading(wind=40.0, pressure=955.0)]
        prediction = StormExpert().predict("st", observations)
        assert prediction.warning_level in ("calm", "watch")

    def test_prediction_is_insensitive_to_calm_padding(self):
        """Filtered evidence and the full raw series must agree (E1/E8 comparability)."""
        expert = StormExpert()
        storm = [reading(wind=33.0, pressure=960.0, humidity=95.0) for _ in range(4)]
        calm = [reading() for _ in range(200)]
        filtered = expert.predict("st", storm)
        raw = expert.predict("st", storm + calm)
        assert filtered.warning_level == raw.warning_level
        assert filtered.evidence_count == raw.evidence_count

    def test_predict_many_sorts_by_station(self):
        expert = StormExpert()
        by_station = {
            "zulu": [reading(station="zulu")],
            "alpha": [reading(station="alpha")],
        }
        predictions = expert.predict_many(by_station)
        assert [prediction.station for prediction in predictions] == ["alpha", "zulu"]

    def test_to_wire_contains_the_table_columns(self):
        prediction = StormExpert().predict("st", [reading(wind=30.0)])
        wire = prediction.to_wire()
        for key in ("station", "warning_level", "score", "evidence_count",
                    "peak_wind", "min_pressure"):
            assert key in wire


class TestExpertAgent:
    @pytest.fixture
    def kernel(self):
        kernel = Kernel(lan(["hub"]), transport="tcp", config=KernelConfig(rng_seed=2))
        kernel.install_agent("hub", EXPERT_AGENT_NAME, make_expert_behaviour(), replace=True)
        return kernel

    def meet_expert(self, kernel, observations):
        box = {}

        def client(ctx, bc):
            request = Briefcase()
            folder = request.folder("OBSERVATIONS", create=True)
            for observation in observations:
                folder.push(observation.to_wire())
            result = yield ctx.meet(EXPERT_AGENT_NAME, request)
            box["value"] = result.value
            box["predictions"] = request.folder("PREDICTIONS").elements()
            box["alerts"] = request.get("ALERT_COUNT")
            return result.value

        kernel.launch("hub", client)
        kernel.run()
        return box

    def test_predictions_grouped_by_station(self, kernel):
        observations = ([reading(wind=33.0, pressure=960.0, station="north")] * 4 +
                        [reading(station="south")] * 4)
        box = self.meet_expert(kernel, observations)
        assert box["value"] == 2
        by_station = {entry["station"]: entry for entry in box["predictions"]}
        assert by_station["north"]["warning_level"] in ("warning", "severe")
        assert by_station["south"]["warning_level"] == "calm"
        assert box["alerts"] == 1

    def test_predictions_are_archived_at_the_hub(self, kernel):
        self.meet_expert(kernel, [reading(station="north")])
        issued = kernel.site("hub").cabinet(PREDICTIONS_CABINET).elements("issued")
        assert len(issued) == 1 and issued[0]["station"] == "north"

    def test_malformed_observations_are_skipped(self, kernel):
        box = {}

        def client(ctx, bc):
            request = Briefcase()
            folder = request.folder("OBSERVATIONS", create=True)
            folder.push({"not": "a reading"})
            folder.push(reading(station="ok").to_wire())
            result = yield ctx.meet(EXPERT_AGENT_NAME, request)
            box["value"] = result.value
            return result.value

        kernel.launch("hub", client)
        kernel.run()
        assert box["value"] == 1

    def test_empty_briefcase_yields_no_predictions(self, kernel):
        box = self.meet_expert(kernel, [])
        assert box["value"] == 0
        assert box["predictions"] == []
