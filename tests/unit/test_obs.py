"""Unit tests for repro.obs: spans, tracers, sinks, metrics, report.

The cross-backend span-tree parity and realtime wall-stamp invariants
live in ``tests/properties/test_obs_properties.py``; this file pins the
building blocks — deterministic identity, bounded sinks, the registry's
digest round-trip, and the report analyzer's reconstruction primitives.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.kernel import EventLog
from repro.net import lan
from repro.obs import (Counter, Gauge, Histogram, JsonlSink, MetricsRegistry,
                       MetricsView, RealtimeSink, RingSink, TeeSink, Tracer,
                       infra_trace_id, span_id)
from repro.obs.report import (breakdown, build_trees, hop_timeline, load_trace,
                              percentile, trace_ids)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


# -- identity ---------------------------------------------------------------


def test_span_id_is_content_derived():
    assert span_id("t0:a:1", "ft-hop", "hop2") == "t0:a:1/ft-hop#hop2"


def test_infra_trace_ids_are_tilde_prefixed():
    assert infra_trace_id("store", "n3") == "~store:n3"


def test_next_key_counter_is_deterministic():
    first = Tracer(clock=FakeClock())
    second = Tracer(clock=FakeClock())
    keys = [first.next_key("s0") for _ in range(3)]
    assert keys == [second.next_key("s0") for _ in range(3)]
    assert keys == ["s0:1", "s0:2", "s0:3"]


# -- tracer lifecycle -------------------------------------------------------


def test_disabled_tracer_is_inert():
    tracer = Tracer.disabled()
    assert not tracer.active
    tracer.record("t", "noop", "k", start=0.0)
    assert tracer.export() == []


def test_begin_finish_stamps_clock_and_merges_attrs():
    clock = FakeClock(1.5)
    tracer = Tracer(clock=clock)
    span = tracer.begin("t", "work", "k", attrs={"a": 1})
    clock.now = 4.0
    tracer.finish(span, status="done")
    [exported] = tracer.export()
    assert exported["start"] == 1.5 and exported["end"] == 4.0
    assert exported["attrs"] == {"a": 1, "status": "done"}
    assert exported["span_id"] == "t/work#k"


def test_sampling_is_deterministic_and_roughly_proportional():
    tracer = Tracer(sample=0.25)
    ids = [f"t0:site{i}:{i}" for i in range(400)]
    kept = [tid for tid in ids if tracer.sampled(tid)]
    assert kept == [tid for tid in ids if tracer.sampled(tid)]
    assert 0.10 < len(kept) / len(ids) < 0.40
    assert all(Tracer(sample=1.0).sampled(tid) for tid in ids)
    assert not any(Tracer(sample=0.0).sampled(tid) for tid in ids)


def test_wall_timer_stamps_start_and_end():
    ticks = iter([10.0, 11.0])
    tracer = Tracer(clock=FakeClock(), wall_timer=lambda: next(ticks))
    span = tracer.begin("t", "work", "k")
    tracer.finish(span)
    [exported] = tracer.export()
    assert exported["wall_start"] == 10.0 and exported["wall_end"] == 11.0


# -- sinks ------------------------------------------------------------------


def test_ring_sink_bounds_and_since():
    ring = RingSink(capacity=3)
    for i in range(5):
        ring.emit({"i": i})
    assert ring.total == 5 and ring.dropped == 2 and len(ring) == 3
    assert [span["i"] for span in ring.export()] == [2, 3, 4]
    # A reader at seq 1 lost span 1 to the ring; it gets the retained tail.
    seq, fresh = ring.since(1)
    assert seq == 5 and [span["i"] for span in fresh] == [2, 3, 4]
    seq, fresh = ring.since(seq)
    assert fresh == []


def test_jsonl_sink_round_trips_through_load_trace():
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        sink = JsonlSink(path)
        sink.emit({"span_id": "t/a#1", "trace_id": "t", "start": 0.0})
        sink.emit({"span_id": "t/b#2", "trace_id": "t", "start": 1.0})
        sink.close()
        assert sink.written == 2
        assert [span["span_id"] for span in load_trace(path)] == \
            ["t/a#1", "t/b#2"]


def test_realtime_sink_stamps_emit_time_and_tee_fans_out():
    left, right = RingSink(), RingSink()
    sink = RealtimeSink(TeeSink([left, right]), timer=lambda: 42.0)
    sink.emit({"span_id": "s"})
    for ring in (left, right):
        [span] = ring.export()
        assert span["wall_emitted"] == 42.0


# -- metrics ----------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    counter = Counter("hops")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge("depth")
    gauge.set(7)
    assert gauge.value == 7
    assert Gauge("live", fn=lambda: 3.5).value == 3.5
    histogram = Histogram("lat")
    for value in (0.001, 0.002, 0.004, 10.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.quantile(0.5) is not None
    assert histogram.summary()["count"] == 4


def test_histogram_merge_accumulates_buckets():
    left, right = Histogram("lat"), Histogram("lat")
    left.observe(0.01)
    right.observe(0.02)
    right.observe(100.0)
    left.merge_from(right)
    assert left.count == 3
    assert left.quantile(0.99) >= left.quantile(0.5)


def test_registry_get_or_create_and_sources():
    registry = MetricsRegistry()
    assert registry.counter("sends") is registry.counter("sends")
    registry.counter("sends").inc(3)
    registry.register("net", lambda: {"bytes_total": 128})
    collected = registry.collect()
    assert collected["sends"] == 3 and collected["bytes_total"] == 128
    assert "bytes_total" not in registry.collect_own()
    assert registry.collect(prefix="bytes_") == {"bytes_total": 128}
    registry.unregister("net")
    assert "bytes_total" not in registry.collect()


def test_registry_state_round_trip_excludes_sources():
    worker = MetricsRegistry()
    worker.counter("sends").inc(2)
    worker.gauge("depth").set(1.0)
    worker.histogram("lat").observe(0.005)
    worker.register("net", lambda: {"unpicklable": object()})
    mirror = MetricsRegistry()
    mirror.load_state(worker.export_state())
    assert mirror.collect_own()["sends"] == 2
    assert mirror.histogram("lat").count == 1
    assert "unpicklable" not in mirror.collect()
    # Digests are cumulative snapshots: reloading must not double-count.
    worker.counter("sends").inc()
    mirror.load_state(worker.export_state())
    assert mirror.collect_own()["sends"] == 3


def test_metrics_view_merges_shards():
    parts = [MetricsRegistry(), MetricsRegistry()]
    parts[0].counter("sends").inc(2)
    parts[1].counter("sends").inc(3)
    parts[0].histogram("lat").observe(0.001)
    parts[1].histogram("lat").observe(0.1)
    view = MetricsView(parts)
    collected = view.collect()
    assert collected["sends"] == 5
    assert collected["lat"]["count"] == 2


# -- event log --------------------------------------------------------------


def test_event_log_bounds_and_since():
    log = EventLog(max_entries=3)
    for i in range(5):
        log.append((float(i), f"a{i}", "site", "msg"))
    assert len(log) == 3 and log.total == 5 and log.dropped == 2
    seq, fresh = log.since(0)
    assert seq == 5 and [entry[0] for entry in fresh] == [2.0, 3.0, 4.0]
    seq, fresh = log.since(4)
    assert [entry[0] for entry in fresh] == [4.0]
    assert log.since(seq) == (5, [])


def test_event_log_max_config_reaches_kernel():
    kernel = Kernel(lan(["a"]), config=KernelConfig(event_log_max=2))
    for i in range(4):
        kernel.log_event("agent", "a", f"line {i}")
    assert len(kernel.event_log) == 2
    assert kernel.event_log.total == 4
    kernel.close()


# -- report analyzer --------------------------------------------------------


def _span(trace, name, key, parent=None, start=0.0, end=None, **extra):
    base = {"trace_id": trace, "span_id": span_id(trace, name, key),
            "name": name, "parent_id": parent, "start": start,
            "end": start if end is None else end}
    base.update(extra)
    return base


def test_build_trees_links_children_and_promotes_orphans():
    root = _span("t", "launch", "root")
    child = _span("t", "run", "s:1", parent=root["span_id"], start=1.0)
    orphan = _span("t", "run", "s:9", parent="t/missing#x", start=2.0)
    trees = build_trees([child, orphan, root])
    roots = trees["t"]
    assert [node.span["name"] for node in roots] == ["launch", "run"]
    assert [node.span["span_id"] for node in roots[0].children] == \
        [child["span_id"]]


def test_hop_timeline_orders_and_indents():
    root = _span("t", "launch", "root")
    hop = _span("t", "ft-hop", "hop1", parent=root["span_id"],
                start=0.5, end=2.0)
    rows = hop_timeline([hop, root], "t")
    assert [(row["name"], row["depth"]) for row in rows] == \
        [("launch", 0), ("ft-hop", 1)]
    assert rows[1]["duration"] == 1.5


def test_trace_ids_hides_infra_pseudo_traces():
    spans = [_span("ft-1", "ft-hop", "hop1"),
             _span(infra_trace_id("store", "n0"), "wal-commit", "n0:1")]
    assert trace_ids(spans) == ["ft-1"]
    assert set(trace_ids(spans, include_infra=True)) == {"ft-1", "~store:n0"}


def test_percentile_and_breakdown():
    # Nearest-rank convention: rank = round(q * (n - 1)).
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(3.0)
    spans = [_span("t", "migration", f"k{i}", start=0.0, end=float(i + 1),
                   source="a", destination="b", kind="net")
             for i in range(4)]
    by_pair = breakdown(spans, by="pair")
    assert by_pair["a->b"]["count"] == 4
    assert by_pair["a->b"]["p50"] <= by_pair["a->b"]["p99"]


# -- kernel integration -----------------------------------------------------


def visitor(ctx, bc):
    dest = bc.get("DEST")
    if dest:
        bc.set("DEST", "")   # the shipped copy must not jump again
        yield ctx.jump(bc, dest)
        return "moved"
    yield ctx.sleep(0)
    return "arrived"


@pytest.fixture(autouse=True)
def _registered_visitor():
    from repro.core.registry import register_behaviour
    register_behaviour("obs_test_visitor", visitor, replace=True)


def test_kernel_obs_off_by_default_records_nothing():
    kernel = Kernel(lan(["a", "b"]))
    briefcase = Briefcase()
    briefcase.set("DEST", "b")
    kernel.launch("a", visitor, briefcase)
    kernel.run()
    assert not kernel.obs.active
    assert kernel.trace_spans() == []
    kernel.close()


def test_kernel_traces_one_migration_end_to_end():
    kernel = Kernel(lan(["a", "b"]),
                    config=KernelConfig(obs_enabled=True))
    briefcase = Briefcase()
    briefcase.set("DEST", "b")
    kernel.launch("a", visitor, briefcase)
    kernel.run()
    spans = kernel.trace_spans()
    names = [span["name"] for span in spans]
    assert names.count("launch") == 1
    assert names.count("migration") == 1
    # visitor at a, the rexec/ag_py system agents, and the shipped copy
    # at b all run inside the same trace
    assert names.count("run") >= 3
    run_sites = {span["site"] for span in spans if span["name"] == "run"}
    assert {"a", "b"} <= run_sites
    trees = build_trees(spans)
    [trace] = trace_ids(spans)
    [root] = trees[trace]
    assert root.span["name"] == "launch"
    migration = [span for span in spans if span["name"] == "migration"]
    assert migration[0]["source"] == "a"
    assert migration[0]["destination"] == "b"
    kernel.close()


def test_dump_trace_matches_live_jsonl(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    kernel = Kernel(lan(["a", "b"]),
                    config=KernelConfig(obs_enabled=True, obs_path=path))
    briefcase = Briefcase()
    briefcase.set("DEST", "b")
    kernel.launch("a", visitor, briefcase)
    kernel.run()
    live = kernel.trace_spans()
    kernel.close()
    with open(path, encoding="utf-8") as handle:
        written = [json.loads(line) for line in handle if line.strip()]
    assert [span["span_id"] for span in written] == \
        [span["span_id"] for span in live]


def test_sharded_log_event_routes_to_owning_shard():
    kernel = Kernel(lan(["a", "b", "c", "d"]),
                    config=KernelConfig(shards=2))
    kernel.log_event("agent-1", "d", "note at d")
    owner = kernel._engines[kernel._router.placement["d"]]
    assert any(entry[2] == "d" and entry[3] == "note at d"
               for entry in owner.event_log)
    assert any(entry[3] == "note at d" for entry in kernel.event_log)
    kernel.close()
