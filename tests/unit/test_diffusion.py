"""Unit tests for the diffusion (controlled flooding) agent and its naive cousin."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan, random_topology, ring
from repro.sysagents.diffusion import DIFFUSION_CABINET, VISITED_FOLDER


def covered_sites(kernel, payload="payload"):
    """Sites whose diffusion cabinet received the payload."""
    return sorted(
        name for name in kernel.site_names()
        if kernel.site(name).cabinet(DIFFUSION_CABINET).get("PAYLOAD") == payload
    )


def launch_diffusion(kernel, origin, payload="payload", task=None):
    briefcase = Briefcase()
    briefcase.set("PAYLOAD", payload)
    if task is not None:
        briefcase.set("TASK", task)
    kernel.launch(origin, "diffusion", briefcase)


class TestDiffusion:
    def test_covers_a_fully_connected_lan(self):
        kernel = Kernel(lan([f"s{i}" for i in range(5)]), config=KernelConfig(rng_seed=1))
        launch_diffusion(kernel, "s0")
        kernel.run()
        assert covered_sites(kernel) == sorted(kernel.site_names())

    def test_covers_a_ring(self):
        kernel = Kernel(ring([f"s{i}" for i in range(8)]), config=KernelConfig(rng_seed=1))
        launch_diffusion(kernel, "s0")
        kernel.run()
        assert covered_sites(kernel) == sorted(kernel.site_names())

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_covers_random_connected_topologies(self, seed):
        topo = random_topology(14, edge_probability=0.2, seed=seed)
        kernel = Kernel(topo, config=KernelConfig(rng_seed=seed))
        launch_diffusion(kernel, topo.sites()[0])
        kernel.run()
        assert covered_sites(kernel) == sorted(kernel.site_names())

    def test_population_is_bounded_by_visit_records(self):
        """The point of the site-local SITES folder: no unbounded cloning."""
        topo = random_topology(10, edge_probability=0.5, seed=4)
        kernel = Kernel(topo, config=KernelConfig(rng_seed=4))
        launch_diffusion(kernel, topo.sites()[0])
        kernel.run()
        n = len(topo.sites())
        # One delivery per site; migrations bounded well below the
        # exponential blow-up of unchecked flooding.
        assert kernel.stats.migrations <= n * n

    def test_visit_recorded_in_site_local_folder(self):
        kernel = Kernel(lan(["a", "b", "c"]), config=KernelConfig(rng_seed=1))
        launch_diffusion(kernel, "a")
        kernel.run()
        for name in kernel.site_names():
            cabinet = kernel.site(name).cabinet(DIFFUSION_CABINET)
            assert cabinet.contains_element(VISITED_FOLDER, name)

    def test_duplicate_arrival_terminates_quietly(self):
        kernel = Kernel(lan(["a", "b", "c"]), config=KernelConfig(rng_seed=1))
        # Pre-mark site b as visited; the wave must still cover a and c and
        # must not redeliver at b.
        kernel.site("b").cabinet(DIFFUSION_CABINET).put(VISITED_FOLDER, "b")
        launch_diffusion(kernel, "a")
        kernel.run()
        assert "b" not in covered_sites(kernel)
        assert "a" in covered_sites(kernel)
        assert "c" in covered_sites(kernel)

    def test_task_agent_runs_at_each_covered_site(self):
        kernel = Kernel(lan(["a", "b", "c"]), config=KernelConfig(rng_seed=1))

        def announce(ctx, bc):
            ctx.cabinet("announcements").put("seen", bc.get("PAYLOAD"))
            yield ctx.sleep(0)

        kernel.install_agent(None, "announce", announce, replace=True)
        launch_diffusion(kernel, "a", payload="storm", task="announce")
        kernel.run()
        for name in kernel.site_names():
            assert kernel.site(name).cabinet("announcements").get("seen") == "storm"

    def test_crashed_site_is_not_covered_but_wave_continues(self):
        kernel = Kernel(ring([f"s{i}" for i in range(6)]), config=KernelConfig(rng_seed=1))
        kernel.crash_site("s2")
        launch_diffusion(kernel, "s0")
        kernel.run()
        covered = covered_sites(kernel)
        assert "s2" not in covered
        # The ring is cut at s2, but the wave still reaches everything
        # reachable the other way round.
        assert set(covered) == {"s0", "s1", "s3", "s4", "s5"}


class TestNaiveFlood:
    def test_generates_more_transfers_than_diffusion(self):
        """E2's headline: visit records bound the agent population."""
        topo = random_topology(8, edge_probability=0.6, seed=9)
        origin = topo.sites()[0]

        kernel_diffusion = Kernel(topo, config=KernelConfig(rng_seed=9))
        launch_diffusion(kernel_diffusion, origin)
        kernel_diffusion.run()

        kernel_naive = Kernel(random_topology(8, edge_probability=0.6, seed=9),
                              config=KernelConfig(rng_seed=9))
        briefcase = Briefcase()
        briefcase.set("PAYLOAD", "payload")
        briefcase.set("TTL", 4)
        kernel_naive.launch(origin, "naive_flood", briefcase)
        kernel_naive.run()

        assert kernel_naive.stats.migrations > kernel_diffusion.stats.migrations

    def test_ttl_zero_never_clones(self):
        kernel = Kernel(lan(["a", "b", "c"]), config=KernelConfig(rng_seed=1))
        briefcase = Briefcase()
        briefcase.set("PAYLOAD", "payload")
        briefcase.set("TTL", 0)
        kernel.launch("a", "naive_flood", briefcase)
        kernel.run()
        assert kernel.stats.migrations == 0

    def test_growth_with_ttl_is_superlinear_on_dense_graphs(self):
        def transfers_with_ttl(ttl):
            kernel = Kernel(lan([f"s{i}" for i in range(5)]), config=KernelConfig(rng_seed=2))
            briefcase = Briefcase()
            briefcase.set("PAYLOAD", "x")
            briefcase.set("TTL", ttl)
            kernel.launch("s0", "naive_flood", briefcase)
            kernel.run()
            return kernel.stats.migrations

        one, two, three = (transfers_with_ttl(ttl) for ttl in (1, 2, 3))
        assert one < two < three
        # Each extra TTL multiplies the clone population by ~(degree).
        assert three - two > two - one
