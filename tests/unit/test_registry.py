"""Unit tests for repro.core.registry.BehaviourRegistry."""

from __future__ import annotations

import pytest

from repro.core.errors import UnknownBehaviourError
from repro.core.registry import (BehaviourRegistry, default_registry, register_behaviour,
                                 resolve_behaviour)


def behaviour_a(ctx, bc):
    yield None


def behaviour_b(ctx, bc):
    yield None


class TestRegistry:
    def test_register_and_resolve(self):
        registry = BehaviourRegistry()
        registry.register("a", behaviour_a)
        assert registry.resolve("a") is behaviour_a

    def test_resolve_unknown_raises(self):
        with pytest.raises(UnknownBehaviourError):
            BehaviourRegistry().resolve("ghost")

    def test_register_same_callable_twice_is_ok(self):
        registry = BehaviourRegistry()
        registry.register("a", behaviour_a)
        registry.register("a", behaviour_a)
        assert len(registry) == 1

    def test_register_conflicting_callable_raises(self):
        registry = BehaviourRegistry()
        registry.register("a", behaviour_a)
        with pytest.raises(UnknownBehaviourError):
            registry.register("a", behaviour_b)

    def test_register_conflicting_with_replace(self):
        registry = BehaviourRegistry()
        registry.register("a", behaviour_a)
        registry.register("a", behaviour_b, replace=True)
        assert registry.resolve("a") is behaviour_b

    def test_register_as_decorator(self):
        registry = BehaviourRegistry()

        @registry.register("decorated")
        def decorated(ctx, bc):
            yield None

        assert registry.resolve("decorated") is decorated

    def test_name_of_reverse_lookup(self):
        registry = BehaviourRegistry()
        registry.register("a", behaviour_a)
        assert registry.name_of(behaviour_a) == "a"
        assert registry.name_of(behaviour_b) is None

    def test_unregister(self):
        registry = BehaviourRegistry()
        registry.register("a", behaviour_a)
        registry.unregister("a")
        assert "a" not in registry
        registry.unregister("a")  # silent for missing names

    def test_contains_iter_len(self):
        registry = BehaviourRegistry()
        registry.register("a", behaviour_a)
        registry.register("b", behaviour_b)
        assert "a" in registry
        assert sorted(registry) == ["a", "b"]
        assert len(registry) == 2


class TestDefaultRegistry:
    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()

    def test_module_level_helpers_use_default_registry(self):
        register_behaviour("test_registry_helper", behaviour_a, replace=True)
        assert resolve_behaviour("test_registry_helper") is behaviour_a
        default_registry().unregister("test_registry_helper")

    def test_standard_agents_are_pre_registered(self):
        # Importing repro.sysagents registers the well-known names.
        import repro.sysagents  # noqa: F401
        for name in ("rexec", "ag_py", "courier", "diffusion"):
            assert name in default_registry()
