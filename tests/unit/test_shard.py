"""Unit tests for repro.shard: placement, clock sync, routing, the facade.

The sharded kernel's correctness argument has three legs, each covered
here: placement is deterministic and validated, the conservative clock
sync's lookahead matrix bounds every influence path (direct, relayed,
and reflected), and the facade delegates without changing semantics.
"""

from __future__ import annotations

import math

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.errors import KernelError, UnknownSiteError
from repro.core.folder import Folder
from repro.net import lan
from repro.net.topology import LinkSpec, Topology
from repro.net.tcp import TcpTransport
from repro.shard import (MIN_LOOKAHEAD, ClockSync, default_shard_of,
                         resolve_placement)


def sink(ctx, briefcase):
    """Contact that files whatever folder it was couriered."""
    payload_name = briefcase.get("PAYLOAD_NAME")
    elements = (briefcase.folder(payload_name).elements()
                if payload_name and briefcase.has(payload_name) else [])
    ctx.cabinet("mail").put("received", len(elements))
    yield ctx.sleep(0)
    return len(elements)


def courier(ctx, briefcase):
    """Send one report folder to PEER's sink contact, then finish."""
    yield ctx.sleep(float(briefcase.get("WORK", 0.01)))
    folder = Folder("REPORT", [{"from": ctx.site_name}])
    yield ctx.send_folder(folder, briefcase.get("PEER"), "sink")
    return ctx.site_name


def sharded_kernel(site_count=8, shards=4, placement=None, seed=7,
                   latency=0.002):
    names = [f"s{i}" for i in range(site_count)]
    kernel = Kernel(lan(names, latency=latency), transport="tcp",
                    config=KernelConfig(rng_seed=seed, shards=shards,
                                        shard_placement=placement))
    kernel.install_agent(None, "sink", sink)
    return kernel, names


class TestPlacement:
    def test_default_shard_is_deterministic_and_in_range(self):
        for name in ("alpha", "beta", "s000", "s199"):
            first = default_shard_of(name, 8)
            assert first == default_shard_of(name, 8)
            assert 0 <= first < 8

    def test_resolve_placement_covers_every_site(self):
        names = [f"s{i}" for i in range(20)]
        placement = resolve_placement(names, 4)
        assert set(placement) == set(names)
        assert set(placement.values()) <= set(range(4))

    def test_explicit_overrides_win(self):
        names = ["a", "b", "c"]
        placement = resolve_placement(names, 2, explicit={"a": 1, "b": 1})
        assert placement["a"] == 1 and placement["b"] == 1
        assert placement["c"] == default_shard_of("c", 2)

    def test_unknown_site_in_overrides_raises(self):
        with pytest.raises(KernelError):
            resolve_placement(["a"], 2, explicit={"ghost": 0})

    def test_out_of_range_shard_raises(self):
        with pytest.raises(KernelError):
            resolve_placement(["a"], 2, explicit={"a": 5})


class TestClockSync:
    def _line_topology(self):
        # a --0.01-- b --0.02-- c   (no direct a--c link)
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_site(name)
        topo.add_link("a", "b", LinkSpec(latency=0.01, bandwidth=0.0))
        topo.add_link("b", "c", LinkSpec(latency=0.02, bandwidth=0.0))
        return topo

    def test_lookahead_is_shortest_path_latency(self):
        sync = ClockSync(self._line_topology(), {"a": 0, "b": 1, "c": 2}, 3)
        assert sync.lookahead(0, 1) == pytest.approx(0.01)
        assert sync.lookahead(1, 2) == pytest.approx(0.02)
        # No direct link: the bound is the relayed path through b.
        assert sync.lookahead(0, 2) == pytest.approx(0.03)

    def test_relay_through_intermediate_shard_tightens_the_bound(self):
        # Direct a--c latency (1.0) is looser than the a--b--c relay
        # (0.03): a message can influence c through an event on b, so the
        # matrix must take the Floyd-Warshall minimum.
        topo = self._line_topology()
        topo.add_link("a", "c", LinkSpec(latency=1.0, bandwidth=0.0))
        sync = ClockSync(topo, {"a": 0, "b": 1, "c": 2}, 3)
        assert sync.lookahead(0, 2) == pytest.approx(0.03)

    def test_horizons_grant_min_neighbour_influence(self):
        sync = ClockSync(self._line_topology(), {"a": 0, "b": 1, "c": 2}, 3)
        horizons = sync.horizons({0: 1.0, 1: 5.0, 2: 9.0})
        # Shard 0's earliest outside influence: shard 1 at 5.0 + 0.01.
        # Its own reflection bound (1.0 + 2*0.01) is tighter.
        assert horizons[0] == pytest.approx(1.0 + 2 * 0.01)
        # The globally-min shard always gets a horizon beyond its T.
        assert horizons[0] > 1.0

    def test_empty_shard_is_bounded_by_others_not_itself(self):
        sync = ClockSync(self._line_topology(), {"a": 0, "b": 1, "c": 2}, 3)
        horizons = sync.horizons({0: None, 1: 2.0, 2: None})
        assert horizons[0] == pytest.approx(2.0 + 0.01)
        # A lone live shard with no one to hear from runs unconstrained
        # except for its own reflections.
        lone = sync.horizons({0: None, 1: 3.0, 2: None})
        assert lone[1] == pytest.approx(3.0 + min(2 * 0.01, 2 * 0.02))

    def test_all_queues_empty_means_unconstrained(self):
        sync = ClockSync(self._line_topology(), {"a": 0, "b": 1, "c": 2}, 3)
        assert sync.horizons({0: None, 1: None, 2: None}) == {
            0: None, 1: None, 2: None}

    def test_lookahead_floor_for_colocated_shards(self):
        topo = Topology()
        for name in ("a", "b"):
            topo.add_site(name)
        topo.add_link("a", "b", LinkSpec(latency=0.0, bandwidth=0.0))
        sync = ClockSync(topo, {"a": 0, "b": 1}, 2)
        assert sync.lookahead(0, 1) == pytest.approx(MIN_LOOKAHEAD)

    def test_unreachable_shards_never_constrain(self):
        topo = Topology()
        for name in ("a", "b"):
            topo.add_site(name)  # no links at all
        sync = ClockSync(topo, {"a": 0, "b": 1}, 2)
        assert sync.lookahead(0, 1) == math.inf
        horizons = sync.horizons({0: 1.0, 1: 50.0})
        assert horizons[0] is None and horizons[1] is None

    def test_flow_bonus_widens_horizons(self):
        placement = {"a": 0, "b": 1, "c": 2}
        plain = ClockSync(self._line_topology(), placement, 3)
        boosted = ClockSync(self._line_topology(), placement, 3,
                            flow_bonus=0.5)
        base = plain.horizons({0: 1.0, 1: 1.0, 2: 1.0})
        wide = boosted.horizons({0: 1.0, 1: 1.0, 2: 1.0})
        for shard_id in placement.values():
            assert wide[shard_id] == pytest.approx(base[shard_id] + 0.5)

    def test_invalidate_rebuilds_after_topology_growth(self):
        topo = self._line_topology()
        sync = ClockSync(topo, {"a": 0, "b": 1, "c": 2}, 3)
        assert sync.lookahead(0, 2) == pytest.approx(0.03)
        topo.add_link("a", "c", LinkSpec(latency=0.005, bandwidth=0.0))
        sync.invalidate()
        assert sync.lookahead(0, 2) == pytest.approx(0.005)


class TestFacadeConstruction:
    def test_sites_partition_exactly(self):
        kernel, names = sharded_kernel()
        owned = [set(engine.sites) for engine in kernel._engines]
        assert set().union(*owned) == set(names)
        for i, left in enumerate(owned):
            for right in owned[i + 1:]:
                assert not (left & right)
        assert set(kernel.sites) == set(names)
        assert kernel.site_names() == names

    def test_explicit_placement_is_honoured(self):
        names = [f"s{i}" for i in range(4)]
        placement = {name: index % 2 for index, name in enumerate(names)}
        kernel, _ = sharded_kernel(site_count=4, shards=2,
                                   placement=placement)
        for name, shard_id in placement.items():
            assert name in kernel._engines[shard_id].sites

    def test_shard_set_exposed_and_none_on_classic(self):
        kernel, _ = sharded_kernel(shards=2)
        assert kernel.shard_set is not None
        assert len(kernel.shard_set.shards) == 2
        classic = Kernel(lan(["a", "b"]), transport="tcp")
        assert classic.shard_set is None

    def test_zero_shards_rejected(self):
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), transport="tcp",
                   config=KernelConfig(shards=0))

    def test_constructed_transport_instance_rejected(self):
        donor = Kernel(lan(["a", "b"]), transport="tcp")
        assert isinstance(donor.transport, TcpTransport)
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), transport=donor.transport,
                   config=KernelConfig(shards=2))

    def test_launch_on_unknown_site_raises(self):
        kernel, _ = sharded_kernel()
        with pytest.raises(UnknownSiteError):
            kernel.launch("nowhere", courier, Briefcase())


class TestCrossShardTraffic:
    def _run_couriers(self, kernel, names, pairs):
        for home, peer in pairs:
            briefcase = Briefcase()
            briefcase.set("PEER", peer)
            kernel.launch(home, courier, briefcase)
        kernel.run()

    def _cross_pairs(self, kernel, names, count=6):
        pairs = []
        for home in names:
            for peer in names:
                if (kernel._router.placement[home]
                        != kernel._router.placement[peer]):
                    pairs.append((home, peer))
        assert len(pairs) >= count
        return pairs[:count]

    def test_folders_cross_shards_and_arrive(self):
        kernel, names = sharded_kernel()
        pairs = self._cross_pairs(kernel, names)
        self._run_couriers(kernel, names, pairs)
        assert kernel.completed == kernel.launched
        assert kernel.meets == len(pairs)
        assert kernel.stats.shard_handoffs == len(pairs)
        assert kernel.stats.shard_handoff_bytes > 0
        for _home, peer in pairs:
            assert kernel.site(peer).cabinet("mail").elements("received")

    def test_conservative_sync_never_clamps_arrivals(self):
        kernel, names = sharded_kernel()
        pairs = self._cross_pairs(kernel, names)
        self._run_couriers(kernel, names, pairs)
        assert kernel.stats.shard_late_arrivals == 0

    def test_facade_counters_sum_engines(self):
        kernel, names = sharded_kernel()
        pairs = self._cross_pairs(kernel, names)
        self._run_couriers(kernel, names, pairs)
        assert kernel.launched == sum(engine.launched
                                      for engine in kernel._engines)
        assert kernel.meets == sum(engine.meets
                                   for engine in kernel._engines)
        counters = kernel.counters()
        assert counters["launched"] == kernel.launched
        assert counters["completed"] == kernel.completed

    def test_event_log_merges_in_time_order(self):
        kernel, names = sharded_kernel()
        pairs = self._cross_pairs(kernel, names)
        self._run_couriers(kernel, names, pairs)
        for engine in kernel._engines:
            engine.log_event("probe", "-", f"shard {engine._shard_ctx.shard_id}")
        log = kernel.event_log
        times = [entry[0] for entry in log]
        assert times == sorted(times)
        assert len(log) == sum(len(engine.event_log)
                               for engine in kernel._engines)
        assert len(log) >= len(kernel._engines)


class TestFacadeLifecycle:
    def test_crash_and_recover_cross_shard_site(self):
        kernel, names = sharded_kernel()
        victim = names[0]
        kernel.crash_site(victim)
        owner = kernel._engine_for(victim)
        assert not kernel.site(victim).alive
        # A courier from another shard finds the site down, then recovered.
        peer = next(name for name in names
                    if kernel._router.placement[name]
                    != kernel._router.placement[victim])
        briefcase = Briefcase()
        briefcase.set("PEER", victim)
        briefcase.set("WORK", 0.2)
        kernel.launch(peer, courier, briefcase)
        kernel.run(until=0.1)
        kernel.recover_site(victim)
        kernel.run()
        assert kernel.site(victim).alive
        assert owner.site(victim).cabinet("mail").elements("received")

    def test_partition_blocks_cross_shard_traffic(self):
        kernel, names = sharded_kernel()
        victim = names[0]
        peer = next(name for name in names
                    if kernel._router.placement[name]
                    != kernel._router.placement[victim])
        kernel.partition([[victim], [name for name in names
                                     if name != victim]])
        briefcase = Briefcase()
        briefcase.set("PEER", victim)
        kernel.launch(peer, courier, briefcase)
        kernel.run(until=5.0)
        assert not kernel.site(victim).cabinet("mail").elements("received")
        kernel.heal_partition()
        briefcase = Briefcase()
        briefcase.set("PEER", victim)
        kernel.launch(peer, courier, briefcase)
        kernel.run()
        assert kernel.site(victim).cabinet("mail").elements("received")

    def test_add_site_lands_on_its_shard_and_is_reachable(self):
        kernel, names = sharded_kernel()
        kernel.add_site("late", links=names)
        owner = kernel._router.placement["late"]
        assert "late" in kernel._engines[owner].sites
        assert "late" in kernel.sites
        kernel.install_agent("late", "sink", sink, replace=True)
        source = next(name for name in names
                      if kernel._router.placement[name] != owner)
        briefcase = Briefcase()
        briefcase.set("PEER", "late")
        kernel.launch(source, courier, briefcase)
        kernel.run()
        assert kernel.site("late").cabinet("mail").elements("received")

    def test_add_site_with_explicit_placement_override(self):
        kernel, names = sharded_kernel()
        kernel.config.shard_placement = {"pinned": 3}
        kernel.add_site("pinned", links=[names[0]])
        assert "pinned" in kernel._engines[3].sites

    def test_duplicate_add_site_raises(self):
        kernel, names = sharded_kernel()
        with pytest.raises(KernelError):
            kernel.add_site(names[0])
