"""Unit tests for wallets (ECUs carried in briefcase folders)."""

from __future__ import annotations

import pytest

from repro.cash import ECUS_FOLDER, Mint, Wallet
from repro.core import Briefcase
from repro.core.errors import InsufficientFundsError


@pytest.fixture
def mint():
    return Mint(seed=3)


class TestWallet:
    def test_empty_wallet(self):
        wallet = Wallet(Briefcase())
        assert wallet.balance() == 0
        assert wallet.ecus() == []
        assert len(wallet) == 0

    def test_deposit_and_balance(self, mint):
        wallet = Wallet(Briefcase())
        wallet.deposit(mint.issue_many([5, 10]))
        assert wallet.balance() == 15
        assert len(wallet) == 2

    def test_wallet_contents_live_in_the_briefcase_folder(self, mint):
        briefcase = Briefcase()
        Wallet(briefcase).deposit([mint.issue(5)])
        assert briefcase.has(ECUS_FOLDER)
        assert len(briefcase.folder(ECUS_FOLDER)) == 1

    def test_custom_folder_name(self, mint):
        briefcase = Briefcase()
        wallet = Wallet(briefcase, folder_name="CHANGE")
        wallet.deposit([mint.issue(3)])
        assert briefcase.has("CHANGE")
        assert wallet.balance() == 3

    def test_replace_all(self, mint):
        wallet = Wallet(Briefcase())
        wallet.deposit(mint.issue_many([1, 2]))
        wallet.replace_all([mint.issue(10)])
        assert wallet.balance() == 10
        assert len(wallet) == 1

    def test_select_payment_exact(self, mint):
        wallet = Wallet(Briefcase())
        wallet.deposit(mint.issue_many([5, 10]))
        selected, total = wallet.select_payment(5)
        assert total == 5
        assert wallet.balance() == 10

    def test_select_payment_prefers_small_coins(self, mint):
        wallet = Wallet(Briefcase())
        wallet.deposit(mint.issue_many([50, 1, 2]))
        selected, total = wallet.select_payment(3)
        assert sorted(ecu.amount for ecu in selected) == [1, 2]
        assert total == 3
        assert wallet.balance() == 50

    def test_select_payment_with_overshoot(self, mint):
        wallet = Wallet(Briefcase())
        wallet.deposit(mint.issue_many([7]))
        selected, total = wallet.select_payment(5)
        assert total == 7          # overshoot: change comes back via validation
        assert wallet.balance() == 0

    def test_select_payment_zero_or_negative_is_a_noop(self, mint):
        wallet = Wallet(Briefcase())
        wallet.deposit([mint.issue(5)])
        assert wallet.select_payment(0) == ([], 0)
        assert wallet.select_payment(-3) == ([], 0)
        assert wallet.balance() == 5

    def test_insufficient_funds_leaves_wallet_untouched(self, mint):
        wallet = Wallet(Briefcase())
        wallet.deposit(mint.issue_many([2, 3]))
        with pytest.raises(InsufficientFundsError):
            wallet.select_payment(100)
        assert wallet.balance() == 5

    def test_pay_into_moves_records_between_briefcases(self, mint):
        payer_briefcase = Briefcase()
        payee_briefcase = Briefcase()
        payer = Wallet(payer_briefcase)
        payer.deposit(mint.issue_many([5, 5]))
        transferred = payer.pay_into(payee_briefcase, 10)
        assert transferred == 10
        assert payer.balance() == 0
        assert Wallet(payee_briefcase).balance() == 10

    def test_pay_into_custom_folder(self, mint):
        payer = Wallet(Briefcase())
        payer.deposit([mint.issue(10)])
        target = Briefcase()
        payer.pay_into(target, 10, folder_name="PAYMENT")
        assert target.has("PAYMENT")
        assert Wallet(target, "PAYMENT").balance() == 10

    def test_total_money_is_conserved_across_transfers(self, mint):
        briefcases = [Briefcase() for _ in range(3)]
        Wallet(briefcases[0]).deposit(mint.issue_many([4, 4, 4]))
        Wallet(briefcases[0]).pay_into(briefcases[1], 5)
        Wallet(briefcases[1]).pay_into(briefcases[2], 3)
        total = sum(Wallet(briefcase).balance() for briefcase in briefcases)
        assert total == 12
