"""Unit tests for repro.net.topology: site graphs, routing, partitions."""

from __future__ import annotations

import pytest

from repro.core.errors import NoRouteError, UnknownSiteError
from repro.net.topology import (LinkSpec, Topology, lan, random_topology, ring, star,
                                two_clusters)


class TestTopologyBasics:
    def test_add_site_and_contains(self):
        topo = Topology()
        topo.add_site("a")
        assert "a" in topo
        assert topo.has_site("a")
        assert not topo.has_site("b")
        assert len(topo) == 1

    def test_add_link_and_neighbors(self):
        topo = Topology()
        topo.add_site("a")
        topo.add_site("b")
        topo.add_link("a", "b", LinkSpec(latency=0.01))
        assert topo.neighbors("a") == ["b"]
        assert topo.link("a", "b").latency == 0.01

    def test_unknown_site_raises(self):
        topo = lan(["a", "b"])
        with pytest.raises(UnknownSiteError):
            topo.neighbors("ghost")
        with pytest.raises(UnknownSiteError):
            topo.path("a", "ghost")

    def test_link_missing_raises(self):
        topo = Topology()
        topo.add_site("a")
        topo.add_site("b")
        with pytest.raises(NoRouteError):
            topo.link("a", "b")


class TestRouting:
    def test_path_to_self_is_trivial(self):
        topo = lan(["a", "b"])
        assert topo.path("a", "a") == ["a"]
        assert topo.path_cost("a", "a", 1000) == (0.0, 0, 0.0)

    def test_direct_path(self):
        topo = lan(["a", "b", "c"])
        assert topo.path("a", "b") == ["a", "b"]

    def test_multi_hop_path_on_ring(self):
        topo = ring(["a", "b", "c", "d"])
        path = topo.path("a", "c")
        assert path[0] == "a" and path[-1] == "c"
        assert len(path) == 3   # two hops either way round the ring

    def test_path_cost_scales_with_size(self):
        topo = lan(["a", "b"], latency=0.01, bandwidth=1000.0)
        small, hops_small, _ = topo.path_cost("a", "b", 100)
        large, hops_large, _ = topo.path_cost("a", "b", 10_000)
        assert hops_small == hops_large == 1
        assert large > small
        assert small == pytest.approx(0.01 + 100 / 1000.0)

    def test_path_cost_reports_worst_loss(self):
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_site(name)
        topo.add_link("a", "b", LinkSpec(loss_rate=0.0))
        topo.add_link("b", "c", LinkSpec(loss_rate=0.25))
        _, hops, loss = topo.path_cost("a", "c", 10)
        assert hops == 2
        assert loss == 0.25

    def test_can_communicate(self):
        topo = lan(["a", "b"])
        assert topo.can_communicate("a", "b")
        topo.mark_down("b")
        assert not topo.can_communicate("a", "b")


class TestFailuresAndPartitions:
    def test_down_site_breaks_routes(self):
        topo = ring(["a", "b", "c", "d"])
        topo.mark_down("b")
        assert topo.is_down("b")
        path = topo.path("a", "c")          # still reachable the other way
        assert "b" not in path
        topo.mark_down("d")
        with pytest.raises(NoRouteError):
            topo.path("a", "c")

    def test_mark_up_restores(self):
        topo = lan(["a", "b"])
        topo.mark_down("b")
        topo.mark_up("b")
        assert topo.can_communicate("a", "b")

    def test_partition_blocks_cross_group_traffic(self):
        topo = lan(["a", "b", "c", "d"])
        topo.set_partition([["a", "b"], ["c", "d"]])
        assert topo.partitioned("a", "c")
        assert not topo.partitioned("a", "b")
        with pytest.raises(NoRouteError):
            topo.path("a", "d")
        assert topo.path("a", "b")

    def test_sites_outside_partition_groups_keep_connectivity(self):
        topo = lan(["a", "b", "c"])
        topo.set_partition([["a"], ["b"]])
        assert not topo.partitioned("a", "c")
        assert topo.can_communicate("a", "c")

    def test_heal_partition(self):
        topo = lan(["a", "b", "c", "d"])
        topo.set_partition([["a", "b"], ["c", "d"]])
        topo.heal_partition()
        assert topo.can_communicate("a", "c")


class TestCannedTopologies:
    def test_lan_is_fully_connected(self):
        topo = lan(["a", "b", "c", "d"])
        for site in topo.sites():
            assert len(topo.neighbors(site)) == 3

    def test_ring_has_two_neighbors_each(self):
        topo = ring([f"s{i}" for i in range(5)])
        for site in topo.sites():
            assert len(topo.neighbors(site)) == 2

    def test_ring_of_two_sites(self):
        topo = ring(["a", "b"])
        assert topo.neighbors("a") == ["b"]

    def test_star_hub_connects_to_all_leaves(self):
        topo = star("hub", ["l1", "l2", "l3"])
        assert sorted(topo.neighbors("hub")) == ["l1", "l2", "l3"]
        assert topo.neighbors("l1") == ["hub"]

    def test_two_clusters_has_single_wan_link(self):
        topo = two_clusters(["t1", "t2"], ["c1", "c2"], wan_latency=0.1)
        # The WAN link joins the first site of each cluster.
        assert topo.link("t1", "c1").latency == 0.1
        # Cross-cluster traffic from non-gateway sites routes through the gateways.
        path = topo.path("t2", "c2")
        assert path[0] == "t2" and path[-1] == "c2"
        assert "t1" in path and "c1" in path

    def test_random_topology_is_connected(self):
        for seed in range(5):
            topo = random_topology(12, edge_probability=0.1, seed=seed)
            sites = topo.sites()
            assert len(sites) == 12
            for destination in sites[1:]:
                assert topo.can_communicate(sites[0], destination)

    def test_random_topology_is_deterministic_per_seed(self):
        a = random_topology(10, edge_probability=0.3, seed=7)
        b = random_topology(10, edge_probability=0.3, seed=7)
        edges_a = {(u, v) for u in a.sites() for v in a.neighbors(u)}
        edges_b = {(u, v) for u in b.sites() for v in b.neighbors(u)}
        assert edges_a == edges_b
