"""Unit tests for repro.core.briefcase.Briefcase."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Folder
from repro.core.errors import BriefcaseError, MissingFolderError


class TestFolderManagement:
    def test_add_and_fetch(self):
        briefcase = Briefcase()
        folder = briefcase.add(Folder("DATA", [1]))
        assert briefcase.folder("DATA") is folder

    def test_add_rejects_non_folder(self):
        with pytest.raises(BriefcaseError):
            Briefcase().add("not a folder")  # type: ignore[arg-type]

    def test_add_duplicate_name_refused_without_replace(self):
        briefcase = Briefcase([Folder("X")])
        with pytest.raises(BriefcaseError):
            briefcase.add(Folder("X"))

    def test_add_duplicate_name_with_replace(self):
        briefcase = Briefcase([Folder("X", [1])])
        briefcase.add(Folder("X", [2]), replace=True)
        assert briefcase.folder("X").elements() == [2]

    def test_folder_create_flag(self):
        briefcase = Briefcase()
        folder = briefcase.folder("NEW", create=True)
        assert folder.name == "NEW"
        assert briefcase.has("NEW")

    def test_missing_folder_raises(self):
        with pytest.raises(MissingFolderError):
            Briefcase().folder("ABSENT")

    def test_remove_returns_folder(self):
        briefcase = Briefcase([Folder("X", [1])])
        folder = briefcase.remove("X")
        assert folder.elements() == [1]
        assert not briefcase.has("X")

    def test_remove_missing_raises(self):
        with pytest.raises(MissingFolderError):
            Briefcase().remove("X")

    def test_discard_is_silent_for_missing(self):
        assert Briefcase().discard("X") is None

    def test_names_and_folders_preserve_insertion_order(self):
        briefcase = Briefcase([Folder("B"), Folder("A"), Folder("C")])
        assert briefcase.names() == ["B", "A", "C"]
        assert [folder.name for folder in briefcase.folders()] == ["B", "A", "C"]


class TestElementConveniences:
    def test_put_appends_and_creates(self):
        briefcase = Briefcase()
        briefcase.put("LOG", "one")
        briefcase.put("LOG", "two")
        assert briefcase.folder("LOG").elements() == ["one", "two"]

    def test_set_replaces_contents(self):
        briefcase = Briefcase()
        briefcase.put("V", 1)
        briefcase.put("V", 2)
        briefcase.set("V", 3)
        assert briefcase.folder("V").elements() == [3]

    def test_get_returns_top_element(self):
        briefcase = Briefcase()
        briefcase.put("V", 1)
        briefcase.put("V", 2)
        assert briefcase.get("V") == 2

    def test_get_default_for_missing_or_empty(self):
        briefcase = Briefcase()
        assert briefcase.get("V", "fallback") == "fallback"
        briefcase.folder("V", create=True)
        assert briefcase.get("V", "fallback") == "fallback"

    def test_take_pops_top(self):
        briefcase = Briefcase()
        briefcase.put("V", 1)
        assert briefcase.take("V") == 1
        assert briefcase.get("V") is None


class TestWholeBriefcaseOperations:
    def test_merge_appends_same_named_folders(self):
        left = Briefcase([Folder("X", [1])])
        right = Briefcase([Folder("X", [2]), Folder("Y", ["y"])])
        left.merge(right)
        assert left.folder("X").elements() == [1, 2]
        assert left.folder("Y").elements() == ["y"]

    def test_merge_with_replace_overwrites(self):
        left = Briefcase([Folder("X", [1])])
        right = Briefcase([Folder("X", [2])])
        left.merge(right, replace=True)
        assert left.folder("X").elements() == [2]

    def test_merge_copies_folders_not_references(self):
        left = Briefcase()
        right = Briefcase([Folder("X", [1])])
        left.merge(right)
        right.folder("X").push(2)
        assert left.folder("X").elements() == [1]

    def test_merge_append_path_does_not_alias_stored_elements(self):
        # Regression: the non-replace merge path spliced the source folder's
        # stored element objects straight into the destination, while the
        # replace path copied — a mutable buffer that bypassed the bytes
        # normalisation (here: a raw-tagged bytearray, as a hand-built wire
        # payload might carry) ended up shared by both briefcases.
        source = Briefcase([Folder("DATA", [b"one"])])
        raw = bytearray(b"Rmutable")
        source.folder("DATA")._elements.append(raw)
        destination = Briefcase([Folder("DATA", [b"zero"])])
        destination.merge(source)
        raw[1:] = b"CHANGED!"
        assert destination.folder("DATA").raw_elements()[-1] == b"Rmutable"
        # And the merged elements honour the "stored elements are immutable
        # bytes" folder contract in both merge paths.
        fresh = Briefcase()
        fresh.merge(source)
        for briefcase in (destination, fresh):
            for stored in briefcase.folder("DATA").raw_elements():
                assert type(stored) is bytes

    def test_split_extracts_named_folders(self):
        briefcase = Briefcase([Folder("A", [1]), Folder("B", [2]), Folder("C", [3])])
        extracted = briefcase.split(["A", "C"])
        assert sorted(extracted.names()) == ["A", "C"]
        assert briefcase.names() == ["B"]

    def test_split_missing_folder_raises(self):
        with pytest.raises(MissingFolderError):
            Briefcase().split(["A"])

    def test_copy_is_deep_for_folder_lists(self):
        original = Briefcase([Folder("X", [1])])
        clone = original.copy()
        clone.folder("X").push(2)
        assert original.folder("X").elements() == [1]

    def test_clear_removes_everything(self):
        briefcase = Briefcase([Folder("X"), Folder("Y")])
        briefcase.clear()
        assert len(briefcase) == 0

    def test_equality(self):
        assert Briefcase([Folder("X", [1])]) == Briefcase([Folder("X", [1])])
        assert Briefcase([Folder("X", [1])]) != Briefcase([Folder("X", [2])])
        assert Briefcase() != 42

    def test_contains_len_iter(self):
        briefcase = Briefcase([Folder("X"), Folder("Y")])
        assert "X" in briefcase
        assert "Z" not in briefcase
        assert len(briefcase) == 2
        assert [folder.name for folder in briefcase] == ["X", "Y"]


class TestWireModel:
    def test_wire_size_counts_all_folders(self):
        briefcase = Briefcase()
        base = briefcase.wire_size()
        briefcase.put("A", "x" * 100)
        assert briefcase.wire_size() > base + 100

    def test_to_wire_from_wire_round_trip(self):
        briefcase = Briefcase([Folder("A", [b"raw"]), Folder("B", ["text", {"n": 1}])])
        rebuilt = Briefcase.from_wire(briefcase.to_wire())
        assert rebuilt == briefcase
