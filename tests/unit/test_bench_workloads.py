"""Unit tests for the shared benchmark workloads (gathering and itineraries)."""

from __future__ import annotations

import pytest

from repro.bench import (DataGatherParams, HighPopulationParams, ItineraryParams,
                         build_gather_kernel, execute_high_population,
                         populate_data_sites, run_agent_gather, run_client_server_gather,
                         run_high_population, run_itinerary)
from repro.bench.workloads import DATA_CABINET, RECORDS_FOLDER


SMALL = DataGatherParams(n_sites=4, records_per_site=40, record_bytes=200,
                         selectivity=0.1, seed=23)


class TestPopulation:
    def test_populate_counts_relevant_records(self):
        kernel = build_gather_kernel(SMALL)
        total = 0
        for site in SMALL.data_site_names():
            records = kernel.site(site).cabinet(DATA_CABINET).elements(RECORDS_FOLDER)
            assert len(records) == SMALL.records_per_site
            total += sum(1 for record in records if record["relevant"])
        assert 0 < total < SMALL.n_sites * SMALL.records_per_site

    def test_population_is_deterministic_per_seed(self):
        kernel_a = build_gather_kernel(SMALL)
        kernel_b = build_gather_kernel(SMALL)
        site = SMALL.data_site_names()[0]
        ids_a = [record["id"] for record in
                 kernel_a.site(site).cabinet(DATA_CABINET).elements(RECORDS_FOLDER)
                 if record["relevant"]]
        ids_b = [record["id"] for record in
                 kernel_b.site(site).cabinet(DATA_CABINET).elements(RECORDS_FOLDER)
                 if record["relevant"]]
        assert ids_a == ids_b

    def test_populate_returns_planted_count(self):
        kernel = build_gather_kernel(DataGatherParams(n_sites=2, records_per_site=10,
                                                      selectivity=0.0, seed=1))
        planted = populate_data_sites(kernel, ["data00"], 50, 10, selectivity=1.0, seed=2)
        assert planted == 50


class TestTopologyKinds:
    @pytest.mark.parametrize("kind", ["star", "lan", "ring", "two_clusters"])
    def test_every_topology_kind_builds_and_runs(self, kind):
        params = DataGatherParams(n_sites=4, records_per_site=10, record_bytes=50,
                                  selectivity=0.2, topology=kind, seed=5)
        result = run_agent_gather(params)
        assert result.sites_covered == 4

    def test_unknown_topology_raises(self):
        with pytest.raises(ValueError):
            run_agent_gather(DataGatherParams(topology="moebius"))


class TestGatherModes:
    def test_both_modes_find_the_same_relevant_records(self):
        agent = run_agent_gather(SMALL)
        server = run_client_server_gather(SMALL)
        assert agent.relevant_found == server.relevant_found > 0

    def test_agent_mode_moves_fewer_bytes(self):
        agent = run_agent_gather(SMALL)
        server = run_client_server_gather(SMALL)
        assert agent.bytes_on_wire < server.bytes_on_wire

    def test_agent_mode_migrates_client_server_does_not(self):
        assert run_agent_gather(SMALL).migrations > 0
        assert run_client_server_gather(SMALL).migrations == 0

    def test_record_counts_are_reported(self):
        agent = run_agent_gather(SMALL)
        assert agent.records_total == SMALL.n_sites * SMALL.records_per_site
        server = run_client_server_gather(SMALL)
        assert server.records_total == SMALL.n_sites * SMALL.records_per_site

    def test_zero_selectivity_yields_nothing_but_still_covers_sites(self):
        params = DataGatherParams(n_sites=3, records_per_site=20, selectivity=0.0, seed=3)
        agent = run_agent_gather(params)
        assert agent.relevant_found == 0
        assert agent.sites_covered == 3


class TestItineraries:
    @pytest.mark.parametrize("transport", ["rsh", "tcp", "horus"])
    def test_itinerary_completes_on_every_transport(self, transport):
        result = run_itinerary(ItineraryParams(transport=transport, hops=5,
                                               payload_bytes=512, n_sites=6))
        assert result.hops_completed == 5
        assert result.duration > 0
        assert result.mean_hop_time > 0

    def test_rsh_hops_are_slowest(self):
        results = {transport: run_itinerary(ItineraryParams(transport=transport, hops=6,
                                                            payload_bytes=512))
                   for transport in ("rsh", "tcp", "horus")}
        assert results["rsh"].mean_hop_time > results["tcp"].mean_hop_time
        assert results["rsh"].mean_hop_time > results["horus"].mean_hop_time

    def test_bigger_payload_means_more_bytes(self):
        small = run_itinerary(ItineraryParams(transport="tcp", hops=4, payload_bytes=100))
        large = run_itinerary(ItineraryParams(transport="tcp", hops=4, payload_bytes=50_000))
        assert large.migration_bytes > small.migration_bytes
        assert large.mean_hop_time > small.mean_hop_time

    def test_more_hops_take_longer(self):
        short = run_itinerary(ItineraryParams(transport="tcp", hops=3))
        long = run_itinerary(ItineraryParams(transport="tcp", hops=12))
        assert long.duration > short.duration
        assert long.hops_completed == 12


class TestHighPopulation:
    SMALL = HighPopulationParams(n_sites=6, n_agents=300, wave_size=60,
                                 work_seconds=0.02, seed=9)

    def test_every_agent_completes(self):
        result = run_high_population(self.SMALL)
        assert result.agents_launched == 300
        assert result.agents_completed == 300
        assert result.sim_seconds > 0

    def test_balancer_spreads_the_population(self):
        result = run_high_population(self.SMALL)
        # Perfectly divisible workload on identical sites: near-even spread.
        assert result.placement_spread <= 2
        assert result.load_queries == 300 * 6

    def test_index_is_clean_after_the_run(self):
        kernel, result = execute_high_population(self.SMALL)
        for name in kernel.site_names():
            assert kernel.agents_at(name) == []
            assert kernel.site(name).resident_count() == 0
        assert result.peak_residents > 0
