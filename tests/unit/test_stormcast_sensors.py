"""Unit tests for the StormCast synthetic sensors and weather generator."""

from __future__ import annotations

import pytest

from repro.apps.stormcast import (READINGS_FOLDER, SENSOR_CABINET, WeatherGenerator,
                                  WeatherReading, populate_sensor_site,
                                  populate_sensor_sites)
from repro.core import Kernel, KernelConfig
from repro.net import star


class TestWeatherReading:
    def test_wire_round_trip_preserves_values_and_padding(self):
        reading = WeatherReading(station="st", timestamp=60.0, wind_speed=12.5,
                                 pressure=1001.0, temperature=-3.2, humidity=80.0,
                                 raw_payload_bytes=128)
        rebuilt = WeatherReading.from_wire(reading.to_wire())
        assert rebuilt == reading
        assert len(reading.to_wire()["padding"]) == 128

    def test_precursor_predicate_wind(self):
        windy = WeatherReading("st", 0, wind_speed=25.0, pressure=1010.0,
                               temperature=0, humidity=50)
        assert windy.is_storm_precursor()

    def test_precursor_predicate_pressure(self):
        low = WeatherReading("st", 0, wind_speed=5.0, pressure=980.0,
                             temperature=0, humidity=50)
        assert low.is_storm_precursor()

    def test_calm_reading_is_not_a_precursor(self):
        calm = WeatherReading("st", 0, wind_speed=5.0, pressure=1013.0,
                              temperature=0, humidity=50)
        assert not calm.is_storm_precursor()

    def test_custom_thresholds(self):
        reading = WeatherReading("st", 0, wind_speed=15.0, pressure=1000.0,
                                 temperature=0, humidity=50)
        assert not reading.is_storm_precursor()
        assert reading.is_storm_precursor(wind_threshold=10.0)


class TestWeatherGenerator:
    def test_rejects_invalid_storm_rate(self):
        with pytest.raises(ValueError):
            WeatherGenerator(storm_rate=1.5)

    def test_generates_requested_count(self):
        readings = WeatherGenerator(seed=1).readings_for("st", 50)
        assert len(readings) == 50
        assert all(reading.station == "st" for reading in readings)

    def test_deterministic_per_seed_and_station(self):
        first = WeatherGenerator(seed=3).readings_for("st", 20)
        second = WeatherGenerator(seed=3).readings_for("st", 20)
        assert first == second

    def test_different_stations_get_different_weather(self):
        generator = WeatherGenerator(seed=3)
        assert generator.readings_for("north", 20) != generator.readings_for("south", 20)

    def test_timestamps_are_spaced_by_interval(self):
        readings = WeatherGenerator(seed=1).readings_for("st", 5, start_time=100.0,
                                                         interval=30.0)
        assert [reading.timestamp for reading in readings] == [100, 130, 160, 190, 220]

    def test_zero_storm_rate_produces_mostly_calm_weather(self):
        readings = WeatherGenerator(seed=2, storm_rate=0.0).readings_for("st", 300)
        precursors = [reading for reading in readings if reading.is_storm_precursor()]
        assert len(precursors) < len(readings) * 0.05

    def test_high_storm_rate_produces_many_precursors(self):
        readings = WeatherGenerator(seed=2, storm_rate=0.8).readings_for("st", 300)
        precursors = [reading for reading in readings if reading.is_storm_precursor()]
        assert len(precursors) > len(readings) * 0.1

    def test_payload_bytes_are_attached(self):
        readings = WeatherGenerator(seed=1, raw_payload_bytes=64).readings_for("st", 3)
        assert all(reading.raw_payload_bytes == 64 for reading in readings)

    def test_values_stay_in_plausible_ranges(self):
        readings = WeatherGenerator(seed=5, storm_rate=0.3).readings_for("st", 500)
        for reading in readings:
            assert 0.0 <= reading.wind_speed < 60.0
            assert 950.0 <= reading.pressure <= 1045.0
            assert 0.0 <= reading.humidity <= 100.0


class TestPopulation:
    def make_kernel(self):
        return Kernel(star("hub", ["sensor00", "sensor01"]),
                      config=KernelConfig(rng_seed=1))

    def test_populate_single_site(self):
        kernel = self.make_kernel()
        generator = WeatherGenerator(seed=1)
        stored = populate_sensor_site(kernel, "sensor00", generator.readings_for("sensor00", 10))
        assert stored == 10
        cabinet = kernel.site("sensor00").cabinet(SENSOR_CABINET)
        assert len(cabinet.folder(READINGS_FOLDER)) == 10

    def test_populate_many_sites(self):
        kernel = self.make_kernel()
        counts = populate_sensor_sites(kernel, ["sensor00", "sensor01"], 25)
        assert counts == {"sensor00": 25, "sensor01": 25}
        for name in counts:
            assert len(kernel.site(name).cabinet(SENSOR_CABINET).folder(READINGS_FOLDER)) == 25

    def test_stored_records_decode_back_to_readings(self):
        kernel = self.make_kernel()
        populate_sensor_sites(kernel, ["sensor00"], 5)
        records = kernel.site("sensor00").cabinet(SENSOR_CABINET).elements(READINGS_FOLDER)
        decoded = [WeatherReading.from_wire(record) for record in records]
        assert all(reading.station == "sensor00" for reading in decoded)
