"""Unit tests for fault-tolerant itinerant computations (repro.fault.ftmove)."""

from __future__ import annotations

import pytest

from repro.core import Kernel, KernelConfig
from repro.fault import (RESULTS_CABINET, completions, fan_out_ids, launch_ft_computation,
                         launch_plain_computation, pending_guards)
from repro.net import FailureSchedule, lan, ring


def make_kernel(sites=6, seed=31, topology="ring"):
    names = [f"s{i}" for i in range(sites)]
    topo = ring(names) if topology == "ring" else lan(names)
    kernel = Kernel(topo, transport="tcp", config=KernelConfig(rng_seed=seed))
    for index, name in enumerate(names):
        kernel.site(name).cabinet("data").put("VALUE", f"value-{index}")
    return kernel, names


class TestHappyPath:
    def test_ft_computation_completes_and_collects_data(self):
        kernel, names = make_kernel()
        ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3)
        kernel.run(until=60.0)
        records = completions(kernel, names[-1], ft_id)
        assert len(records) == 1
        record = records[0]
        assert record["hops"] == len(names) - 1
        assert [entry["site"] for entry in record["results"]] == names
        assert [entry["value"] for entry in record["results"]] == \
               [f"value-{i}" for i in range(len(names))]
        assert record["skipped"] == []
        assert record["relaunched"] is False

    def test_all_guards_retire_after_a_clean_run(self):
        kernel, names = make_kernel()
        launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3)
        kernel.run(until=60.0)
        outcomes = {entry["outcome"] for entry in pending_guards(kernel)}
        assert outcomes == {"released"}

    def test_plain_computation_completes_without_failures(self):
        kernel, names = make_kernel()
        plain_id = launch_plain_computation(kernel, "s0", names[1:])
        kernel.run(until=60.0)
        assert len(completions(kernel, names[-1], plain_id)) == 1

    def test_ft_costs_more_messages_than_plain(self):
        kernel_ft, names = make_kernel()
        launch_ft_computation(kernel_ft, "s0", names[1:], per_hop=0.3)
        kernel_ft.run(until=60.0)

        kernel_plain, names = make_kernel()
        launch_plain_computation(kernel_plain, "s0", names[1:])
        kernel_plain.run(until=60.0)

        assert kernel_ft.stats.messages_sent > kernel_plain.stats.messages_sent

    def test_custom_task_agent_is_met_at_each_site(self):
        kernel, names = make_kernel(sites=4)

        def counter_task(ctx, bc):
            ctx.cabinet("tasks").put("ran", bc.get("SEQ"))
            yield ctx.end_meet(ctx.site_name.upper())

        kernel.install_agent(None, "counter_task", counter_task, replace=True)
        ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3,
                                      task="counter_task")
        kernel.run(until=60.0)
        record = completions(kernel, names[-1], ft_id)[0]
        assert [entry["value"] for entry in record["results"]] == \
               [name.upper() for name in names]
        for name in names:
            assert kernel.site(name).cabinet("tasks").elements("ran")


class TestUnderFailures:
    def test_ft_survives_a_crashed_intermediate_site(self):
        kernel, names = make_kernel()
        ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3)
        FailureSchedule().crash("s3", at=0.05).recover("s3", at=100.0).install(kernel)
        kernel.run(until=200.0)
        records = completions(kernel, names[-1], ft_id)
        assert len(records) == 1, "the protected computation must complete exactly once"
        assert "s3" in records[0]["skipped"]
        assert records[0]["relaunched"] is True

    def test_plain_computation_dies_with_the_crashed_site(self):
        kernel, names = make_kernel()
        plain_id = launch_plain_computation(kernel, "s0", names[1:])
        FailureSchedule().crash("s3", at=0.05).recover("s3", at=100.0).install(kernel)
        kernel.run(until=200.0)
        assert completions(kernel, names[-1], plain_id) == []

    def test_crash_of_resident_site_is_survived(self):
        kernel, names = make_kernel()
        ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3,
                                      work_seconds=0.3)
        # Crash the site while the agent is busy working there.
        FailureSchedule().crash("s2", at=0.8).recover("s2", at=100.0).install(kernel)
        kernel.run(until=200.0)
        records = completions(kernel, names[-1], ft_id)
        assert len(records) == 1

    def test_completion_is_exactly_once_even_with_duplicate_relaunches(self):
        kernel, names = make_kernel()
        # Aggressive timers force spurious relaunches of a perfectly healthy
        # agent; the dedup markers must still give exactly one completion.
        ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.01,
                                      max_relaunches=3, work_seconds=0.2)
        kernel.run(until=200.0)
        records = completions(kernel, names[-1], ft_id)
        assert len(records) == 1

    def test_two_computations_do_not_interfere(self):
        kernel, names = make_kernel()
        first = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3)
        second = launch_ft_computation(kernel, "s1", names[2:] + ["s0"], per_hop=0.3,
                                       delay=0.1)
        kernel.run(until=120.0)
        assert len(completions(kernel, names[-1], first)) == 1
        assert len(completions(kernel, "s0", second)) == 1


class TestReleasesOnTheFabric:
    def test_releases_travel_as_ft_release_kind(self):
        from repro.net.message import MessageKind
        kernel, names = make_kernel()
        ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3)
        kernel.run(until=60.0)
        assert len(completions(kernel, names[-1], ft_id)) == 1
        assert kernel.stats.per_kind[MessageKind.FT_RELEASE] > 0
        # Nothing ships release notices as generic folder deliveries anymore.
        assert kernel.stats.per_kind.get(MessageKind.FOLDER_DELIVERY, 0) == 0

    def test_cyclic_itinerary_gets_one_envelope_per_guard_site(self):
        # The walk s0 -> s1 -> s0 -> s1 -> s2 parks two retiring guards at
        # s1 by delivery time; the final release is one envelope listing
        # both hops, acknowledged once.
        kernel, names = make_kernel(sites=3, topology="lan")
        ft_id = launch_ft_computation(kernel, "s0", ["s1", "s0", "s1", "s2"],
                                      per_hop=0.3)
        kernel.run(until=60.0)
        assert len(completions(kernel, "s2", ft_id)) == 1
        from repro.fault import REARGUARD_CABINET
        cabinet = kernel.site("s1").cabinet(REARGUARD_CABINET)
        acks = cabinet.elements("release_acks")
        assert len(acks) == 1                       # one envelope, one ack
        notices = [notice for notice in cabinet.elements("releases")
                   if notice.get("done")]
        assert len(notices) == 1
        assert notices[0]["released_seqs"] == [2, 4]
        outcomes = {entry["outcome"] for entry in pending_guards(kernel)}
        assert outcomes == {"released"}

    def test_guarded_computations_complete_exactly_once_on_the_fabric(self):
        kernel, names = make_kernel()
        kernel.transport.configure_batching(0.1, max_messages=4, deadline=0.4)
        ids = [launch_ft_computation(kernel, "s0", names[1:], per_hop=0.3,
                                     delay=0.05 * index)
               for index in range(4)]
        FailureSchedule().crash("s3", at=0.05).recover("s3", at=100.0).install(kernel)
        kernel.run(until=300.0)
        for ft_id in ids:
            assert len(completions(kernel, names[-1], ft_id)) == 1, ft_id
        # Guard traffic genuinely coalesced on the wire.
        assert kernel.stats.batches > 0
        assert kernel.stats.batched_messages > 0


class TestHelpers:
    def test_fan_out_ids_are_unique_and_prefixed(self):
        ids = fan_out_ids("ft-main", 4)
        assert len(set(ids)) == 4
        assert all(branch.startswith("ft-main/") for branch in ids)

    def test_completions_filters_by_id(self):
        kernel, names = make_kernel(sites=3)
        first = launch_ft_computation(kernel, "s0", ["s1", "s2"], per_hop=0.3)
        second = launch_ft_computation(kernel, "s0", ["s1", "s2"], per_hop=0.3, delay=0.1)
        kernel.run(until=60.0)
        assert len(completions(kernel, "s2")) == 2
        assert len(completions(kernel, "s2", first)) == 1
        assert len(completions(kernel, "s2", second)) == 1

    def test_results_cabinet_name_is_stable(self):
        assert RESULTS_CABINET == "ft_results"
