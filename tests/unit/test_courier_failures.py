"""Failure-path tests for the courier agent.

The happy path is covered by the sysagents tests; these pin down what the
courier does when the request is malformed, the payload is missing, or the
destination dies while the folder is on the wire — plus the same-site fast
path that must never touch the network.
"""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.briefcase import CONTACT_FOLDER, HOST_FOLDER
from repro.core.folder import Folder
from repro.net import lan


@pytest.fixture
def kernel():
    return Kernel(lan(["a", "b", "c"], latency=0.05), transport="tcp",
                  config=KernelConfig(rng_seed=9))


def install_receiver(kernel, site="b"):
    received = []

    def receiver(ctx, bc):
        received.append(bc.get("PAYLOAD_NAME"))
        yield ctx.sleep(0)
        return "received"

    kernel.install_agent(site, "receiver", receiver)
    return received


def run_courier_request(kernel, request, site="a"):
    """Meet the courier at *site* with *request*; return the meet value."""

    def client(ctx, bc):
        result = yield ctx.meet("courier", request)
        return result.value

    agent_id = kernel.launch(site, client)
    kernel.run()
    return kernel.result_of(agent_id)


class TestMalformedRequests:
    def test_missing_host_is_refused(self, kernel):
        request = Briefcase()
        request.set(CONTACT_FOLDER, "receiver")
        request.set("PAYLOAD_NAME", "DOC")
        request.add(Folder("DOC", ["page"]))
        assert run_courier_request(kernel, request) is False
        assert kernel.stats.messages_sent == 0

    def test_missing_contact_is_refused(self, kernel):
        request = Briefcase()
        request.set(HOST_FOLDER, "b")
        request.set("PAYLOAD_NAME", "DOC")
        request.add(Folder("DOC", ["page"]))
        assert run_courier_request(kernel, request) is False
        assert kernel.stats.messages_sent == 0

    def test_missing_payload_name_is_refused(self, kernel):
        request = Briefcase()
        request.set(HOST_FOLDER, "b")
        request.set(CONTACT_FOLDER, "receiver")
        request.add(Folder("DOC", ["page"]))
        assert run_courier_request(kernel, request) is False
        assert kernel.stats.messages_sent == 0

    def test_named_payload_folder_absent_is_refused(self, kernel):
        request = Briefcase()
        request.set(HOST_FOLDER, "b")
        request.set(CONTACT_FOLDER, "receiver")
        request.set("PAYLOAD_NAME", "DOC")      # but no DOC folder aboard
        assert run_courier_request(kernel, request) is False
        assert kernel.stats.messages_sent == 0

    def test_unsupported_delivery_kind_is_refused(self, kernel):
        # A KIND folder outside {folder-delivery, status} would strand the
        # payload at the destination (no contact execution); the courier
        # refuses it up front instead of reporting a phantom success.
        from repro.net.message import MessageKind
        for bad_kind in (MessageKind.BATCH, MessageKind.CONTROL, "my-app-data"):
            request = Briefcase()
            request.set(HOST_FOLDER, "b")
            request.set(CONTACT_FOLDER, "receiver")
            request.set("PAYLOAD_NAME", "DOC")
            request.set("KIND", bad_kind)
            request.add(Folder("DOC", ["page"]))
            assert run_courier_request(kernel, request) is False
        assert kernel.stats.messages_sent == 0

    def test_refusal_is_logged(self, kernel):
        request = Briefcase()
        assert run_courier_request(kernel, request) is False
        assert any("courier" in entry[3] for entry in kernel.event_log)


class TestDeliveryFailures:
    def test_destination_down_before_send_is_refused(self, kernel):
        install_receiver(kernel)
        kernel.crash_site("b")

        def client(ctx, bc):
            result = yield ctx.send_folder(Folder("DOC", ["page"]), "b", "receiver")
            return result.value

        agent_id = kernel.launch("a", client)
        kernel.run()
        # The transmit was not accepted: the courier reports failure.
        assert kernel.result_of(agent_id) is False

    def test_destination_down_mid_delivery_loses_the_folder(self, kernel):
        received = install_receiver(kernel)

        def client(ctx, bc):
            result = yield ctx.send_folder(Folder("DOC", ["page"]), "b", "receiver")
            return result.value

        agent_id = kernel.launch("a", client)
        kernel.run(until=0.02)    # folder accepted and in flight (link latency 0.05)
        dropped_before = kernel.stats.messages_dropped
        kernel.crash_site("b")
        kernel.run()
        # The courier honestly reported acceptance — in-flight loss is the
        # rear guards' problem — but the folder never executed its contact.
        assert kernel.result_of(agent_id) is True
        assert received == []
        assert kernel.stats.messages_dropped == dropped_before + 1
        assert kernel.arrivals == 0

    def test_delivery_to_recovered_site_works(self, kernel):
        received = install_receiver(kernel)
        kernel.crash_site("b")
        kernel.recover_site("b")

        def client(ctx, bc):
            result = yield ctx.send_folder(Folder("DOC", ["page"]), "b", "receiver")
            return result.value

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) is True
        assert received == ["DOC"]


class TestSameSiteFastPath:
    def test_same_site_delivery_meets_locally_without_network(self, kernel):
        received = install_receiver(kernel, site="a")

        def client(ctx, bc):
            result = yield ctx.send_folder(Folder("DOC", ["page"]), "a", "receiver")
            return result.value

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) is True
        assert received == ["DOC"]
        assert kernel.stats.messages_sent == 0
        assert kernel.transmits == 0

    def test_same_site_delivery_to_missing_contact_raises_in_courier(self, kernel):
        # No receiver installed at "a": the local meet fails and the courier
        # (which does not catch MeetError) fails, surfacing to its caller.
        def client(ctx, bc):
            from repro.core.errors import MeetError
            try:
                yield ctx.send_folder(Folder("DOC", ["page"]), "a", "receiver")
            except MeetError:
                return "courier-failed"
            return "delivered"

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == "courier-failed"
