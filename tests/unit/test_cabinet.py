"""Unit tests for repro.core.cabinet.FileCabinet."""

from __future__ import annotations

import os

import pytest

from repro.core import Briefcase, FileCabinet, Folder
from repro.core.errors import CabinetError, CabinetPersistenceError, MissingFolderError


class TestBasicAccess:
    def test_requires_name(self):
        with pytest.raises(CabinetError):
            FileCabinet("")

    def test_add_and_folder(self):
        cabinet = FileCabinet("c")
        folder = cabinet.add(Folder("X", [1]))
        assert cabinet.folder("X") is folder

    def test_add_duplicate_refused(self):
        cabinet = FileCabinet("c")
        cabinet.add(Folder("X"))
        with pytest.raises(CabinetError):
            cabinet.add(Folder("X"))

    def test_add_duplicate_with_replace(self):
        cabinet = FileCabinet("c")
        cabinet.add(Folder("X", [1]))
        cabinet.add(Folder("X", [2]), replace=True)
        assert cabinet.folder("X").elements() == [2]

    def test_folder_create(self):
        cabinet = FileCabinet("c")
        assert cabinet.folder("NEW", create=True).name == "NEW"

    def test_missing_folder_raises(self):
        with pytest.raises(MissingFolderError):
            FileCabinet("c").folder("ABSENT")

    def test_remove(self):
        cabinet = FileCabinet("c")
        cabinet.add(Folder("X", [1]))
        assert cabinet.remove("X").elements() == [1]
        assert not cabinet.has("X")
        with pytest.raises(MissingFolderError):
            cabinet.remove("X")

    def test_put_get_defaults(self):
        cabinet = FileCabinet("c")
        assert cabinet.get("missing", default="d") == "d"
        cabinet.put("V", 10)
        cabinet.put("V", 20)
        assert cabinet.get("V") == 20

    def test_names_and_folders(self):
        cabinet = FileCabinet("c")
        cabinet.put("A", 1)
        cabinet.put("B", 2)
        assert cabinet.names() == ["A", "B"]
        assert len(cabinet.folders()) == 2
        assert "A" in cabinet
        assert len(cabinet) == 2

    def test_access_count_increases_on_lookups(self):
        cabinet = FileCabinet("c")
        cabinet.put("A", 1)
        before = cabinet.access_count
        cabinet.get("A")
        cabinet.contains_element("A", 1)
        assert cabinet.access_count > before


class TestElementIndex:
    def test_contains_element_after_put(self):
        cabinet = FileCabinet("c")
        cabinet.put("VISITED", "site-a")
        assert cabinet.contains_element("VISITED", "site-a")
        assert not cabinet.contains_element("VISITED", "site-b")

    def test_contains_element_for_missing_folder(self):
        assert not FileCabinet("c").contains_element("X", "anything")

    def test_contains_element_after_add_indexes_existing(self):
        cabinet = FileCabinet("c")
        cabinet.add(Folder("X", ["a", "b"]))
        assert cabinet.contains_element("X", "a")
        assert cabinet.contains_element("X", "b")

    def test_elements_for_missing_folder_is_empty(self):
        assert FileCabinet("c").elements("nope") == []

    def test_elements_returns_decoded_values(self):
        cabinet = FileCabinet("c")
        cabinet.put("X", {"k": 1})
        assert cabinet.elements("X") == [{"k": 1}]


class TestBriefcaseInterchange:
    def test_deposit_copies_folders(self):
        cabinet = FileCabinet("c")
        briefcase = Briefcase([Folder("RESULTS", [1, 2])])
        cabinet.deposit(briefcase)
        briefcase.folder("RESULTS").push(3)
        assert cabinet.elements("RESULTS") == [1, 2]

    def test_deposit_merges_into_existing_folder(self):
        cabinet = FileCabinet("c")
        cabinet.put("RESULTS", 0)
        cabinet.deposit(Briefcase([Folder("RESULTS", [1])]))
        assert cabinet.elements("RESULTS") == [0, 1]
        assert cabinet.contains_element("RESULTS", 1)

    def test_deposit_with_name_filter(self):
        cabinet = FileCabinet("c")
        cabinet.deposit(Briefcase([Folder("KEEP", [1]), Folder("SKIP", [2])]),
                        names=["KEEP"])
        assert cabinet.has("KEEP")
        assert not cabinet.has("SKIP")

    def test_withdraw_copies_and_keeps(self):
        cabinet = FileCabinet("c")
        cabinet.put("X", 1)
        briefcase = cabinet.withdraw(["X", "MISSING"])
        assert briefcase.folder("X").elements() == [1]
        assert cabinet.has("X")
        assert not briefcase.has("MISSING")


class TestCostModel:
    def test_move_cost_exceeds_storage_size(self):
        cabinet = FileCabinet("c")
        cabinet.put("X", "x" * 500)
        assert cabinet.move_cost() == cabinet.storage_size() * FileCabinet.MOVE_COST_FACTOR
        assert cabinet.move_cost() > cabinet.storage_size()

    def test_briefcase_is_cheaper_to_move_than_cabinet_with_same_content(self):
        """The design point of paper section 2: briefcases move, cabinets stay."""
        briefcase = Briefcase([Folder("X", ["x" * 100] * 10)])
        cabinet = FileCabinet("c")
        cabinet.deposit(briefcase)
        assert briefcase.wire_size() < cabinet.move_cost()


class TestPersistence:
    def test_flush_and_load_round_trip(self, tmp_path):
        cabinet = FileCabinet("weather", site="tromso")
        cabinet.put("READINGS", {"wind": 30.5})
        cabinet.put("READINGS", {"wind": 12.0})
        cabinet.put("NOTES", b"\x00binary\xff")
        path = cabinet.flush(str(tmp_path))
        assert os.path.exists(path)

        loaded = FileCabinet.load(path)
        assert loaded.name == "weather"
        assert loaded.site == "tromso"
        assert loaded.elements("READINGS") == [{"wind": 30.5}, {"wind": 12.0}]
        assert loaded.elements("NOTES") == [b"\x00binary\xff"]
        assert loaded.contains_element("READINGS", {"wind": 12.0})

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CabinetPersistenceError):
            FileCabinet.load(str(tmp_path / "nope.cabinet.json"))

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.cabinet.json"
        path.write_text("{not json")
        with pytest.raises(CabinetPersistenceError):
            FileCabinet.load(str(path))

    def test_flush_to_unwritable_directory_raises(self):
        cabinet = FileCabinet("c")
        with pytest.raises(CabinetPersistenceError):
            cabinet.flush("/proc/definitely/not/writable")


class TestAtomicFlush:
    """A crash (or error) mid-flush must neither tear the cabinet file nor
    litter the directory with temp files: the write goes to a temp file
    that is atomically renamed on success and removed on failure."""

    def test_failed_replace_keeps_previous_flush_intact(self, tmp_path, monkeypatch):
        cabinet = FileCabinet("spool")
        cabinet.put("letters", {"id": 1})
        path = cabinet.flush(str(tmp_path))

        cabinet.put("letters", {"id": 2})
        monkeypatch.setattr(os, "replace",
                            lambda *a, **k: (_ for _ in ()).throw(OSError("disk died")))
        with pytest.raises(CabinetPersistenceError):
            cabinet.flush(str(tmp_path))
        monkeypatch.undo()

        # The previous flush still loads, untorn — only the old contents.
        loaded = FileCabinet.load(path)
        assert loaded.elements("letters") == [{"id": 1}]

    def test_failed_flush_leaves_no_temp_files(self, tmp_path, monkeypatch):
        cabinet = FileCabinet("spool")
        cabinet.put("letters", {"id": 1})
        monkeypatch.setattr(os, "replace",
                            lambda *a, **k: (_ for _ in ()).throw(OSError("disk died")))
        with pytest.raises(CabinetPersistenceError):
            cabinet.flush(str(tmp_path))
        monkeypatch.undo()
        assert [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    def test_successful_flush_leaves_no_temp_files(self, tmp_path):
        cabinet = FileCabinet("spool")
        cabinet.put("letters", {"id": 1})
        cabinet.flush(str(tmp_path))
        assert [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []


class TestTouch:
    def test_touch_rebuilds_the_element_index_after_direct_folder_edits(self):
        cabinet = FileCabinet("spool")
        cabinet.put("letters", {"id": 1})
        cabinet.put("letters", {"id": 2})
        assert cabinet.contains_element("letters", {"id": 1})
        cabinet.folder("letters").replace([{"id": 2}])
        cabinet.touch("letters")
        assert not cabinet.contains_element("letters", {"id": 1})
        assert cabinet.contains_element("letters", {"id": 2})

    def test_touch_notifies_the_store_hook(self):
        seen = []
        cabinet = FileCabinet("spool")
        cabinet.attach_store(seen.append)
        cabinet.put("letters", {"id": 1})
        cabinet.folder("letters").replace([])
        cabinet.touch("letters")
        assert seen.count("letters") >= 2     # put + touch both journal
