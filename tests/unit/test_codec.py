"""Unit tests for repro.core.codec: code shipping and briefcase wire format."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Folder
from repro.core.codec import (attach_code, behaviour_from_code, code_element_of, code_for,
                              code_from_source, pack_briefcase, unpack_briefcase,
                              wire_size_of)
from repro.core.errors import CodecError, CodeCompilationError, UnknownBehaviourError
from repro.core.registry import BehaviourRegistry


@pytest.fixture
def registry():
    registry = BehaviourRegistry()

    def sample(ctx, bc):
        yield None

    registry.register("sample", sample)
    return registry


class TestCodeElements:
    def test_code_for_names_a_registered_behaviour(self):
        element = code_for("rexec")
        assert element == {"kind": "registered", "name": "rexec"}

    def test_code_from_source_requires_entry_point(self):
        with pytest.raises(CodecError):
            code_from_source("def other(ctx, bc):\n    pass\n")

    def test_code_from_source_builds_element(self):
        element = code_from_source("def agent_main(ctx, bc):\n    return 1\n")
        assert element["kind"] == "source"
        assert element["entry"] == "agent_main"

    def test_code_element_of_accepts_name(self, registry):
        assert code_element_of("sample", registry)["name"] == "sample"

    def test_code_element_of_accepts_existing_element(self, registry):
        element = {"kind": "source", "source": "def agent_main(c,b): pass", "entry": "agent_main"}
        assert code_element_of(element, registry) == element

    def test_code_element_of_registered_callable(self, registry):
        behaviour = registry.resolve("sample")
        assert code_element_of(behaviour, registry) == {"kind": "registered", "name": "sample"}

    def test_code_element_of_unregistered_callable_raises(self, registry):
        def anonymous(ctx, bc):
            yield None

        with pytest.raises(UnknownBehaviourError):
            code_element_of(anonymous, registry)

    def test_code_element_of_garbage_raises(self, registry):
        with pytest.raises(CodecError):
            code_element_of(12345, registry)


class TestBehaviourFromCode:
    def test_registered_element_resolves(self, registry):
        behaviour = behaviour_from_code(code_for("sample"), registry)
        assert behaviour is registry.resolve("sample")

    def test_source_element_compiles_and_returns_entry(self):
        source = """
def helper(x):
    return x * 2

def agent_main(ctx, bc):
    return helper(21)
"""
        behaviour = behaviour_from_code(code_from_source(source))
        assert behaviour(None, None) == 42

    def test_source_with_syntax_error_raises(self):
        element = {"kind": "source", "source": "def agent_main(:\n", "entry": "agent_main"}
        with pytest.raises(CodeCompilationError):
            behaviour_from_code(element)

    def test_source_that_raises_at_import_time_raises(self):
        element = {"kind": "source",
                   "source": "raise RuntimeError('boom')\ndef agent_main(c, b): pass\n",
                   "entry": "agent_main"}
        with pytest.raises(CodeCompilationError):
            behaviour_from_code(element)

    def test_source_without_entry_callable_raises(self):
        element = {"kind": "source", "source": "agent_main = 42\n", "entry": "agent_main"}
        with pytest.raises(CodeCompilationError):
            behaviour_from_code(element)

    def test_unknown_kind_raises(self):
        with pytest.raises(CodecError):
            behaviour_from_code({"kind": "quantum"})


class TestAttachCode:
    def test_attach_code_sets_code_folder(self, registry):
        briefcase = Briefcase()
        attach_code(briefcase, "sample", registry)
        assert briefcase.get("CODE") == {"kind": "registered", "name": "sample"}

    def test_attach_code_replaces_existing(self, registry):
        briefcase = Briefcase()
        briefcase.put("CODE", {"kind": "registered", "name": "old"})
        attach_code(briefcase, "sample", registry)
        assert len(briefcase.folder("CODE")) == 1
        assert briefcase.get("CODE")["name"] == "sample"


class TestBriefcaseWireFormat:
    def test_pack_unpack_round_trip(self):
        briefcase = Briefcase([Folder("A", [b"raw", "text", {"x": [1, 2]}]),
                               Folder("B", [])])
        rebuilt = unpack_briefcase(pack_briefcase(briefcase))
        assert rebuilt == briefcase

    def test_unpack_garbage_raises(self):
        with pytest.raises(CodecError):
            unpack_briefcase(b"not a pickled briefcase")

    def test_unpack_wrong_version_raises(self):
        import pickle
        payload = pickle.dumps({"version": 999, "briefcase": Briefcase().to_wire()})
        with pytest.raises(CodecError):
            unpack_briefcase(payload)

    def test_wire_size_matches_briefcase_model(self):
        briefcase = Briefcase([Folder("A", ["x" * 100])])
        assert wire_size_of(briefcase) == briefcase.wire_size()

    def test_wire_size_is_deterministic(self):
        briefcase = Briefcase([Folder("A", ["hello"])])
        assert wire_size_of(briefcase) == wire_size_of(briefcase.copy())
