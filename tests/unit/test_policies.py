"""Unit tests for the scheduling assignment policies."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.errors import NoProviderError, SchedulingError
from repro.scheduling.policies import (POLICY_NAMES, LeastLoadedPolicy, LoadEstimate,
                                       ProviderInfo, RandomPolicy, RoundRobinPolicy,
                                       WeightedCapacityPolicy, make_policy)


def provider(site, capacity=1.0, service="compute"):
    return ProviderInfo(service=service, site=site, agent_name="compute", capacity=capacity)


def load(site, value, at=1.0, assigned=0):
    return LoadEstimate(site=site, load=value, reported_at=at,
                        assigned_since_report=assigned)


class TestProviderInfo:
    def test_key_is_stable_and_unique_per_site(self):
        assert provider("a").key() == provider("a").key()
        assert provider("a").key() != provider("b").key()

    def test_effective_load_adds_local_assignments(self):
        estimate = load("a", 2.0, assigned=3)
        assert estimate.effective_load() == pytest.approx(5.0)


class TestLeastLoaded:
    def test_picks_the_least_loaded_site(self):
        providers = [provider("busy"), provider("idle")]
        loads = {"busy": load("busy", 5.0), "idle": load("idle", 0.5)}
        assert LeastLoadedPolicy().choose(providers, loads).site == "idle"

    def test_normalises_by_capacity(self):
        providers = [provider("big", capacity=10.0), provider("small", capacity=1.0)]
        loads = {"big": load("big", 5.0), "small": load("small", 1.0)}
        # 5/10 = 0.5 beats 1/1 = 1.0.
        assert LeastLoadedPolicy().choose(providers, loads).site == "big"

    def test_unreported_sites_count_as_idle(self):
        providers = [provider("reported"), provider("unknown")]
        loads = {"reported": load("reported", 3.0)}
        assert LeastLoadedPolicy().choose(providers, loads).site == "unknown"

    def test_own_assignments_since_report_break_dogpiling(self):
        providers = [provider("a"), provider("b")]
        loads = {"a": load("a", 1.0, assigned=5), "b": load("b", 1.5)}
        assert LeastLoadedPolicy().choose(providers, loads).site == "b"

    def test_ties_break_deterministically(self):
        providers = [provider("b"), provider("a")]
        loads = {}
        picks = {LeastLoadedPolicy().choose(providers, loads).site for _ in range(5)}
        assert picks == {"a"}

    def test_empty_providers_raise(self):
        with pytest.raises(NoProviderError):
            LeastLoadedPolicy().choose([], {})


class TestRandom:
    def test_uses_supplied_rng(self):
        providers = [provider("a"), provider("b"), provider("c")]
        first = RandomPolicy().choose(providers, {}, rng=random.Random(5)).site
        second = RandomPolicy().choose(providers, {}, rng=random.Random(5)).site
        assert first == second

    def test_covers_all_providers_over_many_draws(self):
        providers = [provider("a"), provider("b"), provider("c")]
        rng = random.Random(0)
        picks = {RandomPolicy().choose(providers, {}, rng=rng).site for _ in range(100)}
        assert picks == {"a", "b", "c"}

    def test_empty_providers_raise(self):
        with pytest.raises(NoProviderError):
            RandomPolicy().choose([], {})


class TestRoundRobin:
    def test_cycles_in_deterministic_order(self):
        policy = RoundRobinPolicy()
        providers = [provider("c"), provider("a"), provider("b")]
        picks = [policy.choose(providers, {}).site for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_independent_cycles_per_service(self):
        policy = RoundRobinPolicy()
        compute = [provider("a"), provider("b")]
        storage = [provider("x", service="storage"), provider("y", service="storage")]
        assert policy.choose(compute, {}).site == "a"
        assert policy.choose(storage, {}).site == "x"
        assert policy.choose(compute, {}).site == "b"

    def test_empty_providers_raise(self):
        with pytest.raises(NoProviderError):
            RoundRobinPolicy().choose([], {})


class TestWeightedCapacity:
    def test_distribution_tracks_capacity(self):
        providers = [provider("big", capacity=8.0), provider("small", capacity=1.0)]
        rng = random.Random(1)
        counts = Counter(WeightedCapacityPolicy().choose(providers, {}, rng=rng).site
                         for _ in range(500))
        assert counts["big"] > counts["small"] * 3

    def test_single_provider_always_chosen(self):
        assert WeightedCapacityPolicy().choose([provider("only")], {},
                                               rng=random.Random(0)).site == "only"

    def test_empty_providers_raise(self):
        with pytest.raises(NoProviderError):
            WeightedCapacityPolicy().choose([], {})


class TestFactory:
    def test_every_listed_policy_is_constructible(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(SchedulingError):
            make_policy("clairvoyant")
