"""Unit tests for the benchmark metric helpers."""

from __future__ import annotations

import math

import pytest

from repro.bench.metrics import (bytes_human, coefficient_of_variation, jains_fairness,
                                 load_imbalance, percentile, ratio, speedup, summarize)


class TestSummarize:
    def test_empty_sample(self):
        summary = summarize([])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

    def test_single_value(self):
        summary = summarize([4.0])
        assert summary["mean"] == 4.0
        assert summary["median"] == 4.0
        assert summary["stdev"] == 0.0

    def test_basic_statistics(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["median"] == 3.0
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["stdev"] > 0

    def test_p95_close_to_max(self):
        summary = summarize(list(range(100)))
        assert 90 <= summary["p95"] <= 99


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_bounds(self):
        data = [1, 2, 3, 4]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 4

    def test_median_interpolation(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_invalid_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 150)


class TestRatios:
    def test_ratio_normal(self):
        assert ratio(10, 4) == pytest.approx(2.5)

    def test_ratio_zero_over_zero_is_one(self):
        assert ratio(0, 0) == 1.0

    def test_ratio_something_over_zero_is_inf(self):
        assert math.isinf(ratio(5, 0))

    def test_speedup_is_baseline_over_candidate(self):
        assert speedup(baseline=10.0, candidate=2.0) == pytest.approx(5.0)


class TestFairness:
    def test_perfectly_even_distribution(self):
        assert jains_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_totally_skewed_distribution(self):
        assert jains_fairness([12, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_fair(self):
        assert jains_fairness([]) == 1.0
        assert jains_fairness([0, 0]) == 1.0

    def test_fairness_is_scale_invariant(self):
        assert jains_fairness([1, 2, 3]) == pytest.approx(jains_fairness([10, 20, 30]))

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5, 5, 5]) == pytest.approx(0.0)
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)
        assert coefficient_of_variation([]) == 0.0

    def test_load_imbalance(self):
        assert load_imbalance({"a": 4, "b": 4}) == pytest.approx(1.0)
        assert load_imbalance({"a": 8, "b": 0}) == pytest.approx(2.0)
        assert load_imbalance({}) == 1.0


class TestBytesHuman:
    def test_bytes(self):
        assert bytes_human(512) == "512 B"

    def test_kilobytes(self):
        assert bytes_human(2048) == "2.0 KB"

    def test_megabytes(self):
        assert bytes_human(3 * 1024 * 1024) == "3.0 MB"

    def test_terabytes_cap(self):
        assert "TB" in bytes_human(5 * 1024 ** 4)
