"""Unit tests for the Horus-style group communication transport."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import GroupError, NotMemberError
from repro.net.horus import GroupView, HorusTransport
from repro.net.message import MessageKind
from repro.net.simclock import EventLoop
from repro.net.stats import NetworkStats
from repro.net.topology import lan


@pytest.fixture
def horus():
    loop = EventLoop()
    topology = lan(["a", "b", "c", "d"])
    transport = HorusTransport(loop, topology, NetworkStats(), rng=random.Random(0))
    return transport, loop, topology


class TestGroupManagement:
    def test_create_group_installs_first_view(self, horus):
        transport, loop, _ = horus
        view = transport.create_group("g", ["a", "b"])
        assert isinstance(view, GroupView)
        assert view.view_id == 1
        assert view.members == ("a", "b")
        assert transport.has_group("g")

    def test_create_duplicate_group_raises(self, horus):
        transport, _, _ = horus
        transport.create_group("g")
        with pytest.raises(GroupError):
            transport.create_group("g")

    def test_unknown_group_raises(self, horus):
        transport, _, _ = horus
        with pytest.raises(GroupError):
            transport.group_view("ghost")

    def test_join_installs_new_view(self, horus):
        transport, _, _ = horus
        transport.create_group("g", ["a"])
        view = transport.join("g", "b")
        assert view.view_id == 2
        assert "b" in view

    def test_join_is_idempotent(self, horus):
        transport, _, _ = horus
        transport.create_group("g", ["a"])
        transport.join("g", "b")
        view = transport.join("g", "b")
        assert view.view_id == 2
        assert list(view.members).count("b") == 1

    def test_join_unknown_site_raises(self, horus):
        transport, _, _ = horus
        transport.create_group("g", ["a"])
        with pytest.raises(GroupError):
            transport.join("g", "ghost")

    def test_leave_installs_new_view(self, horus):
        transport, _, _ = horus
        transport.create_group("g", ["a", "b"])
        view = transport.leave("g", "b")
        assert "b" not in view
        assert view.view_id == 2

    def test_leave_non_member_raises(self, horus):
        transport, _, _ = horus
        transport.create_group("g", ["a"])
        with pytest.raises(NotMemberError):
            transport.leave("g", "b")

    def test_view_history_is_ordered(self, horus):
        transport, _, _ = horus
        transport.create_group("g", ["a"])
        transport.join("g", "b")
        transport.join("g", "c")
        history = transport.view_history("g")
        assert [view.view_id for view in history] == [1, 2, 3]


class TestMulticast:
    def test_multicast_reaches_every_member(self, horus):
        transport, loop, _ = horus
        received = {name: [] for name in ("a", "b", "c")}
        for name in received:
            transport.register_endpoint(name, received[name].append)
        transport.create_group("g", ["a", "b", "c"])
        loop.run()
        copies = transport.multicast("g", "a", {"text": "storm warning"})
        loop.run()
        assert copies == 3
        mcasts = {name: [msg for msg in messages
                         if msg.payload.get("event") == "mcast"]
                  for name, messages in received.items()}
        assert all(len(messages) == 1 for messages in mcasts.values())
        assert mcasts["b"][0].payload["body"] == {"text": "storm warning"}

    def test_multicast_excludes_non_members(self, horus):
        transport, loop, _ = horus
        received = []
        transport.register_endpoint("d", received.append)
        transport.create_group("g", ["a", "b"])
        transport.register_endpoint("a", lambda m: None)
        transport.register_endpoint("b", lambda m: None)
        loop.run()
        transport.multicast("g", "a", {"x": 1})
        loop.run()
        assert all(message.payload.get("event") != "mcast" for message in received)

    def test_sender_must_be_member(self, horus):
        transport, _, _ = horus
        transport.create_group("g", ["a", "b"])
        with pytest.raises(NotMemberError):
            transport.multicast("g", "d", {"x": 1})

    def test_multicast_sequence_numbers_increase(self, horus):
        transport, loop, _ = horus
        received = []
        transport.register_endpoint("a", received.append)
        transport.create_group("g", ["a"])
        loop.run()
        transport.multicast("g", "a", {"n": 1})
        transport.multicast("g", "a", {"n": 2})
        loop.run()
        seqnos = [message.payload["seqno"] for message in received
                  if message.payload.get("event") == "mcast"]
        assert seqnos == sorted(seqnos)
        assert len(set(seqnos)) == len(seqnos)


class TestFailureHandling:
    def test_crash_removes_member_after_detection_delay(self, horus):
        transport, loop, topology = horus
        transport.create_group("g", ["a", "b", "c"])
        loop.run()
        topology.mark_down("b")
        transport.on_site_down("b")
        loop.run()
        view = transport.group_view("g")
        assert "b" not in view
        assert view.view_id == 2

    def test_recovery_before_detection_keeps_member(self, horus):
        transport, loop, topology = horus
        transport.create_group("g", ["a", "b"])
        loop.run()
        topology.mark_down("b")
        transport.on_site_down("b")
        # The site recovers before the detection delay elapses.
        topology.mark_up("b")
        loop.run()
        assert "b" in transport.group_view("g")

    def test_recovered_site_does_not_rejoin_automatically(self, horus):
        transport, loop, topology = horus
        transport.create_group("g", ["a", "b"])
        loop.run()
        topology.mark_down("b")
        transport.on_site_down("b")
        loop.run()
        topology.mark_up("b")
        transport.on_site_up("b")
        loop.run()
        assert "b" not in transport.group_view("g")
        transport.join("g", "b")
        assert "b" in transport.group_view("g")

    def test_view_change_notifies_observers(self, horus):
        transport, loop, topology = horus
        transport.create_group("g", ["a", "b", "c"])
        observed = []
        transport.subscribe_views("g", observed.append)
        topology.mark_down("c")
        transport.on_site_down("c")
        loop.run()
        assert observed
        assert "c" not in observed[-1].members

    def test_members_receive_view_messages(self, horus):
        transport, loop, _ = horus
        received = []
        transport.register_endpoint("a", received.append)
        transport.create_group("g", ["a"])
        transport.join("g", "b")
        loop.run()
        views = [message for message in received
                 if message.kind == MessageKind.GROUP and message.payload["event"] == "view"]
        assert len(views) >= 2

    def test_crash_drops_point_to_point_channels(self, horus):
        transport, _, _ = horus
        from repro.net.message import Message
        message = Message(source="a", destination="b", kind=MessageKind.CONTROL)
        assert transport.setup_delay(message) == HorusTransport.CONNECT_SETUP
        assert transport.setup_delay(message) == HorusTransport.ESTABLISHED_SETUP
        transport.on_site_down("b")
        assert transport.setup_delay(message) == HorusTransport.CONNECT_SETUP
