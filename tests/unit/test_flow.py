"""Unit tests for the unified flow-control layer (repro.flow)."""

from __future__ import annotations

import random

import pytest

from repro.flow import CommitGovernor, CostModel, FlowController, RateEstimator


class TestCostModel:
    def test_linear_pricing(self):
        model = CostModel(base=0.001, per_byte=0.00001, sync=0.05)
        assert model.cost(items=3, size_bytes=1000, syncs=1) == pytest.approx(
            0.001 * 3 + 0.00001 * 1000 + 0.05)

    def test_terms_default_to_zero(self):
        assert CostModel().cost(items=10, size_bytes=10_000, syncs=10) == 0.0
        assert CostModel(base=0.1).cost(items=2, syncs=5) == pytest.approx(0.2)

    def test_jitter_bounds(self):
        model = CostModel(sync=0.1, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            cost = model.cost(items=0, syncs=1, rng=rng)
            assert 0.1 <= cost <= 0.1 * 1.5

    def test_jitter_without_rng_is_deterministic(self):
        model = CostModel(base=0.1, jitter=0.5)
        assert model.cost(items=1, syncs=0) == pytest.approx(0.1)

    def test_transport_constants_are_cost_models(self):
        # The shared layer is really consumed: the transports' setup prices
        # decompose into base/sync terms that reproduce the historic values.
        from repro.net.rsh import RshTransport
        from repro.net.tcp import TcpTransport
        assert TcpTransport.SETUP_COSTS.cost(items=1, syncs=1) == pytest.approx(
            TcpTransport.CONNECT_SETUP)
        assert TcpTransport.SETUP_COSTS.cost(items=1, syncs=0) == pytest.approx(
            TcpTransport.ESTABLISHED_SETUP)
        assert RshTransport.MESSAGE_COSTS.cost(items=0, syncs=1) == pytest.approx(
            RshTransport.MESSAGE_SETUP)

    def test_store_costs_build_the_wal_model(self):
        from repro.store import StoreCosts
        costs = StoreCosts(write_latency=0.001, write_byte_latency=0.0001,
                           fsync_latency=0.01)
        model = costs.wal_cost_model()
        assert model.cost(items=2, size_bytes=100, syncs=1) == pytest.approx(
            0.001 * 2 + 0.0001 * 100 + 0.01)


class TestRateEstimator:
    def test_no_rate_until_two_observations(self):
        estimator = RateEstimator()
        assert estimator.message_rate == 0.0
        estimator.observe(1.0, 100)
        assert estimator.message_rate == 0.0
        estimator.observe(1.5, 100)
        assert estimator.message_rate == pytest.approx(2.0)

    def test_steady_stream_converges_to_its_rate(self):
        estimator = RateEstimator(alpha=0.3)
        for step in range(50):
            estimator.observe(step * 0.1, 200)
        assert estimator.message_rate == pytest.approx(10.0)
        assert estimator.bytes_rate == pytest.approx(2000.0)

    def test_ewma_tracks_a_rate_change(self):
        estimator = RateEstimator(alpha=0.5)
        for step in range(10):
            estimator.observe(step * 1.0)       # 1 msg/s
        slow = estimator.message_rate
        for step in range(10):
            estimator.observe(10.0 + step * 0.01)   # 100 msg/s burst
        assert estimator.message_rate > slow * 10

    def test_simultaneous_posts_do_not_divide_by_zero(self):
        estimator = RateEstimator()
        estimator.observe(1.0)
        estimator.observe(1.0)
        assert estimator.message_rate > 0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            RateEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            RateEstimator(alpha=1.5)

    def test_totals_are_exact(self):
        estimator = RateEstimator()
        estimator.observe(0.0, 10)
        estimator.observe(1.0, 30)
        assert estimator.events == 2
        assert estimator.bytes_total == 40


class TestFlowController:
    def test_fixed_mode_is_a_pass_through(self):
        controller = FlowController(base_window=0.25)
        assert not controller.adaptive
        controller.observe(("a", "b"), 0.0, 100)
        controller.observe(("a", "b"), 0.001, 100)
        assert controller.window_for(("a", "b")) == 0.25
        assert controller.window_for(("never", "seen")) == 0.25

    def test_hot_pair_clamps_to_the_minimum_window(self):
        controller = FlowController(base_window=0.2, window_min=0.01,
                                    window_max=1.0, target_batch=4)
        for step in range(20):
            controller.observe(("a", "b"), step * 0.001)   # 1000 msg/s
        assert controller.window_for(("a", "b")) == 0.01   # floored at min

    def test_mid_rate_pair_sizes_to_the_target_batch(self):
        controller = FlowController(base_window=0.2, window_min=0.01,
                                    window_max=1.0, target_batch=4)
        for step in range(30):
            controller.observe(("a", "b"), step * 0.02)    # 50 msg/s
        # ideal window = target / rate = 4 / 50 = 0.08, inside the bounds.
        assert controller.window_for(("a", "b")) == pytest.approx(0.08, rel=0.05)

    def test_trickle_pair_gets_the_widest_window(self):
        controller = FlowController(base_window=0.2, window_min=0.01,
                                    window_max=1.0, target_batch=4)
        for step in range(10):
            controller.observe(("a", "b"), step * 5.0)     # 0.2 msg/s
        assert controller.window_for(("a", "b")) == 1.0    # clamped at max

    def test_unknown_pair_seeds_from_the_clamped_base_window(self):
        controller = FlowController(base_window=5.0, window_min=0.01,
                                    window_max=1.0)
        assert controller.window_for(("new", "pair")) == 1.0

    def test_reset_site_drops_every_touching_pair(self):
        controller = FlowController(base_window=0.2, window_min=0.01,
                                    window_max=1.0)
        for step in range(5):
            controller.observe(("a", "b"), step * 0.001)
            controller.observe(("b", "c"), step * 0.001)
            controller.observe(("c", "a"), step * 0.001)
        assert len(controller) == 3
        assert controller.reset_site("b") == 2
        assert len(controller) == 1
        assert controller.state(("c", "a")) is not None
        # The reset pair starts over from the seed window.
        assert controller.window_for(("a", "b")) == \
            controller.window_for(("fresh", "pair"))

    def test_inverted_bounds_are_refused_without_side_effects(self):
        controller = FlowController(base_window=0.1, window_min=0.01,
                                    window_max=1.0)
        with pytest.raises(ValueError):
            controller.configure(window_min=2.0, window_max=1.0)
        # The refused range must not stick: clamps keep the old bounds.
        assert controller.window_min == 0.01
        assert controller.window_max == 1.0
        assert controller.window_for(("a", "b")) == 0.1

    def test_alpha_reconfiguration_reaches_live_estimators(self):
        controller = FlowController(base_window=0.1, window_min=0.01,
                                    window_max=1.0, alpha=0.2)
        controller.observe(("a", "b"), 0.0)
        controller.configure(alpha=0.9)
        assert controller.state(("a", "b")).estimator.alpha == 0.9

    def test_telemetry_shape(self):
        controller = FlowController(base_window=0.1, window_min=0.01,
                                    window_max=1.0)
        controller.observe(("a", "b"), 0.0, 64)
        controller.observe(("a", "b"), 0.01, 64)
        telemetry = controller.telemetry()
        info = telemetry[("a", "b")]
        assert set(info) == {"window", "message_rate", "bytes_rate",
                             "messages", "bytes"}
        assert info["messages"] == 2
        assert info["bytes"] == 128


class TestCommitGovernor:
    def test_piggyback_defaults_on_and_can_be_disabled(self):
        # The governor owns exactly one decision — whether a pending
        # barrier may commit the batch early; the commit window itself
        # stays on the store's cost table (one live source of truth).
        assert CommitGovernor().piggyback is True
        assert CommitGovernor(piggyback=False).piggyback is False
