"""Unit tests for broker-mediated access to protected agents."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.scheduling.protected import (GUARDIAN_CABINET, admit_all, admit_authorized,
                                        admit_rate_limited, make_guardian_behaviour)


def protected_service(ctx, bc):
    """The agent whose name is kept secret: doubles a number."""
    bc.set("DOUBLED", bc.get("N", 0) * 2)
    ctx.cabinet("protected").put("met_by", bc.get("CALLER", "unknown"))
    yield ctx.end_meet("served")


@pytest.fixture
def kernel():
    kernel = Kernel(lan(["fort"]), transport="tcp", config=KernelConfig(rng_seed=4))
    kernel.install_agent("fort", "secret_service_xyzzy", protected_service, replace=True)
    return kernel


def request_via_guardian(kernel, requester="alice", n=21, op="request"):
    """Meet the guardian and return (granted, response briefcase)."""
    inner = Briefcase()
    inner.set("N", n)
    inner.set("CALLER", requester)
    outer = Briefcase()
    outer.set("OP", op)
    outer.set("REQUESTER", requester)
    outer.set("REQUEST", inner.to_wire())
    box = {}

    def client(ctx, bc):
        result = yield ctx.meet("guardian", outer)
        box["value"] = result.value
        return result.value

    kernel.launch("fort", client)
    kernel.run()
    return box["value"], outer


class TestAdmissionPolicies:
    def test_admit_all(self, kernel):
        kernel.install_agent("fort", "guardian",
                             make_guardian_behaviour("secret_service_xyzzy", admit_all),
                             replace=True)
        granted, outer = request_via_guardian(kernel)
        assert granted is True
        response = Briefcase.from_wire(outer.get("RESPONSE"))
        assert response.get("DOUBLED") == 42
        assert kernel.site("fort").cabinet("protected").get("met_by") == "alice"

    def test_admit_authorized_allows_listed_principals(self, kernel):
        kernel.install_agent(
            "fort", "guardian",
            make_guardian_behaviour("secret_service_xyzzy",
                                    admit_authorized({"alice"})),
            replace=True)
        granted, _ = request_via_guardian(kernel, requester="alice")
        assert granted is True

    def test_admit_authorized_queues_strangers(self, kernel):
        kernel.install_agent(
            "fort", "guardian",
            make_guardian_behaviour("secret_service_xyzzy",
                                    admit_authorized({"alice"})),
            replace=True)
        granted, outer = request_via_guardian(kernel, requester="mallory")
        assert granted is False
        assert outer.get("QUEUED_POSITION") == 1
        pending = kernel.site("fort").cabinet(GUARDIAN_CABINET).elements("pending")
        assert len(pending) == 1
        assert pending[0]["requester"] == "mallory"

    def test_rate_limit_queues_excess_requests(self, kernel):
        kernel.install_agent(
            "fort", "guardian",
            make_guardian_behaviour("secret_service_xyzzy",
                                    admit_rate_limited(max_per_window=2, window=100.0)),
            replace=True)
        outcomes = [request_via_guardian(kernel, requester=f"user{i}")[0] for i in range(4)]
        assert outcomes == [True, True, False, False]

    def test_request_records_are_always_kept(self, kernel):
        kernel.install_agent("fort", "guardian",
                             make_guardian_behaviour("secret_service_xyzzy"), replace=True)
        request_via_guardian(kernel, requester="alice")
        request_via_guardian(kernel, requester="bob")
        requests = kernel.site("fort").cabinet(GUARDIAN_CABINET).elements("requests")
        assert {entry["requester"] for entry in requests} == {"alice", "bob"}


class TestQueueAndDrain:
    def test_queue_by_default_then_drain(self, kernel):
        kernel.install_agent(
            "fort", "guardian",
            make_guardian_behaviour("secret_service_xyzzy", admit_all,
                                    queue_by_default=True),
            replace=True)
        granted, _ = request_via_guardian(kernel, requester="alice")
        assert granted is False

        forwarded, _ = request_via_guardian(kernel, op="drain")
        assert forwarded == 1
        # Draining met the protected agent with the queued briefcase.
        assert kernel.site("fort").cabinet("protected").get("met_by") == "alice"
        assert kernel.site("fort").cabinet(GUARDIAN_CABINET).elements("pending") == []

    def test_drain_keeps_requests_the_policy_still_refuses(self, kernel):
        kernel.install_agent(
            "fort", "guardian",
            make_guardian_behaviour("secret_service_xyzzy", admit_authorized({"nobody"}),
                                    queue_by_default=True),
            replace=True)
        request_via_guardian(kernel, requester="mallory")
        forwarded, _ = request_via_guardian(kernel, op="drain")
        assert forwarded == 0
        assert len(kernel.site("fort").cabinet(GUARDIAN_CABINET).elements("pending")) == 1

    def test_protected_name_never_appears_in_responses(self, kernel):
        """The whole point: the requester never learns the protected agent's name."""
        kernel.install_agent("fort", "guardian",
                             make_guardian_behaviour("secret_service_xyzzy"), replace=True)
        granted, outer = request_via_guardian(kernel)
        assert granted is True
        import pickle
        blob = repr(outer.to_wire()) + repr(pickle.dumps(outer.to_wire()))
        assert "secret_service_xyzzy" not in blob
