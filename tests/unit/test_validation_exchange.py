"""Unit tests for the validation agent and the vendor/shopper exchange protocol."""

from __future__ import annotations

import pytest

from repro.cash import (ECUS_FOLDER, KeyDirectory, Mint, VALIDATION_AGENT_NAME, Wallet,
                        identity_for, make_validation_behaviour, make_vendor_behaviour,
                        shopper_behaviour)
from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.net import lan


@pytest.fixture
def world():
    """A kernel with a market site, a validation agent and a mint."""
    kernel = Kernel(lan(["home", "market"]), transport="tcp",
                    config=KernelConfig(rng_seed=6))
    mint = Mint(seed=6)
    directory = KeyDirectory()
    kernel.install_agent("market", VALIDATION_AGENT_NAME,
                         make_validation_behaviour(mint), replace=True)
    register_behaviour("shopper", shopper_behaviour, replace=True)
    return kernel, mint, directory


def run_validation(kernel, ecus, operation="validate", split=None, exchange_id=None):
    """Meet the validation agent at the market with the given ECU records."""
    outcome = {}

    def client(ctx, bc):
        request = Briefcase()
        submit = request.folder("SUBMIT", create=True)
        for ecu in ecus:
            submit.push(ecu.to_wire() if hasattr(ecu, "to_wire") else ecu)
        if operation != "validate":
            request.set("OP", operation)
        if split is not None:
            request.folder("SPLIT", create=True).extend(split)
        if exchange_id is not None:
            request.set("EXCHANGE_ID", exchange_id)
        result = yield ctx.meet(VALIDATION_AGENT_NAME, request)
        outcome["value"] = result.value
        outcome["fresh"] = request.folder("FRESH").elements()
        outcome["rejected"] = request.folder("REJECTED").elements()
        return result.value

    kernel.launch("market", client)
    kernel.run()
    return outcome


class TestValidationAgent:
    def test_valid_ecus_are_replaced_with_fresh_ones(self, world):
        kernel, mint, _ = world
        ecus = mint.issue_many([5, 5])
        outcome = run_validation(kernel, ecus)
        assert outcome["value"] == 10
        assert len(outcome["fresh"]) == 2
        fresh_serials = {record["serial"] for record in outcome["fresh"]}
        assert fresh_serials.isdisjoint({ecu.serial for ecu in ecus})

    def test_spent_copies_are_rejected(self, world):
        kernel, mint, _ = world
        ecu = mint.issue(10)
        mint.retire_and_reissue(ecu)      # someone already spent it
        outcome = run_validation(kernel, [ecu])
        assert outcome["value"] == 0
        assert len(outcome["rejected"]) == 1
        assert "double spend" in outcome["rejected"][0]["reason"]

    def test_malformed_records_are_rejected_not_fatal(self, world):
        kernel, mint, _ = world
        outcome = run_validation(kernel, [{"amount": "garbage"}, mint.issue(5)])
        assert outcome["value"] == 5
        assert len(outcome["rejected"]) == 1

    def test_split_operation_makes_change(self, world):
        kernel, mint, _ = world
        ecu = mint.issue(10)
        outcome = run_validation(kernel, [ecu], operation="split", split=[7, 3])
        assert outcome["value"] == 10
        assert sorted(record["amount"] for record in outcome["fresh"]) == [3, 7]

    def test_witness_record_written_for_exchange(self, world):
        kernel, mint, _ = world
        run_validation(kernel, [mint.issue(5)], exchange_id="ex-1")
        witnesses = kernel.site("market").cabinet("audit").elements("witness")
        assert witnesses and witnesses[0]["exchange_id"] == "ex-1"
        assert witnesses[0]["amount"] == 5

    def test_money_supply_is_conserved_by_validation(self, world):
        kernel, mint, _ = world
        before = mint.outstanding_value() + 15
        run_validation(kernel, mint.issue_many([5, 5, 5]))
        assert mint.outstanding_value() == before


def launch_shopper(kernel, mint, directory, name, price=10, cheat=None, fund=15):
    """Build, fund and launch a shopper; returns its briefcase for inspection."""
    signer = directory.new_signer(name)
    briefcase = Briefcase()
    briefcase.set("HOME", "home")
    briefcase.set("VENDOR_SITE", "market")
    briefcase.set("VENDOR_NAME", "vendor")
    briefcase.set("PRICE", price)
    briefcase.set("EXCHANGE_ID", f"exchange-{name}")
    briefcase.set("IDENTITY", identity_for(signer))
    if cheat is not None:
        briefcase.set("CHEAT", cheat)
    if cheat == "double_spend":
        spent = mint.issue_many([5, 5])
        for ecu in spent:
            mint.retire_and_reissue(ecu)
        copies = briefcase.folder("SPENT_COPIES", create=True)
        for ecu in spent:
            copies.push(ecu.to_wire())
    elif fund:
        Wallet(briefcase).deposit(mint.issue_many([5] * (fund // 5)))
    kernel.launch("home", "shopper", briefcase, name=name)
    return briefcase


def outcomes_at_home(kernel):
    return kernel.site("home").cabinet("purchases").elements("outcomes")


class TestExchange:
    def install_vendor(self, kernel, directory, cheat=None, price=10):
        kernel.install_agent("market", "vendor",
                             make_vendor_behaviour(price=price,
                                                   signer=directory.new_signer("vendor"),
                                                   cheat=cheat),
                             replace=True)

    def test_honest_exchange_delivers_service_for_payment(self, world):
        kernel, mint, directory = world
        self.install_vendor(kernel, directory)
        launch_shopper(kernel, mint, directory, "alice")
        kernel.run()
        outcome = outcomes_at_home(kernel)[0]
        assert outcome["got_service"] is True
        assert outcome["vendor_summary"]["paid_enough"] is True
        # 15 funded, 10 paid: 5 comes back as change.
        assert outcome["remaining_balance"] == 5

    def test_vendor_till_banks_fresh_ecus(self, world):
        kernel, mint, directory = world
        self.install_vendor(kernel, directory)
        launch_shopper(kernel, mint, directory, "alice")
        kernel.run()
        till = kernel.site("market").cabinet("till")
        till_value = sum(record["amount"] for record in till.elements(ECUS_FOLDER))
        assert till_value == 10

    def test_double_spender_gets_no_service(self, world):
        kernel, mint, directory = world
        self.install_vendor(kernel, directory)
        launch_shopper(kernel, mint, directory, "mallory", cheat="double_spend")
        kernel.run()
        outcome = outcomes_at_home(kernel)[0]
        assert outcome["got_service"] is False
        assert outcome["vendor_summary"]["paid_enough"] is False
        assert mint.double_spend_attempts >= 1

    def test_claim_paid_cheat_gets_no_service(self, world):
        kernel, mint, directory = world
        self.install_vendor(kernel, directory)
        launch_shopper(kernel, mint, directory, "carol", cheat="claim_paid")
        kernel.run()
        outcome = outcomes_at_home(kernel)[0]
        assert outcome["got_service"] is False

    def test_underfunded_shopper_reports_insufficient_funds(self, world):
        kernel, mint, directory = world
        self.install_vendor(kernel, directory)
        launch_shopper(kernel, mint, directory, "pauper", fund=5)
        kernel.run()
        outcome = outcomes_at_home(kernel)[0]
        assert outcome["outcome"] == "insufficient-funds"
        assert outcome["got_service"] is False

    def test_cheating_vendor_takes_payment_without_service(self, world):
        kernel, mint, directory = world
        self.install_vendor(kernel, directory, cheat="no_service")
        launch_shopper(kernel, mint, directory, "victim")
        kernel.run()
        outcome = outcomes_at_home(kernel)[0]
        assert outcome["got_service"] is False
        assert outcome["vendor_summary"]["paid_enough"] is True

    def test_money_is_conserved_across_the_whole_exchange(self, world):
        kernel, mint, directory = world
        self.install_vendor(kernel, directory)
        launch_shopper(kernel, mint, directory, "alice")
        kernel.run()
        outcome = outcomes_at_home(kernel)[0]
        till = kernel.site("market").cabinet("till")
        till_value = sum(record["amount"] for record in till.elements(ECUS_FOLDER))
        assert outcome["remaining_balance"] + till_value == 15
        assert mint.outstanding_value() == 15
