"""Unit tests for the broker agent and its cabinet-backed state."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Folder, Kernel, KernelConfig
from repro.net import lan
from repro.scheduling import (BROKER_AGENT_NAME, BROKER_CABINET, BrokerState,
                              make_broker_behaviour)
from repro.scheduling.monitor import LOAD_REPORT_FOLDER


@pytest.fixture
def kernel():
    kernel = Kernel(lan(["brokerage", "s1", "s2"]), transport="tcp",
                    config=KernelConfig(rng_seed=8))
    kernel.install_agent("brokerage", BROKER_AGENT_NAME, make_broker_behaviour(),
                         replace=True)
    return kernel


def meet_broker(kernel, briefcase, site="brokerage"):
    """Meet the broker with *briefcase* and return (value, briefcase)."""
    box = {}

    def client(ctx, bc):
        result = yield ctx.meet(BROKER_AGENT_NAME, briefcase)
        box["value"] = result.value
        return result.value

    kernel.launch(site, client)
    kernel.run()
    return box["value"], briefcase


def register(kernel, site, capacity=1.0, service="compute"):
    request = Briefcase()
    request.set("OP", "register")
    request.set("SERVICE", service)
    request.set("SITE", site)
    request.set("AGENT", "compute")
    request.set("CAPACITY", capacity)
    return meet_broker(kernel, request)


def report(kernel, site, load, at):
    request = Briefcase()
    request.set("OP", "report")
    request.set("SITE", site)
    request.set("LOAD", load)
    request.set("AT", at)
    return meet_broker(kernel, request)


class TestBrokerOperations:
    def test_register_then_lookup(self, kernel):
        register(kernel, "s1")
        register(kernel, "s2", capacity=2.0)
        request = Briefcase()
        request.set("OP", "lookup")
        request.set("SERVICE", "compute")
        count, briefcase = meet_broker(kernel, request)
        assert count == 2
        sites = {entry["site"] for entry in briefcase.folder("PROVIDERS").elements()}
        assert sites == {"s1", "s2"}

    def test_lookup_of_unknown_service_returns_empty(self, kernel):
        request = Briefcase()
        request.set("OP", "lookup")
        request.set("SERVICE", "teleportation")
        count, briefcase = meet_broker(kernel, request)
        assert count == 0
        assert briefcase.folder("PROVIDERS").elements() == []

    def test_acquire_returns_a_provider_and_counts_assignment(self, kernel):
        register(kernel, "s1")
        request = Briefcase()
        request.set("OP", "acquire")
        request.set("SERVICE", "compute")
        provider, _ = meet_broker(kernel, request)
        assert provider["site"] == "s1"
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert state.assignments() == {"s1": 1}

    def test_acquire_without_providers_reports_error(self, kernel):
        request = Briefcase()
        request.set("OP", "acquire")
        request.set("SERVICE", "compute")
        provider, briefcase = meet_broker(kernel, request)
        assert provider is None
        assert "no provider" in briefcase.get("ERROR")

    def test_acquire_prefers_less_loaded_provider(self, kernel):
        register(kernel, "s1")
        register(kernel, "s2")
        report(kernel, "s1", load=9.0, at=1.0)
        report(kernel, "s2", load=0.5, at=1.0)
        request = Briefcase()
        request.set("OP", "acquire")
        request.set("SERVICE", "compute")
        provider, _ = meet_broker(kernel, request)
        assert provider["site"] == "s2"

    def test_stale_report_is_ignored(self, kernel):
        report(kernel, "s1", load=1.0, at=5.0)
        fresh, _ = report(kernel, "s1", load=9.0, at=2.0)    # older timestamp
        assert fresh is False
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert state.loads()["s1"].load == pytest.approx(1.0)

    def test_newer_report_replaces(self, kernel):
        report(kernel, "s1", load=1.0, at=1.0)
        report(kernel, "s1", load=3.0, at=2.0)
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert state.loads()["s1"].load == pytest.approx(3.0)
        assert state.reports_seen() == 2

    def test_load_report_folder_from_courier_is_absorbed(self, kernel):
        """Monitors deliver LOAD_REPORT folders through the courier path."""
        delivery = Briefcase()
        delivery.add(Folder(LOAD_REPORT_FOLDER,
                            [{"site": "s1", "load": 2.5, "at": 4.0}]))
        absorbed, _ = meet_broker(kernel, delivery)
        assert absorbed == 1
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert state.loads()["s1"].load == pytest.approx(2.5)

    def test_sync_merges_newer_rows_only(self, kernel):
        report(kernel, "s1", load=1.0, at=5.0)
        request = Briefcase()
        request.set("OP", "sync")
        request.set("LOADS", {
            "s1": {"site": "s1", "load": 9.0, "reported_at": 1.0,
                   "assigned_since_report": 0},
            "s2": {"site": "s2", "load": 2.0, "reported_at": 3.0,
                   "assigned_since_report": 0},
        })
        request.set("PROVIDERS_TABLE", {
            "compute@s2/compute": {"service": "compute", "site": "s2",
                                   "agent_name": "compute", "capacity": 1.0, "price": 0},
        })
        merged, briefcase = meet_broker(kernel, request)
        assert briefcase.get("MERGED") == {"loads": 1, "providers": 1}
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert state.loads()["s1"].load == pytest.approx(1.0)   # newer local row kept
        assert state.loads()["s2"].load == pytest.approx(2.0)
        assert len(state.providers("compute")) == 1

    def test_dump_exposes_full_state(self, kernel):
        register(kernel, "s1")
        report(kernel, "s1", load=1.0, at=1.0)
        request = Briefcase()
        request.set("OP", "dump")
        export, briefcase = meet_broker(kernel, request)
        assert "providers" in export and "loads" in export
        assert briefcase.get("ASSIGNMENTS") == {}

    def test_unknown_operation_reports_error(self, kernel):
        request = Briefcase()
        request.set("OP", "levitate")
        value, briefcase = meet_broker(kernel, request)
        assert value is None
        assert "unknown broker operation" in briefcase.get("ERROR")

    def test_acquire_with_ticket_agent_attaches_ticket(self):
        from repro.scheduling import TICKET_AGENT_NAME, TicketIssuer, make_ticket_behaviour
        kernel = Kernel(lan(["brokerage", "s1"]), transport="tcp",
                        config=KernelConfig(rng_seed=8))
        issuer = TicketIssuer()
        kernel.install_agent("brokerage", TICKET_AGENT_NAME, make_ticket_behaviour(issuer),
                             replace=True)
        kernel.install_agent("brokerage", BROKER_AGENT_NAME,
                             make_broker_behaviour(ticket_agent=TICKET_AGENT_NAME),
                             replace=True)
        register(kernel, "s1")
        request = Briefcase()
        request.set("OP", "acquire")
        request.set("SERVICE", "compute")
        request.set("CLIENT", "alice")
        provider, briefcase = meet_broker(kernel, request)
        assert provider["site"] == "s1"
        ticket = briefcase.get("TICKET")
        assert ticket is not None and ticket["holder"] == "alice"
        assert issuer.issued == 1


class TestBrokerState:
    def test_provider_rows_are_replaced_by_key(self, kernel):
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        from repro.scheduling.policies import ProviderInfo
        state.add_provider(ProviderInfo("compute", "s1", "compute", capacity=1.0))
        state.add_provider(ProviderInfo("compute", "s1", "compute", capacity=4.0))
        providers = state.providers("compute")
        assert len(providers) == 1
        assert providers[0].capacity == 4.0

    def test_note_assignment_updates_effective_load(self, kernel):
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        state.record_report("s1", 1.0, at=1.0)
        state.note_assignment("s1")
        state.note_assignment("s1")
        assert state.loads()["s1"].effective_load() == pytest.approx(3.0)
        assert state.assignments()["s1"] == 2

    def test_fresh_report_resets_assignment_counter(self, kernel):
        state = BrokerState(kernel.site("brokerage").cabinet(BROKER_CABINET))
        state.record_report("s1", 1.0, at=1.0)
        state.note_assignment("s1")
        state.record_report("s1", 2.0, at=2.0)
        assert state.loads()["s1"].effective_load() == pytest.approx(2.0)
