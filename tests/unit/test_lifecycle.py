"""Unit tests for the lifecycle ledger: AgentTable, retention policies, indexes.

Also holds the regression test for ``Kernel.launch`` accepting a negative
delay (it used to silently schedule into the past while ``launch_many``
raised).
"""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.agent import AgentState
from repro.core.errors import KernelError, UnknownAgentError
from repro.core.lifecycle import (AgentRecord, AgentTable, KeepAll, KeepCounts,
                                  KeepResults, make_retention)
from repro.net import lan


def _worker(ctx, bc):
    yield ctx.sleep(float(bc.get("WORK", 0.01)))
    return bc.get("N", ctx.site_name)


def _broken(ctx, bc):
    yield ctx.sleep(0)
    raise RuntimeError("boom")


def make_kernel(retention="keep-all", **config_kwargs):
    return Kernel(lan(["a", "b", "c"]), transport="tcp",
                  config=KernelConfig(rng_seed=7, **config_kwargs),
                  retention=retention)


class TestRetentionParsing:
    def test_strings_resolve_to_policies(self):
        assert isinstance(make_retention("keep-all"), KeepAll)
        assert isinstance(make_retention("keep-results"), KeepResults)
        assert isinstance(make_retention("keep-counts"), KeepCounts)
        assert make_retention("keep-counts:123").max_terminal == 123
        assert isinstance(make_retention(None), KeepAll)

    def test_policy_instances_pass_through(self):
        policy = KeepCounts(max_terminal=5)
        assert make_retention(policy) is policy

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_retention("keep-nothing")

    def test_argument_on_argless_policy_raises(self):
        with pytest.raises(ValueError):
            make_retention("keep-all:5")

    def test_negative_bound_raises(self):
        with pytest.raises(ValueError):
            KeepCounts(max_terminal=-1)


class TestKeepAll:
    def test_default_kernel_retains_full_instances(self):
        kernel = make_kernel()
        agent_id = kernel.launch("a", _worker)
        kernel.run()
        instance = kernel.agent(agent_id)
        assert not isinstance(instance, AgentRecord)
        assert instance.briefcase is not None
        assert kernel.result_of(agent_id) == "a"

    def test_counters_balance(self):
        kernel = make_kernel()
        for index in range(6):
            kernel.launch("abc"[index % 3], _worker)
        kernel.launch("a", _broken)
        kernel.run()
        counters = kernel.counters()
        assert counters["completed"] + counters["failed"] + counters["killed"] == \
            counters["launched"] == 7
        assert counters["archived"] == 0
        assert counters["retained"] == 7


class TestKeepResults:
    def test_terminal_agents_become_compact_records(self):
        kernel = make_kernel(retention="keep-results")
        briefcase = Briefcase()
        briefcase.set("N", 42)
        briefcase.set("BALLAST", b"\0" * 1024)
        agent_id = kernel.launch("a", _worker, briefcase)
        kernel.run()
        record = kernel.agent(agent_id)
        assert isinstance(record, AgentRecord)
        assert record.finished and record.ok
        assert kernel.result_of(agent_id) == 42
        # The expensive state is genuinely gone from the archived entry.
        assert not hasattr(record, "briefcase")
        assert not hasattr(record, "spec")
        assert not hasattr(record, "generator")

    def test_failed_agents_keep_their_error(self):
        kernel = make_kernel(retention="keep-results")
        agent_id = kernel.launch("a", _broken)
        kernel.run()
        record = kernel.agent(agent_id)
        assert record.state == AgentState.FAILED
        with pytest.raises(KernelError, match="boom"):
            kernel.result_of(agent_id)

    def test_config_retention_is_used_when_no_kwarg(self):
        kernel = Kernel(lan(["a", "b"]), transport="tcp",
                        config=KernelConfig(rng_seed=1, retention="keep-results"))
        agent_id = kernel.launch("a", _worker)
        kernel.run()
        assert isinstance(kernel.agent(agent_id), AgentRecord)

    def test_meets_work_under_archival(self):
        kernel = make_kernel(retention="keep-results")

        def service(ctx, bc):
            yield ctx.end_meet("answer")

        def client(ctx, bc):
            result = yield ctx.meet("service", Briefcase())
            return result.value

        kernel.install_agent("a", "service", service)
        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == "answer"

    def test_historical_site_scan_sees_records(self):
        kernel = make_kernel(retention="keep-results")
        kernel.launch("a", _worker)
        kernel.launch("a", _worker)
        kernel.run()
        assert kernel.agents_at("a") == []
        assert len(kernel.agents_at("a", active_only=False)) == 2


class TestKeepCounts:
    def test_ledger_is_bounded_and_counters_stay_exact(self):
        kernel = make_kernel(retention="keep-counts:5")
        ids = [kernel.launch("a", _worker) for _ in range(20)]
        kernel.run()
        assert kernel.completed == 20
        assert len(kernel.agents) <= 5
        assert kernel.table.evicted == 15
        # The survivors are the most recent terminal agents.
        for agent_id in ids[-5:]:
            assert kernel.result_of(agent_id) == "a"

    def test_evicted_agent_lookup_raises(self):
        kernel = make_kernel(retention="keep-counts:2")
        first = kernel.launch("a", _worker)
        for _ in range(5):
            kernel.launch("a", _worker)
        kernel.run()
        with pytest.raises(UnknownAgentError):
            kernel.agent(first)
        with pytest.raises(UnknownAgentError):
            kernel.result_of(first)

    def test_eviction_prunes_the_name_index(self):
        kernel = make_kernel(retention="keep-counts:3")
        for _ in range(10):
            kernel.launch("a", _worker, name="droplet")
        kernel.run()
        named = kernel.agents_named("droplet")
        assert len(named) == 3
        assert all(isinstance(entry, AgentRecord) for entry in named)


class TestNameIndex:
    def test_agents_named_matches_ledger_scan(self):
        kernel = make_kernel()
        for index in range(9):
            kernel.launch("abc"[index % 3], _worker,
                          name="even" if index % 2 == 0 else "odd")
        kernel.run()
        for name in ("even", "odd", "missing"):
            indexed = [entry.agent_id for entry in kernel.agents_named(name)]
            scanned = [agent.agent_id for agent in kernel.agents.values()
                       if agent.name == name]
            assert indexed == scanned

    def test_meet_callees_and_spawns_are_indexed(self):
        kernel = make_kernel()

        def child(ctx, bc):
            yield ctx.sleep(0)

        def parent(ctx, bc):
            yield ctx.spawn(child, name="spawnling")
            result = yield ctx.meet("helper", Briefcase())
            return result.value

        def helper(ctx, bc):
            yield ctx.end_meet("hi")

        kernel.install_agent("a", "helper", helper)
        kernel.launch("a", parent)
        kernel.run()
        assert len(kernel.agents_named("spawnling")) == 1
        assert len(kernel.agents_named("helper")) == 1


class TestTableUnit:
    def test_state_counts_snapshot(self):
        kernel = make_kernel()
        kernel.launch("a", _worker)
        kernel.launch("b", _broken)
        kernel.run()
        counts = kernel.table.state_counts()
        assert counts["launched"] == 2
        assert counts["completed"] == 1
        assert counts["failed"] == 1
        assert counts["active"] == 0
        assert counts["retained"] == 2

    def test_site_handshake_keeps_resident_index_exact(self):
        kernel = make_kernel()

        def sleeper(ctx, bc):
            yield ctx.sleep(5)

        agent_id = kernel.launch("a", sleeper)
        kernel.run(until=0.1)
        assert kernel.site("a").has_resident(agent_id)
        kernel.run()
        assert not kernel.site("a").has_resident(agent_id)

    def test_repr_mentions_retention(self):
        table = AgentTable("keep-results")
        assert "keep-results" in repr(table)


class TestLaunchDelayValidation:
    """Regression: launch() silently accepted a negative delay while
    launch_many() raised; both must validate identically."""

    def test_launch_negative_delay_raises(self):
        kernel = make_kernel()
        with pytest.raises(KernelError):
            kernel.launch("a", _worker, delay=-0.5)
        # Nothing was registered or indexed.
        assert kernel.launched == 0
        assert kernel.agents == {}
        assert kernel.site("a").resident_count() == 0

    def test_launch_many_negative_delay_still_raises(self):
        kernel = make_kernel()
        with pytest.raises(KernelError):
            kernel.launch_many([("a", _worker)], delay=-0.1)
        assert kernel.launched == 0

    def test_zero_and_positive_delays_accepted(self):
        kernel = make_kernel()
        kernel.launch("a", _worker, delay=0.0)
        kernel.launch("a", _worker, delay=1.5)
        kernel.run()
        assert kernel.completed == 2
