"""Unit tests for the point-to-point transports (rsh, tcp) and the Transport base."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import TransportError
from repro.net.message import Message, MessageKind
from repro.net.rsh import RshTransport
from repro.net.simclock import EventLoop
from repro.net.stats import NetworkStats
from repro.net.tcp import TcpTransport
from repro.net.topology import LinkSpec, Topology, lan


def make_transport(transport_cls, topology=None, seed=0):
    loop = EventLoop()
    topology = topology or lan(["a", "b", "c"])
    stats = NetworkStats()
    transport = transport_cls(loop, topology, stats, rng=random.Random(seed))
    return transport, loop, topology, stats


def agent_message(source="a", destination="b", size=1000):
    return Message(source=source, destination=destination,
                   kind=MessageKind.AGENT_TRANSFER, payload={}, declared_size=size)


class TestDeliveryPath:
    def test_message_is_delivered_to_registered_handler(self):
        transport, loop, _, stats = make_transport(TcpTransport)
        received = []
        transport.register_endpoint("b", received.append)
        event = transport.send(agent_message())
        assert event is not None
        loop.run()
        assert len(received) == 1
        assert received[0].delivered_at is not None
        assert stats.messages_delivered == 1
        assert stats.migrations == 1   # agent transfers count as migrations

    def test_unknown_source_raises(self):
        transport, _, _, _ = make_transport(TcpTransport)
        with pytest.raises(TransportError):
            transport.send(agent_message(source="ghost"))

    def test_unknown_destination_raises(self):
        transport, _, _, _ = make_transport(TcpTransport)
        with pytest.raises(TransportError):
            transport.send(agent_message(destination="ghost"))

    def test_send_from_down_site_is_dropped(self):
        transport, loop, topology, stats = make_transport(TcpTransport)
        topology.mark_down("a")
        assert transport.send(agent_message()) is None
        assert stats.messages_dropped == 1

    def test_send_to_down_site_is_dropped(self):
        transport, loop, topology, stats = make_transport(TcpTransport)
        topology.mark_down("b")
        assert transport.send(agent_message()) is None
        assert stats.messages_dropped == 1

    def test_destination_crash_while_in_flight_drops(self):
        transport, loop, topology, stats = make_transport(TcpTransport)
        received = []
        transport.register_endpoint("b", received.append)
        transport.send(agent_message())
        topology.mark_down("b")      # crashes before the delivery event fires
        loop.run()
        assert received == []
        assert stats.messages_dropped == 1

    def test_partition_in_flight_drops(self):
        transport, loop, topology, stats = make_transport(TcpTransport)
        received = []
        transport.register_endpoint("b", received.append)
        transport.send(agent_message())
        topology.set_partition([["a"], ["b", "c"]])
        loop.run()
        assert received == []

    def test_unregistered_destination_counts_as_drop(self):
        transport, loop, _, stats = make_transport(TcpTransport)
        transport.send(agent_message())
        loop.run()
        assert stats.messages_dropped == 1

    def test_lossy_link_drops_randomly(self):
        topology = Topology()
        topology.add_site("a")
        topology.add_site("b")
        topology.add_link("a", "b", LinkSpec(loss_rate=1.0))
        transport, loop, _, stats = make_transport(TcpTransport, topology=topology)
        transport.register_endpoint("b", lambda message: None)
        assert transport.send(agent_message()) is None
        assert stats.messages_dropped == 1

    def test_unregister_endpoint(self):
        transport, loop, _, stats = make_transport(TcpTransport)
        transport.register_endpoint("b", lambda message: None)
        transport.unregister_endpoint("b")
        transport.send(agent_message())
        loop.run()
        assert stats.messages_delivered == 0


class TestRshCostModel:
    def test_agent_transfers_cost_more_than_control(self):
        transport, _, _, _ = make_transport(RshTransport)
        agent = transport.setup_delay(agent_message())
        control = transport.setup_delay(Message(source="a", destination="b",
                                                 kind=MessageKind.CONTROL))
        assert agent > control

    def test_setup_never_cached(self):
        transport, _, _, _ = make_transport(RshTransport)
        first = transport.setup_delay(agent_message())
        second = transport.setup_delay(agent_message())
        # Both pay the full per-transfer start-up cost (with jitter).
        assert first >= RshTransport.AGENT_SETUP
        assert second >= RshTransport.AGENT_SETUP

    def test_rsh_is_much_slower_than_tcp_for_repeat_traffic(self):
        rsh, _, _, _ = make_transport(RshTransport)
        tcp, _, _, _ = make_transport(TcpTransport)
        rsh_cost = sum(rsh.setup_delay(agent_message()) for _ in range(5))
        tcp_cost = sum(tcp.setup_delay(agent_message()) for _ in range(5))
        assert rsh_cost > 3 * tcp_cost


class TestTcpConnectionCache:
    def test_first_contact_pays_connect_cost(self):
        transport, _, _, _ = make_transport(TcpTransport)
        assert transport.setup_delay(agent_message()) == TcpTransport.CONNECT_SETUP

    def test_established_connection_is_cheap(self):
        transport, _, _, _ = make_transport(TcpTransport)
        transport.setup_delay(agent_message())
        assert transport.setup_delay(agent_message()) == TcpTransport.ESTABLISHED_SETUP

    def test_connection_is_bidirectional(self):
        transport, _, _, _ = make_transport(TcpTransport)
        transport.setup_delay(agent_message(source="a", destination="b"))
        reverse = transport.setup_delay(agent_message(source="b", destination="a"))
        assert reverse == TcpTransport.ESTABLISHED_SETUP

    def test_connection_count_and_connect_ledger(self):
        transport, _, _, _ = make_transport(TcpTransport)
        transport.setup_delay(agent_message(source="a", destination="b"))
        transport.setup_delay(agent_message(source="a", destination="c"))
        assert transport.connection_count() == 2
        assert transport.connects[("a", "b")] == 1

    def test_site_crash_tears_down_its_connections(self):
        transport, _, _, _ = make_transport(TcpTransport)
        transport.setup_delay(agent_message(source="a", destination="b"))
        transport.setup_delay(agent_message(source="a", destination="c"))
        transport.on_site_down("b")
        assert transport.connection_count() == 1
        # Reconnecting to the crashed-and-recovered site pays the setup again.
        assert transport.setup_delay(agent_message(source="a", destination="b")) \
            == TcpTransport.CONNECT_SETUP
        assert transport.connects[("a", "b")] == 2
