"""Unit tests for the kernel: launching, syscalls, failure handling, ledgers."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.agent import AgentState
from repro.core.errors import (KernelError, MeetError, SyscallError, UnknownAgentError,
                               UnknownSiteError)
from repro.core.syscalls import Syscall
from repro.net import RshTransport, TcpTransport, lan


@pytest.fixture
def kernel():
    return Kernel(lan(["a", "b", "c"]), transport="tcp", config=KernelConfig(rng_seed=3))


class TestConstruction:
    def test_default_topology_and_transport(self):
        kernel = Kernel()
        assert len(kernel.site_names()) == 3
        assert kernel.transport.name == "tcp"

    def test_transport_by_name(self):
        assert Kernel(lan(["a", "b"]), transport="rsh").transport.name == "rsh"

    def test_transport_by_class(self):
        assert isinstance(Kernel(lan(["a", "b"]), transport=RshTransport).transport,
                          RshTransport)

    def test_transport_by_instance(self):
        kernel = Kernel(lan(["a", "b"]))
        other = Kernel(lan(["a", "b"]), transport=kernel.transport)
        assert other.transport is kernel.transport

    def test_unknown_transport_name_raises(self):
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), transport="carrier-pigeon")

    def test_invalid_transport_object_raises(self):
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), transport=42)

    def test_system_agents_installed_everywhere_by_default(self, kernel):
        for site_name in kernel.site_names():
            assert kernel.site(site_name).is_installed("rexec")
            assert kernel.site(site_name).is_installed("ag_py")

    def test_system_agents_can_be_skipped(self):
        kernel = Kernel(lan(["a", "b"]), install_system_agents=False)
        assert not kernel.site("a").is_installed("rexec")

    def test_unknown_site_lookup_raises(self, kernel):
        with pytest.raises(UnknownSiteError):
            kernel.site("ghost")


class TestLaunchingAndResults:
    def test_launch_callable_and_read_result(self, kernel):
        def agent(ctx, bc):
            yield ctx.sleep(0.01)
            return "value"

        agent_id = kernel.launch("a", agent)
        kernel.run()
        assert kernel.result_of(agent_id) == "value"
        assert kernel.agent(agent_id).ok

    def test_plain_function_behaviour_runs_to_completion(self, kernel):
        def plain(ctx, bc):
            return 99

        agent_id = kernel.launch("a", plain)
        kernel.run()
        assert kernel.result_of(agent_id) == 99

    def test_launch_by_installed_name(self, kernel):
        def named(ctx, bc):
            yield ctx.sleep(0)
            return "installed"

        kernel.install_agent("a", "named", named)
        agent_id = kernel.launch("a", "named")
        kernel.run()
        assert kernel.result_of(agent_id) == "installed"

    def test_launch_unknown_name_raises(self, kernel):
        with pytest.raises(UnknownAgentError):
            kernel.launch("a", "no-such-behaviour-anywhere")

    def test_launch_garbage_behaviour_raises(self, kernel):
        with pytest.raises(KernelError):
            kernel.launch("a", 123)

    def test_launch_at_unknown_site_raises(self, kernel):
        with pytest.raises(UnknownSiteError):
            kernel.launch("ghost", lambda ctx, bc: None)

    def test_result_of_unfinished_agent_raises(self, kernel):
        def sleeper(ctx, bc):
            yield ctx.sleep(100)

        agent_id = kernel.launch("a", sleeper)
        kernel.run(until=0.1)
        with pytest.raises(KernelError):
            kernel.result_of(agent_id)

    def test_result_of_failed_agent_raises(self, kernel):
        def broken(ctx, bc):
            yield ctx.sleep(0)
            raise RuntimeError("exploded")

        agent_id = kernel.launch("a", broken)
        kernel.run()
        assert kernel.agent(agent_id).state == AgentState.FAILED
        with pytest.raises(KernelError):
            kernel.result_of(agent_id)

    def test_failure_before_first_yield_is_recorded(self, kernel):
        def immediately_broken(ctx, bc):
            raise ValueError("bad agent")
            yield  # pragma: no cover

        agent_id = kernel.launch("a", immediately_broken)
        kernel.run()
        assert kernel.agent(agent_id).state == AgentState.FAILED
        assert kernel.failed == 1

    def test_unknown_agent_id_raises(self, kernel):
        with pytest.raises(UnknownAgentError):
            kernel.agent("agent-999999")

    def test_agents_named(self, kernel):
        def agent(ctx, bc):
            yield ctx.sleep(0)

        kernel.launch("a", agent, name="worker")
        kernel.launch("b", agent, name="worker")
        kernel.run()
        assert len(kernel.agents_named("worker")) == 2

    def test_launch_delay_defers_start(self, kernel):
        started = []

        def agent(ctx, bc):
            started.append(ctx.now)
            yield ctx.sleep(0)

        kernel.launch("a", agent, delay=0.75)
        kernel.run()
        assert started[0] == pytest.approx(0.75)

    def test_counters_snapshot(self, kernel):
        def agent(ctx, bc):
            yield ctx.sleep(0)
            return 1

        kernel.launch("a", agent)
        kernel.run()
        counters = kernel.counters()
        assert counters["launched"] == 1
        assert counters["completed"] == 1
        assert counters["failed"] == 0


class TestSyscalls:
    def test_sleep_advances_simulated_time(self, kernel):
        times = []

        def agent(ctx, bc):
            times.append(ctx.now)
            yield ctx.sleep(2.5)
            times.append(ctx.now)

        kernel.launch("a", agent)
        kernel.run()
        assert times[1] - times[0] >= 2.5

    def test_spawn_creates_independent_child(self, kernel):
        child_results = []

        def child(ctx, bc):
            yield ctx.sleep(0.01)
            child_results.append(bc.get("N"))
            return "child-done"

        def parent(ctx, bc):
            payload = Briefcase()
            payload.set("N", 7)
            child_id = yield ctx.spawn(child, payload)
            return child_id

        parent_id = kernel.launch("a", parent)
        kernel.run()
        child_id = kernel.result_of(parent_id)
        assert kernel.result_of(child_id) == "child-done"
        assert child_results == [7]
        assert child_id in kernel.agent(parent_id).children

    def test_spawn_by_unknown_name_delivers_error_to_parent(self, kernel):
        def parent(ctx, bc):
            try:
                yield ctx.spawn("missing-behaviour")
            except UnknownAgentError:
                return "caught"
            return "not-caught"

        parent_id = kernel.launch("a", parent)
        kernel.run()
        assert kernel.result_of(parent_id) == "caught"

    def test_terminate_syscall_finishes_agent(self, kernel):
        def agent(ctx, bc):
            yield ctx.terminate("early-exit")
            return "never-reached"    # pragma: no cover

        agent_id = kernel.launch("a", agent)
        kernel.run()
        assert kernel.result_of(agent_id) == "early-exit"

    def test_transmit_denied_for_ordinary_agents(self, kernel):
        def ordinary(ctx, bc):
            try:
                yield ctx.transmit("b", "ag_py", Briefcase())
            except SyscallError:
                return "denied"
            return "allowed"

        agent_id = kernel.launch("a", ordinary)
        kernel.run()
        assert kernel.result_of(agent_id) == "denied"

    def test_transmit_to_unknown_site_errors_for_system_agent(self, kernel):
        def system_agent(ctx, bc):
            try:
                yield ctx.transmit("ghost", "ag_py", Briefcase())
            except SyscallError:
                return "no-route"
            return "sent"

        agent_id = kernel.launch("a", system_agent, system=True)
        kernel.run()
        assert kernel.result_of(agent_id) == "no-route"

    def test_yielding_non_syscall_delivers_error(self, kernel):
        def confused(ctx, bc):
            try:
                yield "not a syscall"
            except SyscallError:
                return "told-off"
            return "accepted"

        agent_id = kernel.launch("a", confused)
        kernel.run()
        assert kernel.result_of(agent_id) == "told-off"

    def test_yielding_unknown_syscall_subclass_delivers_error(self, kernel):
        class Mystery(Syscall):
            pass

        def agent(ctx, bc):
            try:
                yield Mystery()
            except SyscallError:
                return "unsupported"
            return "supported"

        agent_id = kernel.launch("a", agent)
        kernel.run()
        assert kernel.result_of(agent_id) == "unsupported"

    def test_runaway_agent_is_killed(self):
        kernel = Kernel(lan(["a"]), config=KernelConfig(max_agent_steps=50, rng_seed=1))

        def runaway(ctx, bc):
            while True:
                yield ctx.sleep(0)

        agent_id = kernel.launch("a", runaway)
        kernel.run(max_events=5000)
        assert kernel.agent(agent_id).state == AgentState.KILLED
        assert kernel.killed == 1


class TestMeetSemantics:
    def test_meet_returns_callee_value_and_briefcase(self, kernel):
        def service(ctx, bc):
            bc.set("ANSWER", 42)
            yield ctx.end_meet("ok")

        kernel.install_agent("a", "service", service)

        def client(ctx, bc):
            request = Briefcase()
            result = yield ctx.meet("service", request)
            return (result.value, request.get("ANSWER"))

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == ("ok", 42)

    def test_meet_implicit_end_on_return(self, kernel):
        def service(ctx, bc):
            yield ctx.sleep(0.01)
            return "implicit"

        kernel.install_agent("a", "service", service)

        def client(ctx, bc):
            result = yield ctx.meet("service")
            return result.value

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == "implicit"

    def test_meet_unknown_agent_raises_in_caller(self, kernel):
        def client(ctx, bc):
            try:
                yield ctx.meet("nonexistent")
            except MeetError:
                return "missing"
            return "found"

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == "missing"

    def test_meet_callee_failure_propagates_as_meet_error(self, kernel):
        def broken_service(ctx, bc):
            yield ctx.sleep(0)
            raise RuntimeError("service blew up")

        kernel.install_agent("a", "broken", broken_service)

        def client(ctx, bc):
            try:
                yield ctx.meet("broken")
            except MeetError:
                return "callee-failed"
            return "fine"

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == "callee-failed"
        assert kernel.failed == 1

    def test_callee_continues_after_end_meet(self, kernel):
        def service(ctx, bc):
            yield ctx.end_meet("early-answer")
            yield ctx.sleep(0.5)
            ctx.cabinet("after").put("done", ctx.now)
            return "late-finish"

        kernel.install_agent("a", "service", service)

        def client(ctx, bc):
            result = yield ctx.meet("service")
            return (result.value, ctx.now)

        agent_id = kernel.launch("a", client)
        kernel.run()
        value, client_resumed_at = kernel.result_of(agent_id)
        assert value == "early-answer"
        # The caller resumed long before the callee finished.
        assert kernel.site("a").cabinet("after").get("done") > client_resumed_at

    def test_nested_meets(self, kernel):
        def inner(ctx, bc):
            bc.set("TRACE", "inner")
            yield ctx.end_meet("inner-value")

        def outer(ctx, bc):
            nested = Briefcase()
            result = yield ctx.meet("inner", nested)
            bc.set("TRACE", f"outer({result.value})")
            yield ctx.end_meet("outer-value")

        kernel.install_agent("a", "inner", inner)
        kernel.install_agent("a", "outer", outer)

        def client(ctx, bc):
            request = Briefcase()
            result = yield ctx.meet("outer", request)
            return (result.value, request.get("TRACE"))

        agent_id = kernel.launch("a", client)
        kernel.run()
        assert kernel.result_of(agent_id) == ("outer-value", "outer(inner-value)")

    def test_meets_counter(self, kernel):
        def service(ctx, bc):
            yield ctx.end_meet(None)

        kernel.install_agent("a", "service", service)

        def client(ctx, bc):
            yield ctx.meet("service")
            yield ctx.meet("service")
            return "done"

        kernel.launch("a", client)
        kernel.run()
        assert kernel.meets == 2


class TestFailureInjection:
    def test_crash_kills_resident_agents(self, kernel):
        def sleeper(ctx, bc):
            yield ctx.sleep(10)

        victim = kernel.launch("b", sleeper)
        survivor = kernel.launch("a", sleeper)
        kernel.loop.schedule(1.0, lambda: kernel.crash_site("b"))
        kernel.run()
        assert kernel.agent(victim).state == AgentState.KILLED
        assert kernel.agent(survivor).state == AgentState.DONE

    def test_crash_is_idempotent(self, kernel):
        kernel.crash_site("b")
        kernel.crash_site("b")
        assert kernel.site("b").crash_count == 1

    def test_recover_is_idempotent(self, kernel):
        kernel.crash_site("b")
        kernel.recover_site("b")
        kernel.recover_site("b")
        assert kernel.site("b").alive

    def test_launch_on_crashed_site_kills_agent(self, kernel):
        kernel.crash_site("b")

        def agent(ctx, bc):
            yield ctx.sleep(0)

        agent_id = kernel.launch("b", agent)
        kernel.run()
        assert kernel.agent(agent_id).state == AgentState.KILLED

    def test_partition_blocks_migration(self, kernel):
        from repro.core.codec import code_for

        kernel.partition([["a"], ["b", "c"]])

        def mover(ctx, bc):
            request = Briefcase()
            request.set("HOST", "b")
            request.set("CONTACT", "ag_py")
            request.set("CODE", code_for("shell"))
            result = yield ctx.meet("rexec", request)
            return result.value

        agent_id = kernel.launch("a", mover)
        kernel.run()
        assert kernel.result_of(agent_id) is False
        kernel.heal_partition()

    def test_site_load_counts_active_agents(self, kernel):
        def sleeper(ctx, bc):
            yield ctx.sleep(5)

        kernel.launch("a", sleeper)
        kernel.launch("a", sleeper)
        kernel.run(until=1.0)
        assert kernel.site_load("a") == pytest.approx(2.0)
        assert len(kernel.agents_at("a")) == 2

    def test_event_log_records_agent_messages(self, kernel):
        def chatty(ctx, bc):
            ctx.log("hello log")
            yield ctx.sleep(0)

        kernel.launch("a", chatty)
        kernel.run()
        assert any("hello log" in entry[3] for entry in kernel.event_log)


class TestLateSiteRegistration:
    def test_add_site_is_fully_wired(self, kernel):
        site = kernel.add_site("d", links=["a", ("b", None)])
        assert "d" in kernel.site_names()
        assert kernel.topology.has_site("d")
        assert site.is_installed("rexec")           # system agents installed

        # Agents can launch there and traffic routes over the new links.
        from repro.core.registry import register_behaviour

        def hopper(ctx, bc):
            if ctx.site_name == "d":
                yield ctx.sleep(0)
                return "arrived"
            yield ctx.jump(bc, "d")
            return "moved"

        register_behaviour("late_site_hopper", hopper, replace=True)
        kernel.launch("a", "late_site_hopper", Briefcase())
        kernel.run()
        assert kernel.arrivals == 1
        assert kernel.agents_at("d", active_only=False)

    def test_add_site_rejects_duplicates_and_unknown_peers(self, kernel):
        with pytest.raises(KernelError):
            kernel.add_site("a")
        with pytest.raises(UnknownSiteError):
            kernel.add_site("d", links=["nope"])
        assert "d" not in kernel.site_names()       # nothing half-registered

    def test_on_site_added_hooks_fire(self, kernel):
        seen = []
        kernel.on_site_added(seen.append)
        kernel.add_site("d", links=["a"])
        kernel.add_site("e", links=["d"])
        assert seen == ["d", "e"]

    def test_late_site_without_system_agents(self, kernel):
        site = kernel.add_site("bare", links=["a"], install_system_agents=False)
        assert not site.is_installed("rexec")

    def test_late_site_inherits_the_construction_population(self):
        from repro.net import lan
        bare_kernel = Kernel(lan(["a", "b"]), install_system_agents=False)
        # No explicit override: the late site matches the founding sites
        # (no system agents), not add_site's own historical default.
        site = bare_kernel.add_site("c", links=["a"])
        assert not site.is_installed("rexec")
        assert site.is_installed("rexec") == bare_kernel.site("a").is_installed("rexec")

    def test_adaptive_knobs_without_a_window_are_rejected(self):
        from repro.net import lan
        for knobs in ({"delivery_batch_max_messages": 4},
                      {"delivery_batch_max_bytes": 1024},
                      {"delivery_batch_deadline": 0.5}):
            with pytest.raises(KernelError):
                Kernel(lan(["a", "b"]), config=KernelConfig(**knobs))
        # With a window they are accepted.
        Kernel(lan(["a", "b"]), config=KernelConfig(
            delivery_batch_window=0.1, delivery_batch_max_messages=4))

    def test_flow_knobs_without_a_window_are_rejected(self):
        # Same guard as the thresholds: flow bounds size per-pair windows
        # of a fabric that must be on for any outbox to exist.
        from repro.net import lan
        for knobs in ({"flow_window_min": 0.05},
                      {"flow_window_max": 1.0},
                      {"flow_window_min": 0.05, "flow_window_max": 1.0}):
            with pytest.raises(KernelError):
                Kernel(lan(["a", "b"]), config=KernelConfig(**knobs))
        # With the fabric on they are accepted and reach the transport.
        kernel = Kernel(lan(["a", "b"]), config=KernelConfig(
            delivery_batch_window=0.1, flow_window_min=0.05,
            flow_window_max=1.0, flow_target_batch=4, flow_ewma_alpha=0.5))
        assert kernel.transport.flow.adaptive
        assert kernel.transport.flow.window_min == 0.05
        assert kernel.transport.flow.window_max == 1.0
        assert kernel.transport.flow.target_batch == 4
        assert kernel.transport.flow.alpha == 0.5

    def test_inverted_flow_window_bounds_are_rejected(self):
        from repro.net import lan
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), config=KernelConfig(
                delivery_batch_window=0.1, flow_window_min=2.0,
                flow_window_max=1.0))

    def test_flow_floor_without_a_ceiling_is_rejected(self):
        # flow_window_min alone is silently inert (adaptive mode keys on
        # flow_window_max > 0): refuse it instead of ignoring it.
        from repro.net import lan
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), config=KernelConfig(
                delivery_batch_window=0.1, flow_window_min=0.05))

    def test_flow_tuning_typos_are_caught_even_with_the_fabric_off(self):
        # target_batch/ewma_alpha are validated unconditionally — a typo
        # must not lie dormant until someone later enables the window.
        from repro.net import lan
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), config=KernelConfig(flow_target_batch=0))
        with pytest.raises(KernelError):
            Kernel(lan(["a", "b"]), config=KernelConfig(flow_ewma_alpha=7.0))

    def test_negative_flow_bounds_are_rejected(self):
        # Negative knobs reach configure_batching and raise there, exactly
        # like the negative threshold knobs.
        from repro.core.errors import TransportError
        from repro.net import lan
        with pytest.raises(TransportError):
            Kernel(lan(["a", "b"]), config=KernelConfig(
                delivery_batch_window=0.1, flow_window_min=-0.5))
        with pytest.raises(TransportError):
            Kernel(lan(["a", "b"]), config=KernelConfig(
                delivery_batch_window=0.1, flow_window_max=-1.0))


class TestShardedRunSemantics:
    """run(until=...) / run(max_events=...) keep their meaning under shards."""

    def _build(self, shards=4, n_agents=12):
        names = [f"s{i}" for i in range(8)]
        kernel = Kernel(lan(names), transport="tcp",
                        config=KernelConfig(rng_seed=3, shards=shards))

        def ticker(ctx, bc):
            for _ in range(int(bc.get("TICKS", 5))):
                yield ctx.sleep(0.1)
            return ctx.site_name

        for index in range(n_agents):
            kernel.launch(names[index % len(names)], ticker, Briefcase())
        return kernel

    def test_until_is_global_every_shard_clock_lands_on_it(self):
        kernel = self._build()
        kernel.run(until=0.25)
        assert kernel.now == pytest.approx(0.25)
        for engine in kernel._engines:
            # No shard's clock passes the target, and on a clean finish
            # every one of them lands exactly on it.
            assert engine.loop.now == pytest.approx(0.25)
        assert kernel.completed == 0  # the tickers need 0.5s
        kernel.run()
        assert kernel.completed == kernel.launched

    def test_until_never_overshoots_even_mid_burst(self):
        kernel = self._build()
        kernel.run(until=0.123)
        for engine in kernel._engines:
            assert engine.loop.now <= 0.123 + 1e-9

    def test_max_events_is_one_global_budget(self):
        budgeted = self._build()
        executed = budgeted.run(max_events=10)
        assert executed == 10
        free = self._build()
        total = free.run()
        # The same system without a budget runs far more than 10 events:
        # the cap genuinely limited the cluster, not one shard.
        assert total > 10
        # Resuming after the budget finishes the run with the remainder.
        assert budgeted.run() == total - 10
        assert budgeted.completed == budgeted.launched

    def test_budget_exhaustion_leaves_clocks_on_their_last_event(self):
        kernel = self._build()
        kernel.run(max_events=7)
        # At least one shard is mid-stream; nobody was advanced past the
        # events it still has queued (resuming would otherwise raise).
        assert kernel.run() > 0
        assert kernel.completed == kernel.launched

    def test_sharded_run_matches_classic_run_exactly(self):
        sharded = self._build(shards=4)
        classic = self._build(shards=1)
        assert sharded.run(until=0.35) == classic.run(until=0.35)
        assert sharded.counters() == classic.counters()
        assert sharded.run() == classic.run()
        assert sharded.counters() == classic.counters()
        # After quiescence each clock rests on its own shard's last event,
        # so `now` agrees only to within one inter-event gap.
        assert sharded.now == pytest.approx(classic.now, abs=0.05)


class TestKernelContextManager:
    """`with Kernel(...)` calls close() on exit; close is idempotent."""

    def test_classic_kernel_context_manager(self):
        with Kernel(lan(["a", "b"]), config=KernelConfig(rng_seed=3)) as kernel:
            agent_id = kernel.launch("a", _noop_behaviour)
            kernel.run()
        assert kernel.completed == 1
        assert kernel.result_of(agent_id) == "done"
        kernel.close()  # idempotent after __exit__

    def test_enter_returns_the_kernel_itself(self):
        kernel = Kernel(lan(["a"]), install_system_agents=False)
        try:
            assert kernel.__enter__() is kernel
        finally:
            kernel.close()

    def test_sharded_kernel_context_manager_closes_backend(self):
        config = KernelConfig(rng_seed=5, shards=2, shard_backend="thread")
        with Kernel(lan(["a", "b", "c", "d"]), config=config) as kernel:
            kernel.launch("a", _noop_behaviour)
            kernel.run()
            assert kernel.completed == 1
        # The thread pool was shut down by close(); running again lazily
        # rebuilds it, so the kernel object stays usable.
        kernel.close()

    def test_close_propagates_exceptions_but_still_closes(self):
        kernel = Kernel(lan(["a"]), install_system_agents=False,
                        config=KernelConfig(durability="wal-group-commit"))
        with pytest.raises(RuntimeError, match="boom"):
            with kernel:
                raise RuntimeError("boom")
        assert kernel.store("a").sink is not None  # close ran without error


def _noop_behaviour(ctx, briefcase):
    yield ctx.sleep(0)
    return "done"
