"""Unit tests for the discrete-event clock and event loop (repro.net.simclock)."""

from __future__ import annotations

import pytest

from repro.core.errors import KernelError
from repro.net.simclock import PAST_EPSILON, Event, EventLoop, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_cannot_move_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(KernelError):
            clock._advance_to(5.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock._advance_to(3.5)
        assert clock.now == 3.5


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(0.3, lambda: fired.append("late"))
        loop.schedule(0.1, lambda: fired.append("early"))
        loop.schedule(0.2, lambda: fired.append("middle"))
        loop.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for index in range(5):
            loop.schedule(1.0, lambda index=index: fired.append(index))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_times(self):
        loop = EventLoop()
        times = []
        loop.schedule(0.5, lambda: times.append(loop.now))
        loop.schedule(1.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [0.5, 1.5]

    def test_negative_delay_is_rejected(self):
        with pytest.raises(KernelError):
            EventLoop().schedule(-0.1, lambda: None)

    def test_zero_delay_is_allowed(self):
        loop = EventLoop()
        fired = []
        loop.schedule(0.0, lambda: fired.append(True))
        loop.run()
        assert fired == [True]

    def test_cancel_prevents_firing(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(0.1, lambda: fired.append(True))
        event.cancel()
        loop.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.schedule(0.1, lambda: None)
        cancel = loop.schedule(0.2, lambda: None)
        cancel.cancel()
        assert loop.pending == 1
        del keep

    def test_events_scheduled_during_run_execute(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append("first")
            loop.schedule(0.1, lambda: fired.append("nested"))

        loop.schedule(0.1, first)
        loop.run()
        assert fired == ["first", "nested"]

    def test_run_returns_number_of_events(self):
        loop = EventLoop()
        for _ in range(3):
            loop.schedule(0.1, lambda: None)
        assert loop.run() == 3
        assert loop.processed == 3

    def test_run_with_max_events(self):
        loop = EventLoop()
        for _ in range(10):
            loop.schedule(0.1, lambda: None)
        assert loop.run(max_events=4) == 4
        assert loop.pending == 6

    def test_run_until_respects_horizon(self):
        loop = EventLoop()
        fired = []
        loop.schedule(0.5, lambda: fired.append("early"))
        loop.schedule(2.0, lambda: fired.append("late"))
        loop.run_until(1.0)
        assert fired == ["early"]
        assert loop.now == pytest.approx(1.0)
        loop.run()
        assert fired == ["early", "late"]

    def test_schedule_at_absolute_time(self):
        loop = EventLoop()
        times = []
        loop.schedule_at(2.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [pytest.approx(2.5)]

    def test_schedule_at_past_time_raises(self):
        # schedule() has always rejected negative delays; schedule_at used to
        # silently clamp past timestamps to "now" instead.  Both entry points
        # now agree: genuinely past times are scheduling bugs.
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(KernelError):
            loop.schedule_at(0.5, lambda: None)
        with pytest.raises(KernelError):
            loop.schedule(-0.5, lambda: None)

    def test_schedule_at_within_epsilon_clamps_to_now(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        times = []
        loop.schedule_at(1.0 - PAST_EPSILON / 2, lambda: times.append(loop.now))
        loop.schedule_at(1.0, lambda: times.append(loop.now))
        loop.run()
        assert times == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_schedule_many_batch(self):
        loop = EventLoop()
        fired = []
        events = loop.schedule_many([
            (0.3, lambda: fired.append("late"), "late"),
            (0.1, lambda: fired.append("early")),
            (0.2, lambda: fired.append("middle"), "middle"),
        ])
        assert len(events) == 3
        assert loop.pending == 3
        loop.run()
        assert fired == ["early", "middle", "late"]

    def test_schedule_many_large_batch_heapifies(self):
        loop = EventLoop()
        fired = []
        loop.schedule(0.05, lambda: fired.append(-1))
        loop.schedule_many([(0.1 * (index + 1), lambda index=index: fired.append(index))
                            for index in range(32)])
        loop.run()
        assert fired == [-1] + list(range(32))

    def test_schedule_many_interleaves_with_schedule_ordering(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append("single"))
        loop.schedule_many([(1.0, lambda: fired.append("batch-a")),
                            (1.0, lambda: fired.append("batch-b"))])
        loop.run()
        assert fired == ["single", "batch-a", "batch-b"]

    def test_schedule_many_rejects_negative_delay(self):
        with pytest.raises(KernelError):
            EventLoop().schedule_many([(0.1, lambda: None), (-0.1, lambda: None)])

    def test_pending_is_live_counter_and_cancelled_entries_compact(self):
        loop = EventLoop()
        events = [loop.schedule(1.0 + index, lambda: None) for index in range(200)]
        assert loop.pending == 200
        for event in events[:150]:
            event.cancel()
        assert loop.pending == 50
        # Cancelled entries beyond half the heap are purged in bulk.
        assert len(loop._heap) <= 100
        assert loop.run() == 50

    def test_cancel_is_idempotent_for_the_live_counter(self):
        loop = EventLoop()
        event = loop.schedule(0.1, lambda: None)
        loop.schedule(0.2, lambda: None)
        event.cancel()
        event.cancel()
        assert loop.pending == 1
        assert loop.run() == 1

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        loop = EventLoop()
        event = loop.schedule(0.1, lambda: None)
        loop.run()
        event.cancel()
        assert loop.pending == 0
        loop.schedule(0.1, lambda: None)
        assert loop.pending == 1
        assert loop.run() == 1

    def test_step_on_empty_loop_returns_false(self):
        assert EventLoop().step() is False

    def test_event_ordering(self):
        early = Event(time=1.0, seq=0, callback=lambda: None)
        late = Event(time=2.0, seq=1, callback=lambda: None)
        assert early < late
        assert late > early
        assert early <= late

    def test_event_is_slotted(self):
        event = Event(time=1.0, seq=0, callback=lambda: None)
        assert not hasattr(event, "__dict__")
        with pytest.raises(AttributeError):
            event.arbitrary_attribute = 1
