"""Unit tests for the StormCast pipelines: mobile collector vs client-server baseline."""

from __future__ import annotations

import pytest

from repro.apps.stormcast import (StormCastParams, build_stormcast_kernel, launch_collector,
                                  run_agent_pipeline, run_client_server)
from repro.apps.stormcast.baseline import BASELINE_CABINET
from repro.apps.stormcast.collector import STORMCAST_CABINET
from repro.net import FailureSchedule


SMALL = StormCastParams(n_sensors=4, samples_per_site=60, raw_payload_bytes=200,
                        storm_rate=0.05, seed=19)


class TestAgentPipeline:
    def test_collector_covers_every_sensor_site(self):
        result = run_agent_pipeline(SMALL)
        assert result.sites_covered == SMALL.n_sensors

    def test_collector_filters_most_of_the_data(self):
        result = run_agent_pipeline(SMALL)
        assert result.raw_records_total == SMALL.n_sensors * SMALL.samples_per_site
        assert 0 < result.observations_carried < result.raw_records_total * 0.5

    def test_predictions_are_issued_for_every_station(self):
        result = run_agent_pipeline(SMALL)
        stations = {prediction["station"] for prediction in result.predictions}
        assert stations == set(SMALL.sensor_names())

    def test_collection_summary_recorded_at_hub(self):
        kernel = build_stormcast_kernel(SMALL)
        launch_collector(kernel, SMALL.hub_name, SMALL.sensor_names())
        kernel.run(until=SMALL.run_until)
        summaries = kernel.site(SMALL.hub_name).cabinet(STORMCAST_CABINET).elements(
            "collections")
        assert len(summaries) == 1
        assert summaries[0]["observations"] > 0


class TestClientServerBaseline:
    def test_every_sensor_site_responds(self):
        result = run_client_server(SMALL)
        assert result.sites_covered == SMALL.n_sensors

    def test_all_raw_records_cross_the_network(self):
        result = run_client_server(SMALL)
        assert result.raw_records_total == SMALL.n_sensors * SMALL.samples_per_site

    def test_summary_recorded_at_hub(self):
        result = run_client_server(SMALL)
        assert result.duration > 0

    def test_crashed_sensor_site_never_answers(self):
        params = StormCastParams(n_sensors=4, samples_per_site=30, raw_payload_bytes=100,
                                 seed=19, run_until=120.0,
                                 failures=FailureSchedule().crash("sensor02", at=0.0))
        result = run_client_server(params)
        assert result.sites_covered == params.n_sensors - 1
        assert result.raw_records_total == (params.n_sensors - 1) * params.samples_per_site


class TestComparison:
    def test_agent_pipeline_moves_far_fewer_bytes(self):
        agent = run_agent_pipeline(SMALL)
        server = run_client_server(SMALL)
        assert agent.bytes_on_wire * 3 < server.bytes_on_wire

    def test_both_pipelines_issue_identical_alerts(self):
        agent = run_agent_pipeline(SMALL)
        server = run_client_server(SMALL)
        assert agent.alert_stations() == server.alert_stations()

    def test_savings_grow_with_raw_record_size(self):
        small_payload = StormCastParams(n_sensors=4, samples_per_site=60,
                                        raw_payload_bytes=100, storm_rate=0.05, seed=19)
        big_payload = StormCastParams(n_sensors=4, samples_per_site=60,
                                      raw_payload_bytes=2000, storm_rate=0.05, seed=19)

        def savings(params):
            agent = run_agent_pipeline(params)
            server = run_client_server(params)
            return server.bytes_on_wire / max(1, agent.bytes_on_wire)

        assert savings(big_payload) > savings(small_payload)

    def test_client_server_does_no_migrations(self):
        assert run_client_server(SMALL).migrations == 0
        assert run_agent_pipeline(SMALL).migrations >= SMALL.n_sensors


class TestRetentionDefault:
    def test_pipeline_kernel_defaults_to_keep_results(self):
        from repro.apps.stormcast import StormCastParams, build_stormcast_kernel
        params = StormCastParams(n_sensors=3, samples_per_site=20)
        assert params.retention == "keep-results"
        kernel = build_stormcast_kernel(params)
        assert kernel.table.retention.name == "keep-results"

    def test_pipeline_results_unaffected_by_retention(self):
        from repro.apps.stormcast import StormCastParams, run_agent_pipeline
        base = dict(n_sensors=4, samples_per_site=60, storm_rate=0.05,
                    raw_payload_bytes=128, seed=5)
        archived = run_agent_pipeline(StormCastParams(**base))
        keep_all = run_agent_pipeline(StormCastParams(retention="keep-all", **base))
        # Archival changes what the ledger retains, never the forecast.
        assert archived.alert_stations() == keep_all.alert_stations()
        assert archived.bytes_on_wire == keep_all.bytes_on_wire
