"""Unit tests for the audit scheme (records, key directory, auditor verdicts)."""

from __future__ import annotations

import pytest

from repro.cash.audit import AuditRecord, Auditor, KeyDirectory, make_record, record_payload
from repro.cash.crypto import Signer


@pytest.fixture
def directory():
    directory = KeyDirectory()
    directory.new_signer("customer")
    directory.new_signer("provider")
    return directory


def records_for_clean_exchange(directory, exchange_id="ex", price=10):
    customer = directory.signer_for("customer")
    provider = directory.signer_for("provider")
    return [
        make_record(customer, exchange_id, "customer", "paid", price, at=1.0),
        make_record(provider, exchange_id, "provider", "received-payment", price, at=1.1),
        make_record(provider, exchange_id, "provider", "provided-service", price, at=1.2),
        make_record(customer, exchange_id, "customer", "received-service", price, at=1.3),
    ]


class TestAuditRecords:
    def test_record_payload_is_canonical(self):
        assert record_payload("ex", "alice", "paid", 10) == "ex|alice|paid|10"

    def test_make_record_signs_verifiably(self, directory):
        signer = directory.signer_for("customer")
        record = make_record(signer, "ex", "customer", "paid", 10, at=2.0)
        assert signer.verify(record_payload("ex", "customer", "paid", 10), record.signature)

    def test_wire_round_trip(self, directory):
        record = make_record(directory.signer_for("customer"), "ex", "customer", "paid",
                             10, at=2.0, details={"note": "cash"})
        rebuilt = AuditRecord.from_wire(record.to_wire())
        assert rebuilt == record


class TestKeyDirectory:
    def test_new_signer_is_cached(self):
        directory = KeyDirectory()
        assert directory.new_signer("a") is directory.new_signer("a")
        assert "a" in directory
        assert len(directory) == 1

    def test_register_external_signer(self):
        directory = KeyDirectory()
        signer = Signer("external")
        directory.register(signer)
        assert directory.signer_for("external") is signer

    def test_unknown_principal_returns_none(self):
        assert KeyDirectory().signer_for("ghost") is None


class TestAuditor:
    def test_clean_exchange_has_no_violations(self, directory):
        auditor = Auditor(directory)
        finding = auditor.audit("ex", records_for_clean_exchange(directory),
                                expected_price=10)
        assert finding.clean
        assert finding.guilty == []

    def test_unknown_exchange_is_noted(self, directory):
        finding = Auditor(directory).audit("missing", records_for_clean_exchange(directory))
        assert finding.notes

    def test_forged_record_is_a_violation(self, directory):
        records = records_for_clean_exchange(directory)
        forged = AuditRecord(exchange_id="ex", actor="customer", role="customer",
                             action="paid", amount=999, at=1.0, signature="forged")
        finding = Auditor(directory).audit("ex", records + [forged])
        assert any("unverifiable" in violation for violation in finding.violations)
        assert "customer" in finding.guilty

    def test_record_from_unknown_principal_is_unverifiable(self, directory):
        stranger = Signer("stranger")
        record = make_record(stranger, "ex", "customer", "paid", 10, at=1.0)
        finding = Auditor(directory).audit("ex", [record])
        assert any("unverifiable" in violation for violation in finding.violations)

    def test_customer_claiming_unwitnessed_payment_is_guilty(self, directory):
        customer = directory.signer_for("customer")
        records = [make_record(customer, "ex", "customer", "paid", 10, at=1.0)]
        finding = Auditor(directory).audit("ex", records, witness_records=[])
        assert any("claims an unwitnessed payment" in violation
                   for violation in finding.violations)
        assert finding.guilty == ["customer"]

    def test_provider_denying_witnessed_payment_is_guilty(self, directory):
        customer = directory.signer_for("customer")
        provider = directory.signer_for("provider")
        records = [
            make_record(customer, "ex", "customer", "paid", 10, at=1.0),
            # The provider wrote no received-payment record, but it did
            # claim to provide the service (so it is identifiable).
            make_record(provider, "ex", "provider", "provided-service", 10, at=1.2),
        ]
        witness = [{"exchange_id": "ex", "action": "validated-payment", "amount": 10}]
        finding = Auditor(directory).audit("ex", records, witness_records=witness)
        assert any("denies a payment" in violation for violation in finding.violations)
        assert "provider" in finding.guilty

    def test_payment_without_service_blames_provider(self, directory):
        customer = directory.signer_for("customer")
        provider = directory.signer_for("provider")
        records = [
            make_record(customer, "ex", "customer", "paid", 10, at=1.0),
            make_record(provider, "ex", "provider", "received-payment", 10, at=1.1),
        ]
        finding = Auditor(directory).audit("ex", records)
        assert any("no service was provided" in violation for violation in finding.violations)
        assert finding.guilty == ["provider"]

    def test_short_payment_blames_customer(self, directory):
        customer = directory.signer_for("customer")
        provider = directory.signer_for("provider")
        records = [
            make_record(customer, "ex", "customer", "paid", 4, at=1.0),
            make_record(provider, "ex", "provider", "received-payment", 4, at=1.1),
            make_record(provider, "ex", "provider", "provided-service", 10, at=1.2),
            make_record(customer, "ex", "customer", "received-service", 10, at=1.3),
        ]
        finding = Auditor(directory).audit("ex", records, expected_price=10)
        assert any("below the agreed price" in violation for violation in finding.violations)
        assert "customer" in finding.guilty

    def test_records_from_other_exchanges_are_ignored(self, directory):
        records = records_for_clean_exchange(directory, exchange_id="other")
        finding = Auditor(directory).audit("ex", records)
        assert finding.notes   # nothing relevant found
        assert finding.clean

    def test_guilty_list_is_deduplicated_and_sorted(self, directory):
        customer = directory.signer_for("customer")
        records = [
            make_record(customer, "ex", "customer", "paid", 3, at=1.0),
            make_record(customer, "ex", "customer", "paid", 4, at=1.1),
        ]
        finding = Auditor(directory).audit("ex", records, expected_price=10)
        assert finding.guilty == sorted(set(finding.guilty))
