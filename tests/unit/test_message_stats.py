"""Unit tests for repro.net.message and repro.net.stats."""

from __future__ import annotations

import pytest

from repro.net.message import Message, MessageKind
from repro.net.stats import LinkStats, NetworkStats, StatsView


class TestMessage:
    def test_declared_size_takes_precedence(self):
        message = Message(source="a", destination="b", kind=MessageKind.DATA,
                          payload={"big": "x" * 10_000}, declared_size=100)
        assert message.size_bytes() == Message.HEADER_BYTES + 100

    def test_estimated_size_from_payload(self):
        small = Message(source="a", destination="b", kind=MessageKind.CONTROL,
                        payload={"k": 1})
        large = Message(source="a", destination="b", kind=MessageKind.CONTROL,
                        payload={"k": "x" * 5000})
        assert large.size_bytes() > small.size_bytes()
        assert small.size_bytes() > Message.HEADER_BYTES

    def test_message_ids_are_unique(self):
        a = Message(source="a", destination="b", kind=MessageKind.DATA)
        b = Message(source="a", destination="b", kind=MessageKind.DATA)
        assert a.message_id != b.message_id

    def test_latency_seconds(self):
        message = Message(source="a", destination="b", kind=MessageKind.DATA,
                          declared_size=1000)
        latency = message.latency_seconds(0.01, 10_000.0)
        assert latency == pytest.approx(0.01 + (Message.HEADER_BYTES + 1000) / 10_000.0)

    def test_latency_with_zero_bandwidth_is_just_latency(self):
        message = Message(source="a", destination="b", kind=MessageKind.DATA,
                          declared_size=1000)
        assert message.latency_seconds(0.02, 0.0) == 0.02

    def test_kinds_catalogue(self):
        assert MessageKind.AGENT_TRANSFER in MessageKind.ALL
        assert len(set(MessageKind.ALL)) == len(MessageKind.ALL)


class TestNetworkStats:
    def test_record_send_and_delivery(self):
        stats = NetworkStats()
        stats.record_send("a", "b", MessageKind.DATA, 100)
        stats.record_delivery(100, latency=0.05)
        assert stats.messages_sent == 1
        assert stats.messages_delivered == 1
        assert stats.bytes_sent == 100
        assert stats.bytes_delivered == 100
        assert stats.mean_latency() == pytest.approx(0.05)
        assert stats.delivery_ratio() == 1.0

    def test_per_kind_accounting(self):
        stats = NetworkStats()
        stats.record_send("a", "b", MessageKind.DATA, 100)
        stats.record_send("a", "b", MessageKind.AGENT_TRANSFER, 300)
        assert stats.per_kind[MessageKind.DATA] == 1
        assert stats.bytes_for_kind(MessageKind.AGENT_TRANSFER) == 300
        assert stats.bytes_for_kind("never-sent") == 0

    def test_per_link_accounting(self):
        stats = NetworkStats()
        stats.record_send("a", "b", MessageKind.DATA, 10)
        stats.record_send("a", "b", MessageKind.DATA, 20)
        stats.record_drop("a", "b")
        link = stats.per_link[("a", "b")]
        assert isinstance(link, LinkStats)
        assert link.messages == 2
        assert link.bytes == 30
        assert link.drops == 1

    def test_delivery_ratio_with_drops(self):
        stats = NetworkStats()
        stats.record_send("a", "b", MessageKind.DATA, 10)
        stats.record_send("a", "b", MessageKind.DATA, 10)
        stats.record_delivery(10, 0.01)
        stats.record_drop("a", "b")
        assert stats.delivery_ratio() == pytest.approx(0.5)

    def test_delivery_ratio_when_nothing_sent(self):
        assert NetworkStats().delivery_ratio() == 1.0

    def test_mean_latency_none_when_nothing_delivered(self):
        assert NetworkStats().mean_latency() is None

    def test_migration_accounting(self):
        stats = NetworkStats()
        stats.record_migration(500)
        stats.record_migration(700)
        assert stats.migrations == 2
        assert stats.migration_bytes == 1200

    def test_snapshot_keys(self):
        stats = NetworkStats()
        stats.record_send("a", "b", MessageKind.DATA, 10)
        snapshot = stats.snapshot()
        for key in ("messages_sent", "bytes_sent", "migrations", "delivery_ratio",
                    "mean_latency", "flush_causes", "flow_pairs", "flow_windows",
                    "wal_bytes_committed", "wal_barrier_piggybacks"):
            assert key in snapshot

    def test_snapshot_exposes_the_flush_cause_breakdown(self):
        # Benchmarks used to reach into the private defaultdict; the
        # snapshot carries a plain copy now.
        stats = NetworkStats()
        stats.record_flush("window")
        stats.record_flush("size")
        stats.record_flush("size")
        assert stats.snapshot()["flush_causes"] == {"window": 1, "size": 2}

    def test_flow_telemetry_recording_and_reset(self):
        stats = NetworkStats()
        stats.record_flow("a", "b", window=0.05, message_rate=120.0,
                          bytes_rate=24_000.0)
        stats.record_flow("c", "b", window=0.8, message_rate=2.0,
                          bytes_rate=400.0)
        snapshot = stats.snapshot()
        assert snapshot["flow_pairs"] == 2
        assert snapshot["flow_windows"]["a->b"]["window"] == 0.05
        assert stats.flow_snapshot()["c->b"]["message_rate"] == 2.0
        # A crash of b drops every pair touching it.
        stats.reset_flow_for_site("b")
        assert stats.snapshot()["flow_pairs"] == 0

    def test_wal_commit_bytes_and_piggyback_counters(self):
        stats = NetworkStats()
        stats.record_wal_commit(3, size_bytes=4_096)
        stats.record_wal_commit(1)              # bytes default to 0
        stats.record_barrier_piggyback()
        assert stats.wal_commits == 2
        assert stats.wal_records_committed == 4
        assert stats.wal_bytes_committed == 4_096
        assert stats.wal_barrier_piggybacks == 1

    def test_reset_zeroes_everything(self):
        stats = NetworkStats()
        stats.record_send("a", "b", MessageKind.DATA, 10)
        stats.record_migration(10)
        stats.record_flow("a", "b", window=0.1, message_rate=1.0, bytes_rate=1.0)
        stats.record_barrier_piggyback()
        stats.reset()
        assert stats.messages_sent == 0
        assert stats.migrations == 0
        assert stats.per_link == {}
        assert stats.flow_windows == {}
        assert stats.wal_barrier_piggybacks == 0

    def test_shard_handoff_counters(self):
        stats = NetworkStats()
        stats.record_shard_handoff(200)
        stats.record_shard_handoff(300, late=True)
        assert stats.shard_handoffs == 2
        assert stats.shard_handoff_bytes == 500
        assert stats.shard_late_arrivals == 1
        snapshot = stats.snapshot()
        assert snapshot["shard_handoffs"] == 2
        assert snapshot["shard_handoff_bytes"] == 500
        assert snapshot["shard_late_arrivals"] == 1

    def test_snapshot_nested_mappings_are_copies(self):
        # Regression: snapshot() used to hand out live references to the
        # per-kind defaultdicts, so a caller mutating the snapshot (or
        # iterating while traffic arrived) corrupted the counters.
        stats = NetworkStats()
        stats.record_send("a", "b", MessageKind.DATA, 10)
        stats.record_delivery(10, 0.02)
        stats.record_flush("window")
        stats.record_flow("a", "b", window=0.05, message_rate=1.0,
                          bytes_rate=10.0)
        snapshot = stats.snapshot()
        snapshot["per_kind"][MessageKind.DATA] = 999
        snapshot["per_kind"]["FORGED"] = 1
        snapshot["per_kind_bytes"].clear()
        snapshot["flush_causes"]["window"] = 999
        snapshot["flow_windows"]["a->b"]["window"] = 999.0
        assert stats.per_kind[MessageKind.DATA] == 1
        assert "FORGED" not in stats.per_kind
        assert stats.per_kind_bytes[MessageKind.DATA] > 0
        assert stats.flush_causes["window"] == 1
        assert stats.flow_windows[("a", "b")]["window"] == 0.05
        fresh = stats.snapshot()
        assert fresh["per_kind"] == {MessageKind.DATA: 1}
        assert fresh["flush_causes"] == {"window": 1}


class TestStatsView:
    """The sharded facade's merged read view over per-shard stats."""

    def _parts(self):
        left, right = NetworkStats(), NetworkStats()
        left.record_send("a", "b", MessageKind.DATA, 100)
        left.record_delivery(100, 0.010)
        left.record_flush("window")
        right.record_send("c", "d", MessageKind.STATUS, 50)
        right.record_send("c", "b", MessageKind.DATA, 70)
        right.record_delivery(50, 0.030)
        right.record_flush("size")
        right.record_shard_handoff(70)
        return left, right

    def test_scalars_sum_and_containers_merge(self):
        left, right = self._parts()
        view = StatsView([left, right])
        assert view.messages_sent == 3
        assert view.bytes_sent == left.bytes_sent + right.bytes_sent
        assert view.shard_handoffs == 1
        assert view.per_kind == {MessageKind.DATA: 2, MessageKind.STATUS: 1}
        assert view.flush_causes == {"window": 1, "size": 1}
        assert view.mean_latency() == pytest.approx(0.020)

    def test_snapshot_matches_network_stats_shape(self):
        view = StatsView(list(self._parts()))
        snapshot = view.snapshot()
        reference = NetworkStats().snapshot()
        assert set(snapshot) == set(reference)
        assert snapshot["messages_sent"] == 3
        assert snapshot["per_kind"] == {MessageKind.DATA: 2, MessageKind.STATUS: 1}

    def test_reset_fans_out(self):
        left, right = self._parts()
        view = StatsView([left, right])
        view.reset()
        assert left.messages_sent == 0 and right.messages_sent == 0
        assert view.messages_sent == 0

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            StatsView([NetworkStats()]).no_such_counter
