"""Unit tests for failure detection (repro.fault.detector)."""

from __future__ import annotations

import random

import pytest

from repro.core.cabinet import FileCabinet
from repro.fault.detector import (SUSPICION_CABINET, Suspicion, TimeoutDetector,
                                  subscribe_horus_suspicions)
from repro.net.horus import HorusTransport
from repro.net.simclock import EventLoop
from repro.net.stats import NetworkStats
from repro.net.topology import lan


class TestTimeoutDetector:
    def test_rejects_non_positive_per_hop(self):
        with pytest.raises(ValueError):
            TimeoutDetector(per_hop_time=0.0, remaining_hops=1)

    def test_deadline_scales_with_remaining_hops(self):
        short = TimeoutDetector(per_hop_time=1.0, remaining_hops=1, minimum=0.0)
        long = TimeoutDetector(per_hop_time=1.0, remaining_hops=5, minimum=0.0)
        assert long.deadline_from(0.0) > short.deadline_from(0.0)

    def test_deadline_respects_minimum(self):
        detector = TimeoutDetector(per_hop_time=0.001, remaining_hops=1, minimum=2.0)
        assert detector.deadline_from(10.0) == pytest.approx(12.0)

    def test_expired(self):
        detector = TimeoutDetector(per_hop_time=1.0, remaining_hops=1,
                                   safety_factor=2.0, minimum=0.0)
        start = 5.0
        deadline = detector.deadline_from(start)
        assert not detector.expired(start, deadline - 0.01)
        assert detector.expired(start, deadline)

    def test_poll_interval_is_a_fraction_of_the_horizon(self):
        detector = TimeoutDetector(per_hop_time=1.0, remaining_hops=2, minimum=0.4)
        assert 0.0 < detector.poll_interval() <= detector.deadline_from(0.0)

    def test_remaining_hops_floor_of_one(self):
        detector = TimeoutDetector(per_hop_time=1.0, remaining_hops=0)
        assert detector.remaining_hops == 1


class TestSuspicionRecord:
    def test_wire_form(self):
        suspicion = Suspicion(site="s1", suspected_at=2.0, source="timeout", detail="quiet")
        wire = suspicion.to_wire()
        assert wire["site"] == "s1"
        assert wire["source"] == "timeout"


class TestHorusSuspicions:
    def make_horus(self):
        loop = EventLoop()
        topology = lan(["a", "b", "c"])
        transport = HorusTransport(loop, topology, NetworkStats(), rng=random.Random(0))
        return transport, loop, topology

    def test_member_loss_is_recorded_as_suspicion(self):
        transport, loop, topology = self.make_horus()
        transport.create_group("guards", ["a", "b", "c"])
        cabinet = FileCabinet("watch")
        seen = []
        subscribe_horus_suspicions(transport, "guards", cabinet, on_suspect=seen.append)
        topology.mark_down("b")
        transport.on_site_down("b")
        loop.run()
        suspicions = cabinet.elements(SUSPICION_CABINET)
        assert [entry["site"] for entry in suspicions] == ["b"]
        assert seen and seen[0].site == "b"
        assert seen[0].source == "horus-view"

    def test_voluntary_join_does_not_create_suspicions(self):
        transport, loop, topology = self.make_horus()
        transport.create_group("guards", ["a"])
        cabinet = FileCabinet("watch")
        subscribe_horus_suspicions(transport, "guards", cabinet)
        transport.join("guards", "b")
        loop.run()
        assert cabinet.elements(SUSPICION_CABINET) == []

    def test_successive_losses_each_recorded(self):
        transport, loop, topology = self.make_horus()
        transport.create_group("guards", ["a", "b", "c"])
        cabinet = FileCabinet("watch")
        subscribe_horus_suspicions(transport, "guards", cabinet)
        for victim in ("b", "c"):
            topology.mark_down(victim)
            transport.on_site_down(victim)
            loop.run()
        suspected = [entry["site"] for entry in cabinet.elements(SUSPICION_CABINET)]
        assert suspected == ["b", "c"]
