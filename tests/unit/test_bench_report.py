"""Unit tests for the benchmark table/report renderer."""

from __future__ import annotations

import os

import pytest

from repro.bench.report import Report, Table


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_add_row_positional(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2.5)
        assert len(table) == 1
        assert table.rows[0] == ["1", "2.5"]

    def test_add_row_by_name(self):
        table = Table("t", ["a", "b"])
        table.add_row(b=3, a="x")
        assert table.rows[0] == ["x", "3"]
        # Missing named cells default to empty strings.
        table.add_row(a="only")
        assert table.rows[1] == ["only", ""]

    def test_add_row_wrong_arity_raises(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_add_row_mixed_styles_raises(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1, b=2)

    def test_cell_formatting(self):
        table = Table("t", ["value"])
        table.add_row(True)
        table.add_row(0.12345)
        table.add_row(123456.0)
        table.add_row(0.0001)
        assert table.rows[0] == ["yes"]
        assert table.rows[1] == ["0.123"]
        assert table.rows[2] == ["1.23e+05"]
        assert table.rows[3] == ["0.0001"]

    def test_column_accessor(self):
        table = Table("t", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("name") == ["x", "y"]

    def test_render_aligns_columns_and_shows_notes(self):
        table = Table("Experiment", ["transport", "latency"])
        table.add_row("rsh", 0.25)
        table.add_row("tcp", 0.002)
        table.add_note("lower is better")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Experiment"
        assert "transport" in lines[2]
        assert any("note: lower is better" in line for line in lines)
        # All data rows have the same width.
        assert len(lines[4]) == len(lines[5])


class TestReport:
    def test_report_collects_tables(self):
        report = Report("E1", "bandwidth comparison")
        table = report.table("results", ["mode", "bytes"])
        table.add_row("agent", 100)
        text = report.render()
        assert "[E1]" in text
        assert "results" in text
        assert "agent" in text

    def test_report_save_writes_file(self, tmp_path):
        report = Report("E9", "scratch")
        report.table("t", ["x"]).add_row(1)
        path = report.save(str(tmp_path))
        assert os.path.exists(path)
        assert path.endswith("e9.txt")
        with open(path, encoding="utf-8") as handle:
            assert "[E9]" in handle.read()

    def test_report_print_goes_to_stdout(self, capsys):
        report = Report("E2", "diffusion")
        report.table("t", ["x"]).add_row(42)
        report.print()
        captured = capsys.readouterr()
        assert "[E2]" in captured.out
        assert "42" in captured.out


class TestRunStamp:
    def test_stamp_carries_seed_backend_and_sha(self):
        from repro.bench.report import run_stamp
        stamp = run_stamp(seed=23, backend="realtime")
        assert stamp["seed"] == 23
        assert stamp["backend"] == "realtime"
        # In this checkout the SHA resolves; anywhere it cannot, the
        # helper degrades to "unknown" rather than raising.
        assert isinstance(stamp["git_sha"], str) and stamp["git_sha"]

    def test_stamp_extra_keys_ride_along(self):
        from repro.bench.report import run_stamp
        stamp = run_stamp(seed=None, backend=["sim", "realtime"], smoke=True)
        assert stamp["smoke"] is True
        assert stamp["backend"] == ["sim", "realtime"]

    def test_stamp_is_json_serializable(self):
        import json

        from repro.bench.report import run_stamp
        assert json.loads(json.dumps(run_stamp(seed=1, backend="sim")))
