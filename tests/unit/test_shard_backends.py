"""Unit tests for repro.shard.backend: the shard execution backend seam.

Covers backend resolution, the thread backend's inbox handoff router, the
ShardSet's fake-timer cost attribution (busy vs sync vs overhead — the
PR 6 busy-time fix), the ClockSync dirty-flag coalescing contract, budget
semantics across backends, the facade's ``shard_summary``/``close``
surface, and the serialisation plumbing the process backend rides on
(stats export/load, topology route caching).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import Kernel, KernelConfig
from repro.core.errors import KernelError
from repro.net import lan
from repro.net.simclock import EventLoop
from repro.net.stats import NetworkStats
from repro.net.topology import LinkSpec, NoRouteError, switched_fabric
from repro.shard import (BACKENDS, ClockSync, InprocBackend, MailRouter,
                         Shard, ShardSet, ThreadBackend, make_backend,
                         process_backend_available)


def sharded_kernel(backend, site_count=8, shards=4, seed=7):
    names = [f"s{i}" for i in range(site_count)]
    kernel = Kernel(lan(names, latency=0.002), transport="tcp",
                    config=KernelConfig(rng_seed=seed, shards=shards,
                                        shard_backend=backend))
    return kernel, names


def run_churn(backend, max_events=None, site_count=8, shards=4, waves=2):
    """Deterministic cross-shard churn via the registered bench behaviours."""
    from repro.bench.workloads import ShardedChurnParams, execute_sharded_churn
    kernel, result = execute_sharded_churn(ShardedChurnParams(
        n_sites=site_count, n_agents=8 * waves, wave_size=8, shards=shards,
        seed=11, backend=backend))
    counters = kernel.counters()
    kernel.close()
    return result, counters


# ---------------------------------------------------------------------------
# backend resolution
# ---------------------------------------------------------------------------

class TestBackendResolution:
    def test_make_backend_names(self):
        assert isinstance(make_backend("inproc"), InprocBackend)
        router = MailRouter({"a": 0}, inbox_handoffs=True)
        thread = make_backend("thread", router, 2)
        assert isinstance(thread, ThreadBackend)
        thread.close()

    def test_thread_backend_needs_router(self):
        with pytest.raises(KernelError):
            make_backend("thread")

    def test_process_backend_not_built_here(self):
        with pytest.raises(KernelError, match="procworker"):
            make_backend("process")

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelError, match="unknown shard_backend"):
            make_backend("fibers")

    def test_kernel_config_validates_backend(self):
        with pytest.raises(KernelError, match="unknown shard_backend"):
            Kernel(lan(["a", "b"]),
                   config=KernelConfig(shards=2, shard_backend="fibers"))

    def test_bad_backend_rejected_even_unsharded(self):
        # shards=1 never builds a backend, but a typo must not lurk until
        # someone turns sharding on.
        with pytest.raises(KernelError):
            Kernel(lan(["a"]), config=KernelConfig(shard_backend="nope"))

    def test_every_declared_backend_is_a_string(self):
        assert BACKENDS == ("inproc", "thread", "process")


# ---------------------------------------------------------------------------
# the thread backend's inbox router
# ---------------------------------------------------------------------------

class _FakeTransport:
    def __init__(self):
        self.delivered = []

    def _deliver(self, message):
        self.delivered.append(message)


class _FakeEngine:
    def __init__(self):
        self.loop = EventLoop()
        self.transport = _FakeTransport()
        self.stats = NetworkStats()


class _FakeMessage:
    def __init__(self, destination, message_id, size=10):
        self.destination = destination
        self.message_id = message_id
        self._size = size

    def size_bytes(self):
        return self._size


class TestInboxRouter:
    def make_router(self):
        router = MailRouter({"a": 0, "b": 1}, inbox_handoffs=True)
        engines = [_FakeEngine(), _FakeEngine()]
        router.attach_engines(engines)
        return router, engines

    def test_dispatch_parks_in_owner_inbox(self):
        router, engines = self.make_router()
        message = _FakeMessage("b", "m1")
        router.dispatch(0, message, delay=0.5)
        assert engines[1].loop.next_event_time() is None  # not scheduled yet
        assert engines[0].stats.shard_handoffs == 1
        assert engines[0].stats.shard_handoff_bytes == 10

    def test_drain_schedules_on_owner_loop(self):
        router, engines = self.make_router()
        router.dispatch(0, _FakeMessage("b", "m1"), delay=0.5)
        assert router.drain_inboxes() == 1
        assert engines[1].loop.next_event_time() == pytest.approx(0.5)
        engines[1].loop.run()
        assert [m.message_id for m in engines[1].transport.delivered] == ["m1"]

    def test_same_timestamp_handoffs_drain_in_dispatch_order(self):
        # The deterministic total order: (arrival, origin, per-origin seq),
        # independent of which thread appended first.
        router, engines = self.make_router()
        for index in range(4):
            router.dispatch(0, _FakeMessage("b", f"m{index}"), delay=0.25)
        router.drain_inboxes()
        engines[1].loop.run()
        assert [m.message_id for m in engines[1].transport.delivered] \
            == ["m0", "m1", "m2", "m3"]

    def test_late_arrival_clamped_and_counted(self):
        router, engines = self.make_router()
        router.dispatch(0, _FakeMessage("b", "late"), delay=0.1)
        engines[1].loop.clock._advance_to(5.0)  # owner's round already passed
        router.drain_inboxes()
        assert engines[1].stats.shard_late_arrivals == 1
        assert engines[1].loop.next_event_time() == pytest.approx(5.0)

    def test_drain_is_a_noop_in_direct_mode(self):
        router = MailRouter({"a": 0, "b": 1})  # direct (inproc) mode
        router.attach_engines([_FakeEngine(), _FakeEngine()])
        assert router.drain_inboxes() == 0


# ---------------------------------------------------------------------------
# ShardSet cost attribution (the busy-time fix), with a fake timer
# ---------------------------------------------------------------------------

class _TickTimer:
    """Each call advances one fake second: attribution becomes countable."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class _LoopEngine:
    """Just enough engine for a ShardSet: a real EventLoop, nothing else."""

    def __init__(self):
        self.loop = EventLoop()
        self.sites = {}


def two_shard_set(timer):
    topology = lan(["a", "b"], latency=0.5)
    placement = {"a": 0, "b": 1}
    clock_sync = ClockSync(topology, placement, shards=2)
    shards = [Shard(0, _LoopEngine()), Shard(1, _LoopEngine())]
    shard_set = ShardSet(shards, clock_sync,
                         backend=InprocBackend(timer), timer=timer)
    return shard_set, shards


class TestCostAttribution:
    def test_idle_shard_clock_advances_without_busy_charge(self):
        timer = _TickTimer()
        shard_set, shards = two_shard_set(timer)
        shards[0].engine.loop.schedule_at(0.1, lambda: None)
        shards[1].engine.loop.schedule_at(10.0, lambda: None)
        executed = shard_set.run(until=1.0)
        assert executed == 1
        # Shard 1 never ran an event: its clock moved (first to its granted
        # horizon, then the final until-clamp) but it was charged nothing.
        assert shards[1].busy_seconds == 0.0
        assert shards[1].engine.loop.clock.now == pytest.approx(1.0)
        # Shard 0's burst cost exactly one fake tick — the horizon
        # computation and plan building landed in sync_seconds instead
        # (the PR 6 accounting charged the whole bracket to busy).
        assert shards[0].busy_seconds == pytest.approx(1.0)
        assert shard_set.sync_seconds == pytest.approx(1.0)
        # Round wall-time minus the slowest burst: the two bracket ticks.
        assert shard_set.overhead_seconds == pytest.approx(2.0)
        assert shard_set.rounds == 1

    def test_busy_summary_reports_overhead(self):
        timer = _TickTimer()
        shard_set, shards = two_shard_set(timer)
        shards[0].engine.loop.schedule_at(0.1, lambda: None)
        shard_set.run()
        summary = shard_set.busy_summary()
        assert set(summary) >= {"max_busy", "total_busy", "sync_seconds",
                                "overhead_seconds"}
        assert summary["max_busy"] == shards[0].busy_seconds
        assert summary["overhead_seconds"] == shard_set.overhead_seconds


# ---------------------------------------------------------------------------
# ClockSync dirty-flag coalescing
# ---------------------------------------------------------------------------

class TestClockSyncDirtyFlag:
    def test_repeated_invalidations_cost_one_rebuild(self):
        topology = lan(["a", "b", "c", "d"], latency=0.01)
        clock_sync = ClockSync(topology, {"a": 0, "b": 1, "c": 0, "d": 1},
                               shards=2)
        assert clock_sync.rebuilds == 0
        clock_sync.lookahead(0, 1)
        assert clock_sync.rebuilds == 1  # lazy first build
        for _ in range(5):
            clock_sync.invalidate()  # five topology edits between rounds...
        clock_sync.horizons({0: 0.0, 1: 0.0})
        assert clock_sync.rebuilds == 2  # ...coalesce into one recompute
        clock_sync.horizons({0: 0.0, 1: 0.0})
        clock_sync.lookahead(1, 0)
        assert clock_sync.rebuilds == 2  # clean matrix is never rebuilt

    def test_facade_add_sites_coalesce_rebuilds(self):
        kernel, names = sharded_kernel("inproc")
        sync = kernel._clock_sync
        kernel.launch(names[0], "courier")
        kernel.run()  # horizons computed: first lazy rebuild happens here
        before = sync.rebuilds
        assert before >= 1
        for index in range(3):
            kernel.add_site(f"late{index}", links=[names[0]])
        assert sync.rebuilds == before  # invalidated, not yet rebuilt
        kernel.launch(names[1], "courier")
        kernel.run()
        assert sync.rebuilds == before + 1
        kernel.close()


# ---------------------------------------------------------------------------
# budget semantics across backends
# ---------------------------------------------------------------------------

class TestBudgetStop:
    @pytest.mark.parametrize("backend", ["inproc", "thread"])
    def test_budget_stops_at_same_point_and_resumes(self, backend):
        # Launch, stop after exactly 5 events, resume to quiescence.
        from repro.bench.workloads import (SHARD_COURIER_NAME,
                                           SHARD_SINK_NAME, _shard_sink)
        from repro.core import Briefcase
        kernel, names = sharded_kernel(backend)
        kernel.install_agent(None, SHARD_SINK_NAME, _shard_sink)
        for index in range(8):
            briefcase = Briefcase()
            briefcase.set("WORK", 0.01)
            briefcase.set("PEER", names[(index + 5) % len(names)])
            briefcase.set("BYTES", 16)
            kernel.launch(names[index % len(names)], SHARD_COURIER_NAME,
                          briefcase)
        first = kernel.run(max_events=5)
        assert first == 5
        remaining = kernel.run()
        assert remaining > 0
        assert kernel.counters()["completed"] == 24  # couriers, transfers, sinks
        kernel.close()

    @pytest.mark.skipif(not process_backend_available(),
                        reason="multiprocessing spawn unavailable")
    def test_process_budget_stop(self):
        from repro.bench.workloads import (SHARD_COURIER_NAME,
                                           SHARD_SINK_NAME, _shard_sink)
        from repro.core import Briefcase
        kernel, names = sharded_kernel("process")
        kernel.install_agent(None, SHARD_SINK_NAME, _shard_sink)
        for index in range(8):
            briefcase = Briefcase()
            briefcase.set("WORK", 0.01)
            briefcase.set("PEER", names[(index + 5) % len(names)])
            briefcase.set("BYTES", 16)
            kernel.launch(names[index % len(names)], SHARD_COURIER_NAME,
                          briefcase)
        assert kernel.run(max_events=5) == 5
        assert kernel.run() > 0
        assert kernel.counters()["completed"] == 24
        kernel.close()


# ---------------------------------------------------------------------------
# the facade surface: shard_summary, close, backend equivalence
# ---------------------------------------------------------------------------

class TestFacadeSurface:
    def test_thread_matches_inproc_on_churn(self):
        inproc, inproc_counters = run_churn("inproc")
        threaded, threaded_counters = run_churn("thread")
        assert threaded_counters == inproc_counters
        assert threaded.events == inproc.events
        assert threaded.handoffs == inproc.handoffs
        assert threaded.sim_seconds == inproc.sim_seconds

    def test_shard_summary_surfaces_coordination_ledger(self):
        from repro.bench.workloads import ShardedChurnParams, \
            execute_sharded_churn
        kernel, _result = execute_sharded_churn(ShardedChurnParams(
            n_sites=8, n_agents=16, wave_size=8, shards=4, seed=11,
            backend="thread"))
        summary = kernel.shard_summary()
        assert summary["shards"] == 4
        assert summary["backend"] == "thread"
        assert summary["shard_handoffs"] > 0
        assert summary["shard_handoff_bytes"] > 0
        assert summary["shard_late_arrivals"] == 0
        assert summary["rounds"] > 0
        assert summary["clock_rebuilds"] >= 1
        assert summary["handoffs_drained"] == summary["shard_handoffs"]
        kernel.close()

    def test_shard_summary_on_classic_kernel(self):
        kernel = Kernel(lan(["a", "b"]))
        summary = kernel.shard_summary()
        assert summary == {"shards": 1, "backend": None, "shard_handoffs": 0,
                           "shard_handoff_bytes": 0, "shard_late_arrivals": 0}
        kernel.close()  # no-op, must not raise

    def test_close_is_idempotent(self):
        kernel, _names = sharded_kernel("thread")
        kernel.run(until=0.01)
        kernel.close()
        kernel.close()


# ---------------------------------------------------------------------------
# serialisation plumbing the process backend rides on
# ---------------------------------------------------------------------------

class TestStatsStatePortability:
    def test_export_load_round_trip(self):
        stats = NetworkStats()
        stats.record_shard_handoff(128)
        stats.record_shard_late_arrival()
        stats.messages_sent = 7
        stats.per_kind["FOLDER"] = 3
        exported = stats.export_state()
        pickle.dumps(exported)  # must cross a process boundary

        loaded = NetworkStats()
        loaded.load_state(exported)
        assert loaded.snapshot() == stats.snapshot()
        loaded.per_kind["NEW"] += 1  # defaultdict behaviour survives load
        assert loaded.per_kind["NEW"] == 1

    def test_export_is_a_copy(self):
        stats = NetworkStats()
        exported = stats.export_state()
        exported["messages_sent"] = 99
        assert stats.messages_sent == 0


class TestRouteCacheAndFabric:
    def test_path_cost_is_cached_and_bit_identical(self):
        topology = lan(["a", "b", "c"], latency=0.003)
        first = topology.path_cost("a", "c", size_bytes=640)
        again = topology.path_cost("a", "c", size_bytes=640)
        assert first == again

    def test_cache_invalidated_by_topology_change(self):
        topology = lan(["a", "b", "c"], latency=0.003)
        before = topology.path_cost("a", "c", size_bytes=0)
        topology.add_site("d")
        topology.add_link("a", "d", LinkSpec(latency=0.0001))
        topology.add_link("d", "c", LinkSpec(latency=0.0001))
        after = topology.path_cost("a", "c", size_bytes=0)
        assert after[0] < before[0]  # the shortcut is visible, not cached over

    def test_cached_route_respects_site_down(self):
        topology = lan(["a", "b"], latency=0.003)
        topology.path_cost("a", "b", size_bytes=0)
        topology.mark_down("b")
        with pytest.raises(NoRouteError):
            topology.path_cost("a", "b", size_bytes=0)

    def test_switched_fabric_scales_linearly_in_edges(self):
        hosts = [f"h{i:03d}" for i in range(120)]
        topology = switched_fabric(hosts, hosts_per_switch=40)
        # 120 host uplinks + full mesh over 3 switches = 123 edges.
        assert len(list(topology.links())) == 123
        cost, hops, _loss = topology.path_cost("h000", "h119", size_bytes=0)
        assert hops == 3  # host -> switch -> switch -> host
        assert cost > 0


# ---------------------------------------------------------------------------
# process backend odds and ends (gated on spawn availability)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not process_backend_available(),
                    reason="multiprocessing spawn unavailable")
class TestProcessFacade:
    def test_crash_and_recover_cross_worker(self):
        from repro.bench.workloads import SHARD_SINK_NAME, _shard_sink
        kernel, names = sharded_kernel("process", site_count=6, shards=3)
        kernel.install_agent(None, SHARD_SINK_NAME, _shard_sink)
        kernel.crash_site(names[0])
        assert not kernel.sites[names[0]].alive
        kernel.recover_site(names[0])
        assert kernel.sites[names[0]].alive
        kernel.close()

    def test_loop_scheduling_raises_a_clear_error(self):
        kernel, _names = sharded_kernel("process", site_count=4, shards=2)
        with pytest.raises(KernelError, match="worker-side"):
            kernel.loop.schedule(0.1, lambda: None)
        kernel.close()

    def test_site_callbacks_refused(self):
        kernel, _names = sharded_kernel("process", site_count=4, shards=2)
        with pytest.raises(KernelError, match="process boundary"):
            kernel.on_site_added(lambda name: None)
        kernel.close()

    def test_preload_skips_path_loaded_modules(self):
        """A behaviour registered by a module loaded from an explicit file
        path (a test importing an example script) must not be shipped as a
        worker preload — the spawn child cannot import it by name and every
        process-backend kernel in the session would fail at startup."""
        from repro.core.registry import BehaviourRegistry
        from repro.shard.procworker import preload_module_names

        def stray(ctx, bc):
            yield ctx.sleep(0)

        stray.__module__ = "example_loaded_from_a_file_path"
        registry = BehaviourRegistry()
        registry.register("stray", stray)
        from repro.bench.workloads import _shard_sink
        registry.register("sink", _shard_sink)
        modules = preload_module_names(registry)
        assert "example_loaded_from_a_file_path" not in modules
        assert "repro.bench.workloads" in modules
