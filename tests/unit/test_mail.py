"""Unit tests for the agent-based mail system."""

from __future__ import annotations

import pytest

from repro.apps.mail import (LETTER_AGENT_NAME, MAILBOX_AGENT_NAME, MailSystem, inbox_of,
                             install_mailboxes, make_letter)
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import FailureSchedule, lan, two_clusters


@pytest.fixture
def kernel():
    return Kernel(lan(["tromso", "cornell", "ithaca"]), transport="tcp",
                  config=KernelConfig(rng_seed=14))


@pytest.fixture
def mail(kernel):
    return MailSystem(kernel)


class TestMakeLetter:
    def test_letter_ids_are_unique(self):
        first = make_letter("a", "s", "b", "t", "subject", "body")
        second = make_letter("a", "s", "b", "t", "subject", "body")
        assert first["letter_id"] != second["letter_id"]

    def test_letter_carries_addressing_fields(self):
        letter = make_letter("dag", "tromso", "fred", "cornell", "hi", "text",
                             want_receipt=True)
        assert letter["from_site"] == "tromso"
        assert letter["to_user"] == "fred"
        assert letter["want_receipt"] is True
        assert letter["sent_at"] is None


class TestMailboxAgent:
    def test_letter_folder_is_filed_per_user(self, kernel):
        install_mailboxes(kernel)

        def depositor(ctx, bc):
            delivery = Briefcase()
            delivery.folder("LETTER", create=True).push(
                make_letter("a", "x", "fred", "cornell", "s", "b"))
            result = yield ctx.meet(MAILBOX_AGENT_NAME, delivery)
            return result.value

        agent_id = kernel.launch("cornell", depositor)
        kernel.run()
        assert kernel.result_of(agent_id) == 1
        assert len(inbox_of(kernel, "cornell", "fred")) == 1

    def test_malformed_letters_are_rejected_not_filed(self, kernel):
        install_mailboxes(kernel)

        def depositor(ctx, bc):
            delivery = Briefcase()
            delivery.folder("LETTER", create=True).push({"no_recipient": True})
            result = yield ctx.meet(MAILBOX_AGENT_NAME, delivery)
            return result.value

        agent_id = kernel.launch("cornell", depositor)
        kernel.run()
        assert kernel.result_of(agent_id) == 0

    def test_list_read_delete_operations(self, kernel, mail):
        mail.send("dag", "tromso", "fred", "cornell", "one", "first body")
        mail.send("dag", "tromso", "fred", "cornell", "two", "second body")
        kernel.run()

        def reader(ctx, bc):
            listing = Briefcase()
            listing.set("OP", "list")
            listing.set("USER", "fred")
            count = (yield ctx.meet(MAILBOX_AGENT_NAME, listing)).value

            read = Briefcase()
            read.set("OP", "read")
            read.set("USER", "fred")
            yield ctx.meet(MAILBOX_AGENT_NAME, read)
            bodies = [letter["body"] for letter in read.folder("MESSAGES").elements()]

            first_id = listing.folder("LISTING").elements()[0]["letter_id"]
            delete = Briefcase()
            delete.set("OP", "delete")
            delete.set("USER", "fred")
            delete.set("LETTER_ID", first_id)
            deleted = (yield ctx.meet(MAILBOX_AGENT_NAME, delete)).value
            return (count, bodies, deleted)

        agent_id = kernel.launch("cornell", reader)
        kernel.run()
        count, bodies, deleted = kernel.result_of(agent_id)
        assert count == 2
        assert sorted(bodies) == ["first body", "second body"]
        assert deleted == 1
        assert len(mail.inbox("cornell", "fred")) == 1

    def test_request_without_op_or_letter_reports_error(self, kernel):
        install_mailboxes(kernel)

        def confused(ctx, bc):
            request = Briefcase()
            result = yield ctx.meet(MAILBOX_AGENT_NAME, request)
            return (result.value, request.get("ERROR"))

        agent_id = kernel.launch("cornell", confused)
        kernel.run()
        value, error = kernel.result_of(agent_id)
        assert value is None and error


class TestLetterDelivery:
    def test_simple_delivery(self, kernel, mail):
        mail.send("dag", "tromso", "fred", "cornell", "hello", "body text")
        kernel.run()
        inbox = mail.inbox("cornell", "fred")
        assert len(inbox) == 1
        letter = inbox[0]
        assert letter["from_user"] == "dag"
        assert letter["delivered_at"] is not None
        assert mail.delivered_count() == 1

    def test_local_delivery_needs_no_network(self, kernel, mail):
        mail.send("dag", "tromso", "olav", "tromso", "local", "no network needed")
        kernel.run()
        assert len(mail.inbox("tromso", "olav")) == 1
        assert kernel.stats.migrations == 0

    def test_receipt_is_sent_back_when_requested(self, kernel, mail):
        mail.send("dag", "tromso", "fred", "cornell", "important", "please confirm",
                  want_receipt=True)
        kernel.run()
        dag_inbox = mail.inbox("tromso", "dag")
        assert any(letter["from_user"] == "postmaster" for letter in dag_inbox)

    def test_no_receipt_by_default(self, kernel, mail):
        mail.send("dag", "tromso", "fred", "cornell", "casual", "no receipt")
        kernel.run()
        assert mail.inbox("tromso", "dag") == []

    def test_store_and_forward_retries_until_destination_recovers(self, kernel, mail):
        FailureSchedule().crash("ithaca", at=0.0).recover("ithaca", at=2.0).install(kernel)
        mail.send("dag", "tromso", "ken", "ithaca", "patience", "will arrive",
                  retry_interval=0.4, delay=0.1)
        kernel.run(until=30.0)
        assert len(mail.inbox("ithaca", "ken")) == 1
        log = mail.delivery_log("tromso")
        assert any(entry["event"] == "retry" for entry in log)

    def test_gives_up_after_max_retries(self, kernel, mail):
        kernel.crash_site("ithaca")      # never recovers
        mail.send("dag", "tromso", "ken", "ithaca", "lost", "never arrives",
                  max_retries=2, retry_interval=0.1)
        kernel.run(until=30.0)
        assert mail.inbox("ithaca", "ken") == []
        outcomes = mail.outcomes(["tromso"])
        assert any(outcome["status"] == "gave-up" for outcome in outcomes)

    def test_delivery_over_wan_cluster_topology(self):
        kernel = Kernel(two_clusters(["tromso", "narvik"], ["cornell", "ithaca"]),
                        transport="tcp", config=KernelConfig(rng_seed=3))
        mail = MailSystem(kernel)
        mail.send("dag", "narvik", "ken", "ithaca", "cross-atlantic", "hello")
        kernel.run()
        assert len(mail.inbox("ithaca", "ken")) == 1

    def test_malformed_letter_agent_briefcase_is_harmless(self, kernel):
        install_mailboxes(kernel)
        agent_id = kernel.launch("tromso", LETTER_AGENT_NAME, Briefcase())
        kernel.run()
        assert kernel.result_of(agent_id) == "malformed-letter"


class TestBroadcast:
    def test_broadcast_reaches_every_site(self, kernel, mail):
        mail.broadcast("dag", "tromso", "announcement", "to everyone")
        kernel.run()
        reached = [site for site in kernel.site_names()
                   if any(letter["subject"] == "announcement"
                          for letter in mail.inbox(site, "all"))]
        assert sorted(reached) == sorted(kernel.site_names())

    def test_broadcast_letter_records_local_site(self, kernel, mail):
        mail.broadcast("dag", "tromso", "announcement", "to everyone")
        kernel.run()
        for site in kernel.site_names():
            letters = [letter for letter in mail.inbox(site, "all")
                       if letter["subject"] == "announcement"]
            assert letters and letters[0]["to_site"] == site


class TestBuildMailKernel:
    def test_build_defaults_to_keep_results_retention(self):
        mail = MailSystem.build(["tromso", "cornell"])
        assert mail.kernel.table.retention.name == "keep-results"

        mail.send("dag", "tromso", "fred", "cornell", "hello", "body")
        mail.kernel.run(until=30.0)
        # The long-running-deployment contract: outcomes are read through
        # the mailbox cabinets, and they survive instance archival.
        assert mail.delivered_count() == 1
        assert any(letter["subject"] == "hello"
                   for letter in mail.inbox("cornell", "fred"))
        # Terminal agents were archived into compact records, not retained
        # as full instances.
        kinds = mail.kernel.table.ledger_entry_kinds()
        assert kinds["records"] > 0
        assert kinds["instances"] == 0

    def test_build_accepts_topology_and_retention_override(self):
        mail = MailSystem.build(topology=two_clusters(["a", "b"], ["c", "d"]),
                                retention="keep-all")
        assert sorted(mail.kernel.site_names()) == ["a", "b", "c", "d"]
        assert mail.kernel.table.retention.name == "keep-all"

    def test_build_rejects_seed_alongside_explicit_config(self):
        # A seed next to a full config would be silently ignored.
        with pytest.raises(ValueError):
            MailSystem.build(["a", "b"], seed=7,
                             config=KernelConfig(meet_overhead=0.1))

    def test_build_seed_reaches_the_kernel(self):
        mail = MailSystem.build(["a", "b"], seed=99)
        assert mail.kernel.config.rng_seed == 99
