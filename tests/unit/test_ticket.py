"""Unit tests for tickets and the ticket-issuing agent."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.errors import TicketError
from repro.net import lan
from repro.scheduling.ticket import (TICKET_AGENT_NAME, Ticket, TicketIssuer,
                                     make_ticket_behaviour)


class TestTicketRecord:
    def test_wire_round_trip(self):
        issuer = TicketIssuer()
        ticket = issuer.issue("compute", "alice", "s1", now=1.0)
        assert Ticket.from_wire(ticket.to_wire()) == ticket

    def test_malformed_wire_record_raises(self):
        with pytest.raises(TicketError):
            Ticket.from_wire({"ticket_id": "x"})


class TestTicketIssuer:
    def test_issue_and_verify(self):
        issuer = TicketIssuer(validity=10.0)
        ticket = issuer.issue("compute", "alice", "s1", now=0.0)
        assert issuer.verify(ticket, now=5.0)
        assert issuer.issued == 1

    def test_expired_ticket_is_rejected(self):
        issuer = TicketIssuer(validity=10.0)
        ticket = issuer.issue("compute", "alice", "s1", now=0.0)
        assert not issuer.verify(ticket, now=11.0)
        assert issuer.rejected == 1

    def test_tampered_ticket_is_rejected(self):
        issuer = TicketIssuer()
        ticket = issuer.issue("compute", "alice", "s1", now=0.0)
        forged = Ticket(ticket_id=ticket.ticket_id, service=ticket.service,
                        holder="mallory", provider_site=ticket.provider_site,
                        issued_at=ticket.issued_at, expires_at=ticket.expires_at,
                        signature=ticket.signature)
        assert not issuer.verify(forged, now=1.0)

    def test_ticket_from_another_issuer_is_rejected(self):
        ticket = TicketIssuer().issue("compute", "alice", "s1", now=0.0)
        assert not TicketIssuer().verify(ticket, now=1.0)

    def test_wrong_site_is_rejected(self):
        issuer = TicketIssuer()
        ticket = issuer.issue("compute", "alice", "s1", now=0.0)
        assert not issuer.verify(ticket, now=1.0, expected_site="s2")
        assert issuer.verify(ticket, now=1.0, expected_site="s1")

    def test_redeem_is_single_use(self):
        issuer = TicketIssuer()
        ticket = issuer.issue("compute", "alice", "s1", now=0.0)
        assert issuer.redeem(ticket, now=1.0)
        assert not issuer.redeem(ticket, now=1.5)
        assert issuer.redeemed == 1
        assert issuer.rejected == 1

    def test_redeem_expired_fails(self):
        issuer = TicketIssuer(validity=1.0)
        ticket = issuer.issue("compute", "alice", "s1", now=0.0)
        assert not issuer.redeem(ticket, now=5.0)


class TestTicketAgent:
    @pytest.fixture
    def kernel(self):
        kernel = Kernel(lan(["a"]), transport="tcp", config=KernelConfig(rng_seed=1))
        self.issuer = TicketIssuer(validity=100.0)
        kernel.install_agent("a", TICKET_AGENT_NAME, make_ticket_behaviour(self.issuer),
                             replace=True)
        return kernel

    def meet_ticket_agent(self, kernel, briefcase):
        box = {}

        def client(ctx, bc):
            result = yield ctx.meet(TICKET_AGENT_NAME, briefcase)
            box["value"] = result.value
            return result.value

        kernel.launch("a", client)
        kernel.run()
        return box["value"], briefcase

    def test_issue_op_returns_ticket(self, kernel):
        request = Briefcase()
        request.set("OP", "issue")
        request.set("SERVICE", "compute")
        request.set("HOLDER", "alice")
        request.set("PROVIDER_SITE", "a")
        ticket_id, briefcase = self.meet_ticket_agent(kernel, request)
        assert ticket_id is not None
        assert briefcase.get("TICKET")["holder"] == "alice"

    def test_verify_op(self, kernel):
        ticket = self.issuer.issue("compute", "alice", "a", now=0.0)
        request = Briefcase()
        request.set("OP", "verify")
        request.set("TICKET", ticket.to_wire())
        ok, _ = self.meet_ticket_agent(kernel, request)
        assert ok is True

    def test_redeem_op_consumes(self, kernel):
        ticket = self.issuer.issue("compute", "alice", "a", now=0.0)
        request = Briefcase()
        request.set("OP", "redeem")
        request.set("TICKET", ticket.to_wire())
        ok, _ = self.meet_ticket_agent(kernel, request)
        assert ok is True
        again = Briefcase()
        again.set("OP", "redeem")
        again.set("TICKET", ticket.to_wire())
        ok2, _ = self.meet_ticket_agent(kernel, again)
        assert ok2 is False

    def test_missing_ticket_reports_error(self, kernel):
        request = Briefcase()
        request.set("OP", "verify")
        ok, briefcase = self.meet_ticket_agent(kernel, request)
        assert ok is False
        assert briefcase.get("ERROR")

    def test_malformed_ticket_reports_error(self, kernel):
        request = Briefcase()
        request.set("OP", "verify")
        request.set("TICKET", {"bogus": True})
        ok, briefcase = self.meet_ticket_agent(kernel, request)
        assert ok is False

    def test_unknown_op_reports_error(self, kernel):
        ticket = self.issuer.issue("compute", "alice", "a", now=0.0)
        request = Briefcase()
        request.set("OP", "frame")
        request.set("TICKET", ticket.to_wire())
        ok, briefcase = self.meet_ticket_agent(kernel, request)
        assert ok is False
        assert "unknown ticket operation" in briefcase.get("ERROR")
