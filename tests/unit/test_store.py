"""Unit tests for the durable storage subsystem (repro.store)."""

from __future__ import annotations

import pytest

from repro.core import Kernel, KernelConfig
from repro.core.errors import StoreError
from repro.net import lan
from repro.store import (FlushOnDemand, NoDurability, WalGroupCommit, WriteAheadLog,
                         resolve_policy)


def make_kernel(policy="wal-group-commit", **knobs):
    config = KernelConfig(rng_seed=3, durability=policy, **knobs)
    return Kernel(lan(["a", "b", "c"]), transport="tcp", config=config)


class TestPolicyResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_policy("none"), NoDurability)
        assert isinstance(resolve_policy("flush-on-demand"), FlushOnDemand)
        assert isinstance(resolve_policy("wal-group-commit"), WalGroupCommit)

    def test_instance_passes_through(self):
        policy = WalGroupCommit()
        assert resolve_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_policy("fsync-maybe")

    def test_none_policy_builds_no_stores(self):
        kernel = make_kernel("none")
        assert kernel.stores == {}
        assert kernel.store("a") is None
        assert kernel.make_durable("anything") == 0

    def test_store_requires_durable_policy(self):
        from repro.store import SiteStore
        from repro.store.policy import StoreCosts
        kernel = make_kernel("none")
        with pytest.raises(StoreError):
            SiteStore(kernel.site("a"), kernel.loop, NoDurability(), StoreCosts(),
                      kernel.stats)


class TestWriteAheadLog:
    def test_commit_and_replay_last_wins(self):
        wal = WriteAheadLog()
        wal.commit([("cab", "f", (b"one",))], at=1.0)
        wal.commit([("cab", "f", (b"one", b"two"))], at=2.0)
        assert wal.replay_states() == {("cab", "f"): (b"one", b"two")}
        assert wal.total_committed == 2

    def test_deletion_record_removes_from_image(self):
        wal = WriteAheadLog()
        wal.commit([("cab", "f", (b"x",))], at=1.0)
        wal.commit([("cab", "f", None)], at=2.0)
        images = {"cab": {"f": (b"stale",)}}
        folded = wal.fold_into(images)
        assert folded == 2
        assert images == {"cab": {}}
        assert len(wal) == 0


class TestGroupCommit:
    def test_mutations_become_durable_after_commit_window(self):
        kernel = make_kernel(store_commit_window=0.5)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", "hello")
        store = kernel.store("a")
        assert store.dirty_count == 1          # one dirty (cabinet, folder) pair
        kernel.run(until=0.4)
        assert store.durable_state().get("m", {}) == {}   # not yet committed
        kernel.run(until=1.0)
        assert store.dirty_count == 0
        assert "f" in store.durable_state()["m"]
        assert kernel.stats.wal_commits == 1
        assert kernel.stats.wal_appends == 2

    def test_commit_batches_many_mutations_into_one_fsync(self):
        kernel = make_kernel(store_commit_window=0.5)
        kernel.make_durable("m", sites=["a"])
        cabinet = kernel.site("a").cabinet("m")
        for index in range(50):
            cabinet.put("f", index)
        kernel.run(until=2.0)
        # 50 appends, one commit, one redo record (one dirty folder).
        assert kernel.stats.wal_appends == 51  # + folder creation
        assert kernel.stats.wal_commits == 1
        assert kernel.stats.wal_records_committed == 1

    def test_crash_before_commit_discards_uncommitted_state(self):
        kernel = make_kernel(store_commit_window=1.0)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", "volatile")
        kernel.run(until=0.2)
        kernel.crash_site("a")                 # commit never fired
        assert kernel.stats.state_lost_records > 0
        assert kernel.store("a").durable_state().get("m", {}) == {}
        # The crash cleared the live cabinet too.
        assert kernel.site("a").cabinet("m").elements("f") == []
        assert any("state lost" in entry[3] for entry in kernel.event_log)

    def test_folder_removal_is_journaled(self):
        kernel = make_kernel(store_commit_window=0.1)
        kernel.make_durable("m", sites=["a"])
        cabinet = kernel.site("a").cabinet("m")
        cabinet.put("f", 1)
        kernel.run(until=0.5)
        assert "f" in kernel.store("a").durable_state()["m"]
        cabinet.remove("f")
        kernel.run(until=1.0)
        assert "f" not in kernel.store("a").durable_state()["m"]


class TestCrashRecovery:
    def test_recovery_restores_committed_state_with_delay(self):
        kernel = make_kernel(store_commit_window=0.1)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", "precious")
        kernel.run(until=1.0)
        kernel.crash_site("a")
        kernel.recover_site("a")
        site = kernel.site("a")
        assert not site.alive                  # replay has a modelled delay
        kernel.run(until=5.0)
        assert site.alive
        assert site.cabinet("m").elements("f") == ["precious"]
        assert kernel.stats.recoveries == 1
        assert kernel.stats.recovery_seconds > 0
        assert kernel.stats.durable_folders_restored >= 1

    def test_site_refuses_traffic_while_replaying(self):
        kernel = make_kernel(store_commit_window=0.1,
                             store_recovery_base=2.0)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", 1)
        kernel.run(until=1.0)
        kernel.crash_site("a")
        kernel.recover_site("a")

        def sender(ctx, bc):
            bc.set("HOST", "a")
            bc.set("CONTACT", "ag_py")
            bc.set("CODE", {"kind": "behaviour", "name": "shell"})
            result = yield ctx.meet("rexec", bc)
            return result.value

        from repro.core import Briefcase
        kernel.launch("b", sender, Briefcase())
        kernel.run(until=1.5)                  # replay (>= 2s) still underway
        dropped_before = kernel.stats.messages_dropped + kernel.undeliverable
        assert dropped_before > 0              # the transfer did not get in
        kernel.run(until=10.0)
        assert kernel.site("a").alive

    def test_crash_during_recovery_aborts_and_recovers_later(self):
        kernel = make_kernel(store_commit_window=0.1,
                             store_recovery_base=3.0)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", "precious")
        kernel.run(until=1.0)
        kernel.crash_site("a")
        kernel.recover_site("a")
        kernel.run(until=2.0)                  # replay running (needs 3s)
        kernel.crash_site("a")                 # crash mid-replay
        assert not kernel.store("a").recovering
        kernel.run(until=10.0)
        assert not kernel.site("a").alive      # stale completion was a no-op
        kernel.recover_site("a")
        kernel.run(until=20.0)
        assert kernel.site("a").alive
        assert kernel.site("a").cabinet("m").elements("f") == ["precious"]

    def test_recover_site_is_idempotent_while_replaying(self):
        kernel = make_kernel(store_recovery_base=2.0)
        kernel.make_durable("m", sites=["a"])
        kernel.crash_site("a")
        kernel.recover_site("a")
        kernel.recover_site("a")               # second call is a no-op
        kernel.run(until=10.0)
        assert kernel.site("a").alive
        assert kernel.stats.recoveries == 1

    def test_policy_none_keeps_legacy_instant_recovery(self):
        kernel = make_kernel("none")
        kernel.site("a").cabinet("m").put("f", "kept")
        kernel.crash_site("a")
        # Legacy free permanence: cabinets survive the crash untouched.
        assert kernel.site("a").cabinet("m").elements("f") == ["kept"]
        kernel.recover_site("a")
        assert kernel.site("a").alive          # instant, no replay
        # The recovery ledger is a store ledger: nothing was replayed.
        assert kernel.stats.recoveries == 0
        assert kernel.stats.recovery_seconds == 0.0

    def test_non_durable_cabinets_are_lost_under_durable_policy(self):
        kernel = make_kernel(store_commit_window=0.1)
        kernel.make_durable("kept", sites=["a"])
        site = kernel.site("a")
        site.cabinet("kept").put("f", 1)
        site.cabinet("scratch").put("g", 2)
        kernel.run(until=1.0)
        kernel.crash_site("a")
        kernel.recover_site("a")
        kernel.run(until=5.0)
        assert site.cabinet("kept").elements("f") == [1]
        assert site.cabinet("scratch").elements("g") == []
        assert kernel.stats.state_lost_folders >= 1


class TestFlushOnDemand:
    def test_nothing_durable_until_flush_completes(self):
        kernel = make_kernel("flush-on-demand")
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", "volatile")
        kernel.run(until=5.0)
        store = kernel.store("a")
        assert store.durable_state().get("m", {}) == {}
        cost = store.flush()
        assert cost > 0
        # The flush captured the state but the write+fsync is still in
        # flight: durability arrives only once the cost has elapsed.
        assert store.durable_state().get("m", {}) == {}
        kernel.run(until=5.0 + cost + 0.001)
        assert "f" in store.durable_state()["m"]

    def test_crash_during_flush_sync_loses_the_batch(self):
        kernel = make_kernel("flush-on-demand")
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", "doomed")
        store = kernel.store("a")
        store.flush()
        kernel.crash_site("a")                 # before the write+fsync lands
        kernel.recover_site("a")
        kernel.run(until=10.0)
        assert kernel.site("a").cabinet("m").elements("f") == []
        assert kernel.stats.state_lost_records >= 1

    def test_flush_then_crash_recovers_flushed_state_only(self):
        kernel = make_kernel("flush-on-demand")
        kernel.make_durable("m", sites=["a"])
        cabinet = kernel.site("a").cabinet("m")
        cabinet.put("f", "flushed")
        cost = kernel.store("a").flush()
        kernel.run(until=cost + 0.001)         # let the sync complete
        cabinet.put("f", "after-flush")
        kernel.crash_site("a")
        kernel.recover_site("a")
        kernel.run(until=5.0)
        assert kernel.site("a").cabinet("m").elements("f") == ["flushed"]

    def test_flush_with_nothing_pending_is_free(self):
        kernel = make_kernel("flush-on-demand")
        kernel.make_durable("m", sites=["a"])
        assert kernel.store("a").flush() == 0.0

    def test_sustained_flush_traffic_cannot_starve_durability(self):
        # Flushes arriving faster than the write+fsync completes must not
        # cancel and restart the in-flight sync: the disk drains one batch
        # at a time and everything still becomes durable.
        kernel = make_kernel("flush-on-demand", store_fsync_latency=0.004)
        kernel.make_durable("m", sites=["a"])
        cabinet = kernel.site("a").cabinet("m")
        store = kernel.store("a")
        for index in range(50):
            def write_and_flush(index=index):
                cabinet.put(f"entry-{index}", index)
                store.flush()
            kernel.loop.schedule(0.001 * index, write_and_flush)
        kernel.run(until=0.050)               # mid-burst: commits are landing
        assert kernel.stats.wal_commits > 0
        kernel.run(until=1.0)
        assert len(store.durable_state()["m"]) == 50
        assert store.is_durable(store.mutation_mark())


class TestBarrier:
    def test_barrier_piggybacks_on_the_group_commit_by_default(self):
        # A pending barrier must not sit out the commit window: the commit
        # fires immediately and the wait collapses to write + fsync.
        kernel = make_kernel(store_commit_window=0.5, store_fsync_latency=0.1,
                             store_write_byte_latency=0.0)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", 1)
        barrier = kernel.store("a").barrier()
        assert barrier == pytest.approx(0.0002 + 0.1)
        assert kernel.stats.wal_barrier_piggybacks == 1
        kernel.run(until=barrier + 0.01)
        assert kernel.store("a").barrier() == 0.0
        assert kernel.stats.wal_commits == 1
        assert "f" in kernel.store("a").durable_state()["m"]

    def test_barrier_without_piggyback_waits_out_the_commit_window(self):
        kernel = make_kernel(store_commit_window=0.5, store_fsync_latency=0.1,
                             store_write_byte_latency=0.0,
                             store_barrier_piggyback=False)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", 1)
        barrier = kernel.store("a").barrier()
        # window + one redo record's write + fsync, measured from now (t=0).
        assert barrier == pytest.approx(0.5 + 0.0002 + 0.1)
        assert kernel.stats.wal_barrier_piggybacks == 0
        kernel.run(until=barrier + 0.01)
        assert kernel.store("a").barrier() == 0.0

    def test_barrier_is_zero_with_nothing_pending(self):
        kernel = make_kernel()
        kernel.make_durable("m", sites=["a"])
        assert kernel.store("a").barrier() == 0.0

    def test_wait_until_durable_is_a_noop_under_policy_none(self):
        from repro.core.context import wait_until_durable
        kernel = make_kernel("none")
        seen = {}

        def probe(ctx, bc):
            seen["store"] = ctx.store
            seen["before"] = ctx.now
            yield from wait_until_durable(ctx)
            seen["after"] = ctx.now
            yield ctx.sleep(0)

        kernel.launch("a", probe)
        kernel.run()
        assert seen["store"] is None
        assert seen["after"] == seen["before"]


class TestBarrierMarks:
    def test_barrier_loops_until_the_marks_batch_is_really_durable(self):
        # The batch covering the caller's mark can grow after the barrier
        # is priced, pushing its fsync later than the estimate; the mark
        # API must keep reporting a positive wait until it truly committed.
        # Piggybacking is off: this pins the window-wait estimation path
        # (with it on, the first barrier call would commit immediately).
        kernel = make_kernel(store_commit_window=0.5, store_write_latency=0.1,
                             store_fsync_latency=0.1,
                             store_barrier_piggyback=False)
        kernel.make_durable("m", sites=["a"])
        cabinet = kernel.site("a").cabinet("m")
        cabinet.put("mine", 1)
        store = kernel.store("a")
        mark = store.mutation_mark()
        estimate = store.barrier(mark)        # priced for a 1-record batch
        # Five more folders join the same batch before the commit fires.
        kernel.loop.schedule(0.3, lambda: [cabinet.put(f"other-{i}", i)
                                           for i in range(5)])
        kernel.run(until=estimate)
        assert not store.is_durable(mark)     # the estimate came up short
        assert store.barrier(mark) > 0        # ...and the loop knows it
        kernel.run(until=estimate + store.barrier(mark) + 0.01)
        assert store.is_durable(mark)
        assert store.barrier(mark) == 0.0

    def test_overlapping_commit_defers_instead_of_clobbering_the_sync(self):
        # write+fsync outlasting the commit window must not drop the
        # in-flight batch: the next commit waits for the disk.
        kernel = make_kernel(store_commit_window=0.05,
                             store_fsync_latency=1.0)
        kernel.make_durable("m", sites=["a"])
        cabinet = kernel.site("a").cabinet("m")
        cabinet.put("first", 1)               # commit @0.05, fsync done @~1.05
        kernel.loop.schedule(0.1, lambda: cabinet.put("second", 2))
        kernel.run(until=5.0)
        state = kernel.store("a").durable_state()["m"]
        assert "first" in state and "second" in state
        assert kernel.stats.wal_commits == 2  # two syncs, neither lost

    def test_crash_mid_sync_counts_the_inflight_folders_as_lost(self):
        kernel = make_kernel(store_commit_window=0.05,
                             store_fsync_latency=1.0)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("doomed", 1)
        kernel.run(until=0.5)                 # commit fired, fsync pending
        kernel.crash_site("a")
        assert kernel.stats.state_lost_records == 1
        assert kernel.stats.state_lost_folders == 1   # the ledger agrees


class TestBytesProportionalCosts:
    def test_flush_cost_scales_with_payload_bytes(self):
        # Identical record counts, 100x the payload: the priced flush must
        # cost measurably more (write_byte_latency is the per-byte term).
        small = make_kernel("flush-on-demand", store_write_byte_latency=1e-6)
        large = make_kernel("flush-on-demand", store_write_byte_latency=1e-6)
        for kernel, payload in ((small, 100), (large, 10_000)):
            kernel.make_durable("m", sites=["a"])
            kernel.site("a").cabinet("m").put("f", b"\0" * payload)
        small_cost = small.store("a").flush()
        large_cost = large.store("a").flush()
        assert large_cost > small_cost
        # The difference is the byte term exactly: ~9900 extra bytes at
        # 1e-6 s/B (plus constant serialization overhead on both sides).
        assert large_cost - small_cost == pytest.approx(9_900 * 1e-6, rel=0.05)

    def test_byte_term_zeroed_restores_flat_per_record_pricing(self):
        kernel = make_kernel("flush-on-demand", store_write_byte_latency=0.0,
                             store_write_latency=0.0002,
                             store_fsync_latency=0.004)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", b"\0" * 50_000)
        assert kernel.store("a").flush() == pytest.approx(0.0002 + 0.004)

    def test_committed_bytes_are_ledgered(self):
        kernel = make_kernel(store_commit_window=0.05)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", b"\0" * 1_000)
        kernel.run(until=1.0)
        assert kernel.stats.wal_bytes_committed >= 1_000
        assert kernel.store_summary()["wal_bytes_committed"] >= 1_000
        # The WAL itself can report its pending payload for compaction math.
        assert kernel.store("a").wal.bytes_pending >= 1_000


class TestStoreSummaryTelemetry:
    def test_piggybacks_surface_in_the_store_summary(self):
        kernel = make_kernel(store_commit_window=0.5)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", 1)
        kernel.store("a").barrier()
        summary = kernel.store_summary()
        assert summary["wal_barrier_piggybacks"] == 1
        assert kernel.stats.snapshot()["wal_barrier_piggybacks"] == 1

    def test_zero_window_with_piggyback_off_counts_no_piggybacks(self):
        # Regression: the piggyback guard must test the governor's flag,
        # not the returned delay — a zero commit window with piggybacking
        # disabled used to run the piggyback path and count it.
        kernel = make_kernel(store_commit_window=0.0,
                             store_barrier_piggyback=False)
        kernel.make_durable("m", sites=["a"])
        kernel.site("a").cabinet("m").put("f", 1)
        kernel.store("a").barrier()
        assert kernel.stats.wal_barrier_piggybacks == 0
        kernel.run(until=1.0)
        assert "f" in kernel.store("a").durable_state()["m"]


class TestSnapshotCompaction:
    def test_wal_folds_into_snapshot_past_threshold(self):
        kernel = make_kernel(store_commit_window=0.01,
                             store_snapshot_threshold=5)
        kernel.make_durable("m", sites=["a"])
        cabinet = kernel.site("a").cabinet("m")
        for index in range(10):
            cabinet.put(f"folder-{index}", index)
            kernel.run(until=(index + 1) * 0.5)   # one commit per put
        store = kernel.store("a")
        assert kernel.stats.store_snapshots >= 1
        assert len(store.wal) <= 5
        # Compaction must not change the durable image.
        state = store.durable_state()["m"]
        assert len(state) == 10
        kernel.crash_site("a")
        kernel.recover_site("a")
        kernel.run(until=30.0)
        assert len(kernel.site("a").cabinet("m").names()) == 10

    def test_opt_in_captures_existing_contents(self):
        kernel = make_kernel()
        cabinet = kernel.site("a").cabinet("m")
        cabinet.put("pre", "existing")
        kernel.make_durable("m", sites=["a"])
        assert kernel.store("a").durable_state()["m"]["pre"]
        kernel.crash_site("a")
        kernel.recover_site("a")
        kernel.run(until=5.0)
        assert kernel.site("a").cabinet("m").elements("pre") == ["existing"]


class TestLateSites:
    def test_add_site_gets_a_store(self):
        kernel = make_kernel()
        kernel.add_site("late", links=["a"])
        assert kernel.store("late") is not None
        kernel.make_durable("m", sites=["late"])
        kernel.site("late").cabinet("m").put("f", 1)
        kernel.run(until=1.0)
        assert "f" in kernel.store("late").durable_state()["m"]
