"""Unit tests for the fault-tolerance extensions: Horus-assisted rear guards
and parallel StormCast collectors (the optional / future-work features)."""

from __future__ import annotations

import pytest

from repro.apps.stormcast import StormCastParams, run_agent_pipeline
from repro.core import Kernel, KernelConfig
from repro.core.errors import FaultToleranceError
from repro.fault import (GUARD_GROUP, REARGUARD_CABINET, SUSPICIONS_FOLDER, completions,
                         install_horus_guard_detection, launch_ft_computation)
from repro.net import FailureSchedule, ring


def make_horus_kernel(seed=3, sites=6):
    names = [f"s{i}" for i in range(sites)]
    kernel = Kernel(ring(names), transport="horus", config=KernelConfig(rng_seed=seed))
    for index, name in enumerate(names):
        kernel.site(name).cabinet("data").put("VALUE", index)
    return kernel, names


class TestHorusGuardDetection:
    def test_requires_the_horus_transport(self):
        kernel = Kernel(ring(["a", "b", "c"]), transport="tcp")
        with pytest.raises(FaultToleranceError):
            install_horus_guard_detection(kernel)

    def test_creates_the_site_group(self):
        kernel, names = make_horus_kernel()
        install_horus_guard_detection(kernel)
        assert kernel.transport.has_group(GUARD_GROUP)
        assert set(kernel.transport.group_view(GUARD_GROUP).members) == set(names)

    def test_is_idempotent(self):
        kernel, _ = make_horus_kernel()
        install_horus_guard_detection(kernel)
        install_horus_guard_detection(kernel)   # second call must not blow up

    def test_double_install_does_not_duplicate_suspicions(self):
        # Regression: a second install used to subscribe a second observer
        # per site, doubling every suspicion record.
        kernel, names = make_horus_kernel()
        install_horus_guard_detection(kernel)
        install_horus_guard_detection(kernel)
        kernel.loop.schedule(0.5, lambda: kernel.crash_site("s2"))
        kernel.run(until=2.0)
        for name in names:
            if name == "s2":
                continue
            cabinet = kernel.site(name).cabinet(REARGUARD_CABINET)
            suspects = [record["site"] for record in cabinet.elements(SUSPICIONS_FOLDER)]
            assert suspects.count("s2") == 1, name

    def test_late_registered_site_joins_the_guard_group(self):
        # Regression: the guard group captured the site list at install
        # time, so sites registered afterwards never joined and group_down
        # was diffed against stale membership.
        kernel, names = make_horus_kernel()
        install_horus_guard_detection(kernel)
        kernel.add_site("late", links=[names[0], names[1]])
        assert "late" in kernel.transport.group_view(GUARD_GROUP).members

        kernel.loop.schedule(0.5, lambda: kernel.crash_site("s2"))
        kernel.run(until=2.0)
        # The late site observes the view change like any founding member...
        cabinet = kernel.site("late").cabinet(REARGUARD_CABINET)
        suspects = [record["site"] for record in cabinet.elements(SUSPICIONS_FOLDER)]
        assert "s2" in suspects
        assert "s2" in (cabinet.get("group_down") or [])
        # ...and the survivors' group_down includes nothing stale: the late
        # site is a live member, not "down" just because it postdates the
        # install-time site list.
        survivor = kernel.site(names[0]).cabinet(REARGUARD_CABINET)
        assert "late" not in (survivor.get("group_down") or [])

    def test_observers_do_not_share_membership_baselines(self):
        # Each site's observer must diff against its own last-seen view; a
        # shared baseline set let one site's update stand in for all.
        kernel, names = make_horus_kernel(sites=4)
        install_horus_guard_detection(kernel)
        kernel.loop.schedule(0.3, lambda: kernel.crash_site("s1"))
        kernel.loop.schedule(0.9, lambda: kernel.crash_site("s2"))
        kernel.run(until=3.0)
        for name in ("s0", "s3"):
            cabinet = kernel.site(name).cabinet(REARGUARD_CABINET)
            suspects = [record["site"] for record in cabinet.elements(SUSPICIONS_FOLDER)]
            assert suspects.count("s1") == 1, name
            assert suspects.count("s2") == 1, name
            assert sorted(cabinet.get("group_down") or []) == ["s1", "s2"], name

    def test_crash_is_recorded_as_a_suspicion_at_surviving_sites(self):
        kernel, names = make_horus_kernel()
        install_horus_guard_detection(kernel)
        kernel.loop.schedule(0.5, lambda: kernel.crash_site("s2"))
        kernel.run(until=2.0)
        survivors = [name for name in names if name != "s2"]
        for name in survivors:
            cabinet = kernel.site(name).cabinet(REARGUARD_CABINET)
            suspects = [record["site"] for record in cabinet.elements(SUSPICIONS_FOLDER)]
            assert "s2" in suspects
            assert "s2" in (cabinet.get("group_down") or [])

    def test_view_assisted_recovery_is_faster_than_timeout(self):
        def completion_time(view_assisted):
            kernel, names = make_horus_kernel()
            if view_assisted:
                install_horus_guard_detection(kernel)
            ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.6,
                                          work_seconds=0.05, view_assisted=view_assisted)
            FailureSchedule().crash("s3", at=0.05).recover("s3", at=100.0).install(kernel)
            kernel.run(until=200.0)
            records = completions(kernel, names[-1], ft_id)
            assert len(records) == 1
            return records[0]["completed_at"]

        assert completion_time(True) < completion_time(False)

    def test_view_assistance_without_failures_changes_nothing(self):
        kernel, names = make_horus_kernel()
        install_horus_guard_detection(kernel)
        ft_id = launch_ft_computation(kernel, "s0", names[1:], per_hop=0.5,
                                      view_assisted=True)
        kernel.run(until=60.0)
        records = completions(kernel, names[-1], ft_id)
        assert len(records) == 1
        assert records[0]["relaunched"] is False


class TestParallelCollectors:
    PARAMS = StormCastParams(n_sensors=6, samples_per_site=80, raw_payload_bytes=200,
                             storm_rate=0.05, seed=27)

    def test_invalid_collector_count_raises(self):
        from repro.apps.stormcast.collector import launch_collectors
        kernel = Kernel(ring(["hub", "a"]), config=KernelConfig(rng_seed=1))
        with pytest.raises(ValueError):
            launch_collectors(kernel, "hub", ["a"], n_collectors=0)

    def test_parallel_collectors_cover_every_site_once(self):
        result = run_agent_pipeline(self.PARAMS, n_collectors=3)
        assert result.sites_covered == self.PARAMS.n_sensors

    def test_parallel_collectors_issue_the_same_alerts(self):
        single = run_agent_pipeline(self.PARAMS, n_collectors=1)
        parallel = run_agent_pipeline(self.PARAMS, n_collectors=3)
        assert single.alert_stations() == parallel.alert_stations()

    def test_parallel_collectors_shorten_the_forecast_time(self):
        single = run_agent_pipeline(self.PARAMS, n_collectors=1)
        parallel = run_agent_pipeline(self.PARAMS, n_collectors=3)
        assert parallel.duration < single.duration

    def test_more_collectors_than_sites_is_capped(self):
        result = run_agent_pipeline(self.PARAMS, n_collectors=50)
        assert result.sites_covered == self.PARAMS.n_sensors
