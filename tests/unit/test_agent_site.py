"""Unit tests for the agent model (repro.core.agent) and sites (repro.core.site)."""

from __future__ import annotations

import pytest

from repro.core import Briefcase
from repro.core.agent import AgentInstance, AgentSpec, AgentState
from repro.core.errors import UnknownAgentError
from repro.core.site import Site
from repro.net.message import Message, MessageKind


def noop(ctx, bc):
    yield None


class TestAgentState:
    def test_terminal_states(self):
        assert AgentState.is_terminal(AgentState.DONE)
        assert AgentState.is_terminal(AgentState.FAILED)
        assert AgentState.is_terminal(AgentState.KILLED)

    def test_non_terminal_states(self):
        for state in (AgentState.CREATED, AgentState.RUNNING, AgentState.WAITING):
            assert not AgentState.is_terminal(state)


class TestAgentInstance:
    def make(self, **kwargs):
        return AgentInstance(AgentSpec(behaviour=noop, briefcase=Briefcase(), **kwargs), "alpha")

    def test_ids_are_unique(self):
        assert self.make().agent_id != self.make().agent_id

    def test_name_defaults_to_agent_id(self):
        instance = self.make()
        assert instance.name == instance.agent_id

    def test_explicit_name_is_kept(self):
        assert self.make(name="rexec").name == "rexec"

    def test_lifecycle_done(self):
        instance = self.make()
        assert not instance.finished
        instance.mark_running()
        assert instance.state == AgentState.RUNNING
        instance.mark_done("result", at=1.5)
        assert instance.finished and instance.ok
        assert instance.result == "result"
        assert instance.finished_at == 1.5

    def test_lifecycle_failed(self):
        instance = self.make()
        error = ValueError("boom")
        instance.mark_failed(error, at=2.0)
        assert instance.finished and not instance.ok
        assert instance.error is error

    def test_lifecycle_killed(self):
        instance = self.make()
        instance.mark_killed(at=3.0, reason="site crash")
        assert instance.state == AgentState.KILLED
        assert "site crash" in str(instance.error)

    def test_visited_starts_with_launch_site(self):
        assert self.make().visited == ["alpha"]

    def test_meet_parent_tracking(self):
        parent = self.make()
        child = AgentInstance(AgentSpec(behaviour=noop), "alpha",
                              parent_id=parent.agent_id, meet_parent=parent.agent_id)
        assert child.meet_parent == parent.agent_id
        assert child.meet_ended is False
        orphan = self.make()
        assert orphan.meet_ended is True


class TestSite:
    def test_install_resolve(self):
        site = Site("alpha")
        site.install("svc", noop, system=True)
        behaviour, is_system = site.resolve("svc")
        assert behaviour is noop and is_system
        assert site.is_installed("svc")
        assert "svc" in site.installed_names()

    def test_install_conflict_raises(self):
        site = Site("alpha")
        site.install("svc", noop)

        def other(ctx, bc):
            yield None

        with pytest.raises(UnknownAgentError):
            site.install("svc", other)

    def test_install_same_behaviour_again_is_ok(self):
        site = Site("alpha")
        site.install("svc", noop)
        site.install("svc", noop)

    def test_install_replace(self):
        site = Site("alpha")
        site.install("svc", noop)

        def other(ctx, bc):
            yield None

        site.install("svc", other, replace=True)
        assert site.resolve("svc")[0] is other

    def test_uninstall(self):
        site = Site("alpha")
        site.install("svc", noop)
        site.uninstall("svc")
        assert not site.is_installed("svc")
        site.uninstall("svc")  # silent

    def test_resolve_unknown_raises(self):
        with pytest.raises(UnknownAgentError):
            Site("alpha").resolve("ghost")

    def test_cabinets_created_on_demand(self):
        site = Site("alpha")
        assert not site.has_cabinet("store")
        cabinet = site.cabinet("store")
        assert site.has_cabinet("store")
        assert site.cabinet("store") is cabinet
        assert cabinet in site.cabinets()

    def test_flush_cabinets(self, tmp_path):
        site = Site("alpha")
        site.cabinet("a").put("X", 1)
        site.cabinet("b").put("Y", 2)
        paths = site.flush_cabinets(str(tmp_path))
        assert len(paths) == 2

    def test_load_metric_scales_with_capacity(self):
        fast = Site("fast", capacity=4.0)
        slow = Site("slow", capacity=1.0)
        assert fast.load_metric(4) == pytest.approx(1.0)
        assert slow.load_metric(4) == pytest.approx(4.0)

    def test_load_metric_includes_background_load(self):
        site = Site("alpha")
        site.background_load = 2.0
        assert site.load_metric(1) == pytest.approx(3.0)

    def test_load_metric_with_zero_capacity_does_not_divide_by_zero(self):
        site = Site("alpha", capacity=0.0)
        assert site.load_metric(1) > 0

    def test_crash_and_recover(self):
        site = Site("alpha")
        site.cabinet("store").put("X", 1)
        site.mark_crashed()
        assert not site.alive
        assert site.crash_count == 1
        site.mark_recovered()
        assert site.alive
        # Cabinets model disk-backed storage and survive the crash.
        assert site.cabinet("store").get("X") == 1

    def test_message_hooks(self):
        site = Site("alpha")
        seen = []
        site.set_message_hook(MessageKind.STATUS, seen.append)
        hook = site.message_hook(MessageKind.STATUS)
        assert hook is not None
        hook(Message(source="a", destination="alpha", kind=MessageKind.STATUS))
        assert len(seen) == 1
        assert site.message_hook("other-kind") is None

    def test_repr_shows_status(self):
        site = Site("alpha")
        assert "up" in repr(site)
        site.mark_crashed()
        assert "DOWN" in repr(site)
