"""Sanity checks on the public package surface: exports exist, versions agree.

These tests keep `__all__` honest (everything advertised is importable) so
downstream users can rely on `from repro.<pkg> import *` and the documented
entry points.
"""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.net",
    "repro.sysagents",
    "repro.cash",
    "repro.scheduling",
    "repro.fault",
    "repro.shard",
    "repro.rt",
    "repro.obs",
    "repro.apps.stormcast",
    "repro.apps.mail",
    "repro.bench",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_every_advertised_name_is_importable(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package_name}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_every_package_has_a_docstring(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and module.__doc__.strip()


def test_version_is_exposed_and_consistent_with_metadata():
    assert repro.__version__
    try:
        from importlib.metadata import version
        installed = version("repro")
    except Exception:
        pytest.skip("package metadata not available in this environment")
    assert installed == repro.__version__


def test_top_level_reexports_cover_the_quickstart_needs():
    for name in ("Kernel", "KernelConfig", "Briefcase", "Folder", "FileCabinet",
                 "lan", "ring", "star", "two_clusters", "random_topology"):
        assert hasattr(repro, name)


def test_well_known_agent_names_are_globally_registered():
    """The names the paper treats as well known must resolve everywhere."""
    import repro.apps.mail          # noqa: F401  (registers letter_agent)
    import repro.apps.stormcast     # noqa: F401  (registers storm_collector)
    import repro.fault              # noqa: F401  (registers ft_visitor, rear_guard)
    import repro.scheduling         # noqa: F401  (registers scheduled_client)
    import repro.sysagents          # noqa: F401  (registers rexec, ag_py, ...)
    from repro.core import default_registry

    registry = default_registry()
    for name in ("rexec", "ag_py", "courier", "diffusion", "shell",
                 "ft_visitor", "rear_guard", "letter_agent", "storm_collector",
                 "scheduled_client"):
        assert name in registry, f"{name!r} should be registered process-wide"


def test_error_hierarchy_has_a_single_root():
    from repro.core import errors

    roots = [obj for name, obj in vars(errors).items()
             if isinstance(obj, type) and issubclass(obj, Exception)
             and not name.startswith("_")]
    for exc_type in roots:
        if exc_type is errors.TacomaError:
            continue
        assert issubclass(exc_type, errors.TacomaError), (
            f"{exc_type.__name__} must derive from TacomaError")
