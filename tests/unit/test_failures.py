"""Unit tests for failure injection (repro.net.failures)."""

from __future__ import annotations

import pytest

from repro.core import Kernel, KernelConfig
from repro.net import FailureSchedule, RandomCrasher, lan
from repro.net.failures import FailureAction


@pytest.fixture
def kernel():
    return Kernel(lan(["a", "b", "c", "d"]), transport="tcp",
                  config=KernelConfig(rng_seed=1))


class TestFailureSchedule:
    def test_builder_collects_actions_in_order(self):
        schedule = (FailureSchedule()
                    .crash("a", at=1.0)
                    .recover("a", at=2.0)
                    .partition([["a"], ["b"]], at=3.0)
                    .heal(at=4.0))
        kinds = [action.kind for action in schedule.actions]
        assert kinds == ["crash", "recover", "partition", "heal"]

    def test_crash_and_recover_are_applied_at_the_right_times(self, kernel):
        FailureSchedule().crash("b", at=1.0).recover("b", at=2.0).install(kernel)
        kernel.run(until=1.5)
        assert not kernel.site("b").alive
        kernel.run(until=2.5)
        assert kernel.site("b").alive

    def test_partition_and_heal(self, kernel):
        (FailureSchedule()
         .partition([["a", "b"], ["c", "d"]], at=1.0)
         .heal(at=2.0)
         .install(kernel))
        kernel.run(until=1.5)
        assert kernel.topology.partitioned("a", "c")
        kernel.run(until=2.5)
        assert not kernel.topology.partitioned("a", "c")

    def test_unknown_action_kind_raises_when_fired(self, kernel):
        schedule = FailureSchedule(actions=[FailureAction(at=0.1, kind="meteor")])
        schedule.install(kernel)
        with pytest.raises(ValueError):
            kernel.run()


class TestRandomCrasher:
    def test_probability_must_be_valid(self):
        with pytest.raises(ValueError):
            RandomCrasher(1.5, window=(0, 1))
        with pytest.raises(ValueError):
            RandomCrasher(-0.1, window=(0, 1))

    def test_zero_probability_crashes_nothing(self, kernel):
        crasher = RandomCrasher(0.0, window=(0, 5), seed=1)
        schedule = crasher.install(kernel)
        assert schedule.actions == []

    def test_full_probability_crashes_every_unprotected_site(self, kernel):
        crasher = RandomCrasher(1.0, window=(0, 5), protect=["a"], seed=1)
        schedule = crasher.build_schedule(kernel.site_names())
        crashed = {action.site for action in schedule.actions if action.kind == "crash"}
        assert crashed == {"b", "c", "d"}

    def test_crash_times_are_within_window(self, kernel):
        crasher = RandomCrasher(1.0, window=(2.0, 3.0), seed=5)
        schedule = crasher.build_schedule(kernel.site_names())
        for action in schedule.actions:
            if action.kind == "crash":
                assert 2.0 <= action.at <= 3.0

    def test_recover_after_adds_recovery_actions(self, kernel):
        crasher = RandomCrasher(1.0, window=(0.0, 1.0), recover_after=2.0, seed=5)
        schedule = crasher.build_schedule(kernel.site_names())
        crashes = [action for action in schedule.actions if action.kind == "crash"]
        recoveries = [action for action in schedule.actions if action.kind == "recover"]
        assert len(crashes) == len(recoveries)
        for crash, recovery in zip(crashes, recoveries):
            assert recovery.at == pytest.approx(crash.at + 2.0)

    def test_plan_is_deterministic_for_a_seed(self, kernel):
        plan_a = RandomCrasher(0.5, window=(0, 5), seed=42).build_schedule(kernel.site_names())
        plan_b = RandomCrasher(0.5, window=(0, 5), seed=42).build_schedule(kernel.site_names())
        assert [(action.kind, action.site, action.at) for action in plan_a.actions] == \
               [(action.kind, action.site, action.at) for action in plan_b.actions]

    def test_install_applies_to_kernel(self, kernel):
        RandomCrasher(1.0, window=(0.5, 0.6), protect=["a"], seed=3).install(kernel)
        kernel.run(until=1.0)
        assert kernel.site("a").alive
        assert not kernel.site("b").alive
