"""Unit tests for AgentContext: the agent's view of its current site."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.briefcase import CODE_FOLDER, CONTACT_FOLDER, HOST_FOLDER
from repro.core.syscalls import EndMeet, Meet, Sleep, Spawn, Terminate, Transmit
from repro.net import lan


@pytest.fixture
def kernel():
    return Kernel(lan(["a", "b", "c"]), transport="tcp", config=KernelConfig(rng_seed=5))


def run_probe(kernel, probe, site="a", briefcase=None, **launch_kwargs):
    """Launch *probe*, run the kernel, and return the probe's result."""
    agent_id = kernel.launch(site, probe, briefcase, **launch_kwargs)
    kernel.run()
    return kernel.result_of(agent_id)


class TestEnvironment:
    def test_identity_properties(self, kernel):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            return {
                "site": ctx.site_name,
                "agent_id": ctx.agent_id,
                "name": ctx.agent_name,
                "system": ctx.is_system_agent,
                "briefcase_is_same": ctx.briefcase is bc,
            }

        briefcase = Briefcase()
        result = run_probe(kernel, probe, briefcase=briefcase, name="probe")
        assert result["site"] == "a"
        assert result["name"] == "probe"
        assert result["agent_id"].startswith("agent-")
        assert result["system"] is False
        assert result["briefcase_is_same"] is True

    def test_sites_and_neighbors(self, kernel):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            return (sorted(ctx.sites()), sorted(ctx.neighbors()))

        sites, neighbors = run_probe(kernel, probe)
        assert sites == ["a", "b", "c"]
        assert neighbors == ["b", "c"]

    def test_now_tracks_simulated_time(self, kernel):
        def probe(ctx, bc):
            before = ctx.now
            yield ctx.sleep(1.0)
            return ctx.now - before

        assert run_probe(kernel, probe) >= 1.0

    def test_site_load_defaults_to_local_site(self, kernel):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            return ctx.site_load()

        assert run_probe(kernel, probe) >= 0.0

    def test_rng_is_deterministic_per_seed(self):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            return [ctx.rng.random() for _ in range(3)]

        first = run_probe(Kernel(lan(["a"]), config=KernelConfig(rng_seed=9)), probe)
        # A fresh kernel with the same seed produces an agent with the same
        # id sequence only if the global counter aligns, so compare two
        # draws inside a single kernel instead: same agent id -> same stream.
        assert len(first) == 3
        assert all(0.0 <= value < 1.0 for value in first)

    def test_cabinet_access_creates_on_demand(self, kernel):
        def probe(ctx, bc):
            assert not ctx.has_cabinet("fresh")
            ctx.cabinet("fresh").put("X", 1)
            yield ctx.sleep(0)
            return ctx.has_cabinet("fresh")

        assert run_probe(kernel, probe) is True
        assert kernel.site("a").cabinet("fresh").get("X") == 1


class TestSyscallConstructors:
    def test_constructors_build_expected_syscalls(self, kernel):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            return {
                "meet": ctx.meet("rexec"),
                "end_meet": ctx.end_meet("v"),
                "sleep": ctx.sleep(1.5),
                "spawn": ctx.spawn("rexec"),
                "terminate": ctx.terminate("bye"),
                "transmit": ctx.transmit("b", "ag_py", Briefcase()),
            }

        result = run_probe(kernel, probe)
        assert isinstance(result["meet"], Meet) and result["meet"].agent_name == "rexec"
        assert isinstance(result["end_meet"], EndMeet) and result["end_meet"].value == "v"
        assert isinstance(result["sleep"], Sleep) and result["sleep"].duration == 1.5
        assert isinstance(result["spawn"], Spawn)
        assert isinstance(result["terminate"], Terminate) and result["terminate"].result == "bye"
        assert isinstance(result["transmit"], Transmit) and result["transmit"].destination == "b"

    def test_meet_gets_fresh_briefcase_by_default(self, kernel):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            first = ctx.meet("rexec")
            second = ctx.meet("rexec")
            return first.briefcase is not second.briefcase

        assert run_probe(kernel, probe) is True


class TestJumpIdiom:
    def test_jump_attaches_host_contact_and_code(self, kernel):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            travel = Briefcase()
            syscall = ctx.jump(travel, "b")
            return {
                "target": syscall.agent_name,
                "host": travel.get(HOST_FOLDER),
                "contact": travel.get(CONTACT_FOLDER),
                "has_code": travel.has(CODE_FOLDER),
            }

        from repro.core.registry import register_behaviour
        register_behaviour("ctx_probe", probe, replace=True)
        result = run_probe(kernel, "ctx_probe")
        assert result["target"] == "rexec"
        assert result["host"] == "b"
        assert result["contact"] == "ag_py"
        assert result["has_code"] is True

    def test_jump_with_custom_contact(self, kernel):
        def probe(ctx, bc):
            yield ctx.sleep(0)
            travel = Briefcase()
            ctx.jump(travel, "c", contact="shell")
            return travel.get(CONTACT_FOLDER)

        from repro.core.registry import register_behaviour
        register_behaviour("ctx_probe2", probe, replace=True)
        assert run_probe(kernel, "ctx_probe2") == "shell"

    def test_send_folder_builds_courier_meet(self, kernel):
        from repro.core import Folder

        def probe(ctx, bc):
            yield ctx.sleep(0)
            syscall = ctx.send_folder(Folder("PAYLOAD", ["data"]), "b", "mailbox")
            return {
                "agent": syscall.agent_name,
                "host": syscall.briefcase.get(HOST_FOLDER),
                "contact": syscall.briefcase.get(CONTACT_FOLDER),
                "payload_name": syscall.briefcase.get("PAYLOAD_NAME"),
                "has_payload": syscall.briefcase.has("PAYLOAD"),
            }

        result = run_probe(kernel, probe)
        assert result["agent"] == "courier"
        assert result["host"] == "b"
        assert result["contact"] == "mailbox"
        assert result["payload_name"] == "PAYLOAD"
        assert result["has_payload"] is True
