"""Unit tests for metered migration (electronic cash as runaway containment)."""

from __future__ import annotations

import pytest

from repro.cash import Mint, Wallet
from repro.cash.metering import (TOLL_CABINET, UNMETERED_REXEC, fund_briefcase,
                                 install_metering, make_metered_rexec, toll_revenue)
from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.net import lan


def hopper(ctx, bc):
    """Visit the next site in HOPS_LEFT order; record where it was stopped."""
    remaining = bc.folder("ROUTE", create=True)
    bc.put("TRAIL", ctx.site_name)
    if remaining:
        target = remaining.dequeue()
        result = yield ctx.jump(bc, target)
        if not result.value:
            ctx.cabinet("halted").put("at", {"site": ctx.site_name,
                                             "hops_done": len(bc.folder("TRAIL")) - 1})
            return "halted"
        return "moved"
    return "finished"


register_behaviour("metered_hopper", hopper, replace=True)


def runaway(ctx, bc):
    """Hop round-robin forever (until something stops it)."""
    sites = ctx.sites()
    target = sites[(sites.index(ctx.site_name) + 1) % len(sites)]
    bc.set("HOPS", bc.get("HOPS", 0) + 1)
    result = yield ctx.jump(bc, target)
    if not result.value:
        ctx.cabinet("halted").put("at", {"hops": bc.get("HOPS")})
        return "halted"
    return "moved"


register_behaviour("metered_runaway", runaway, replace=True)


@pytest.fixture
def world():
    kernel = Kernel(lan([f"s{i}" for i in range(4)]), transport="tcp",
                    config=KernelConfig(rng_seed=2))
    mint = Mint(seed=2)
    install_metering(kernel, mint, toll=1)
    return kernel, mint


def halted_records(kernel):
    records = []
    for site in kernel.site_names():
        records.extend(kernel.site(site).cabinet("halted").elements("at"))
    return records


class TestFunding:
    def test_fund_briefcase_deposits_requested_amount(self):
        mint = Mint(seed=1)
        briefcase = Briefcase()
        assert fund_briefcase(mint, briefcase, 7) == 7
        assert Wallet(briefcase).balance() == 7

    def test_fund_with_larger_denomination(self):
        mint = Mint(seed=1)
        briefcase = Briefcase()
        fund_briefcase(mint, briefcase, 10, denomination=3)
        wallet = Wallet(briefcase)
        assert wallet.balance() == 10
        assert sorted(ecu.amount for ecu in wallet.ecus()) == [1, 3, 3, 3]


class TestInstallation:
    def test_metered_rexec_replaces_the_standard_one(self, world):
        kernel, _ = world
        for site in kernel.site_names():
            assert kernel.site(site).is_installed("rexec")
            assert kernel.site(site).is_installed(UNMETERED_REXEC)
            assert kernel.site(site).is_installed("validation")

    def test_existing_validation_agent_is_kept(self):
        from repro.cash import VALIDATION_AGENT_NAME, make_validation_behaviour
        kernel = Kernel(lan(["a", "b"]), config=KernelConfig(rng_seed=1))
        mint = Mint(seed=1)
        original = make_validation_behaviour(mint)
        kernel.install_agent("a", VALIDATION_AGENT_NAME, original, system=True)
        install_metering(kernel, mint, toll=1)
        assert kernel.site("a").resolve(VALIDATION_AGENT_NAME)[0] is original


class TestTollCollection:
    def test_funded_agent_travels_and_pays_per_hop(self, world):
        kernel, mint = world
        briefcase = Briefcase()
        fund_briefcase(mint, briefcase, 3)
        route = briefcase.folder("ROUTE", create=True)
        route.extend(["s1", "s2", "s3"])
        kernel.launch("s0", "metered_hopper", briefcase)
        kernel.run()
        assert kernel.stats.migrations == 3
        assert toll_revenue(kernel) == 3
        assert halted_records(kernel) == []

    def test_underfunded_agent_is_stopped_midway(self, world):
        kernel, mint = world
        briefcase = Briefcase()
        fund_briefcase(mint, briefcase, 2)
        route = briefcase.folder("ROUTE", create=True)
        route.extend(["s1", "s2", "s3"])
        kernel.launch("s0", "metered_hopper", briefcase)
        kernel.run()
        assert kernel.stats.migrations == 2
        halted = halted_records(kernel)
        assert halted and halted[0]["site"] == "s2"
        # The refusal is documented at the refusing site.
        refusals = [record for site in kernel.site_names()
                    for record in kernel.site(site).cabinet(TOLL_CABINET).elements("refusals")]
        assert refusals and refusals[0]["balance"] == 0

    def test_runaway_damage_is_bounded_by_its_funding(self, world):
        kernel, mint = world
        briefcase = Briefcase()
        fund_briefcase(mint, briefcase, 5)
        kernel.launch("s0", "metered_runaway", briefcase)
        kernel.run(max_events=200_000)
        assert kernel.stats.migrations == 5
        assert toll_revenue(kernel) == 5

    def test_unfunded_agent_never_leaves_its_site(self, world):
        kernel, mint = world
        briefcase = Briefcase()
        kernel.launch("s0", "metered_runaway", briefcase)
        kernel.run(max_events=50_000)
        assert kernel.stats.migrations == 0

    def test_local_moves_are_free(self, world):
        kernel, mint = world

        def local_mover(ctx, bc):
            request = Briefcase()
            request.set("HOST", ctx.site_name)
            request.set("CONTACT", "shell")
            result = yield ctx.meet("rexec", request)
            return result.value

        agent_id = kernel.launch("s0", local_mover)
        kernel.run()
        assert kernel.result_of(agent_id) is True
        assert toll_revenue(kernel) == 0

    def test_toll_of_zero_behaves_like_unmetered(self):
        kernel = Kernel(lan(["a", "b"]), config=KernelConfig(rng_seed=1))
        mint = Mint(seed=1)
        install_metering(kernel, mint, toll=0)
        briefcase = Briefcase()
        route = briefcase.folder("ROUTE", create=True)
        route.extend(["b"])
        kernel.launch("a", "metered_hopper", briefcase)
        kernel.run()
        assert kernel.stats.migrations == 1
        assert toll_revenue(kernel) == 0

    def test_money_supply_is_conserved_by_tolls(self, world):
        kernel, mint = world
        briefcase = Briefcase()
        fund_briefcase(mint, briefcase, 4)
        supply = mint.outstanding_value()
        route = briefcase.folder("ROUTE", create=True)
        route.extend(["s1", "s2"])
        kernel.launch("s0", "metered_hopper", briefcase)
        kernel.run()
        assert mint.outstanding_value() == supply

    def test_missing_host_is_still_refused(self, world):
        kernel, _ = world

        def confused(ctx, bc):
            result = yield ctx.meet("rexec", Briefcase())
            return result.value

        agent_id = kernel.launch("s0", confused)
        kernel.run()
        assert kernel.result_of(agent_id) is False
