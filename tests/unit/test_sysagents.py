"""Unit tests for the standard system agents: rexec, ag_py, courier, shell."""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Folder, Kernel, KernelConfig
from repro.core.codec import code_for, code_from_source
from repro.net import lan
from repro.sysagents import STANDARD_AGENTS, install_standard_agents


@pytest.fixture
def kernel():
    return Kernel(lan(["a", "b", "c"]), transport="tcp", config=KernelConfig(rng_seed=2))


def run_client(kernel, behaviour, site="a"):
    agent_id = kernel.launch(site, behaviour)
    kernel.run()
    return kernel.result_of(agent_id)


class TestInstallation:
    def test_standard_agents_table(self):
        for name in ("ag_py", "rexec", "courier", "diffusion", "shell"):
            assert name in STANDARD_AGENTS

    def test_install_standard_agents_is_idempotent(self, kernel):
        site = kernel.site("a")
        install_standard_agents(site)
        install_standard_agents(site)
        assert site.is_installed("rexec")

    def test_rexec_and_agpy_are_system_agents(self, kernel):
        for name in ("rexec", "ag_py", "courier"):
            _, is_system = kernel.site("a").resolve(name)
            assert is_system, f"{name} should be a system agent"


class TestRexec:
    def test_missing_host_folder_ends_meet_with_false(self, kernel):
        def client(ctx, bc):
            request = Briefcase()
            request.set("CONTACT", "ag_py")
            result = yield ctx.meet("rexec", request)
            return result.value

        assert run_client(kernel, client) is False

    def test_jump_to_current_site_is_a_local_meet(self, kernel):
        def local_service(ctx, bc):
            bc.set("SERVED_AT", ctx.site_name)
            yield ctx.end_meet("served")

        kernel.install_agent("a", "local_service", local_service)

        def client(ctx, bc):
            request = Briefcase()
            request.set("HOST", "a")
            request.set("CONTACT", "local_service")
            result = yield ctx.meet("rexec", request)
            return (result.value, request.get("SERVED_AT"))

        value, served_at = run_client(kernel, client)
        assert value is True
        assert served_at == "a"
        assert kernel.stats.migrations == 0   # no network involved

    def test_application_kind_folder_travels_untouched(self, kernel):
        # An agent's own "KIND" folder is ordinary luggage: rexec only
        # consumes it when it names a supported transfer kind (the rear
        # guard relaunch override); anything else ships along unmodified
        # as a plain agent transfer.
        from repro.net.message import MessageKind

        def client(ctx, bc):
            request = Briefcase()
            request.set("HOST", "b")
            request.set("CONTACT", "ag_py")
            request.set("KIND", "priority")         # app-defined folder
            request.set("CODE", code_for("shell"))
            result = yield ctx.meet("rexec", request)
            return (result.value, request.has("KIND"))

        value, kind_kept = run_client(kernel, client)
        assert value is True
        assert kind_kept is True
        assert kernel.stats.per_kind[MessageKind.AGENT_TRANSFER] == 1
        assert kernel.stats.per_kind.get(MessageKind.FT_RELAUNCH, 0) == 0

    def test_ft_relaunch_kind_folder_is_consumed_and_used(self, kernel):
        from repro.net.message import MessageKind

        def client(ctx, bc):
            request = Briefcase()
            request.set("HOST", "b")
            request.set("CONTACT", "ag_py")
            request.set("KIND", MessageKind.FT_RELAUNCH)
            request.set("CODE", code_for("shell"))
            result = yield ctx.meet("rexec", request)
            return (result.value, request.has("KIND"))

        value, kind_kept = run_client(kernel, client)
        assert value is True
        assert kind_kept is False                  # consumed per shipment
        assert kernel.stats.per_kind[MessageKind.FT_RELAUNCH] == 1

    def test_transfer_to_down_site_ends_meet_with_false(self, kernel):
        kernel.crash_site("b")

        def client(ctx, bc):
            request = Briefcase()
            request.set("HOST", "b")
            request.set("CONTACT", "ag_py")
            request.set("CODE", code_for("shell"))
            result = yield ctx.meet("rexec", request)
            return result.value

        assert run_client(kernel, client) is False
        assert kernel.undeliverable == 0     # refused at the source, never sent

    def test_successful_transfer_starts_contact_at_destination(self, kernel):
        def remote_task(ctx, bc):
            ctx.cabinet("proof").put("ran_at", ctx.site_name)
            yield ctx.sleep(0)

        from repro.core.registry import register_behaviour
        register_behaviour("remote_task", remote_task, replace=True)
        kernel.install_agent("b", "remote_task", remote_task)

        def client(ctx, bc):
            request = Briefcase()
            request.set("HOST", "b")
            request.set("CONTACT", "remote_task")
            result = yield ctx.meet("rexec", request)
            return result.value

        assert run_client(kernel, client) is True
        assert kernel.site("b").cabinet("proof").get("ran_at") == "b"
        assert kernel.arrivals == 1

    def test_arrival_for_unknown_contact_is_undeliverable(self, kernel):
        def client(ctx, bc):
            request = Briefcase()
            request.set("HOST", "b")
            request.set("CONTACT", "not-installed-anywhere")
            result = yield ctx.meet("rexec", request)
            return result.value

        assert run_client(kernel, client) is True     # handed to the network fine
        assert kernel.undeliverable == 1
        assert kernel.site("b").undeliverable == 1


class TestAgPy:
    def test_runs_registered_code(self, kernel):
        def payload(ctx, bc):
            ctx.cabinet("proof").put("ran", True)
            yield ctx.sleep(0)

        from repro.core.registry import register_behaviour
        register_behaviour("agpy_payload", payload, replace=True)

        def client(ctx, bc):
            request = Briefcase()
            request.set("CODE", code_for("agpy_payload"))
            result = yield ctx.meet("ag_py", request)
            return result.value

        spawned_id = run_client(kernel, client)
        assert spawned_id is not None
        kernel.run()
        assert kernel.site("a").cabinet("proof").get("ran") is True

    def test_runs_shipped_source(self, kernel):
        source = """
def agent_main(ctx, bc):
    ctx.cabinet("proof").put("source_ran", ctx.site_name)
    yield ctx.sleep(0)
    return "source-done"
"""

        def client(ctx, bc):
            request = Briefcase()
            request.set("CODE", code_from_source(source))
            result = yield ctx.meet("ag_py", request)
            return result.value

        assert run_client(kernel, client) is not None
        assert kernel.site("a").cabinet("proof").get("source_ran") == "a"

    def test_missing_code_folder_is_recorded_not_raised(self, kernel):
        def client(ctx, bc):
            result = yield ctx.meet("ag_py", Briefcase())
            return result.value

        assert run_client(kernel, client) is None
        errors = kernel.site("a").cabinet("_errors").elements("ag_py")
        assert errors and "CODE" in errors[0]

    def test_unusable_code_is_recorded_not_raised(self, kernel):
        def client(ctx, bc):
            request = Briefcase()
            request.set("CODE", {"kind": "registered", "name": "never-registered-xyz"})
            result = yield ctx.meet("ag_py", request)
            return result.value

        assert run_client(kernel, client) is None
        assert kernel.site("a").cabinet("_errors").elements("ag_py")


class TestCourier:
    def test_missing_folders_end_meet_with_false(self, kernel):
        def client(ctx, bc):
            result = yield ctx.meet("courier", Briefcase())
            return result.value

        assert run_client(kernel, client) is False

    def test_missing_payload_folder_is_refused(self, kernel):
        def client(ctx, bc):
            request = Briefcase()
            request.set("HOST", "b")
            request.set("CONTACT", "mailbox")
            request.set("PAYLOAD_NAME", "LETTER")     # folder LETTER not present
            result = yield ctx.meet("courier", request)
            return result.value

        assert run_client(kernel, client) is False

    def test_remote_delivery_reaches_contact(self, kernel):
        received = {}

        def receiver(ctx, bc):
            received["elements"] = bc.folder(bc.get("PAYLOAD_NAME")).elements()
            received["sender_site"] = bc.get("SENDER_SITE")
            yield ctx.sleep(0)

        kernel.install_agent("b", "receiver", receiver)

        def client(ctx, bc):
            result = yield ctx.send_folder(Folder("DOC", ["page1", "page2"]), "b", "receiver")
            return result.value

        assert run_client(kernel, client) is True
        assert received["elements"] == ["page1", "page2"]
        assert received["sender_site"] == "a"

    def test_local_delivery_avoids_the_network(self, kernel):
        received = {}

        def receiver(ctx, bc):
            received["ok"] = True
            yield ctx.sleep(0)

        kernel.install_agent("a", "receiver", receiver)

        def client(ctx, bc):
            result = yield ctx.send_folder(Folder("DOC", ["x"]), "a", "receiver")
            return result.value

        before = kernel.stats.messages_sent
        assert run_client(kernel, client) is True
        assert received["ok"] is True
        assert kernel.stats.messages_sent == before

    def test_courier_ships_only_the_payload_folder(self, kernel):
        """The courier must not forward unrelated folders it was handed."""
        seen_folders = {}

        def receiver(ctx, bc):
            seen_folders["names"] = sorted(bc.names())
            yield ctx.sleep(0)

        kernel.install_agent("b", "receiver", receiver)

        def client(ctx, bc):
            request = Briefcase()
            request.add(Folder("SECRET", ["do not ship"]))
            request.add(Folder("DOC", ["ship this"]))
            request.set("HOST", "b")
            request.set("CONTACT", "receiver")
            request.set("PAYLOAD_NAME", "DOC")
            result = yield ctx.meet("courier", request)
            return result.value

        assert run_client(kernel, client) is True
        assert "SECRET" not in seen_folders["names"]
        assert "DOC" in seen_folders["names"]


class TestShell:
    def test_executes_command_sequence(self, kernel):
        def client(ctx, bc):
            request = Briefcase()
            commands = request.folder("COMMANDS", create=True)
            commands.enqueue({"op": "put", "cabinet": "store", "folder": "X", "value": 41})
            commands.enqueue({"op": "get", "cabinet": "store", "folder": "X"})
            commands.enqueue({"op": "list", "cabinet": "store"})
            commands.enqueue({"op": "load"})
            result = yield ctx.meet("shell", request)
            return (result.value, request.folder("RESULTS").elements())

        executed, results = run_client(kernel, client)
        assert executed == 4
        assert results[0] == {"folder": "X", "value": 41}
        assert results[1]["folders"] == ["X"]
        assert results[2]["site"] == "a"

    def test_unknown_and_malformed_commands_are_reported(self, kernel):
        def client(ctx, bc):
            request = Briefcase()
            commands = request.folder("COMMANDS", create=True)
            commands.enqueue({"op": "fly"})
            commands.enqueue("not even a dict")
            result = yield ctx.meet("shell", request)
            return (result.value, request.folder("RESULTS").elements())

        executed, results = run_client(kernel, client)
        assert executed == 0
        assert all("error" in entry for entry in results)

    def test_no_commands_is_a_noop(self, kernel):
        def client(ctx, bc):
            result = yield ctx.meet("shell", Briefcase())
            return result.value

        assert run_client(kernel, client) == 0
