"""Regression and behaviour tests for the kernel hot-path overhaul.

Covers the per-site resident index, the batched launch path, the memoised
CODE-element derivation, and the bundled bugfixes: the undeliverable-message
ledger, generator ``finally:`` execution on every terminal path, and the
consistency of the index under crash/recover sequences.
"""

from __future__ import annotations

import pytest

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.agent import AgentState
from repro.core.registry import register_behaviour
from repro.net import lan
from repro.net.message import Message, MessageKind


@pytest.fixture
def kernel():
    return Kernel(lan(["a", "b", "c"], latency=0.05), transport="tcp",
                  config=KernelConfig(rng_seed=11))


def _assert_index_matches_scan(kernel):
    for name in kernel.site_names():
        indexed = {agent.agent_id for agent in kernel.agents_at(name)}
        brute = {agent.agent_id for agent in kernel._agents_at_scan(name)}
        assert indexed == brute
        assert kernel.site(name).resident_count() == len(brute)


class TestResidentIndex:
    def test_index_matches_scan_through_a_run(self, kernel):
        def worker(ctx, bc):
            yield ctx.sleep(0.05)
            return "ok"

        for index in range(9):
            kernel.launch("abc"[index % 3], worker)
        _assert_index_matches_scan(kernel)
        kernel.run(until=0.01)
        _assert_index_matches_scan(kernel)
        kernel.run()
        _assert_index_matches_scan(kernel)
        for name in kernel.site_names():
            assert kernel.agents_at(name) == []
            assert len(kernel.agents_at(name, active_only=False)) == 3

    def test_site_load_uses_resident_count(self, kernel):
        def sleeper(ctx, bc):
            yield ctx.sleep(10)

        for _ in range(4):
            kernel.launch("a", sleeper)
        kernel.run(until=0.1)
        assert kernel.site_load("a") == pytest.approx(4.0)
        assert kernel.site("a").resident_count() == 4

    def test_crash_empties_the_site_index_and_recover_keeps_it_empty(self, kernel):
        def sleeper(ctx, bc):
            yield ctx.sleep(10)

        for _ in range(3):
            kernel.launch("b", sleeper)
        kernel.run(until=0.1)
        assert kernel.site("b").resident_count() == 3
        kernel.crash_site("b")
        assert kernel.site("b").resident_count() == 0
        assert kernel.agents_at("b") == []
        assert kernel.killed == 3
        kernel.recover_site("b")
        assert kernel.site("b").resident_count() == 0
        _assert_index_matches_scan(kernel)

    def test_agents_at_unknown_site_is_empty(self, kernel):
        assert kernel.agents_at("ghost") == []

    def test_launch_many_starts_every_agent(self, kernel):
        def worker(ctx, bc):
            yield ctx.sleep(0.01)
            return bc.get("N")

        requests = []
        for index in range(12):
            briefcase = Briefcase()
            briefcase.set("N", index)
            requests.append(("abc"[index % 3], worker, briefcase))
        ids = kernel.launch_many(requests)
        assert len(ids) == 12
        _assert_index_matches_scan(kernel)
        kernel.run()
        assert [kernel.result_of(agent_id) for agent_id in ids] == list(range(12))
        assert kernel.launched == 12

    def test_launch_many_is_atomic_on_bad_entries(self, kernel):
        def worker(ctx, bc):
            yield ctx.sleep(0)

        from repro.core.errors import KernelError, UnknownSiteError
        with pytest.raises(UnknownSiteError):
            kernel.launch_many([("a", worker), ("ghost", worker)])
        with pytest.raises(KernelError):
            kernel.launch_many([("a", worker)], delay=-0.1)
        # A bad entry (or delay) must not leave earlier ones half-launched
        # (registered and indexed, but never scheduled to start).
        assert kernel.launched == 0
        assert kernel.agents == {}
        assert kernel.site("a").resident_count() == 0

    def test_meet_and_spawn_maintain_the_index(self, kernel):
        def child(ctx, bc):
            yield ctx.sleep(0.02)
            return "child"

        def helper(ctx, bc):
            yield ctx.end_meet("hello")
            return "helper"

        def parent(ctx, bc):
            kernel_ = ctx._kernel
            _assert_index_matches_scan(kernel_)
            yield ctx.spawn(child)
            result = yield ctx.meet("helper", Briefcase())
            _assert_index_matches_scan(kernel_)
            return result.value

        kernel.install_agent("a", "helper", helper)
        agent_id = kernel.launch("a", parent)
        kernel.run()
        assert kernel.result_of(agent_id) == "hello"
        _assert_index_matches_scan(kernel)


class TestCodeElementMemo:
    def test_registered_behaviour_is_memoised_per_copy(self, kernel):
        def roamer(ctx, bc):
            yield ctx.sleep(0)

        register_behaviour("hotpath_roamer", roamer, replace=True)
        first = kernel._best_effort_code("hotpath_roamer", roamer)
        second = kernel._best_effort_code("hotpath_roamer", roamer)
        assert first == {"kind": "registered", "name": "hotpath_roamer"}
        assert second == first
        # Copies are independent: an agent rewriting its element cannot
        # poison the cache for its siblings.
        assert second is not first
        second["name"] = "mutated"
        assert kernel._best_effort_code("hotpath_roamer", roamer)["name"] == \
            "hotpath_roamer"

    def test_unregistered_miss_is_invalidated_by_registration(self, kernel):
        def local_only(ctx, bc):
            yield ctx.sleep(0)

        assert kernel._best_effort_code(local_only, local_only) is None
        register_behaviour("hotpath_late", local_only, replace=True)
        element = kernel._best_effort_code(local_only, local_only)
        assert element == {"kind": "registered", "name": "hotpath_late"}

    def test_replace_registration_invalidates_stale_entries(self, kernel):
        def original(ctx, bc):
            yield ctx.sleep(0)

        def replacement(ctx, bc):
            yield ctx.sleep(0)

        register_behaviour("hotpath_swap", original, replace=True)
        assert kernel._best_effort_code(original, original) == \
            {"kind": "registered", "name": "hotpath_swap"}
        # Rebinding the name (registry size unchanged) must not leave a
        # cached element shipping 'original' under a name that now resolves
        # to 'replacement' at the destination.
        register_behaviour("hotpath_swap", replacement, replace=True)
        assert kernel._best_effort_code(original, original) is None
        assert kernel._best_effort_code(replacement, replacement) == \
            {"kind": "registered", "name": "hotpath_swap"}

    def test_cache_is_size_capped(self, kernel):
        for index in range(kernel._CODE_CACHE_MAX + 10):
            kernel._best_effort_code(f"no-such-behaviour-{index}", None)
        assert len(kernel._code_cache) <= kernel._CODE_CACHE_MAX


class TestUndeliverableLedger:
    def test_message_to_kernel_crashed_site_is_counted(self, kernel):
        """A site whose kernel died mid-flight (network link still up)."""

        def sender(ctx, bc):
            payload = Briefcase()
            payload.set("X", 1)
            accepted = yield ctx.transmit("b", "ag_py", payload)
            return accepted

        kernel.launch("a", sender, system=True)
        kernel.run(until=0.01)          # transmit done, delivery in flight
        assert kernel.undeliverable == 0
        # The kernel at b stops serving while the network keeps routing to
        # it (crash_site would also partition the topology, which makes the
        # transport drop the message before it ever reaches the site).
        kernel.site("b").mark_crashed()
        kernel.run()
        assert kernel.undeliverable == 1
        assert kernel.site("b").undeliverable == 1

    def test_message_to_unregistered_site_is_counted(self, kernel):
        message = Message(source="a", destination="nowhere",
                          kind=MessageKind.STATUS, payload={})
        kernel._on_message("nowhere", message)
        assert kernel.undeliverable == 1

    def test_healthy_delivery_is_not_counted(self, kernel):
        def sender(ctx, bc):
            payload = Briefcase()
            payload.set("X", 1)
            yield ctx.transmit("b", "ag_py", payload)
            return "sent"

        kernel.launch("a", sender, system=True)
        kernel.run()
        assert kernel.undeliverable == 0
        assert kernel.arrivals == 1


class TestGeneratorCleanup:
    def test_crash_site_runs_finally_blocks(self, kernel):
        cleaned = []

        def holder(ctx, bc):
            try:
                yield ctx.sleep(100)
            finally:
                cleaned.append(ctx.agent_id)

        agent_id = kernel.launch("a", holder)
        kernel.run(until=0.1)
        assert cleaned == []
        kernel.crash_site("a")
        assert cleaned == [agent_id]
        assert kernel.agent(agent_id).state == AgentState.KILLED
        assert kernel.agent(agent_id).generator is None

    def test_runaway_kill_runs_finally_blocks(self):
        kernel = Kernel(lan(["a", "b"]), transport="tcp",
                        config=KernelConfig(rng_seed=5, max_agent_steps=5))
        cleaned = []

        def runaway(ctx, bc):
            try:
                while True:
                    yield ctx.sleep(0)
            finally:
                cleaned.append(True)

        agent_id = kernel.launch("a", runaway)
        kernel.run()
        assert kernel.agent(agent_id).state == AgentState.KILLED
        assert cleaned == [True]

    def test_terminate_syscall_runs_finally_blocks(self, kernel):
        cleaned = []

        def early_exit(ctx, bc):
            try:
                yield ctx.terminate("early")
                yield ctx.sleep(1)  # pragma: no cover - never reached
            finally:
                cleaned.append(True)

        agent_id = kernel.launch("a", early_exit)
        kernel.run()
        assert kernel.result_of(agent_id) == "early"
        assert cleaned == [True]
        assert kernel.agent(agent_id).generator is None

    def test_start_at_dead_site_kills_cleanly(self, kernel):
        def worker(ctx, bc):
            yield ctx.sleep(0.01)

        kernel.crash_site("c")
        agent_id = kernel.launch("c", worker)
        kernel.run()
        assert kernel.agent(agent_id).state == AgentState.KILLED
        assert kernel.site("c").resident_count() == 0
        counters = kernel.counters()
        assert counters["completed"] + counters["failed"] + counters["killed"] == \
            counters["launched"]
