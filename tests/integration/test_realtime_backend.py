"""Sim-vs-realtime parity and realtime durability semantics.

The tentpole claim of the backend seam: ``KernelConfig(backend="realtime")``
runs the identical kernel/transport/store stack on wall clock with the
same *logical* outcomes as the deterministic sim run — completions,
deliveries, ledger counters — while the *times* become real (and thus
unasserted beyond generous wall bounds).  Workloads here are scaled down
so each realtime run sleeps well under a second of real time.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.workloads import (AgentChurnParams, CourierFanInParams,
                                   run_agent_churn, run_courier_fan_in)
from repro.core import Kernel, KernelConfig
from repro.core.errors import KernelError
from repro.net import lan
from repro.rt import read_wal_file

pytestmark = pytest.mark.realtime

#: generous: a scaled-down workload's horizon is ~0.1 s; CI boxes stall
WALL_TOLERANCE_SECONDS = 20.0


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


def test_unknown_backend_rejected():
    with pytest.raises(KernelError, match="unknown backend"):
        Kernel(lan(["a"]), config=KernelConfig(backend="warp"))


def test_realtime_requires_single_shard():
    with pytest.raises(KernelError, match="requires shards=1"):
        Kernel(lan(["a", "b"]),
               config=KernelConfig(backend="realtime", shards=2))


def test_realtime_rejects_process_shard_backend():
    with pytest.raises(KernelError, match="shard_backend='process'"):
        Kernel(lan(["a"]), config=KernelConfig(backend="realtime",
                                               shard_backend="process"))


def test_store_realtime_dir_requires_realtime(tmp_path):
    with pytest.raises(KernelError, match="store_realtime_dir"):
        Kernel(lan(["a"]), config=KernelConfig(
            durability="wal-group-commit",
            store_realtime_dir=str(tmp_path)))


# ---------------------------------------------------------------------------
# parity: courier fan-in
# ---------------------------------------------------------------------------


def test_courier_fan_in_parity():
    shape = dict(n_senders=3, deliveries_per_sender=3, payload_bytes=64,
                 transport="tcp", serialize_setup=False, link_latency=0.002)
    sim = run_courier_fan_in(CourierFanInParams(backend="sim", **shape))
    realtime = run_courier_fan_in(
        CourierFanInParams(backend="realtime", **shape))

    assert sim.folders_received == 9  # pin the workload itself
    assert realtime.folders_received == sim.folders_received
    assert realtime.deliveries_requested == sim.deliveries_requested
    assert realtime.wire_messages == sim.wire_messages
    assert realtime.bytes_on_wire == sim.bytes_on_wire
    assert realtime.events == sim.events
    assert realtime.counters == sim.counters
    assert realtime.counters["undeliverable"] == 0
    # The realtime run really slept ~ the workload horizon, bounded for CI.
    assert realtime.wall_seconds >= 0.5 * sim.sim_seconds
    assert realtime.wall_seconds < WALL_TOLERANCE_SECONDS


def test_fan_in_with_batching_parity():
    # The delivery fabric's flush windows are scheduler events too: the
    # realtime backend must coalesce exactly like the sim backend.
    shape = dict(n_senders=3, deliveries_per_sender=4, payload_bytes=64,
                 transport="tcp", serialize_setup=False, link_latency=0.002,
                 batch_window=0.01)
    sim = run_courier_fan_in(CourierFanInParams(backend="sim", **shape))
    realtime = run_courier_fan_in(
        CourierFanInParams(backend="realtime", **shape))
    assert realtime.folders_received == sim.folders_received == 12
    assert realtime.counters == sim.counters
    assert realtime.batches > 0  # batching actually engaged
    assert realtime.wall_seconds < WALL_TOLERANCE_SECONDS


# ---------------------------------------------------------------------------
# parity: seeded churn
# ---------------------------------------------------------------------------


def test_agent_churn_parity():
    shape = dict(n_sites=3, n_agents=24, wave_size=8, work_seconds=0.002,
                 ballast_bytes=64, retention="keep-results", seed=19)
    sim = run_agent_churn(AgentChurnParams(backend="sim", **shape))
    realtime = run_agent_churn(AgentChurnParams(backend="realtime", **shape))

    assert sim.agents_completed == sim.agents_launched == 24
    assert realtime.agents_launched == sim.agents_launched
    assert realtime.agents_completed == sim.agents_completed
    assert realtime.retained_entries == sim.retained_entries
    assert realtime.retained_records == sim.retained_records
    assert realtime.evicted == sim.evicted
    # Same ledger trajectory wave by wave, not just at the end.
    assert ([(c["launched"], c["retained"]) for c in realtime.checkpoints]
            == [(c["launched"], c["retained"]) for c in sim.checkpoints])


# ---------------------------------------------------------------------------
# realtime WAL on real files: fsync mirror + crash-discard
# ---------------------------------------------------------------------------


def _realtime_store_kernel(tmp_path) -> Kernel:
    return Kernel(lan(["a", "b"]), config=KernelConfig(
        backend="realtime", durability="wal-group-commit",
        store_commit_window=0.02, store_realtime_dir=str(tmp_path)),
        install_system_agents=False)


def test_realtime_wal_commits_reach_the_file(tmp_path):
    with _realtime_store_kernel(tmp_path) as kernel:
        kernel.make_durable("ledger")
        kernel.site("a").cabinet("ledger").put("f1", {"v": 1})
        kernel.run(until=kernel.now + 0.2)  # ride out commit + fsync

        sink = kernel.store("a").sink
        assert sink.commits >= 1
        assert sink.records_written >= 1
        records = read_wal_file(os.path.join(str(tmp_path), "a.wal"))
        assert [(r.cabinet, r.folder) for r in records] == [("ledger", "f1")]
        # The file mirrors the logical WAL exactly.
        assert len(records) == kernel.store("a").wal.total_committed
        # Site b never mutated: its file exists (sink opened) but is empty.
        assert read_wal_file(os.path.join(str(tmp_path), "b.wal")) == []


def test_realtime_wal_crash_discards_unsynced_state(tmp_path):
    with _realtime_store_kernel(tmp_path) as kernel:
        kernel.make_durable("ledger")
        kernel.site("a").cabinet("ledger").put("f1", {"v": 1})
        kernel.run(until=kernel.now + 0.2)
        # Mutate again and crash before the 20 ms commit window elapses:
        # the batch never reaches _finalize, so it never reaches the file.
        kernel.site("a").cabinet("ledger").put("f2", {"v": 2})
        kernel.crash_site("a")
        kernel.run(until=kernel.now + 0.1)

        folders = [r.folder for r in
                   read_wal_file(os.path.join(str(tmp_path), "a.wal"))]
        assert folders == ["f1"]  # the un-fsynced f2 batch was discarded
    # close() released the file handles (idempotent close covered too)
    assert kernel.store("a").sink._handle is None
    kernel.close()
