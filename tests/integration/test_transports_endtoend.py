"""Integration test: the same agent workload over rsh, TCP and Horus (paper section 6)."""

from __future__ import annotations

import pytest

from repro.bench import ItineraryParams, run_itinerary
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import HorusTransport, lan


TRANSPORTS = ("rsh", "tcp", "horus")


class TestTransportsEndToEnd:
    def test_itinerary_completes_identically_on_every_transport(self):
        results = {transport: run_itinerary(ItineraryParams(transport=transport, hops=8,
                                                            payload_bytes=2048, seed=3))
                   for transport in TRANSPORTS}
        hops = {result.hops_completed for result in results.values()}
        assert hops == {8}
        # Same logical workload, same bytes shipped per migration (modulo
        # framing), regardless of transport.
        byte_counts = [result.migration_bytes for result in results.values()]
        assert max(byte_counts) - min(byte_counts) < 0.05 * max(byte_counts)

    def test_transport_cost_ordering_matches_the_paper(self):
        """rsh (process start per hop) is the slow one; cached channels win."""
        results = {transport: run_itinerary(ItineraryParams(transport=transport, hops=10,
                                                            payload_bytes=1024, seed=4))
                   for transport in TRANSPORTS}
        assert results["rsh"].duration > results["tcp"].duration
        assert results["rsh"].duration > results["horus"].duration
        assert results["rsh"].mean_hop_time > 2 * results["tcp"].mean_hop_time

    def test_repeated_traffic_amortises_connection_setup_on_tcp(self):
        first = run_itinerary(ItineraryParams(transport="tcp", hops=2, payload_bytes=256,
                                              n_sites=3, seed=5))
        repeat = run_itinerary(ItineraryParams(transport="tcp", hops=12, payload_bytes=256,
                                               n_sites=3, seed=5))
        # With only 3 sites, the 12-hop tour reuses established connections,
        # so the mean per-hop time drops below the 2-hop (all-cold) tour.
        assert repeat.mean_hop_time < first.mean_hop_time

    def test_horus_group_survives_member_crash_during_agent_workload(self):
        kernel = Kernel(lan(["a", "b", "c", "d"]), transport="horus",
                        config=KernelConfig(rng_seed=9))
        transport = kernel.transport
        assert isinstance(transport, HorusTransport)
        transport.create_group("workers", ["a", "b", "c", "d"])

        def worker(ctx, bc):
            yield ctx.sleep(1.0)
            return "ok"

        for site in ("a", "b", "c", "d"):
            kernel.launch(site, worker)
        kernel.loop.schedule(0.4, lambda: kernel.crash_site("c"))
        kernel.run()

        view = transport.group_view("workers")
        assert "c" not in view.members
        assert set(view.members) == {"a", "b", "d"}
        # The surviving member's multicast reaches exactly the survivors.
        copies = transport.multicast("workers", "a", {"checkpoint": 1})
        assert copies == 3

    def test_kernel_counters_are_consistent_across_transports(self):
        for transport in TRANSPORTS:
            kernel = Kernel(lan(["x", "y", "z"]), transport=transport,
                            config=KernelConfig(rng_seed=1))

            def hopper(ctx, bc):
                itinerary = bc.folder("ITINERARY", create=True)
                if itinerary:
                    yield ctx.jump(bc, itinerary.dequeue())
                    return "moved"
                yield ctx.sleep(0)
                return "done"

            from repro.core.registry import register_behaviour
            register_behaviour("counter_hopper", hopper, replace=True)
            briefcase = Briefcase()
            briefcase.folder("ITINERARY", create=True).extend(["y", "z"])
            kernel.launch("x", "counter_hopper", briefcase)
            kernel.run()
            counters = kernel.counters()
            assert counters["completed"] == counters["launched"]
            assert counters["arrivals"] == 2
            assert kernel.stats.migrations == 2
