"""Every example script must run end to end and exercise the public API.

The examples double as documentation, so a broken example is a
documentation bug; each one's ``main()`` is executed here (stdout captured
by pytest) to keep them honest.
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "stormcast_prediction.py",
    "electronic_commerce.py",
    "load_balancing.py",
    "fault_tolerant_itinerary.py",
    "agent_mail.py",
    "runaway_containment.py",
    "adaptive_traffic.py",
    "sharded_churn.py",
    "tracing_an_itinerary.py",
]


def load_example(filename: str):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, filename))
    name = f"example_{filename[:-3]}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs_to_completion(filename, capsys):
    module = load_example(filename)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{filename} should print its results"


def test_example_catalogue_matches_directory():
    """Every shipped example is exercised above (no silently untested scripts)."""
    on_disk = sorted(name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))
    assert on_disk == sorted(EXAMPLES)
