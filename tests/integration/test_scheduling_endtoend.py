"""Integration test: broker scheduling end to end, comparing policies (paper section 4)."""

from __future__ import annotations

import pytest

from repro.bench import jains_fairness
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.scheduling import CLIENT_BEHAVIOUR_NAME, install_scheduling

PROVIDERS = [
    {"site": "fast", "capacity": 4.0},
    {"site": "medium", "capacity": 2.0},
    {"site": "slow", "capacity": 1.0},
]


def run_workload(policy, n_clients=24, seed=55, with_tickets=False):
    sites = ["home", "brokerage", "fast", "medium", "slow"]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=seed))
    deployment = install_scheduling(kernel, ["brokerage"], PROVIDERS, policy=policy,
                                    with_tickets=with_tickets, monitor_interval=0.25,
                                    monitor_rounds=16, work_seconds=0.08)
    kernel.run(until=0.5)
    for index in range(n_clients):
        briefcase = Briefcase()
        briefcase.set("HOME", "home")
        briefcase.set("BROKER_SITE", "brokerage")
        briefcase.set("SERVICE", "compute")
        briefcase.set("CLIENT", f"client-{index:02d}")
        kernel.launch("home", CLIENT_BEHAVIOUR_NAME, briefcase, delay=0.5 + index * 0.05)
    kernel.run()
    outcomes = deployment.client_outcomes(["home"])
    return kernel, deployment, outcomes


class TestSchedulingEndToEnd:
    def test_every_client_is_served_under_every_policy(self):
        for policy in ("least-loaded", "random", "round-robin", "weighted-capacity"):
            _, _, outcomes = run_workload(policy, n_clients=12)
            assert len(outcomes) == 12
            assert all(outcome["status"] == "served" for outcome in outcomes), policy

    def test_least_loaded_respects_capacity_differences(self):
        _, deployment, _ = run_workload("least-loaded")
        jobs = deployment.provider_job_counts()
        assert jobs["fast"] > jobs["slow"]
        assert sum(jobs.values()) == 24

    def test_round_robin_is_perfectly_even(self):
        _, deployment, _ = run_workload("round-robin")
        jobs = deployment.provider_job_counts()
        assert jains_fairness(list(jobs.values())) == pytest.approx(1.0)

    def test_least_loaded_finishes_sooner_than_round_robin(self):
        """The load/capacity-aware broker wins on makespan (contended service)."""
        def makespan(policy):
            _, _, outcomes = run_workload(policy)
            return max(outcome["completed_at"] for outcome in outcomes)

        assert makespan("least-loaded") < makespan("round-robin")

    def test_ticketed_deployment_serves_and_redeems(self):
        _, deployment, outcomes = run_workload("least-loaded", n_clients=8,
                                               with_tickets=True)
        assert all(outcome["status"] == "served" for outcome in outcomes)
        assert deployment.issuer.redeemed == 8

    def test_broker_assignments_match_served_jobs(self):
        kernel, deployment, outcomes = run_workload("least-loaded", n_clients=10)
        from repro.scheduling import BROKER_CABINET, broker_state
        state = broker_state(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert sum(state.assignments().values()) == 10
        assert sum(deployment.provider_job_counts().values()) == 10
