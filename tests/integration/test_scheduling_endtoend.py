"""Integration test: broker scheduling end to end, comparing policies (paper section 4)."""

from __future__ import annotations

import pytest

from repro.bench import jains_fairness
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.scheduling import CLIENT_BEHAVIOUR_NAME, install_scheduling

PROVIDERS = [
    {"site": "fast", "capacity": 4.0},
    {"site": "medium", "capacity": 2.0},
    {"site": "slow", "capacity": 1.0},
]


def run_workload(policy, n_clients=24, seed=55, with_tickets=False):
    sites = ["home", "brokerage", "fast", "medium", "slow"]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=seed))
    deployment = install_scheduling(kernel, ["brokerage"], PROVIDERS, policy=policy,
                                    with_tickets=with_tickets, monitor_interval=0.25,
                                    monitor_rounds=16, work_seconds=0.08)
    kernel.run(until=0.5)
    for index in range(n_clients):
        briefcase = Briefcase()
        briefcase.set("HOME", "home")
        briefcase.set("BROKER_SITE", "brokerage")
        briefcase.set("SERVICE", "compute")
        briefcase.set("CLIENT", f"client-{index:02d}")
        kernel.launch("home", CLIENT_BEHAVIOUR_NAME, briefcase, delay=0.5 + index * 0.05)
    kernel.run()
    outcomes = deployment.client_outcomes(["home"])
    return kernel, deployment, outcomes


class TestSchedulingEndToEnd:
    def test_every_client_is_served_under_every_policy(self):
        for policy in ("least-loaded", "random", "round-robin", "weighted-capacity"):
            _, _, outcomes = run_workload(policy, n_clients=12)
            assert len(outcomes) == 12
            assert all(outcome["status"] == "served" for outcome in outcomes), policy

    def test_least_loaded_respects_capacity_differences(self):
        _, deployment, _ = run_workload("least-loaded")
        jobs = deployment.provider_job_counts()
        assert jobs["fast"] > jobs["slow"]
        assert sum(jobs.values()) == 24

    def test_round_robin_is_perfectly_even(self):
        _, deployment, _ = run_workload("round-robin")
        jobs = deployment.provider_job_counts()
        assert jains_fairness(list(jobs.values())) == pytest.approx(1.0)

    def test_least_loaded_finishes_sooner_than_round_robin(self):
        """The load/capacity-aware broker wins on makespan (contended service)."""
        def makespan(policy):
            _, _, outcomes = run_workload(policy)
            return max(outcome["completed_at"] for outcome in outcomes)

        assert makespan("least-loaded") < makespan("round-robin")

    def test_ticketed_deployment_serves_and_redeems(self):
        _, deployment, outcomes = run_workload("least-loaded", n_clients=8,
                                               with_tickets=True)
        assert all(outcome["status"] == "served" for outcome in outcomes)
        assert deployment.issuer.redeemed == 8

    def test_broker_assignments_match_served_jobs(self):
        kernel, deployment, outcomes = run_workload("least-loaded", n_clients=10)
        from repro.scheduling import BROKER_CABINET, broker_state
        state = broker_state(kernel.site("brokerage").cabinet(BROKER_CABINET))
        assert sum(state.assignments().values()) == 10
        assert sum(deployment.provider_job_counts().values()) == 10


class TestShardedScheduling:
    def test_broker_load_tables_merge_across_shards(self):
        """Monitors report across shard boundaries; the merged table sees all.

        Two brokers are pinned to different shards and every provider's
        monitor reports to both, so the LOAD_REPORT traffic crosses the
        shard boundary in both directions; merged_load_table then
        assembles the cluster-wide load picture from the per-shard
        cabinets.
        """
        from repro.scheduling import merged_load_table

        sites = ["home", "broker-a", "broker-b", "fast", "medium", "slow"]
        placement = {"home": 0, "broker-a": 0, "broker-b": 1,
                     "fast": 1, "medium": 2, "slow": 3}
        kernel = Kernel(lan(sites), transport="tcp",
                        config=KernelConfig(rng_seed=55, shards=4,
                                            shard_placement=placement))
        install_scheduling(kernel, ["broker-a", "broker-b"], PROVIDERS,
                           monitor_interval=0.25, monitor_rounds=6,
                           work_seconds=0.08)
        kernel.run(until=3.0)

        merged = merged_load_table(kernel, ["broker-a", "broker-b"])
        provider_sites = {spec["site"] for spec in PROVIDERS}
        assert provider_sites <= set(merged)
        # Both brokers individually heard from every provider, including
        # the ones on other shards.
        from repro.scheduling import BROKER_CABINET, BrokerState
        for broker_site in ("broker-a", "broker-b"):
            table = BrokerState(
                kernel.site(broker_site).cabinet(BROKER_CABINET)).loads()
            assert provider_sites <= set(table)
        # Reports genuinely crossed shard boundaries to get there.
        assert kernel.stats.shard_handoffs > 0
        assert kernel.stats.shard_late_arrivals == 0
