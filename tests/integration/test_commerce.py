"""Integration test: the full electronic-commerce story of paper section 3.

Several shoppers (honest and cheating) travel from their home site to a
market, pay a vendor with untraceable electronic cash, and carry signed
audit records home; a third-party auditor then reconstructs each exchange.
"""

from __future__ import annotations

import pytest

from repro.cash import (Auditor, AuditRecord, KeyDirectory, Mint, VALIDATION_AGENT_NAME,
                        Wallet, identity_for, make_validation_behaviour,
                        make_vendor_behaviour, shopper_behaviour)
from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.net import two_clusters

PRICE = 10


@pytest.fixture
def marketplace():
    """A transatlantic marketplace: shoppers in Tromsø, the vendor at Cornell."""
    kernel = Kernel(two_clusters(["tromso", "narvik"], ["cornell"]), transport="tcp",
                    config=KernelConfig(rng_seed=77))
    mint = Mint(seed=77)
    directory = KeyDirectory()
    register_behaviour("shopper", shopper_behaviour, replace=True)
    kernel.install_agent("cornell", VALIDATION_AGENT_NAME,
                         make_validation_behaviour(mint), replace=True)
    kernel.install_agent("cornell", "vendor",
                         make_vendor_behaviour(price=PRICE,
                                               signer=directory.new_signer("vendor-corp")),
                         replace=True)
    return kernel, mint, directory


def launch_shopper(kernel, mint, directory, name, cheat=None):
    signer = directory.new_signer(name)
    briefcase = Briefcase()
    briefcase.set("HOME", "tromso")
    briefcase.set("VENDOR_SITE", "cornell")
    briefcase.set("VENDOR_NAME", "vendor")
    briefcase.set("PRICE", PRICE)
    briefcase.set("EXCHANGE_ID", f"exchange-{name}")
    briefcase.set("IDENTITY", identity_for(signer))
    if cheat:
        briefcase.set("CHEAT", cheat)
    if cheat == "double_spend":
        spent = mint.issue_many([PRICE])
        for ecu in spent:
            mint.retire_and_reissue(ecu)
        copies = briefcase.folder("SPENT_COPIES", create=True)
        for ecu in spent:
            copies.push(ecu.to_wire())
    else:
        Wallet(briefcase).deposit(mint.issue_many([5, 5, 5]))
    kernel.launch("tromso", "shopper", briefcase, name=name)


def outcomes(kernel):
    return {entry["exchange_id"]: entry
            for entry in kernel.site("tromso").cabinet("purchases").elements("outcomes")}


def test_full_marketplace_run(marketplace):
    kernel, mint, directory = marketplace
    supply_before = 45     # 3 honest shoppers x 15, minted below

    launch_shopper(kernel, mint, directory, "alice")
    launch_shopper(kernel, mint, directory, "bob")
    launch_shopper(kernel, mint, directory, "carol")
    launch_shopper(kernel, mint, directory, "mallory", cheat="double_spend")
    launch_shopper(kernel, mint, directory, "trudy", cheat="claim_paid")
    kernel.run(until=120.0)

    results = outcomes(kernel)
    assert len(results) == 5

    # Honest shoppers got the service and their change.
    for honest in ("alice", "bob", "carol"):
        outcome = results[f"exchange-{honest}"]
        assert outcome["got_service"] is True
        assert outcome["remaining_balance"] == 5

    # The double spender was foiled by the validation agent.
    assert results["exchange-mallory"]["got_service"] is False
    assert mint.double_spend_attempts >= 1

    # The claims-to-have-paid cheat got nothing either.
    assert results["exchange-trudy"]["got_service"] is False

    # Money is conserved: what the honest shoppers kept plus the vendor's
    # till equals what was minted for them (the cheats added nothing real).
    till = kernel.site("cornell").cabinet("till")
    till_value = sum(record["amount"] for record in till.elements("ECUS"))
    kept = sum(results[f"exchange-{name}"]["remaining_balance"]
               for name in ("alice", "bob", "carol"))
    assert till_value + kept == supply_before

    # Audits: the auditor pins the trudy fraud on trudy, and clears alice.
    auditor = Auditor(directory)
    records = [AuditRecord.from_wire(record) for record in
               kernel.site("tromso").cabinet("purchases").elements("audit")]
    witnesses = kernel.site("cornell").cabinet("audit").elements("witness")

    clean = auditor.audit("exchange-alice", records, witness_records=witnesses,
                          expected_price=PRICE)
    assert clean.clean

    fraud = auditor.audit("exchange-trudy", records, witness_records=witnesses,
                          expected_price=PRICE)
    assert not fraud.clean
    assert "trudy" in fraud.guilty


def test_commerce_works_over_every_transport(marketplace):
    _, mint, directory = marketplace
    for transport in ("rsh", "tcp", "horus"):
        kernel = Kernel(two_clusters(["tromso"], ["cornell"]), transport=transport,
                        config=KernelConfig(rng_seed=5))
        kernel.install_agent("cornell", VALIDATION_AGENT_NAME,
                             make_validation_behaviour(mint), replace=True)
        kernel.install_agent("cornell", "vendor",
                             make_vendor_behaviour(price=PRICE,
                                                   signer=directory.new_signer("vendor-corp")),
                             replace=True)
        launch_shopper(kernel, mint, directory, f"traveller-{transport}")
        kernel.run(until=120.0)
        results = outcomes(kernel)
        assert results[f"exchange-traveller-{transport}"]["got_service"] is True
