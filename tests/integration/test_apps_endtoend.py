"""Integration test: the two applications of paper section 6 running together.

StormCast (mobile filtering + expert prediction) and the agent mail system
share one kernel: the forecast run issues warnings, and warning letters are
mailed to every sensor station's operator — while one sensor site crashes
and recovers mid-run.
"""

from __future__ import annotations

import pytest

from repro.apps.mail import MailSystem
from repro.apps.stormcast import (EXPERT_AGENT_NAME, StormCastParams, StormExpert,
                                  WeatherGenerator, launch_collector, make_expert_behaviour,
                                  populate_sensor_sites, run_agent_pipeline,
                                  run_client_server)
from repro.apps.stormcast.collector import STORMCAST_CABINET
from repro.core import Kernel, KernelConfig
from repro.net import FailureSchedule, star


class TestStormCastAndMailTogether:
    def test_forecast_then_mail_alerts(self):
        sensors = [f"sensor{i:02d}" for i in range(6)]
        kernel = Kernel(star("hub", sensors), transport="tcp",
                        config=KernelConfig(rng_seed=99))
        populate_sensor_sites(kernel, sensors, 150,
                              WeatherGenerator(seed=99, storm_rate=0.05,
                                               raw_payload_bytes=256))
        kernel.install_agent("hub", EXPERT_AGENT_NAME,
                             make_expert_behaviour(StormExpert()), replace=True)
        mail = MailSystem(kernel)

        # One sensor site is down for part of the collection run.
        FailureSchedule().crash(sensors[2], at=0.0).recover(sensors[2], at=3.0).install(kernel)

        launch_collector(kernel, "hub", sensors)
        kernel.run(until=120.0)

        summaries = kernel.site("hub").cabinet(STORMCAST_CABINET).elements("collections")
        assert summaries, "the collector must reach the hub even with a site down"
        summary = summaries[-1]

        # Mail a warning to the operator of every alerted station.
        predictions = kernel.site("hub").cabinet("predictions").elements("issued")
        alerted = [entry["station"] for entry in predictions
                   if entry["warning_level"] in ("warning", "severe")]
        for station in alerted:
            mail.send("stormcast", "hub", "operator", station,
                      f"storm warning for {station}",
                      "take precautions", delay=10.0)
        kernel.run(until=200.0)

        for station in alerted:
            inbox = mail.inbox(station, "operator")
            assert any("storm warning" in letter["subject"] for letter in inbox), station

        # The crashed-and-recovered sensor could not be visited while down;
        # the collector either visited it (if timing allowed) or skipped it,
        # but it must never have double-counted any site.
        visited = [visit["site"] for visit in summary["visits"]]
        assert len(visited) == len(set(visited))

    def test_pipeline_comparison_summary(self):
        """The cross-pipeline invariants E8 reports, on a medium instance."""
        params = StormCastParams(n_sensors=8, samples_per_site=200, storm_rate=0.03,
                                 raw_payload_bytes=512, seed=42)
        agent = run_agent_pipeline(params)
        server = run_client_server(params)

        # Identical forecasts.
        assert agent.alert_stations() == server.alert_stations()
        # The agent pipeline is at least 5x cheaper in bytes at 512 B/reading.
        assert server.bytes_on_wire > 5 * agent.bytes_on_wire
        # And it needs one expert-input record per precursor, not per reading.
        assert agent.observations_carried < server.observations_carried

    def test_mail_volume_survives_partition_and_heal(self):
        kernel = Kernel(star("relay", ["north", "south", "east", "west"]),
                        transport="tcp", config=KernelConfig(rng_seed=13))
        mail = MailSystem(kernel)
        FailureSchedule().partition([["relay", "north", "south"], ["east", "west"]],
                                    at=0.0).heal(at=3.0).install(kernel)
        # Letters across the partition retry until the heal.
        for index, (source, target) in enumerate([("north", "east"), ("south", "west"),
                                                  ("east", "north")]):
            mail.send(f"user{index}", source, "peer", target, f"msg-{index}", "body",
                      retry_interval=0.5, max_retries=20, delay=0.1)
        kernel.run(until=60.0)
        assert mail.delivered_count() == 3
