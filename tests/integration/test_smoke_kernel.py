"""End-to-end smoke tests for the core kernel: launch, meet, migrate, diffuse."""

from __future__ import annotations

from repro.core import Briefcase, Kernel
from repro.core.agent import AgentState
from repro.core.codec import code_from_source
from repro.net import lan, random_topology


def test_simple_agent_runs_and_returns(lan_kernel: Kernel):
    def hello(ctx, bc):
        bc.put("OUT", f"hello from {ctx.site_name}")
        yield ctx.sleep(0.01)
        return bc.get("OUT")

    agent_id = lan_kernel.launch("alpha", hello)
    lan_kernel.run()
    assert lan_kernel.result_of(agent_id) == "hello from alpha"
    assert lan_kernel.agent(agent_id).state == AgentState.DONE


def test_meet_runs_callee_and_returns_result(lan_kernel: Kernel):
    def service(ctx, bc):
        bc.put("ANSWER", 42)
        yield ctx.end_meet("served")
        # continues concurrently after ending the meet
        ctx.cabinet("log").put("after", ctx.now)
        return "done-after-meet"

    lan_kernel.install_agent("alpha", "service", service)

    def client(ctx, bc):
        request = Briefcase()
        result = yield ctx.meet("service", request)
        return (result.value, request.get("ANSWER"))

    agent_id = lan_kernel.launch("alpha", client)
    lan_kernel.run()
    assert lan_kernel.result_of(agent_id) == ("served", 42)
    # the callee kept running after the meet ended
    assert lan_kernel.site("alpha").cabinet("log").get("after") is not None


def test_agent_migrates_via_rexec(lan_kernel: Kernel):
    """An itinerant agent visits every site by jumping through rexec."""

    def visitor(ctx, bc):
        trail = bc.folder("TRAIL", create=True)
        trail.push(ctx.site_name)
        itinerary = bc.folder("ITINERARY", create=True)
        if itinerary:
            next_site = itinerary.dequeue()
            yield ctx.jump(bc, next_site)
            return "jumped"
        # Last site: record the full trail in the local cabinet.
        ctx.cabinet("results").put("TRAIL", list(trail.elements()))
        return "finished"

    from repro.core.registry import register_behaviour
    register_behaviour("visitor", visitor, replace=True)

    briefcase = Briefcase()
    itinerary = briefcase.folder("ITINERARY", create=True)
    for site in ["beta", "gamma", "delta"]:
        itinerary.enqueue(site)

    lan_kernel.launch("alpha", "visitor", briefcase)
    lan_kernel.run()

    trail = lan_kernel.site("delta").cabinet("results").get("TRAIL")
    assert trail == ["alpha", "beta", "gamma", "delta"]
    assert lan_kernel.stats.migrations == 3


def test_source_shipped_agent_executes_remotely(lan_kernel: Kernel):
    """Shipping raw source demonstrates the 'different machine language' property."""
    source = """
def agent_main(ctx, bc):
    ctx.cabinet("results").put("VISITED", ctx.site_name)
    yield ctx.sleep(0)
    return ctx.site_name
"""

    def launcher(ctx, bc):
        payload = Briefcase()
        payload.set("CODE", code_from_source(source))
        payload.set("HOST", "gamma")
        payload.set("CONTACT", "ag_py")
        result = yield ctx.meet("rexec", payload)
        return result.value

    agent_id = lan_kernel.launch("alpha", launcher)
    lan_kernel.run()
    assert lan_kernel.result_of(agent_id) is True
    assert lan_kernel.site("gamma").cabinet("results").get("VISITED") == "gamma"


def test_courier_delivers_folder_without_meeting(lan_kernel: Kernel):
    received = {}

    def mailbox(ctx, bc):
        received["payload"] = bc.folder(bc.get("PAYLOAD_NAME")).elements()
        received["site"] = ctx.site_name
        yield ctx.sleep(0)
        return "stored"

    lan_kernel.install_agent("delta", "mailbox", mailbox)

    def sender(ctx, bc):
        from repro.core import Folder
        letter = Folder("LETTER", ["dear delta", "regards alpha"])
        result = yield ctx.send_folder(letter, "delta", "mailbox")
        return result.value

    agent_id = lan_kernel.launch("alpha", sender)
    lan_kernel.run()
    assert lan_kernel.result_of(agent_id) is True
    assert received["site"] == "delta"
    assert received["payload"] == ["dear delta", "regards alta".replace("alta", "alpha")]


def test_diffusion_reaches_every_site_boundedly():
    topo = random_topology(12, edge_probability=0.25, seed=3)
    kernel = Kernel(topo, transport="tcp")
    briefcase = Briefcase()
    briefcase.set("PAYLOAD", "storm warning")
    origin = topo.sites()[0]
    kernel.launch(origin, "diffusion", briefcase)
    kernel.run()

    visited = [
        name for name in kernel.site_names()
        if kernel.site(name).cabinet("diffusion").get("PAYLOAD") == "storm warning"
    ]
    assert sorted(visited) == sorted(kernel.site_names())
    # Bounded: number of migrations is at most one per directed edge, far
    # below the exponential blow-up of naive flooding.
    assert kernel.stats.migrations <= 2 * len(topo.sites()) ** 2


def test_crashed_site_kills_agents_and_refuses_arrivals():
    kernel = Kernel(lan(["a", "b", "c"]), transport="tcp")

    def sleeper(ctx, bc):
        yield ctx.sleep(10.0)
        return "woke"

    victim = kernel.launch("b", sleeper)
    kernel.loop.schedule(1.0, lambda: kernel.crash_site("b"))
    kernel.run()
    assert kernel.agent(victim).state == AgentState.KILLED
    assert not kernel.site("b").alive
