"""End-to-end durability: store interleavings, checkpointed guards, ack/retry.

These are the failure-schedule interleavings the durable store must get
right, driven through the public kernel API:

* a crash landing inside an armed group-commit window (the batch dies);
* recover-then-crash before the replay completes (the replay aborts, a
  later recovery still restores the durable image);
* a partitioned guard site whose checkpoints keep committing locally;
* the coordinated loss that defeats plain rear guards (agent host and
  every guard site crash together) — durable checkpoints + revival
  recover it, policy "none" loses it;
* an ``ft-relaunch`` envelope dropped by a partition mid-batch — the
  guard's next timeout re-sends without burning its relaunch budget.
"""

from __future__ import annotations

import pytest

from repro.core import Kernel, KernelConfig
from repro.fault import (CHECKPOINTS_FOLDER, REARGUARD_CABINET, completions,
                         launch_ft_computation)
from repro.net import FailureSchedule, lan

SITES = ["h", "s1", "s2", "d"]
HOME, DELIVERY = "h", "d"
ITINERARY = ["s1", "s2", "d"]


def make_kernel(durability="wal-group-commit", batch_window=0.0, seed=5):
    config = KernelConfig(
        rng_seed=seed,
        durability=durability,
        store_commit_window=0.05,
        delivery_batch_window=batch_window,
    )
    return Kernel(lan(SITES), transport="tcp", config=config)


def hop_time(kernel, ft_id, seq):
    """When the computation executed hop *seq* (from the kernel event log)."""
    needle = f"hop-exec {ft_id} seq={seq}"
    for at, _agent, _site, message in kernel.event_log:
        if message == needle:
            return at
    raise AssertionError(f"hop {seq} of {ft_id} never executed")


def run_protected(durability, schedule_builder=None, work_seconds=1.0,
                  per_hop=3.0, max_relaunches=3, until=120.0, batch_window=0.0):
    """One protected computation over the 4-site LAN, with optional failures.

    ``schedule_builder(kernel, ft_id)`` is called after a dry run of the
    same configuration discovered the hop timings, so schedules can place
    crashes relative to where the computation actually is.
    """
    kernel = make_kernel(durability, batch_window=batch_window)
    ft_id = launch_ft_computation(
        kernel, HOME, ITINERARY, per_hop=per_hop, work_seconds=work_seconds,
        max_relaunches=max_relaunches, durable_checkpoints=True)
    if schedule_builder is not None:
        schedule_builder(kernel, ft_id)
    kernel.run(until=until)
    return kernel, ft_id


class TestCommitWindowInterleavings:
    def test_crash_during_armed_group_commit_loses_the_batch(self):
        """A crash inside the commit window discards the armed batch, while
        everything committed before it survives recovery."""
        kernel = make_kernel()
        kernel.make_durable("ledger", sites=["s1"])
        cabinet = kernel.site("s1").cabinet("ledger")
        cabinet.put("entries", "committed")
        kernel.run(until=1.0)                      # first batch commits
        cabinet.put("entries", "doomed")           # arms a new commit at +0.05
        kernel.loop.schedule(0.02, lambda: kernel.crash_site("s1"),
                             label="crash-mid-window")
        kernel.run(until=1.1)                      # crash fires inside the window
        assert kernel.stats.state_lost_records >= 1
        kernel.recover_site("s1")
        kernel.run(until=10.0)
        assert kernel.site("s1").cabinet("ledger").elements("entries") == ["committed"]

    def test_crash_during_fsync_loses_the_inflight_batch(self):
        """Even after the commit event fired, the batch is volatile until
        its write+fsync completes."""
        from repro.store import StoreCosts
        kernel = make_kernel()
        # A long, visible fsync on the site under test.
        kernel.stores["s1"].costs = StoreCosts(fsync_latency=0.5,
                                               commit_window=0.05)
        kernel.make_durable("ledger", sites=["s1"])
        kernel.site("s1").cabinet("ledger").put("entries", "syncing")
        # Commit fires at 0.05; the fsync completes at 0.55.  Crash between.
        kernel.loop.schedule(0.3, lambda: kernel.crash_site("s1"),
                             label="crash-mid-fsync")
        kernel.run(until=2.0)
        assert kernel.stats.state_lost_records >= 1
        kernel.recover_site("s1")
        kernel.run(until=10.0)
        assert kernel.site("s1").cabinet("ledger").elements("entries") == []

    def test_recover_then_crash_before_replay_completes(self):
        """A crash mid-replay aborts the recovery; the durable image is
        unharmed and a later recovery restores it in full."""
        from repro.store import StoreCosts
        kernel = make_kernel()
        # A slow replay so a second crash can land inside it.
        kernel.stores["s1"].costs = StoreCosts(recovery_base=5.0,
                                               commit_window=0.05)
        kernel.make_durable("ledger", sites=["s1"])
        kernel.site("s1").cabinet("ledger").put("entries", "precious")
        kernel.run(until=1.0)
        (FailureSchedule()
            .crash("s1", at=2.0)
            .recover("s1", at=3.0)       # begins a >= 5s replay
            .crash("s1", at=5.0)         # crashes again mid-replay
            .recover("s1", at=20.0)      # second recovery, this one completes
         ).install(kernel)
        kernel.run(until=18.0)
        assert not kernel.site("s1").alive     # first replay was aborted
        kernel.run(until=40.0)
        assert kernel.site("s1").alive
        assert kernel.site("s1").cabinet("ledger").elements("entries") == ["precious"]
        assert kernel.stats.recoveries == 1    # only the completed replay counts


class TestCheckpointedGuards:
    def test_coordinated_loss_is_unrecoverable_without_durability(self):
        """Crash the agent's host and every guard site at once: with policy
        "none" the computation is gone for good."""
        dry_kernel, dry_id = run_protected("none")
        assert len(completions(dry_kernel, DELIVERY, dry_id)) == 1
        strike_at = hop_time(dry_kernel, dry_id, 2) + 0.4   # mid-work at s2

        def schedule(kernel, ft_id):
            schedule = FailureSchedule()
            for site in ("h", "s1", "s2"):     # host + both guard sites
                schedule.crash(site, at=strike_at)
                schedule.recover(site, at=strike_at + 5.0)
            schedule.install(kernel)

        kernel, ft_id = run_protected("none", schedule)
        assert completions(kernel, DELIVERY, ft_id) == []

    def test_durable_checkpoints_revive_and_complete(self):
        """The same coordinated loss with wal-group-commit: the recovered
        sites revive guards from durable checkpoints and the computation
        completes exactly once."""
        dry_kernel, dry_id = run_protected("wal-group-commit")
        assert len(completions(dry_kernel, DELIVERY, dry_id)) == 1
        strike_at = hop_time(dry_kernel, dry_id, 2) + 0.4

        def schedule(kernel, ft_id):
            schedule = FailureSchedule()
            for site in ("h", "s1", "s2"):
                schedule.crash(site, at=strike_at)
                schedule.recover(site, at=strike_at + 5.0)
            schedule.install(kernel)

        kernel, ft_id = run_protected("wal-group-commit", schedule, until=240.0)
        records = completions(kernel, DELIVERY, ft_id)
        assert len(records) == 1               # exactly once, via revival
        assert kernel.stats.recoveries == 3
        revivals = [entry for entry in kernel.event_log
                    if "revived rear guard" in entry[3]]
        assert revivals
        # Zero durable folders were lost: everything restored came back.
        assert kernel.stats.durable_folders_restored > 0

    def test_revival_survives_a_second_crash_of_the_same_site(self):
        """A second crash killing the revived guard must not end protection:
        the next recovery revives again (liveness decides, not a durable
        marker)."""
        dry_kernel, dry_id = run_protected("wal-group-commit")
        strike_at = hop_time(dry_kernel, dry_id, 2) + 0.4

        def schedule(kernel, ft_id):
            schedule = FailureSchedule()
            for site in ("h", "s1", "s2"):
                schedule.crash(site, at=strike_at)
                schedule.recover(site, at=strike_at + 5.0)
                # Crash everything again right after revival, before any
                # revived guard's timeout (per_hop=3.0 -> deadline 6s) can
                # fire, then recover once more.
                schedule.crash(site, at=strike_at + 5.5)
                schedule.recover(site, at=strike_at + 12.0)
            schedule.install(kernel)

        kernel, ft_id = run_protected("wal-group-commit", schedule, until=300.0)
        records = completions(kernel, DELIVERY, ft_id)
        assert len(records) == 1
        revivals = [entry for entry in kernel.event_log
                    if "revived rear guard" in entry[3]]
        # At least one checkpoint was revived on both recovery rounds.
        assert len(revivals) >= 2

    def test_partitioned_guard_site_keeps_checkpointing(self):
        """A partition cannot stop local durability: the isolated guard
        site's checkpoints commit, survive a crash, and revive."""
        dry_kernel, dry_id = run_protected("wal-group-commit")
        arrive_d = hop_time(dry_kernel, dry_id, 2)   # wal arm reaches s2 here

        def schedule(kernel, ft_id):
            # Isolate s1 after the computation has left it (its checkpoint
            # for hop 2 is committed locally), then crash and recover it
            # while still partitioned, and only heal much later.
            (FailureSchedule()
                .partition([["s1"], ["h", "s2", "d"]], at=arrive_d + 0.2)
                .crash("s1", at=arrive_d + 2.0)
                .recover("s1", at=arrive_d + 4.0)
                .heal(at=arrive_d + 30.0)
             ).install(kernel)

        kernel, ft_id = run_protected("wal-group-commit", schedule, until=300.0)
        records = completions(kernel, DELIVERY, ft_id)
        assert len(records) == 1               # delivery-site dedup holds
        # The isolated site's durable state survived partition + crash.
        state = kernel.store("s1").durable_state().get(REARGUARD_CABINET, {})
        assert CHECKPOINTS_FOLDER in state
        revivals = [entry for entry in kernel.event_log
                    if "revived rear guard" in entry[3] and entry[2] == "s1"]
        assert revivals


class TestTwinAbsorption:
    def test_spurious_twin_does_not_chase_a_live_original(self):
        """A guard false-firing against a slow-but-alive original (deadline
        far shorter than the hop time, zero failures) must not start a
        duplicate chain: the twin lands in the same crash epoch and is
        absorbed, so no hop executes twice."""
        kernel, ft_id = run_protected("none", per_hop=0.05, work_seconds=1.0,
                                      max_relaunches=2, until=600.0)
        assert len(completions(kernel, DELIVERY, ft_id)) == 1
        executions = [message for _at, _agent, _site, message in kernel.event_log
                      if message.startswith(f"hop-exec {ft_id} ")]
        assert len(executions) == len(set(executions)), executions
    def test_released_checkpoints_are_pruned_after_completion(self):
        """Durable checkpoints must not accumulate forever: once the
        computation's releases retire a hop, its checkpoint is dropped."""
        kernel, ft_id = run_protected("wal-group-commit", until=120.0)
        assert len(completions(kernel, DELIVERY, ft_id)) == 1
        for site_name in SITES:
            site = kernel.site(site_name)
            if not site.has_cabinet(REARGUARD_CABINET):
                continue
            cabinet = site.cabinet(REARGUARD_CABINET)
            stale = [checkpoint
                     for checkpoint in cabinet.elements(CHECKPOINTS_FOLDER)
                     if isinstance(checkpoint, dict)
                     and checkpoint.get("ft_id") == ft_id]
            assert stale == [], site_name


class TestRelaunchAckRetry:
    def test_envelope_dropped_by_partition_mid_batch_is_resent(self):
        """Regression (delivery-fabric ack/retry): with batching on, an
        accepted ft-relaunch only means queued-in-outbox.  A partition that
        drops the batch at flush time must not cost the guard its budget —
        the un-acked shipment is re-sent on the next timeout and the
        computation still completes with max_relaunches=1."""
        # Pilot: crash s1 while the agent works there, recover it quickly so
        # the guard's relaunch is *posted* to a routable site (it queues in
        # the outbox rather than being refused).
        def crash_only(kernel, ft_id):
            strike = hop_time(pilot, pilot_id, 1) + 0.3
            (FailureSchedule()
                .crash("s1", at=strike)
                .recover("s1", at=strike + 1.0)
             ).install(kernel)

        pilot, pilot_id = run_protected("none", None, work_seconds=1.0,
                                        per_hop=3.0, batch_window=0.5)
        kernel2, ft2 = run_protected("none", crash_only, work_seconds=1.0,
                                     per_hop=3.0, max_relaunches=1,
                                     batch_window=0.5)
        relaunches = kernel2.site("h").cabinet(REARGUARD_CABINET).elements("relaunches")
        assert relaunches, "pilot: the guard at h must have relaunched"
        relaunch_at = relaunches[0]["at"]

        # Real run: same crash, plus a partition landing right after the
        # relaunch is queued (inside the 0.5s flush window) that severs
        # h from the rest, dropping the batch at flush time.
        def schedule(kernel, ft_id):
            strike = hop_time(pilot, pilot_id, 1) + 0.3
            (FailureSchedule()
                .crash("s1", at=strike)
                .recover("s1", at=strike + 1.0)
                .partition([["h"], ["s1", "s2", "d"]], at=relaunch_at + 0.05)
                .heal(at=relaunch_at + 2.0)
             ).install(kernel)

        kernel, ft_id = run_protected("none", schedule, work_seconds=1.0,
                                      per_hop=3.0, max_relaunches=1,
                                      batch_window=0.5, until=300.0)
        cabinet = kernel.site("h").cabinet(REARGUARD_CABINET)
        retries = cabinet.elements("relaunch_retries")
        assert retries, "the lost envelope must be re-sent, not skipped ahead"
        assert all(entry["retry"] >= 1 for entry in retries)
        # The budget was NOT burned by the network's loss: with
        # max_relaunches=1 the computation still completed exactly once.
        assert len(completions(kernel, DELIVERY, ft_id)) == 1
        acks = cabinet.elements("relaunch_acks")
        assert acks and all(notice["ack"] for notice in acks)


class TestDurableApps:
    def test_mail_spool_survives_crash_under_wal(self):
        from repro.apps.mail import MailSystem
        from repro.apps.mail.mailbox import MAILBOX_CABINET
        config = KernelConfig(rng_seed=11, durability="wal-group-commit",
                              store_commit_window=0.05)
        mail = MailSystem.build(sites=["t", "c"], config=config)
        kernel = mail.kernel
        mail.send("dag", "t", "fred", "c", "hi", "durable?")
        kernel.run(until=30.0)
        assert len(mail.inbox("c", "fred")) == 1
        kernel.crash_site("c")
        assert mail.inbox("c", "fred") == []   # honest: live state discarded
        kernel.recover_site("c")
        kernel.run(until=60.0)
        assert len(mail.inbox("c", "fred")) == 1   # the spool was durable
        assert kernel.store("c").durable_state().get(MAILBOX_CABINET)

    def test_mail_spool_is_durable_under_flush_on_demand(self):
        # The mailbox agent itself is the flush point: no manual flush call
        # anywhere, yet delivered letters survive a crash.
        from repro.apps.mail import MailSystem
        config = KernelConfig(rng_seed=11, durability="flush-on-demand")
        mail = MailSystem.build(sites=["t", "c"], config=config)
        kernel = mail.kernel
        mail.send("dag", "t", "fred", "c", "hi", "spooled")
        kernel.run(until=30.0)
        assert len(mail.inbox("c", "fred")) == 1
        kernel.crash_site("c")
        kernel.recover_site("c")
        kernel.run(until=60.0)
        assert len(mail.inbox("c", "fred")) == 1

    def test_stormcast_runs_with_durability_enabled(self):
        from repro.apps.stormcast.workload import StormCastParams, run_agent_pipeline
        params = StormCastParams(n_sensors=3, samples_per_site=40,
                                 durability="wal-group-commit")
        result = run_agent_pipeline(params)
        assert result.sites_covered == 3
        assert result.predictions

    def test_stormcast_sensor_readings_survive_a_sensor_crash(self):
        # Pre-loaded readings model data already on disk: they are the
        # durable base image even though populate pushes Folders directly.
        from repro.apps.stormcast.sensors import READINGS_FOLDER, SENSOR_CABINET
        from repro.apps.stormcast.workload import (StormCastParams,
                                                   build_stormcast_kernel)
        params = StormCastParams(n_sensors=3, samples_per_site=25,
                                 durability="wal-group-commit")
        kernel = build_stormcast_kernel(params)
        site = kernel.site("sensor00")
        before = len(site.cabinet(SENSOR_CABINET).elements(READINGS_FOLDER))
        assert before == 25
        kernel.crash_site("sensor00")
        kernel.recover_site("sensor00")
        kernel.run(until=30.0)
        after = len(site.cabinet(SENSOR_CABINET).elements(READINGS_FOLDER))
        assert after == before
