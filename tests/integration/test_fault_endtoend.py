"""Integration test: rear guards under randomized failures (paper section 5).

A batch of itinerant computations runs over a network where random sites
crash mid-run.  Protected computations must all complete exactly once;
the unprotected baseline loses a substantial fraction.
"""

from __future__ import annotations

import pytest

from repro.core import Kernel, KernelConfig
from repro.fault import completions, launch_ft_computation, launch_plain_computation
from repro.net import RandomCrasher, lan


N_COMPUTATIONS = 6
SITES = [f"n{i}" for i in range(8)]
HOME, DELIVERY = SITES[0], SITES[-1]
INTERMEDIATE = SITES[1:-1]


def build_kernel(seed):
    kernel = Kernel(lan(SITES), transport="tcp", config=KernelConfig(rng_seed=seed))
    for index, name in enumerate(SITES):
        kernel.site(name).cabinet("data").put("VALUE", index)
    return kernel


def itinerary_for(index):
    """A different rotation of the intermediate sites per computation."""
    rotated = INTERMEDIATE[index % len(INTERMEDIATE):] + INTERMEDIATE[:index % len(INTERMEDIATE)]
    return rotated + [DELIVERY]


def run_batch(protected: bool, seed: int, crash_probability: float = 0.5):
    kernel = build_kernel(seed)
    ids = []
    # Each hop does ~0.25 s of work, so every computation is still in flight
    # while the crash window (0.2 s - 2.0 s) is active.
    for index in range(N_COMPUTATIONS):
        if protected:
            ids.append(launch_ft_computation(kernel, HOME, itinerary_for(index),
                                             per_hop=0.5, max_relaunches=4,
                                             work_seconds=0.25, delay=0.05 * index))
        else:
            ids.append(launch_plain_computation(kernel, HOME, itinerary_for(index),
                                                work_seconds=0.25, delay=0.05 * index))
    RandomCrasher(crash_probability, window=(0.2, 2.0), recover_after=60.0,
                  protect=[HOME, DELIVERY], seed=seed).install(kernel)
    kernel.run(until=400.0)
    per_id = [len(completions(kernel, DELIVERY, ft_id)) for ft_id in ids]
    return kernel, per_id


class TestFaultToleranceEndToEnd:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_protected_computations_complete_exactly_once(self, seed):
        _, per_id = run_batch(protected=True, seed=seed)
        assert per_id == [1] * N_COMPUTATIONS

    def test_unprotected_baseline_loses_computations(self):
        lost_anywhere = 0
        for seed in (101, 202, 303):
            _, per_id = run_batch(protected=False, seed=seed)
            assert all(count <= 1 for count in per_id)
            lost_anywhere += sum(1 for count in per_id if count == 0)
        assert lost_anywhere > 0, (
            "with 50% of intermediate sites crashing, some unprotected "
            "computations must be lost")

    def test_protection_beats_baseline_on_completion_rate(self):
        protected_total = 0
        plain_total = 0
        for seed in (11, 22, 33):
            _, protected = run_batch(protected=True, seed=seed)
            _, plain = run_batch(protected=False, seed=seed)
            protected_total += sum(protected)
            plain_total += sum(plain)
        assert protected_total == 3 * N_COMPUTATIONS
        assert protected_total > plain_total

    def test_without_failures_both_modes_complete_everything(self):
        _, protected = run_batch(protected=True, seed=7, crash_probability=0.0)
        _, plain = run_batch(protected=False, seed=7, crash_probability=0.0)
        assert protected == [1] * N_COMPUTATIONS
        assert plain == [1] * N_COMPUTATIONS
