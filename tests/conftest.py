"""Shared pytest fixtures for the TACOMA reproduction test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.core import Kernel, KernelConfig
from repro.net import lan, ring

# Property tests drive whole discrete-event simulations per example, whose
# wall-clock time varies with machine load; the default 200 ms deadline
# produces spurious "flaky" reports, so it is disabled suite-wide.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "realtime: runs the wall-clock backend (real sleeps; selected in "
        "the CI realtime smoke step with -m realtime)")


@pytest.fixture
def lan_kernel() -> Kernel:
    """A 4-site fully connected LAN kernel with the standard system agents."""
    return Kernel(lan(["alpha", "beta", "gamma", "delta"]), transport="tcp",
                  config=KernelConfig(rng_seed=7))


@pytest.fixture
def ring_kernel() -> Kernel:
    """A 6-site ring kernel (used by itinerary and fault-tolerance tests)."""
    return Kernel(ring([f"s{i}" for i in range(6)]), transport="tcp",
                  config=KernelConfig(rng_seed=11))
