"""Property-based tests for scheduling policies and broker state invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FileCabinet
from repro.scheduling import BrokerState, LoadEstimate, ProviderInfo, make_policy
from repro.scheduling.policies import LeastLoadedPolicy, RoundRobinPolicy

site_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6), min_size=1, max_size=8,
    unique=True)


@st.composite
def providers_and_loads(draw):
    names = draw(site_names)
    providers = [ProviderInfo(service="compute", site=name, agent_name="compute",
                              capacity=draw(st.floats(min_value=0.1, max_value=16.0)))
                 for name in names]
    loads = {}
    for name in names:
        if draw(st.booleans()):
            loads[name] = LoadEstimate(
                site=name, load=draw(st.floats(min_value=0.0, max_value=50.0)),
                reported_at=draw(st.floats(min_value=0.0, max_value=100.0)),
                assigned_since_report=draw(st.integers(min_value=0, max_value=5)))
    return providers, loads


@given(providers_and_loads())
@settings(max_examples=80, deadline=None)
def test_least_loaded_picks_the_minimum_normalised_load(data):
    providers, loads = data
    chosen = LeastLoadedPolicy().choose(providers, loads)

    def score(provider):
        estimate = loads.get(provider.site)
        load = estimate.effective_load() if estimate is not None else 0.0
        return load / max(provider.capacity, 1e-9)

    best = min(score(provider) for provider in providers)
    assert score(chosen) <= best + 1e-9


@given(providers_and_loads(), st.integers(min_value=1, max_value=40))
@settings(max_examples=50, deadline=None)
def test_round_robin_never_skews_by_more_than_one(data, rounds):
    providers, loads = data
    policy = RoundRobinPolicy()
    counts = {provider.key(): 0 for provider in providers}
    for _ in range(rounds):
        counts[policy.choose(providers, loads).key()] += 1
    assert max(counts.values()) - min(counts.values()) <= 1
    assert sum(counts.values()) == rounds


@given(providers_and_loads(), st.integers(min_value=0, max_value=2 ** 30),
       st.sampled_from(["least-loaded", "random", "round-robin", "weighted-capacity"]))
@settings(max_examples=60, deadline=None)
def test_every_policy_returns_one_of_the_candidates(data, seed, policy_name):
    providers, loads = data
    chosen = make_policy(policy_name).choose(providers, loads, rng=random.Random(seed))
    assert chosen in providers


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                          st.floats(min_value=0.0, max_value=20.0),
                          st.floats(min_value=0.0, max_value=50.0)),
                max_size=30))
@settings(max_examples=50, deadline=None)
def test_broker_state_keeps_only_the_newest_report_per_site(reports):
    state = BrokerState(FileCabinet("broker"))
    newest = {}
    for site, load, at in reports:
        state.record_report(site, load, at)
        if site not in newest or at > newest[site][1]:
            newest[site] = (load, at)
    loads = state.loads()
    assert set(loads) == set(newest)
    for site, (load, at) in newest.items():
        assert loads[site].reported_at == at
        assert loads[site].load == load


@given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=25))
@settings(max_examples=40, deadline=None)
def test_assignment_counts_sum_to_number_of_acquires(assignments):
    state = BrokerState(FileCabinet("broker"))
    for site in ("a", "b", "c"):
        state.record_report(site, 0.0, at=1.0)
    for site in assignments:
        state.note_assignment(site)
    counted = state.assignments()
    assert sum(counted.values()) == len(assignments)
    for site in set(assignments):
        assert counted[site] == assignments.count(site)
