"""Property-based tests for electronic cash: money is never created or destroyed."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cash import Mint, Wallet
from repro.core import Briefcase
from repro.core.errors import InsufficientFundsError, InvalidECUError


@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=20))
def test_issuing_increases_supply_by_exactly_the_amounts(amounts):
    mint = Mint(seed=1)
    mint.issue_many(amounts)
    assert mint.outstanding_value() == sum(amounts)
    assert mint.valid_serial_count() == len(amounts)


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=15),
       st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_validation_cycles_conserve_the_money_supply(amounts, rng):
    """Any sequence of retire-and-reissue operations keeps the supply constant."""
    mint = Mint(seed=2)
    live = mint.issue_many(amounts)
    supply = mint.outstanding_value()
    for _ in range(min(30, len(live) * 3)):
        index = rng.randrange(len(live))
        ecu = live[index]
        if rng.random() < 0.3 and ecu.amount >= 2:
            split_point = rng.randint(1, ecu.amount - 1)
            replacements = mint.retire_and_reissue(ecu, split=[split_point,
                                                               ecu.amount - split_point])
        else:
            replacements = mint.retire_and_reissue(ecu)
        live.pop(index)
        live.extend(replacements)
        assert mint.outstanding_value() == supply
    assert sum(ecu.amount for ecu in live) == supply


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10))
def test_double_spending_never_inflates_the_supply(amounts):
    mint = Mint(seed=3)
    ecus = mint.issue_many(amounts)
    supply = mint.outstanding_value()
    for ecu in ecus:
        mint.retire_and_reissue(ecu)
        # Spending the same record again must always fail.
        try:
            mint.retire_and_reissue(ecu)
            raised = False
        except InvalidECUError:
            raised = True
        assert raised
    assert mint.outstanding_value() == supply
    assert mint.double_spend_attempts == len(ecus)


@given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=12),
       st.integers(min_value=1, max_value=400))
def test_wallet_payments_conserve_value(amounts, price):
    mint = Mint(seed=4)
    payer_briefcase = Briefcase()
    payee_briefcase = Briefcase()
    payer = Wallet(payer_briefcase)
    payer.deposit(mint.issue_many(amounts))
    total_before = payer.balance()

    try:
        transferred = payer.pay_into(payee_briefcase, price)
    except InsufficientFundsError:
        assert total_before < price
        assert payer.balance() == total_before
        return

    payee = Wallet(payee_briefcase)
    assert transferred >= price
    assert payer.balance() + payee.balance() == total_before


@given(st.integers(min_value=2, max_value=200), st.data())
def test_split_reissue_preserves_the_exact_amount(amount, data):
    mint = Mint(seed=5)
    ecu = mint.issue(amount)
    pieces = data.draw(st.integers(min_value=1, max_value=min(5, amount)))
    # Draw a random composition of `amount` into `pieces` positive parts.
    cut_points = sorted(data.draw(st.lists(st.integers(min_value=1, max_value=amount - 1),
                                           min_size=pieces - 1, max_size=pieces - 1,
                                           unique=True))) if pieces > 1 else []
    split = []
    previous = 0
    for cut in cut_points + [amount]:
        split.append(cut - previous)
        previous = cut
    replacements = mint.retire_and_reissue(ecu, split=split)
    assert sum(replacement.amount for replacement in replacements) == amount
    assert mint.outstanding_value() == amount
