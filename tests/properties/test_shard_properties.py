"""Property-based tests: sharding never changes simulation semantics.

The sharded kernel is a performance structure — the same seed and
workload must produce identical counters and the same completed agents
whether the sites run on one event loop or are partitioned across many.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.agent import AgentState
from repro.core.folder import Folder
from repro.net import lan


def sink(ctx, bc):
    payload_name = bc.get("PAYLOAD_NAME")
    elements = (bc.folder(payload_name).elements()
                if payload_name and bc.has(payload_name) else [])
    ctx.cabinet("mail").put("received", len(elements))
    yield ctx.sleep(0)
    return len(elements)


def hopper(ctx, bc):
    """Visit the itinerary, couriering a report from each stop."""
    itinerary = bc.folder("ITINERARY", create=True)
    report = Folder("REPORT", [{"from": ctx.site_name}])
    yield ctx.send_folder(report, bc.get("SINK"), "sink")
    if itinerary:
        yield ctx.jump(bc, itinerary.dequeue())
        return "moved"
    return ctx.site_name


def run_workload(seed: int, n_sites: int, n_agents: int, hops: int,
                 shards: int, backend: str = "inproc"):
    names = [f"p{i}" for i in range(n_sites)]
    kernel = Kernel(lan(names), transport="tcp",
                    config=KernelConfig(rng_seed=seed, shards=shards,
                                        shard_backend=backend))
    kernel.install_agent(None, "sink", sink)
    for index in range(n_agents):
        briefcase = Briefcase()
        itinerary = briefcase.folder("ITINERARY", create=True)
        for hop in range(hops):
            itinerary.push(names[(index + hop + 1) % n_sites])
        briefcase.set("SINK", names[(index + n_sites // 2) % n_sites])
        kernel.launch(names[index % n_sites], hopper, briefcase)
    kernel.run()
    completed = sorted(
        (instance.spec.name or "", instance.site_name, repr(instance.result))
        for instance in kernel.table.entries.values()
        if instance.state == AgentState.DONE)
    kernel.close()
    return kernel.counters(), completed


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_sites=st.integers(min_value=4, max_value=10),
       n_agents=st.integers(min_value=1, max_value=8),
       hops=st.integers(min_value=0, max_value=3),
       shards=st.integers(min_value=2, max_value=5))
def test_sharded_run_is_semantically_identical(seed, n_sites, n_agents,
                                               hops, shards):
    classic_counters, classic_done = run_workload(seed, n_sites, n_agents,
                                                  hops, shards=1)
    sharded_counters, sharded_done = run_workload(seed, n_sites, n_agents,
                                                  hops, shards=shards)
    assert sharded_counters == classic_counters
    assert sharded_done == classic_done


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       shards=st.integers(min_value=2, max_value=4))
def test_sharding_is_deterministic_across_repeats(seed, shards):
    first = run_workload(seed, 6, 4, 2, shards)
    second = run_workload(seed, 6, 4, 2, shards)
    assert first == second


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_sites=st.integers(min_value=4, max_value=10),
       n_agents=st.integers(min_value=1, max_value=8),
       hops=st.integers(min_value=0, max_value=3),
       shards=st.integers(min_value=2, max_value=5))
def test_thread_backend_matches_inproc(seed, n_sites, n_agents, hops, shards):
    """The thread backend is a pure execution change: same counters, same
    completed agents, same results, on any seeded churn."""
    inproc = run_workload(seed, n_sites, n_agents, hops, shards,
                          backend="inproc")
    threaded = run_workload(seed, n_sites, n_agents, hops, shards,
                            backend="thread")
    assert threaded == inproc


def test_process_backend_matches_inproc():
    """Process workers produce the same simulation as the serial loop.

    Not hypothesis-driven (each example spawns real processes) and built
    on the registered workload behaviours — spawn children re-import the
    registry's modules, so test-local closures cannot cross.
    """
    import pytest

    from repro.bench.workloads import ShardedChurnParams, run_sharded_churn
    from repro.shard import process_backend_available

    if not process_backend_available():
        pytest.skip("multiprocessing spawn does not work on this host")
    for seed in (3, 41):
        results = {
            backend: run_sharded_churn(ShardedChurnParams(
                n_sites=12, n_agents=48, wave_size=16, shards=3,
                seed=seed, backend=backend))
            for backend in ("inproc", "process")}
        reference = results["inproc"]
        outcome = results["process"]
        assert outcome.events == reference.events
        assert outcome.counters == reference.counters
        assert outcome.handoffs == reference.handoffs
        assert outcome.sim_seconds == reference.sim_seconds
        assert outcome.late_arrivals == 0
        assert outcome.agents_completed == outcome.agents_launched
