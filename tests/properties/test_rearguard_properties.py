"""Property-based test for the headline fault-tolerance invariant.

Whatever single intermediate site crashes, and whenever it crashes during
the run, a rear-guard-protected computation whose origin and delivery sites
stay up completes **exactly once** — never zero times, never twice.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Kernel, KernelConfig
from repro.fault import completions, launch_ft_computation
from repro.net import FailureSchedule, ring

SITES = [f"s{i}" for i in range(6)]


@given(victim=st.sampled_from(SITES[1:-1]),
       crash_at=st.floats(min_value=0.01, max_value=2.5),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_single_intermediate_crash_still_completes_exactly_once(victim, crash_at, seed):
    kernel = Kernel(ring(SITES), transport="tcp", config=KernelConfig(rng_seed=seed))
    for index, name in enumerate(SITES):
        kernel.site(name).cabinet("data").put("VALUE", index)

    ft_id = launch_ft_computation(kernel, SITES[0], SITES[1:], per_hop=0.3,
                                  max_relaunches=4)
    FailureSchedule().crash(victim, at=crash_at).recover(victim, at=300.0).install(kernel)
    kernel.run(until=400.0)

    records = completions(kernel, SITES[-1], ft_id)
    assert len(records) == 1, (
        f"expected exactly one completion with {victim} crashing at {crash_at}, "
        f"got {len(records)}")
    # The delivery site's own hop is always present.
    visited = [entry["site"] for entry in records[0]["results"]]
    assert visited[0] == SITES[0]
    assert visited[-1] == SITES[-1]
