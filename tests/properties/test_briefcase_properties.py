"""Property-based tests for Briefcase invariants and the wire codec."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Briefcase, Folder
from repro.core.codec import pack_briefcase, unpack_briefcase, wire_size_of

element_strategy = st.one_of(
    st.binary(max_size=48),
    st.text(max_size=24),
    st.integers(),
    st.lists(st.integers(), max_size=4),
)

folder_name_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="_-"),
    min_size=1, max_size=12)


@st.composite
def briefcases(draw, max_folders=6):
    names = draw(st.lists(folder_name_strategy, max_size=max_folders, unique=True))
    briefcase = Briefcase()
    for name in names:
        elements = draw(st.lists(element_strategy, max_size=8))
        briefcase.add(Folder(name, elements))
    return briefcase


@given(briefcases())
def test_pack_unpack_round_trip(briefcase):
    assert unpack_briefcase(pack_briefcase(briefcase)) == briefcase


@given(briefcases())
def test_copy_equals_original_but_is_independent(briefcase):
    clone = briefcase.copy()
    assert clone == briefcase
    clone.put("EXTRA_FOLDER_XYZ", b"x")
    assert not briefcase.has("EXTRA_FOLDER_XYZ")


@given(briefcases())
def test_wire_size_counts_every_folder(briefcase):
    total = briefcase.wire_size()
    assert total >= 32
    assert total == wire_size_of(briefcase)
    # The whole is the framing plus the parts.
    parts = sum(folder.wire_size() for folder in briefcase.folders())
    assert total == 32 + parts


@given(briefcases(), briefcases())
@settings(max_examples=60)
def test_merge_conserves_element_count(left, right):
    left_count = sum(len(folder) for folder in left.folders())
    right_count = sum(len(folder) for folder in right.folders())
    left.merge(right)
    merged_count = sum(len(folder) for folder in left.folders())
    assert merged_count == left_count + right_count


@given(briefcases())
def test_split_then_merge_restores_every_element(briefcase):
    original_elements = {folder.name: folder.elements() for folder in briefcase.folders()}
    names = briefcase.names()
    taken = names[: len(names) // 2]
    extracted = briefcase.split(taken)
    briefcase.merge(extracted)
    restored = {folder.name: folder.elements() for folder in briefcase.folders()}
    assert restored == original_elements


@given(briefcases())
def test_names_match_folders(briefcase):
    assert briefcase.names() == [folder.name for folder in briefcase.folders()]
    assert len(briefcase) == len(briefcase.names())
