"""Property-based tests for FileCabinet invariants (index consistency, persistence)."""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Briefcase, FileCabinet, Folder

element_strategy = st.one_of(st.binary(max_size=32), st.text(max_size=16), st.integers())


@given(st.lists(element_strategy, max_size=20), element_strategy)
def test_contains_element_matches_membership(elements, probe):
    cabinet = FileCabinet("c")
    for element in elements:
        cabinet.put("X", element)
    expected = probe in elements
    # The digest index must agree with a linear scan of the decoded values.
    assert cabinet.contains_element("X", probe) == expected


@given(st.lists(element_strategy, max_size=20))
def test_elements_reflect_every_put_in_order(elements):
    cabinet = FileCabinet("c")
    for element in elements:
        cabinet.put("X", element)
    assert cabinet.elements("X") == list(elements)


@given(st.lists(element_strategy, min_size=1, max_size=15))
def test_deposit_indexes_everything(elements):
    cabinet = FileCabinet("c")
    cabinet.deposit(Briefcase([Folder("F", elements)]))
    for element in elements:
        assert cabinet.contains_element("F", element)


@given(st.lists(element_strategy, max_size=15))
def test_withdraw_copies_do_not_alias(elements):
    cabinet = FileCabinet("c")
    for element in elements:
        cabinet.put("F", element)
    briefcase = cabinet.withdraw(["F"])
    if elements:
        briefcase.folder("F").push(b"mutation")
        assert cabinet.elements("F") == list(elements)


@given(st.lists(element_strategy, max_size=12))
@settings(max_examples=30, deadline=None)
def test_flush_load_round_trip(elements):
    cabinet = FileCabinet("persist", site="alpha")
    for element in elements:
        cabinet.put("DATA", element)
    with tempfile.TemporaryDirectory() as directory:
        path = cabinet.flush(directory)
        loaded = FileCabinet.load(path)
    assert loaded.elements("DATA") == cabinet.elements("DATA")
    assert loaded.name == "persist"
    assert loaded.site == "alpha"


@given(st.lists(element_strategy, max_size=15))
def test_move_cost_dominates_storage(elements):
    cabinet = FileCabinet("c")
    for element in elements:
        cabinet.put("X", element)
    assert cabinet.move_cost() >= cabinet.storage_size()
    if elements:
        assert cabinet.move_cost() >= FileCabinet.MOVE_COST_FACTOR
