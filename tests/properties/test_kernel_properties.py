"""Property-based tests for kernel-level invariants.

These drive whole (small) agent systems with generated parameters and check
global invariants: the agent ledger always balances, itineraries visit what
they were asked to visit, and the diffusion agent covers exactly the
reachable part of the network.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.core.agent import AgentState
from repro.net import lan, random_topology
from repro.sysagents.diffusion import DIFFUSION_CABINET


def visitor(ctx, bc):
    trail = bc.folder("TRAIL", create=True)
    trail.push(ctx.site_name)
    itinerary = bc.folder("ITINERARY", create=True)
    if itinerary:
        yield ctx.jump(bc, itinerary.dequeue())
        return "moved"
    ctx.cabinet("trail_results").put("TRAIL", list(trail.elements()))
    return "done"


register_behaviour("property_visitor", visitor, replace=True)


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=10),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_itinerant_agent_visits_exactly_the_requested_sites(n_sites, hops, seed):
    sites = [f"s{i}" for i in range(n_sites)]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=seed))
    import random as _random
    rng = _random.Random(seed)
    itinerary = [rng.choice(sites) for _ in range(hops)]

    briefcase = Briefcase()
    folder = briefcase.folder("ITINERARY", create=True)
    for site in itinerary:
        folder.enqueue(site)
    kernel.launch(sites[0], "property_visitor", briefcase)
    kernel.run()

    final_site = itinerary[-1] if itinerary else sites[0]
    trail = kernel.site(final_site).cabinet("trail_results").get("TRAIL")
    assert trail == [sites[0]] + itinerary
    # Migrations equal the number of inter-site moves (same-site hops are local).
    expected_moves = sum(1 for before, after in zip([sites[0]] + itinerary, itinerary)
                         if before != after)
    assert kernel.stats.migrations == expected_moves


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_agent_ledger_always_balances(n_agents, seed):
    kernel = Kernel(lan(["a", "b", "c"]), transport="tcp",
                    config=KernelConfig(rng_seed=seed))

    def worker(ctx, bc):
        yield ctx.sleep(ctx.rng.random() * 0.1)
        if bc.get("EXPLODE"):
            raise RuntimeError("boom")
        return "ok"

    import random as _random
    rng = _random.Random(seed)
    for index in range(n_agents):
        briefcase = Briefcase()
        if rng.random() < 0.3:
            briefcase.set("EXPLODE", True)
        kernel.launch(rng.choice(["a", "b", "c"]), worker, briefcase)
    kernel.run()

    counters = kernel.counters()
    assert counters["completed"] + counters["failed"] + counters["killed"] == \
        counters["launched"]
    for agent in kernel.agents.values():
        assert AgentState.is_terminal(agent.state)


@given(st.integers(min_value=4, max_value=14), st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_diffusion_covers_exactly_the_reachable_sites(n_sites, seed):
    topology = random_topology(n_sites, edge_probability=0.25, seed=seed)
    kernel = Kernel(topology, transport="tcp", config=KernelConfig(rng_seed=seed))
    origin = topology.sites()[0]
    briefcase = Briefcase()
    briefcase.set("PAYLOAD", "wave")
    kernel.launch(origin, "diffusion", briefcase)
    kernel.run()

    covered = {name for name in kernel.site_names()
               if kernel.site(name).cabinet(DIFFUSION_CABINET).get("PAYLOAD") == "wave"}
    reachable = {name for name in kernel.site_names()
                 if topology.can_communicate(origin, name)}
    assert covered == reachable
