"""Property-based tests for kernel-level invariants.

These drive whole (small) agent systems with generated parameters and check
global invariants: the agent ledger always balances, itineraries visit what
they were asked to visit, and the diffusion agent covers exactly the
reachable part of the network.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.core.agent import AgentState
from repro.net import lan, random_topology
from repro.sysagents.diffusion import DIFFUSION_CABINET


def visitor(ctx, bc):
    trail = bc.folder("TRAIL", create=True)
    trail.push(ctx.site_name)
    itinerary = bc.folder("ITINERARY", create=True)
    if itinerary:
        yield ctx.jump(bc, itinerary.dequeue())
        return "moved"
    ctx.cabinet("trail_results").put("TRAIL", list(trail.elements()))
    return "done"


register_behaviour("property_visitor", visitor, replace=True)


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=10),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_itinerant_agent_visits_exactly_the_requested_sites(n_sites, hops, seed):
    sites = [f"s{i}" for i in range(n_sites)]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=seed))
    import random as _random
    rng = _random.Random(seed)
    itinerary = [rng.choice(sites) for _ in range(hops)]

    briefcase = Briefcase()
    folder = briefcase.folder("ITINERARY", create=True)
    for site in itinerary:
        folder.enqueue(site)
    kernel.launch(sites[0], "property_visitor", briefcase)
    kernel.run()

    final_site = itinerary[-1] if itinerary else sites[0]
    trail = kernel.site(final_site).cabinet("trail_results").get("TRAIL")
    assert trail == [sites[0]] + itinerary
    # Migrations equal the number of inter-site moves (same-site hops are local).
    expected_moves = sum(1 for before, after in zip([sites[0]] + itinerary, itinerary)
                         if before != after)
    assert kernel.stats.migrations == expected_moves


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_agent_ledger_always_balances(n_agents, seed):
    kernel = Kernel(lan(["a", "b", "c"]), transport="tcp",
                    config=KernelConfig(rng_seed=seed))

    def worker(ctx, bc):
        yield ctx.sleep(ctx.rng.random() * 0.1)
        if bc.get("EXPLODE"):
            raise RuntimeError("boom")
        return "ok"

    import random as _random
    rng = _random.Random(seed)
    for index in range(n_agents):
        briefcase = Briefcase()
        if rng.random() < 0.3:
            briefcase.set("EXPLODE", True)
        kernel.launch(rng.choice(["a", "b", "c"]), worker, briefcase)
    kernel.run()

    counters = kernel.counters()
    assert counters["completed"] + counters["failed"] + counters["killed"] == \
        counters["launched"]
    for agent in kernel.agents.values():
        assert AgentState.is_terminal(agent.state)


def _index_helper(ctx, bc):
    yield ctx.end_meet("hi")
    return "helper-done"


def _index_child(ctx, bc):
    yield ctx.sleep(0.02)
    return "child-done"


def _index_worker(ctx, bc):
    action = bc.get("ACTION", "idle")
    if action == "spawn":
        yield ctx.spawn(_index_child)
    elif action == "meet":
        yield ctx.meet("index_helper", Briefcase())
    elif action == "jump":
        # Re-ship ourselves to TARGET via rexec -> network -> arrival, which
        # exercises the arrival path of the index.
        bc.set("ACTION", "idle")
        yield ctx.jump(bc, bc.get("TARGET"))
        return "moved"
    yield ctx.sleep(0.05)
    return "done"


register_behaviour("index_worker", _index_worker, replace=True)


def _assert_index_matches_brute_force(kernel):
    for name in kernel.site_names():
        indexed = sorted(agent.agent_id for agent in kernel.agents_at(name))
        brute = sorted(agent.agent_id for agent in kernel._agents_at_scan(name))
        assert indexed == brute
        assert kernel.site(name).resident_count() == len(brute)


@given(st.lists(st.tuples(st.sampled_from(["launch", "crash", "recover", "step"]),
                          st.integers(min_value=0, max_value=3)),
                max_size=25),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_per_site_index_always_matches_brute_force_scan(ops, seed):
    """agents_at(s) via the index == the O(all agents) ledger scan, at every
    point of a random launch/meet/spawn/jump/crash/recover/arrival history."""
    sites = [f"s{i}" for i in range(4)]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=seed))
    for name in sites:
        kernel.install_agent(name, "index_helper", _index_helper)
    import random as _random
    rng = _random.Random(seed)

    for kind, value in ops:
        site = sites[value % len(sites)]
        if kind == "launch":
            briefcase = Briefcase()
            briefcase.set("ACTION", rng.choice(["idle", "spawn", "meet", "jump"]))
            briefcase.set("TARGET", rng.choice(sites))
            kernel.launch(site, "index_worker", briefcase)
        elif kind == "crash":
            kernel.crash_site(site)
        elif kind == "recover":
            kernel.recover_site(site)
        elif kind == "step":
            kernel.run(max_events=5 * (value + 1))
        _assert_index_matches_brute_force(kernel)

    for name in sites:
        kernel.recover_site(name)
    kernel.run()
    _assert_index_matches_brute_force(kernel)
    for name in sites:
        assert kernel.agents_at(name) == []
    counters = kernel.counters()
    assert counters["completed"] + counters["failed"] + counters["killed"] == \
        counters["launched"]


@given(st.integers(min_value=4, max_value=14), st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_diffusion_covers_exactly_the_reachable_sites(n_sites, seed):
    topology = random_topology(n_sites, edge_probability=0.25, seed=seed)
    kernel = Kernel(topology, transport="tcp", config=KernelConfig(rng_seed=seed))
    origin = topology.sites()[0]
    briefcase = Briefcase()
    briefcase.set("PAYLOAD", "wave")
    kernel.launch(origin, "diffusion", briefcase)
    kernel.run()

    covered = {name for name in kernel.site_names()
               if kernel.site(name).cabinet(DIFFUSION_CABINET).get("PAYLOAD") == "wave"}
    reachable = {name for name in kernel.site_names()
                 if topology.can_communicate(origin, name)}
    assert covered == reachable
