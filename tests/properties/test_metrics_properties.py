"""Property-based tests for the benchmark metric helpers."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.bench.metrics import (coefficient_of_variation, jains_fairness, percentile,
                                 summarize)

samples = st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                             allow_infinity=False), min_size=1, max_size=50)


@given(samples, st.floats(min_value=0.0, max_value=100.0))
def test_percentile_is_bounded_by_min_and_max(values, pct):
    result = percentile(values, pct)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(samples)
def test_percentile_is_monotone_in_pct(values):
    points = [percentile(values, pct) for pct in (0, 25, 50, 75, 100)]
    assert points == sorted(points)


@given(samples)
def test_summarize_is_internally_consistent(values):
    summary = summarize(values)
    # Floating-point aggregation (fmean, interpolation) may exceed the exact
    # min/max by an ulp or two; allow a relative tolerance.
    slack = 1e-9 * max(1.0, summary["max"])
    assert summary["count"] == len(values)
    assert summary["min"] - slack <= summary["median"] <= summary["max"] + slack
    assert summary["min"] - slack <= summary["mean"] <= summary["max"] + slack
    assert summary["min"] - slack <= summary["p95"] <= summary["max"] + slack
    assert summary["stdev"] >= 0.0


@given(samples)
def test_jains_fairness_is_within_unit_interval(values):
    fairness = jains_fairness(values)
    assert 0.0 < fairness <= 1.0 + 1e-9


@given(st.floats(min_value=0.001, max_value=1e5, allow_nan=False), st.integers(2, 30))
def test_jains_fairness_is_one_for_uniform_loads(value, count):
    assert jains_fairness([value] * count) > 0.999999


@given(samples)
def test_coefficient_of_variation_is_non_negative(values):
    assert coefficient_of_variation(values) >= 0.0
