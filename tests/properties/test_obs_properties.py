"""Property-based tests: tracing is deterministic and backend-invariant.

The repro.obs determinism contract (PR 9): span identity is derived only
from semantic state — trace ids from launch order, keys from per-engine
event-order counters — so a traced workload yields the *identical* span
tree whether the shards execute serially (``inproc``), on a thread pool,
or in worker processes whose spans return via state digests.  Wall clocks,
thread interleavings and process boundaries must never leak into a trace.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Briefcase, Kernel, KernelConfig
from repro.core.folder import Folder
from repro.core.registry import register_behaviour
from repro.net import lan
from repro.obs.report import build_trees


def obs_collector(ctx, bc):
    """Fan-in sink: counts folders couriered at it."""
    ctx.cabinet("obs").put("received", 1)
    yield ctx.sleep(0)
    return "ok"


def obs_fanin(ctx, bc):
    """Courier a report to the sink, then follow the itinerary."""
    report = Folder("REPORT", [{"from": ctx.site_name}])
    yield ctx.send_folder(report, bc.get("SINK"), "obs_collector")
    itinerary = bc.folder("ITINERARY", create=True)
    if itinerary:
        yield ctx.jump(bc, itinerary.dequeue())
        return "moved"
    return ctx.site_name


# Registered (not shipped as source): jumps resolve the same behaviour on
# every backend, and process workers re-import this module on spawn.
register_behaviour("obs_collector", obs_collector, replace=True)
register_behaviour("obs_fanin", obs_fanin, replace=True)


def run_traced(seed: int, n_sites: int, n_agents: int, hops: int,
               shards: int, backend: str = "inproc",
               sample: float = 1.0):
    names = [f"p{i}" for i in range(n_sites)]
    kernel = Kernel(lan(names), transport="tcp",
                    config=KernelConfig(rng_seed=seed, shards=shards,
                                        shard_backend=backend,
                                        obs_enabled=True,
                                        obs_sample=sample))
    kernel.install_agent(None, "obs_collector", obs_collector)
    for index in range(n_agents):
        briefcase = Briefcase()
        itinerary = briefcase.folder("ITINERARY", create=True)
        for hop in range(hops):
            itinerary.push(names[(index + hop + 1) % n_sites])
        briefcase.set("SINK", names[(index + n_sites // 2) % n_sites])
        kernel.launch(names[index % n_sites], "obs_fanin", briefcase)
    kernel.run()
    spans = kernel.trace_spans()
    kernel.close()
    return spans


def agent_spans(spans):
    """Non-infra spans only; infra pseudo-traces (``~...``) may legally
    differ across backends (coordination structure is backend-specific)."""
    return [span for span in spans if not span["trace_id"].startswith("~")]


def tree_shapes(spans):
    return {trace_id: tuple(root.tree_shape() for root in roots)
            for trace_id, roots in build_trees(agent_spans(spans)).items()}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_sites=st.integers(min_value=4, max_value=8),
       n_agents=st.integers(min_value=1, max_value=6),
       hops=st.integers(min_value=0, max_value=3),
       shards=st.integers(min_value=2, max_value=4))
def test_thread_backend_yields_identical_span_trees(seed, n_sites, n_agents,
                                                    hops, shards):
    inproc = run_traced(seed, n_sites, n_agents, hops, shards, "inproc")
    threaded = run_traced(seed, n_sites, n_agents, hops, shards, "thread")
    # Strongest form first: the full agent-span records match — identity,
    # causality, sim timestamps, attributes.
    assert agent_spans(threaded) == agent_spans(inproc)
    assert tree_shapes(threaded) == tree_shapes(inproc)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       sample=st.sampled_from([0.0, 0.3, 0.7]))
def test_sampling_decision_is_backend_invariant(seed, sample):
    """A partial sample keeps the *same subset* of traces on any backend."""
    inproc = run_traced(seed, 6, 5, 2, 3, "inproc", sample=sample)
    threaded = run_traced(seed, 6, 5, 2, 3, "thread", sample=sample)
    assert agent_spans(threaded) == agent_spans(inproc)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_traced_run_is_deterministic_across_repeats(seed):
    first = run_traced(seed, 6, 4, 2, 3)
    second = run_traced(seed, 6, 4, 2, 3)
    assert agent_spans(first) == agent_spans(second)


def test_process_backend_yields_identical_span_trees():
    """Digest-mirrored worker spans rebuild the same tree the serial loop
    records.  Not hypothesis-driven: each example spawns real processes,
    and spawn children can only resolve registry-backed behaviours.
    """
    import pytest

    from repro.fault.ftmove import launch_ft_computation
    from repro.shard import process_backend_available

    if not process_backend_available():
        pytest.skip("multiprocessing spawn does not work on this host")

    def run_ft(backend):
        sites = ["alpha", "beta", "gamma", "delta"]
        kernel = Kernel(topology=lan(sites),
                        config=KernelConfig(shards=2, shard_backend=backend,
                                            obs_enabled=True))
        launch_ft_computation(kernel, sites[0], sites[1:], ft_id="ft-prop")
        kernel.run(until=60.0)
        spans = kernel.trace_spans()
        kernel.close()
        return spans

    reference = run_ft("inproc")
    assert any(span["name"] == "ft-hop" for span in reference)
    for backend in ("thread", "process"):
        assert agent_spans(run_ft(backend)) == agent_spans(reference), backend


def test_realtime_spans_carry_monotonic_wall_timestamps():
    """Under ``backend="realtime"`` every span gets wall stamps, closed in
    emission order — the raw material for feeding observed latencies back
    into the sim cost model."""
    kernel = Kernel(lan(["a", "b"], latency=0.002),
                    config=KernelConfig(backend="realtime",
                                        obs_enabled=True))
    kernel.install_agent(None, "obs_collector", obs_collector)
    briefcase = Briefcase()
    briefcase.folder("ITINERARY", create=True).push("b")
    briefcase.set("SINK", "b")
    kernel.launch("a", "obs_fanin", briefcase)
    kernel.run(until=2.0)
    spans = kernel.obs.sink.export()   # raw ring: emission order
    kernel.close()
    assert spans, "realtime run recorded no spans"
    assert {"launch", "run", "migration"} <= {span["name"] for span in spans}
    for span in spans:
        assert span.get("wall_end") is not None, span["span_id"]
        wall_start = span.get("wall_start", span["wall_end"])
        assert span["wall_end"] >= wall_start, span["span_id"]
    emitted = [span["wall_end"] for span in spans]
    assert emitted == sorted(emitted), "spans must close in wall order"
