"""Property-based tests for the mail system: nothing is lost, nothing is duplicated."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.mail import MailSystem
from repro.core import Kernel, KernelConfig
from repro.net import lan

SITES = ["oslo", "tromso", "bergen", "cornell"]
USERS = ["dag", "fred", "robbert", "ken"]

letters_strategy = st.lists(
    st.tuples(st.sampled_from(USERS), st.sampled_from(SITES),
              st.sampled_from(USERS), st.sampled_from(SITES),
              st.text(min_size=1, max_size=20)),
    min_size=1, max_size=12)


@given(letters_strategy, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_every_letter_between_live_sites_is_delivered_exactly_once(letters, seed):
    kernel = Kernel(lan(SITES), transport="tcp", config=KernelConfig(rng_seed=seed))
    mail = MailSystem(kernel)
    sent_ids = []
    for index, (from_user, from_site, to_user, to_site, subject) in enumerate(letters):
        sent_ids.append(mail.send(from_user, from_site, to_user, to_site, subject,
                                  body=f"body {index}", delay=0.01 * index))
    kernel.run(until=120.0)

    # Every letter shows up in exactly one inbox, exactly once.
    delivered_ids = []
    for site in SITES:
        for user in USERS:
            for letter in mail.inbox(site, user):
                delivered_ids.append(letter["letter_id"])
                # ... and it is filed at the site and user it was addressed to.
                assert letter["to_site"] == site
                assert letter["to_user"] == user
    assert sorted(delivered_ids) == sorted(sent_ids)
    assert mail.delivered_count() == len(letters)


@given(letters_strategy, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_inbox_contents_preserve_subjects_and_bodies(letters, seed):
    kernel = Kernel(lan(SITES), transport="tcp", config=KernelConfig(rng_seed=seed))
    mail = MailSystem(kernel)
    expected = {}
    for index, (from_user, from_site, to_user, to_site, subject) in enumerate(letters):
        letter_id = mail.send(from_user, from_site, to_user, to_site, subject,
                              body=f"body {index}", delay=0.01 * index)
        expected[letter_id] = (to_site, to_user, subject, f"body {index}", from_user)
    kernel.run(until=120.0)

    for letter_id, (to_site, to_user, subject, body, from_user) in expected.items():
        inbox = mail.inbox(to_site, to_user)
        match = [letter for letter in inbox if letter["letter_id"] == letter_id]
        assert len(match) == 1
        assert match[0]["subject"] == subject
        assert match[0]["body"] == body
        assert match[0]["from_user"] == from_user
        assert match[0]["delivered_at"] is not None
