"""Property-based tests for Folder invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Folder

# Elements a folder must accept: raw bytes, text, and picklable structures.
element_strategy = st.one_of(
    st.binary(max_size=64),
    st.text(max_size=32),
    st.integers(),
    st.dictionaries(st.text(max_size=8), st.integers(), max_size=4),
    st.lists(st.integers(), max_size=6),
)

elements_strategy = st.lists(element_strategy, max_size=25)


@given(elements_strategy)
def test_elements_preserve_insertion_order_and_values(elements):
    folder = Folder("F", elements)
    assert folder.elements() == list(elements)
    assert len(folder) == len(elements)


@given(elements_strategy)
def test_stack_discipline_is_lifo(elements):
    folder = Folder("F", elements)
    popped = [folder.pop() for _ in range(len(elements))]
    assert popped == list(reversed(elements))
    assert len(folder) == 0


@given(elements_strategy)
def test_queue_discipline_is_fifo(elements):
    folder = Folder("F")
    for element in elements:
        folder.enqueue(element)
    dequeued = [folder.dequeue() for _ in range(len(elements))]
    assert dequeued == list(elements)


@given(elements_strategy)
def test_wire_round_trip_is_identity(elements):
    folder = Folder("F", elements)
    rebuilt = Folder.from_wire(folder.to_wire())
    assert rebuilt == folder
    assert rebuilt.elements() == folder.elements()


@given(elements_strategy)
def test_copy_is_independent_and_equal(elements):
    folder = Folder("F", elements)
    clone = folder.copy()
    assert clone == folder
    clone.push(b"extra")
    assert len(clone) == len(folder) + 1
    assert folder.elements() == list(elements)


@given(elements_strategy, element_strategy)
def test_wire_size_is_monotone_under_push(elements, extra):
    folder = Folder("F", elements)
    before = folder.wire_size()
    folder.push(extra)
    assert folder.wire_size() > before


@given(st.lists(st.binary(max_size=32), max_size=20))
def test_raw_elements_round_trip_for_bytes(blobs):
    folder = Folder("F", blobs)
    assert folder.elements() == blobs
    # Raw (tagged) elements are always strictly longer than the payload.
    for stored, original in zip(folder.raw_elements(), blobs):
        assert len(stored) == len(original) + 1


@given(elements_strategy)
@settings(max_examples=50)
def test_replace_then_elements_is_identity(elements):
    folder = Folder("F", ["sentinel"])
    folder.replace(elements)
    assert folder.elements() == list(elements)
