"""Property-based tests for Horus group membership invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NotMemberError
from repro.net.horus import HorusTransport
from repro.net.simclock import EventLoop
from repro.net.stats import NetworkStats
from repro.net.topology import lan

SITES = [f"s{i}" for i in range(6)]

# An operation is (op, site): join / leave / crash.
operations = st.lists(
    st.tuples(st.sampled_from(["join", "leave", "crash"]), st.sampled_from(SITES)),
    max_size=25)


def build_transport():
    loop = EventLoop()
    topology = lan(SITES)
    transport = HorusTransport(loop, topology, NetworkStats(), rng=random.Random(0))
    for name in SITES:
        transport.register_endpoint(name, lambda message: None)
    return transport, loop, topology


@given(operations)
@settings(max_examples=60, deadline=None)
def test_view_ids_strictly_increase_and_members_stay_consistent(ops):
    transport, loop, topology = build_transport()
    transport.create_group("g", [SITES[0]])
    loop.run()
    alive = set(SITES)

    for op, site in ops:
        current = set(transport.group_view("g").members)
        if op == "join" and site in alive and site not in current:
            transport.join("g", site)
        elif op == "leave" and site in current:
            try:
                transport.leave("g", site)
            except NotMemberError:   # pragma: no cover - guarded by the check above
                pass
        elif op == "crash" and site in alive:
            topology.mark_down(site)
            transport.on_site_down(site)
            alive.discard(site)
        loop.run()

    history = transport.view_history("g")
    view_ids = [view.view_id for view in history]
    # Invariant 1: view identifiers are strictly increasing.
    assert view_ids == sorted(view_ids)
    assert len(set(view_ids)) == len(view_ids)
    # Invariant 2: membership never contains duplicates.
    for view in history:
        assert len(set(view.members)) == len(view.members)
    # Invariant 3: once the dust settles, no crashed site is still a member.
    final_members = set(transport.group_view("g").members)
    assert final_members.isdisjoint(set(SITES) - alive)


@given(operations)
@settings(max_examples=40, deadline=None)
def test_multicast_copies_match_current_view_size(ops):
    transport, loop, topology = build_transport()
    transport.create_group("g", SITES[:3])
    loop.run()
    alive = set(SITES)

    for op, site in ops:
        current = set(transport.group_view("g").members)
        if op == "join" and site in alive and site not in current:
            transport.join("g", site)
        elif op == "leave" and site in current and len(current) > 1:
            transport.leave("g", site)
        elif op == "crash" and site in alive and len(current - {site}) >= 1:
            topology.mark_down(site)
            transport.on_site_down(site)
            alive.discard(site)
        loop.run()

        view = transport.group_view("g")
        members = list(view.members)
        if members:
            sender = members[0]
            if sender in alive:
                copies = transport.multicast("g", sender, {"tick": 1})
                assert copies == len(members)
        loop.run()
