"""E7 — The three rexec implementations: rsh, TCP, Horus (paper section 6).

Claim: the prototype ran rexec over UNIX ``rsh`` (a fresh remote
interpreter per transfer), Tcl/TCP (cached connections) and Tcl/Horus
(group communication with long-lived channels).  The experiment measures
per-migration latency for each transport across hop counts and payload
sizes.  Expected shape: rsh pays a large fixed cost per hop and is an
order of magnitude slower; TCP and Horus amortise their connection setup,
with Horus slightly ahead on small payloads (cheaper established-channel
setup) and the two converging as payloads grow (bandwidth dominates).
"""

from __future__ import annotations

import pytest

from repro.bench import ItineraryParams, Report, ratio, run_itinerary

TRANSPORTS = ("rsh", "tcp", "horus")
HOP_COUNTS = (2, 8, 16)
PAYLOADS = (256, 4_096, 65_536)


@pytest.fixture(scope="module")
def hop_sweep():
    return {(transport, hops): run_itinerary(ItineraryParams(transport=transport,
                                                             hops=hops,
                                                             payload_bytes=1024, seed=3))
            for transport in TRANSPORTS for hops in HOP_COUNTS}


@pytest.fixture(scope="module")
def payload_sweep():
    return {(transport, payload): run_itinerary(ItineraryParams(transport=transport,
                                                                hops=8,
                                                                payload_bytes=payload,
                                                                seed=3))
            for transport in TRANSPORTS for payload in PAYLOADS}


def test_e7_hop_count_table(benchmark, hop_sweep, emit_report):
    report = Report("E7", "migration cost of the three rexec transports (1 KB agent)")
    table = report.table("itinerary completion time vs hop count",
                         ["hops"] + [f"{transport} s" for transport in TRANSPORTS] +
                         ["rsh/tcp x"])
    for hops in HOP_COUNTS:
        durations = [hop_sweep[(transport, hops)].duration for transport in TRANSPORTS]
        table.add_row(hops, *[round(duration, 3) for duration in durations],
                      round(ratio(hop_sweep[("rsh", hops)].duration,
                                  hop_sweep[("tcp", hops)].duration), 1))
    table.add_note("every run completes the same logical itinerary; only the transport "
                   "changes")
    emit_report(report)

    for hops in HOP_COUNTS:
        assert hop_sweep[("rsh", hops)].duration > hop_sweep[("tcp", hops)].duration
        assert hop_sweep[("rsh", hops)].duration > hop_sweep[("horus", hops)].duration
        assert hop_sweep[("rsh", hops)].hops_completed == hops
    # rsh's per-hop penalty does not amortise: the gap persists at 16 hops.
    assert ratio(hop_sweep[("rsh", 16)].duration, hop_sweep[("tcp", 16)].duration) > 3

    benchmark.pedantic(run_itinerary,
                       args=(ItineraryParams(transport="tcp", hops=8, payload_bytes=1024),),
                       rounds=1, iterations=1)


def test_e7_payload_table(benchmark, payload_sweep, emit_report):
    report = Report("E7b", "per-hop migration latency vs agent size (8 hops)")
    table = report.table("mean per-hop time by payload size",
                         ["payload B"] + [f"{transport} ms/hop" for transport in TRANSPORTS])
    for payload in PAYLOADS:
        table.add_row(payload,
                      *[round(payload_sweep[(transport, payload)].mean_hop_time * 1000, 1)
                        for transport in TRANSPORTS])
    table.add_note("as the agent grows, transfer time (payload / bandwidth) dominates and "
                   "the cached-connection transports converge")
    emit_report(report)

    for transport in TRANSPORTS:
        hop_times = [payload_sweep[(transport, payload)].mean_hop_time
                     for payload in PAYLOADS]
        assert hop_times == sorted(hop_times)
    # Relative gap between tcp and horus narrows with payload size.
    def gap(payload):
        tcp = payload_sweep[("tcp", payload)].mean_hop_time
        horus = payload_sweep[("horus", payload)].mean_hop_time
        return abs(tcp - horus) / max(tcp, horus)

    assert gap(PAYLOADS[-1]) < gap(PAYLOADS[0]) + 0.05

    benchmark.pedantic(run_itinerary,
                       args=(ItineraryParams(transport="horus", hops=8,
                                             payload_bytes=4096),),
                       rounds=1, iterations=1)


def test_e7_rsh_representative(benchmark):
    """Time the slow transport on its own so regressions in it are visible."""
    result = benchmark.pedantic(
        run_itinerary, args=(ItineraryParams(transport="rsh", hops=6, payload_bytes=1024),),
        rounds=1, iterations=1)
    assert result.hops_completed == 6
