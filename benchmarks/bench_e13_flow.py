"""E13 — The unified flow-control layer (repro.flow).

Three claims, one shared layer (see `docs/architecture.md`):

* **E13a (adaptive per-destination windows)** — on a mixed hot/cold
  fan-in, per-pair windows sized from observed arrival rates beat every
  global fixed window: no fixed window matches the adaptive arm on both
  wire messages and p50 delivery latency, and the best fixed window that
  meets the latency budget sends strictly more messages.
* **E13b (bytes-proportional WAL costs)** — the store's write cost comes
  from the shared :class:`~repro.flow.CostModel`, so a group commit's
  simulated time scales with the payload bytes its redo records carry;
  the ablation (byte term zeroed) stays flat.
* **E13c (barrier piggybacking)** — on the E12 fault-tolerance sweep, a
  pre-jump checkpoint barrier triggers the group commit immediately
  instead of waiting out the commit window, strictly reducing per-hop
  checkpoint latency while durability guarantees stay intact (every
  computation completes, zero durable folders lost).

Run with ``--smoke`` for the CI sanity pass (E13a runs at full size — it
is cheap and the EWMA needs traffic to converge; E13b/E13c shrink).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.bench import Report
from repro.bench.workloads import MixedTrafficParams, run_mixed_traffic
from repro.core import Kernel, KernelConfig
from repro.fault import completions, launch_ft_computation
from repro.net import RandomCrasher, lan

# =============================================================================
# E13a — adaptive per-destination windows vs the global fixed sweep
# =============================================================================

#: the fixed global windows swept (seconds); 0 = fabric off
FIXED_WINDOWS = (0.0, 0.02, 0.05, 0.15, 0.6)
#: adaptive arm: bounds + target batch of the per-pair flow controller
ADAPTIVE = dict(batch_window=0.02, flow_window_min=0.01, flow_window_max=0.6,
                flow_target_batch=6)
#: delivery-latency budget the "best fixed window" must meet (p50, seconds)
LATENCY_SLO = 0.1

MIXED_BASE = dict(n_hot=2, hot_deliveries=40, hot_gap=0.002, n_trickle=6,
                  trickle_deliveries=8, trickle_gap=0.35, payload_bytes=200)


@pytest.fixture(scope="module")
def mixed_sweep():
    arms = {}
    for window in FIXED_WINDOWS:
        label = "off" if window == 0 else f"fixed {window:g}"
        arms[label] = run_mixed_traffic(
            MixedTrafficParams(batch_window=window, **MIXED_BASE))
    arms["adaptive"] = run_mixed_traffic(
        MixedTrafficParams(**ADAPTIVE, **MIXED_BASE))
    return arms


def test_e13a_adaptive_windows_beat_every_fixed_window(mixed_sweep, emit_report):
    adaptive = mixed_sweep["adaptive"]
    report = Report("E13a", "adaptive per-destination windows vs global fixed "
                            f"windows ({MIXED_BASE['n_hot']} hot senders x "
                            f"{MIXED_BASE['hot_deliveries']} folders, "
                            f"{MIXED_BASE['n_trickle']} trickle senders x "
                            f"{MIXED_BASE['trickle_deliveries']}, "
                            f"adaptive [{ADAPTIVE['flow_window_min']}, "
                            f"{ADAPTIVE['flow_window_max']}]s, "
                            f"target batch {ADAPTIVE['flow_target_batch']})")
    table = report.table(
        "mixed hot/cold fan-in: one window per pair vs one window for all",
        ["fabric", "folders", "wire msgs", "batches", "p50 latency s",
         "mean latency s"])
    for label, outcome in mixed_sweep.items():
        table.add_row(label,
                      f"{outcome.folders_received}/{outcome.folders_expected}",
                      outcome.wire_messages, outcome.batches,
                      round(outcome.p50_latency, 4),
                      round(outcome.mean_latency, 4))
    hot = {pair: info for pair, info in adaptive.flow_windows.items()
           if pair.startswith("hot")}
    cold = {pair: info for pair, info in adaptive.flow_windows.items()
            if pair.startswith("cold")}
    table.add_note("adaptive windows converged to: hot pairs "
                   + ", ".join(f"{info['window']:.3f}s" for info in hot.values())
                   + "; trickle pairs "
                   + ", ".join(sorted({f"{info['window']:.3f}s"
                                       for info in cold.values()})))
    table.add_note(f"latency budget for 'best fixed': p50 <= {LATENCY_SLO}s")
    emit_report(report)

    # Nothing is ever lost, in any arm.
    for label, outcome in mixed_sweep.items():
        assert outcome.folders_received == outcome.folders_expected, label

    fixed_arms = {label: outcome for label, outcome in mixed_sweep.items()
                  if label != "adaptive"}
    # (1) No fixed window dominates the adaptive arm: each one loses on
    # wire messages or on p50 delivery latency.
    for label, fixed in fixed_arms.items():
        assert (adaptive.wire_messages < fixed.wire_messages
                or adaptive.p50_latency < fixed.p50_latency), label
    # (2) The compromise windows a single global knob forces you into are
    # strictly dominated: some fixed arm loses on *both* metrics.
    assert any(adaptive.wire_messages < fixed.wire_messages
               and adaptive.p50_latency < fixed.p50_latency
               for fixed in fixed_arms.values())
    # (3) The headline: against the best fixed window that meets the
    # latency budget (fewest wire messages with p50 <= SLO), the adaptive
    # fabric sends strictly fewer messages at equal or lower p50.
    feasible = [fixed for fixed in fixed_arms.values()
                if fixed.p50_latency <= LATENCY_SLO]
    best_fixed = min(feasible, key=lambda outcome: outcome.wire_messages)
    assert adaptive.p50_latency <= best_fixed.p50_latency
    assert adaptive.wire_messages < best_fixed.wire_messages

    # The telemetry tells the mechanism's story: hot pairs run tight
    # windows, trickle pairs wide ones, all inside the configured bounds.
    hot_windows = [info["window"] for pair, info in adaptive.flow_windows.items()
                   if pair.startswith("hot")]
    cold_windows = [info["window"] for pair, info in adaptive.flow_windows.items()
                    if pair.startswith("cold")]
    assert hot_windows and cold_windows
    assert max(hot_windows) < min(cold_windows)
    for window in hot_windows + cold_windows:
        assert ADAPTIVE["flow_window_min"] <= window <= ADAPTIVE["flow_window_max"]


# =============================================================================
# E13b — WAL write costs scale with payload bytes
# =============================================================================

#: per-byte write latency of the priced arm (a deliberately visible device)
BYTE_LATENCY = 0.000001
PAYLOADS = (1_024, 4_096, 16_384, 65_536)
N_FOLDERS = 8


def wal_flush_cost(payload_bytes: int, byte_latency: float) -> float:
    """Simulated cost of flushing N folders of *payload_bytes* each."""
    kernel = Kernel(lan(["a", "b"]), transport="tcp",
                    config=KernelConfig(rng_seed=3,
                                        durability="wal-group-commit",
                                        store_write_byte_latency=byte_latency))
    kernel.make_durable("m", sites=["a"])
    cabinet = kernel.site("a").cabinet("m")
    for index in range(N_FOLDERS):
        cabinet.put(f"folder-{index}", b"\0" * payload_bytes)
    cost = kernel.store("a").flush()
    kernel.run()
    assert kernel.stats.wal_bytes_committed >= N_FOLDERS * payload_bytes
    return cost


@pytest.fixture(scope="module")
def wal_byte_sweep(smoke):
    payloads = PAYLOADS[:2] + PAYLOADS[-1:] if smoke else PAYLOADS
    return {
        payload: {
            "priced": wal_flush_cost(payload, BYTE_LATENCY),
            "flat": wal_flush_cost(payload, 0.0),
        }
        for payload in payloads
    }


def test_e13b_wal_cost_scales_with_payload_bytes(wal_byte_sweep, emit_report):
    report = Report("E13b", f"WAL group-commit cost vs payload bytes "
                            f"({N_FOLDERS} folders per flush, byte term "
                            f"{BYTE_LATENCY:g} s/B vs ablated to 0)")
    table = report.table(
        "bytes-proportional vs flat per-record pricing",
        ["payload B/folder", "priced flush s", "flat flush s"])
    for payload, costs in sorted(wal_byte_sweep.items()):
        table.add_row(payload, round(costs["priced"], 5), round(costs["flat"], 5))
    emit_report(report)

    payloads = sorted(wal_byte_sweep)
    priced = [wal_byte_sweep[payload]["priced"] for payload in payloads]
    flat = [wal_byte_sweep[payload]["flat"] for payload in payloads]
    # The priced arm grows strictly with payload bytes...
    assert all(earlier < later for earlier, later in zip(priced, priced[1:]))
    # ...roughly proportionally once the byte term dominates...
    span = payloads[-1] / payloads[0]
    assert priced[-1] / priced[0] > span / 4
    # ...while the ablated arm does not care about bytes at all.
    assert max(flat) == pytest.approx(min(flat))
    assert all(p > f for p, f in zip(priced, flat))


# =============================================================================
# E13c — checkpoint barriers piggyback on the group commit (E12 FT sweep)
# =============================================================================

SITES = [f"n{i}" for i in range(8)]
HOME, DELIVERY = SITES[0], SITES[-1]
ITINERARY = SITES[1:]
PER_HOP = 0.5
WORK_SECONDS = 0.25
MAX_RELAUNCHES = 4
STAGGER = 0.05
COMMIT_WINDOW = 0.05
CRASH_WINDOW = (1.2, 1.4)
RECOVER_AFTER = 6.0
HORIZON = 100.0


def _checkpoint_waits(kernel: Kernel) -> List[float]:
    """Per-hop checkpoint barrier waits logged by the ft visitor."""
    waits = []
    for _at, _agent, _site, message in kernel.event_log:
        if message.startswith("ckpt-wait "):
            waits.append(float(message.rsplit("waited=", 1)[1]))
    return waits


def run_ft_point(piggyback: bool, crash_probability: float, seed: int,
                 n_computations: int) -> Dict[str, float]:
    config = KernelConfig(rng_seed=seed, durability="wal-group-commit",
                          store_commit_window=COMMIT_WINDOW,
                          store_barrier_piggyback=piggyback)
    kernel = Kernel(lan(SITES), transport="tcp", config=config)
    for index, name in enumerate(SITES):
        kernel.site(name).cabinet("data").put("VALUE", index)
    ids = [launch_ft_computation(kernel, HOME, ITINERARY,
                                 ft_id=f"e13c-{seed}-{index:03d}",
                                 per_hop=PER_HOP, max_relaunches=MAX_RELAUNCHES,
                                 work_seconds=WORK_SECONDS,
                                 delay=STAGGER * index,
                                 durable_checkpoints=True)
           for index in range(n_computations)]
    if crash_probability > 0:
        RandomCrasher(crash_probability, window=CRASH_WINDOW,
                      recover_after=RECOVER_AFTER, protect=[HOME, DELIVERY],
                      seed=seed).install(kernel)
    kernel.run(until=HORIZON)

    counts = [len(completions(kernel, DELIVERY, ft_id)) for ft_id in ids]
    waits = _checkpoint_waits(kernel)
    completion_times = [record["completed_at"]
                        for record in completions(kernel, DELIVERY)]
    summary = kernel.store_summary()
    return {
        "attempted": n_computations,
        "completed": sum(1 for count in counts if count >= 1),
        "duplicates": sum(max(0, count - 1) for count in counts),
        "ckpt_waits": len(waits),
        "mean_ckpt_wait": (sum(waits) / len(waits)) if waits else 0.0,
        "max_ckpt_wait": max(waits) if waits else 0.0,
        "finished_at": max(completion_times) if completion_times else 0.0,
        "piggybacks": summary["wal_barrier_piggybacks"],
        "durable_lost": summary["durable_folders_lost"],
        "recoveries": summary["recoveries"],
    }


def _e13c_population(smoke: bool):
    """(computations per point, seeds, crash probabilities)."""
    if smoke:
        return 4, (11,), (0.0, 1.0)
    return 8, (11, 29), (0.0, 1.0)


def _sweep_arm(piggyback: bool, probability: float, seeds, n_computations):
    totals: Dict[str, float] = {}
    wait_sum, wait_count = 0.0, 0
    for seed in seeds:
        outcome = run_ft_point(piggyback, probability, seed, n_computations)
        wait_sum += outcome["mean_ckpt_wait"] * outcome["ckpt_waits"]
        wait_count += outcome["ckpt_waits"]
        for key in ("attempted", "completed", "duplicates", "ckpt_waits",
                    "piggybacks", "durable_lost", "recoveries"):
            totals[key] = totals.get(key, 0) + outcome[key]
        totals["finished_at"] = max(totals.get("finished_at", 0.0),
                                    outcome["finished_at"])
    totals["mean_ckpt_wait"] = wait_sum / wait_count if wait_count else 0.0
    return totals


@pytest.fixture(scope="module")
def barrier_sweep(smoke):
    n_computations, seeds, probabilities = _e13c_population(smoke)
    return {probability: {
                "window-wait": _sweep_arm(False, probability, seeds, n_computations),
                "piggyback": _sweep_arm(True, probability, seeds, n_computations)}
            for probability in probabilities}


def test_e13c_barrier_piggyback_cuts_checkpoint_latency(barrier_sweep, smoke,
                                                        emit_report):
    n_computations, seeds, probabilities = _e13c_population(smoke)
    report = Report("E13c", "checkpoint barriers piggybacking on the group "
                            f"commit ({n_computations * len(seeds)} durable FT "
                            f"computations per point, commit window "
                            f"{COMMIT_WINDOW}s, E12 crash schedule)")
    table = report.table(
        "per-hop checkpoint barrier latency, piggyback on vs off",
        ["crash prob", "barrier", "completed", "mean ckpt wait s",
         "ckpt barriers", "piggybacks", "recoveries", "durable lost",
         "finished at s"])
    for probability, arms in sorted(barrier_sweep.items()):
        for label in ("window-wait", "piggyback"):
            outcome = arms[label]
            table.add_row(probability, label,
                          f"{outcome['completed']}/{outcome['attempted']}",
                          round(outcome["mean_ckpt_wait"], 4),
                          outcome["ckpt_waits"], outcome["piggybacks"],
                          outcome["recoveries"], outcome["durable_lost"],
                          round(outcome["finished_at"], 2))
    reductions = {
        probability: arms["window-wait"]["mean_ckpt_wait"]
        / max(arms["piggyback"]["mean_ckpt_wait"], 1e-9)
        for probability, arms in barrier_sweep.items()}
    table.add_note("mean checkpoint-wait reduction (window-wait/piggyback): "
                   + ", ".join(f"p={probability}: {reduction:.1f}x"
                               for probability, reduction
                               in sorted(reductions.items())))
    emit_report(report)

    for probability, arms in barrier_sweep.items():
        waiting, piggybacked = arms["window-wait"], arms["piggyback"]
        print(f"E13C-SUMMARY | p={probability} | "
              f"window-wait: {waiting['completed']}/{waiting['attempted']} done, "
              f"mean ckpt wait {waiting['mean_ckpt_wait']:.4f}s | "
              f"piggyback: {piggybacked['completed']}/{piggybacked['attempted']} "
              f"done, mean ckpt wait {piggybacked['mean_ckpt_wait']:.4f}s, "
              f"{piggybacked['piggybacks']} piggybacked commits, "
              f"{piggybacked['durable_lost']} durable folders lost")

    for probability, arms in barrier_sweep.items():
        waiting, piggybacked = arms["window-wait"], arms["piggyback"]
        # Durability guarantees are untouched: everything completes exactly
        # once, and committed state is never lost — in either arm.
        for outcome in (waiting, piggybacked):
            assert outcome["completed"] == outcome["attempted"], probability
            assert outcome["duplicates"] == 0, probability
            assert outcome["durable_lost"] == 0, probability
            assert outcome["ckpt_waits"] > 0, probability
        # The mechanism genuinely fired (and only in the piggyback arm)...
        assert piggybacked["piggybacks"] > 0, probability
        assert waiting["piggybacks"] == 0, probability
        # ...and per-hop checkpoint latency strictly dropped.
        assert piggybacked["mean_ckpt_wait"] < waiting["mean_ckpt_wait"], \
            probability
