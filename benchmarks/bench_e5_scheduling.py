"""E5 — Broker scheduling distributes requests by load and capacity (paper section 4).

Claim: "Brokers are expected to communicate among themselves and with the
service providers, so that requests can be distributed amongst service
providers based on load and capacity."

The experiment runs the same client stream against heterogeneous providers
under each assignment policy and reports the per-site job counts, how close
the split is to capacity-proportional, and the makespan.  A second table
(E5b) measures how quickly load information spreads between brokers through
gossip — the paper's "equivalent to routing in a wide-area network" remark.
"""

from __future__ import annotations

import pytest

from repro.bench import Report, coefficient_of_variation, jains_fairness
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import lan
from repro.scheduling import (BROKER_CABINET, CLIENT_BEHAVIOUR_NAME, POLICY_NAMES,
                              broker_state, install_scheduling, make_broker_behaviour,
                              make_gossip_behaviour, make_monitor_behaviour)
from repro.scheduling.routing import gossip_convergence

PROVIDERS = [
    {"site": "fast", "capacity": 4.0},
    {"site": "medium", "capacity": 2.0},
    {"site": "slow", "capacity": 1.0},
]
CAPACITIES = {spec["site"]: spec["capacity"] for spec in PROVIDERS}
N_CLIENTS = 30


def run_policy(policy: str, seed: int = 55):
    sites = ["home", "brokerage", "fast", "medium", "slow"]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=seed))
    deployment = install_scheduling(kernel, ["brokerage"], PROVIDERS, policy=policy,
                                    monitor_interval=0.25, monitor_rounds=20,
                                    work_seconds=0.1)
    kernel.run(until=0.5)
    for index in range(N_CLIENTS):
        briefcase = Briefcase()
        briefcase.set("HOME", "home")
        briefcase.set("BROKER_SITE", "brokerage")
        briefcase.set("SERVICE", "compute")
        briefcase.set("CLIENT", f"client-{index:02d}")
        kernel.launch("home", CLIENT_BEHAVIOUR_NAME, briefcase, delay=0.5 + index * 0.04)
    kernel.run()

    jobs = deployment.provider_job_counts()
    outcomes = deployment.client_outcomes(["home"])
    served = [outcome for outcome in outcomes if outcome["status"] == "served"]
    total_capacity = sum(CAPACITIES.values())
    # How far the split is from capacity-proportional (lower = better).
    proportional_error = sum(
        abs(jobs.get(site, 0) / max(1, sum(jobs.values())) - capacity / total_capacity)
        for site, capacity in CAPACITIES.items()) / len(CAPACITIES)
    return {
        "policy": policy,
        "jobs": jobs,
        "served": len(served),
        "fairness": jains_fairness(list(jobs.values())),
        "proportional_error": proportional_error,
        "makespan": max((outcome["completed_at"] for outcome in served), default=0.0),
        "cov": coefficient_of_variation(list(jobs.values())),
    }


def run_gossip_convergence(gossip_interval: float, seed: int = 9):
    """How stale broker 2's view of the world is, for a given gossip cadence."""
    sites = ["b1", "b2", "s1", "s2", "s3"]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=seed))
    for broker_site in ("b1", "b2"):
        kernel.install_agent(broker_site, "broker", make_broker_behaviour(), replace=True)
    # Monitors report only to b1; b2 learns through gossip.
    for worker in ("s1", "s2", "s3"):
        kernel.launch(worker, make_monitor_behaviour(["b1"], interval=0.5, rounds=10))
    kernel.launch("b1", make_gossip_behaviour(["b2"], interval=gossip_interval, rounds=10))
    kernel.run(until=6.0)
    states = {name: broker_state(kernel.site(name).cabinet(BROKER_CABINET))
              for name in ("b1", "b2")}
    convergence = gossip_convergence(states)
    staleness = [value for key, value in convergence.items() if key != "__coverage__"]
    return {
        "interval": gossip_interval,
        "coverage": convergence["__coverage__"],
        "worst_staleness": max(staleness) if staleness else float("inf"),
        "messages": kernel.stats.messages_sent,
    }


@pytest.fixture(scope="module")
def policy_rows():
    return [run_policy(policy) for policy in POLICY_NAMES]


@pytest.fixture(scope="module")
def gossip_rows():
    return [run_gossip_convergence(interval) for interval in (0.5, 1.0, 2.0)]


def test_e5_policy_table(benchmark, policy_rows, emit_report):
    report = Report("E5", f"broker scheduling of {N_CLIENTS} mobile clients over "
                          "providers with capacity 4/2/1")
    table = report.table(
        "assignment policy comparison",
        ["policy", "fast", "medium", "slow", "served", "capacity-prop error",
         "makespan s"])
    for row in policy_rows:
        table.add_row(row["policy"], row["jobs"].get("fast", 0),
                      row["jobs"].get("medium", 0), row["jobs"].get("slow", 0),
                      row["served"], round(row["proportional_error"], 3),
                      round(row["makespan"], 2))
    table.add_note("capacity-prop error: mean |share - capacity share|; lower is better")
    emit_report(report)

    by_policy = {row["policy"]: row for row in policy_rows}
    # Everyone gets served under every policy.
    assert all(row["served"] == N_CLIENTS for row in policy_rows)
    # The load/capacity-aware policy tracks capacity better than blind round-robin
    # and finishes no later.
    assert by_policy["least-loaded"]["proportional_error"] < \
        by_policy["round-robin"]["proportional_error"]
    assert by_policy["least-loaded"]["makespan"] <= \
        by_policy["round-robin"]["makespan"] + 1e-6
    # Load-oblivious policies push real work onto the slow site.
    assert by_policy["round-robin"]["jobs"]["slow"] > \
        by_policy["least-loaded"]["jobs"]["slow"]

    benchmark.pedantic(run_policy, args=("least-loaded",), rounds=1, iterations=1)


def test_e5b_gossip_convergence(benchmark, gossip_rows, emit_report):
    report = Report("E5b", "broker-to-broker gossip: how fresh is the second broker's "
                           "load table?")
    table = report.table("gossip cadence sweep (monitors report only to broker 1)",
                         ["gossip interval s", "coverage", "worst staleness s",
                          "messages"])
    for row in gossip_rows:
        table.add_row(row["interval"], round(row["coverage"], 2),
                      round(row["worst_staleness"], 2), row["messages"])
    table.add_note("coverage 1.0 = broker 2 knows about every monitored site; "
                   "staleness = age spread of the newest report per site across brokers")
    emit_report(report)

    assert all(row["coverage"] == 1.0 for row in gossip_rows)
    # Faster gossip costs more messages.
    messages = [row["messages"] for row in gossip_rows]
    assert messages == sorted(messages, reverse=True)

    benchmark.pedantic(run_gossip_convergence, args=(1.0,), rounds=1, iterations=1)
