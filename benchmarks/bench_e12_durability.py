"""E12 — Durability cost vs recovery win (the repro.store subsystem).

The paper says cabinets "can be flushed to disk when permanence is
required" (section 6); before `repro.store`, permanence was free and fake —
crashes killed agents while every in-memory cabinet silently survived.
This experiment prices permanence honestly and measures what it buys:

* **E12a (durability overhead)** — the same rear-guard-protected itinerary
  workload with no failures, swept over the durability policies.  Durable
  policies must cost strictly more simulated time than ``none`` (group
  commits, fsyncs, checkpoint barriers) — a non-zero, quantified price.
* **E12b (crash sweep: policy × crash rate)** — E6-style random crash
  schedules with recovery.  Under ``none``, a coordinated loss (agent host
  plus every trailing guard site down together) kills the computation; the
  only recovery is re-running the whole itinerary from the origin, which
  the harness does — that is the baseline's re-execution bill.  Under
  ``wal-group-commit``, durable checkpoints revive guards at recovered
  sites, so computations resume from the last durable checkpoint:
  strictly fewer re-executed hops, zero durable folders lost, at the cost
  of recovery delays and the E12a overhead.

Run with ``--smoke`` for a tiny-population CI sanity pass.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.bench import Report
from repro.core import Kernel, KernelConfig
from repro.fault import completions, launch_ft_computation
from repro.net import RandomCrasher, lan

SITES = [f"n{i}" for i in range(8)]
HOME, DELIVERY = SITES[0], SITES[-1]
INTERMEDIATE = SITES[1:-1]
ITINERARY = list(INTERMEDIATE) + [DELIVERY]
#: distinct hops a computation must execute (seq 0 at home + itinerary)
NEEDED_HOPS = len(ITINERARY) + 1

POLICIES = ("none", "flush-on-demand", "wal-group-commit")
PER_HOP = 0.5
WORK_SECONDS = 0.25
MAX_RELAUNCHES = 4
STAGGER = 0.05
COMMIT_WINDOW = 0.05
#: crashes land in a tight window — a correlated outage (power dip, rack
#: failure) while the computations are mid-itinerary, which is exactly the
#: coordinated loss plain rear guards cannot cover
CRASH_WINDOW = (1.2, 1.4)
RECOVER_AFTER = 6.0
FIRST_HORIZON = 40.0
RESTART_ROUNDS = 3


def _population(smoke: bool):
    """(computations per point, seeds, crash probabilities)."""
    if smoke:
        return 4, (11,), (1.0,)
    return 8, (11, 29), (0.9, 1.0)


def build_kernel(policy: str, seed: int) -> Kernel:
    config = KernelConfig(rng_seed=seed, durability=policy,
                          store_commit_window=COMMIT_WINDOW)
    kernel = Kernel(lan(SITES), transport="tcp", config=config)
    for index, name in enumerate(SITES):
        kernel.site(name).cabinet("data").put("VALUE", index)
    return kernel


def _base_of(ft_id: str) -> str:
    return ft_id.split("/retry-")[0]


def _family_completions(kernel: Kernel, base: str) -> List[dict]:
    return [record for record in completions(kernel, DELIVERY)
            if _base_of(str(record.get("ft_id"))) == base]


def _re_executed_hops(kernel: Kernel, bases: List[str]) -> int:
    """Hop executions beyond the first execution of each distinct hop.

    Counted per *logical* computation (origin-restart retries fold into
    their base id): every ``hop-exec`` event past the first for a given
    hop number is work the system had to redo.
    """
    per_base: Dict[str, List[int]] = {base: [] for base in bases}
    for _at, _agent, _site, message in kernel.event_log:
        if not message.startswith("hop-exec "):
            continue
        _tag, ft_id, seq_part = message.split(" ")
        base = _base_of(ft_id)
        if base in per_base:
            per_base[base].append(int(seq_part.split("=")[1]))
    return sum(max(0, len(seqs) - len(set(seqs))) for seqs in per_base.values())


def run_point(policy: str, crash_probability: float, seed: int,
              n_computations: int) -> Dict[str, float]:
    """One (policy, crash rate, seed) cell of the sweep."""
    kernel = build_kernel(policy, seed)
    bases = [f"e12-{seed}-{index:03d}" for index in range(n_computations)]
    for index, base in enumerate(bases):
        launch_ft_computation(kernel, HOME, ITINERARY, ft_id=base,
                              per_hop=PER_HOP, max_relaunches=MAX_RELAUNCHES,
                              work_seconds=WORK_SECONDS, delay=STAGGER * index,
                              durable_checkpoints=(policy != "none"))
    if crash_probability > 0:
        RandomCrasher(crash_probability, window=CRASH_WINDOW,
                      recover_after=RECOVER_AFTER, protect=[HOME, DELIVERY],
                      seed=seed).install(kernel)
    kernel.run(until=FIRST_HORIZON)

    restarts = 0
    if policy == "none":
        # Without durable state the only recovery is to re-run lost
        # computations end to end from the origin (fresh attempt ids: no
        # durable memory of the first attempt exists to resume from).
        for round_number in range(1, RESTART_ROUNDS + 1):
            incomplete = [base for base in bases
                          if not _family_completions(kernel, base)]
            if not incomplete:
                break
            for base in incomplete:
                launch_ft_computation(
                    kernel, HOME, ITINERARY, ft_id=f"{base}/retry-{round_number}",
                    per_hop=PER_HOP, max_relaunches=MAX_RELAUNCHES,
                    work_seconds=WORK_SECONDS)
                restarts += 1
            kernel.run(until=FIRST_HORIZON + 20.0 * round_number)
    else:
        # Durable policies recover through checkpoint revival at site
        # recovery time; give them the same total horizon, no restarts.
        kernel.run(until=FIRST_HORIZON + 20.0 * RESTART_ROUNDS)

    families = {base: _family_completions(kernel, base) for base in bases}
    completed = sum(1 for records in families.values() if records)
    duplicates = sum(max(0, len(records) - 1) for records in families.values())
    completion_times = [record["completed_at"] for records in families.values()
                        for record in records]
    summary = kernel.store_summary()
    return {
        "attempted": n_computations,
        "completed": completed,
        "duplicates": duplicates,
        "restarts": restarts,
        "re_executed": _re_executed_hops(kernel, bases),
        "messages": kernel.stats.messages_sent,
        "sim_time": max(completion_times) if completion_times else float("inf"),
        "recoveries": summary["recoveries"],
        "recovery_seconds": summary["recovery_seconds"],
        "wal_commits": summary["wal_commits"],
        "state_lost_folders": summary["state_lost_folders"],
        "durable_folders_lost": summary["durable_folders_lost"],
    }


def sweep_point(policy: str, crash_probability: float, smoke: bool) -> Dict[str, float]:
    n_computations, seeds, _ = _population(smoke)
    totals: Dict[str, float] = {}
    for seed in seeds:
        outcome = run_point(policy, crash_probability, seed, n_computations)
        for key, value in outcome.items():
            if key == "sim_time":
                totals[key] = max(totals.get(key, 0.0), value)
            else:
                totals[key] = totals.get(key, 0) + value
    return totals


# =============================================================================
# E12a — the price of permanence (no failures)
# =============================================================================

@pytest.fixture(scope="module")
def overhead_sweep(smoke):
    return {policy: sweep_point(policy, 0.0, smoke) for policy in POLICIES}


def test_e12a_durability_overhead(overhead_sweep, smoke, emit_report):
    n_computations, seeds, _ = _population(smoke)
    report = Report("E12a", "durability overhead with no failures "
                            f"({n_computations * len(seeds)} computations per "
                            f"policy, {len(ITINERARY)}-hop itinerary, "
                            f"commit window={COMMIT_WINDOW}s)")
    table = report.table(
        "policy sweep: what permanence costs when nothing crashes",
        ["policy", "completed", "sim s to finish", "wire msgs", "wal commits",
         "re-exec hops"])
    for policy in POLICIES:
        outcome = overhead_sweep[policy]
        table.add_row(policy, f"{outcome['completed']}/{outcome['attempted']}",
                      round(outcome["sim_time"], 3), outcome["messages"],
                      outcome["wal_commits"], outcome["re_executed"])
    baseline = overhead_sweep["none"]["sim_time"]
    table.add_note("overhead vs none: " + ", ".join(
        f"{policy}: +{overhead_sweep[policy]['sim_time'] - baseline:.3f}s"
        for policy in POLICIES if policy != "none"))
    emit_report(report)

    for policy in POLICIES:
        outcome = overhead_sweep[policy]
        assert outcome["completed"] == outcome["attempted"], policy
        assert outcome["duplicates"] == 0, policy
    # The price is real and non-zero: every durable policy pays simulated
    # time over the free-permanence baseline.
    for policy in ("flush-on-demand", "wal-group-commit"):
        assert overhead_sweep[policy]["sim_time"] > baseline, policy
    # ...because durable state actually moved through the WAL.
    assert overhead_sweep["wal-group-commit"]["wal_commits"] > 0
    assert overhead_sweep["flush-on-demand"]["wal_commits"] > 0


# =============================================================================
# E12b — crash sweep: policy × crash rate
# =============================================================================

@pytest.fixture(scope="module")
def crash_sweep(smoke):
    _, _, probabilities = _population(smoke)
    return {probability: {policy: sweep_point(policy, probability, smoke)
                          for policy in ("none", "wal-group-commit")}
            for probability in probabilities}


def test_e12b_checkpoints_beat_origin_restarts(crash_sweep, smoke, emit_report):
    n_computations, seeds, probabilities = _population(smoke)
    report = Report("E12b", "crash sweep: durable checkpoints vs origin restarts "
                            f"({n_computations * len(seeds)} computations per "
                            f"point, crash window {CRASH_WINDOW}, "
                            f"recover after {RECOVER_AFTER}s)")
    table = report.table(
        "E6-style crash schedules, policy x crash rate",
        ["crash prob", "policy", "completed", "restarts", "re-exec hops",
         "wire msgs", "recoveries", "recovery s", "state-lost folders",
         "durable lost"])
    for probability in probabilities:
        for policy in ("none", "wal-group-commit"):
            outcome = crash_sweep[probability][policy]
            table.add_row(probability, policy,
                          f"{outcome['completed']}/{outcome['attempted']}",
                          outcome["restarts"], outcome["re_executed"],
                          outcome["messages"], outcome["recoveries"],
                          round(outcome["recovery_seconds"], 3),
                          outcome["state_lost_folders"],
                          outcome["durable_folders_lost"])
    table.add_note("none recovers lost computations by re-running the whole "
                   "itinerary from the origin; wal-group-commit revives rear "
                   "guards from durable checkpoints at site recovery")
    emit_report(report)

    # One-line summary for the CI workflow log.
    for probability in probabilities:
        none_arm = crash_sweep[probability]["none"]
        wal_arm = crash_sweep[probability]["wal-group-commit"]
        print(f"E12-SUMMARY | p={probability} | "
              f"none: {none_arm['completed']}/{none_arm['attempted']} done, "
              f"{none_arm['restarts']} origin restarts, "
              f"{none_arm['re_executed']} re-exec hops | "
              f"wal-group-commit: {wal_arm['completed']}/{wal_arm['attempted']} "
              f"done, {wal_arm['re_executed']} re-exec hops, "
              f"{wal_arm['recoveries']} recoveries "
              f"({wal_arm['recovery_seconds']:.2f}s), "
              f"{wal_arm['durable_folders_lost']} durable folders lost")

    for probability in probabilities:
        none_arm = crash_sweep[probability]["none"]
        wal_arm = crash_sweep[probability]["wal-group-commit"]
        # The baseline really needed origin restarts (the comparison is
        # about something real)...
        assert none_arm["restarts"] > 0, probability
        # ...and both strategies eventually complete everything.
        assert none_arm["completed"] == none_arm["attempted"], probability
        assert wal_arm["completed"] == wal_arm["attempted"], probability
        assert wal_arm["duplicates"] == 0, probability
        # The recovery win: resuming from durable checkpoints re-executes
        # strictly fewer hops than re-running itineraries from the origin.
        assert wal_arm["re_executed"] < none_arm["re_executed"], probability
        # The durability ledger is honest: crashes visibly lost volatile
        # state, recoveries took simulated time, and no durable folder was
        # ever lost.
        assert wal_arm["state_lost_folders"] > 0, probability
        assert wal_arm["recoveries"] > 0, probability
        assert wal_arm["recovery_seconds"] > 0, probability
        assert wal_arm["durable_folders_lost"] == 0, probability
