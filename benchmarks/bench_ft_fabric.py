"""E11 — Rear guards on the adaptive delivery fabric.

The fault-tolerance machinery of section 5 only pays off if the protection
traffic itself does not dominate the wire.  PR 2 batched courier folders and
monitor reports; this experiment measures the two follow-ups:

* **E11a (guards on the fabric)** — the E6 failure schedules re-run with
  rear-guard traffic (``ft-release`` notices, ``ft-relaunch`` snapshot
  shipments) riding the per-destination outboxes.  The protected
  computations must complete at least as often as with un-batched guards —
  fault tolerance is untouched — while sending measurably fewer wire
  messages.
* **E11b (adaptive flush on a hot pair)** — one site bursts folders at one
  destination under a deliberately long flush window.  A pure-window fabric
  sits on the full batch until the timer fires; the size-threshold early
  flush ships the moment the batch is full, draining the pair in a fraction
  of the simulated time.

Run with ``--smoke`` for a tiny-population CI sanity pass (the pipelines
and their invariants execute; the numbers are not representative).
"""

from __future__ import annotations

import pytest

from repro.bench import Report, ratio
from repro.bench.workloads import CourierFanInParams, run_courier_fan_in
from repro.core import Kernel, KernelConfig
from repro.fault import completions, launch_ft_computation
from repro.net import RandomCrasher, lan

SITES = [f"n{i}" for i in range(8)]
HOME, DELIVERY = SITES[0], SITES[-1]
INTERMEDIATE = SITES[1:-1]
CRASH_PROBABILITIES = (0.0, 0.5)

#: fabric configuration the guarded computations ride in the batched arm
FABRIC_WINDOW = 0.15
FABRIC_MAX_MESSAGES = 8
FABRIC_DEADLINE = 0.6

#: hot-pair configuration: a long window that the size threshold beats
HOT_WINDOW = 2.0


def _population(smoke: bool):
    """(computations per point, seeds) — tiny under --smoke."""
    return (3, (11,)) if smoke else (10, (11, 29))


# =============================================================================
# E11a — the E6 failure schedules with guards on / off the fabric
# =============================================================================

def run_ft_round(batched: bool, crash_probability: float, seed: int,
                 n_computations: int):
    """One protected-computation round; guards ride the fabric when *batched*."""
    config = KernelConfig(
        rng_seed=seed,
        delivery_batch_window=FABRIC_WINDOW if batched else 0.0,
        delivery_batch_max_messages=FABRIC_MAX_MESSAGES if batched else 0,
        delivery_batch_deadline=FABRIC_DEADLINE if batched else 0.0,
    )
    kernel = Kernel(lan(SITES), transport="tcp", config=config)
    for index, name in enumerate(SITES):
        kernel.site(name).cabinet("data").put("VALUE", index)
    # Every computation walks the same itinerary, staggered: the trailing
    # release notices of consecutive computations then flow between the
    # same (source, destination) pairs and can coalesce.
    itinerary = list(INTERMEDIATE) + [DELIVERY]
    ids = [launch_ft_computation(kernel, HOME, itinerary, per_hop=0.5,
                                 max_relaunches=4, work_seconds=0.25,
                                 delay=0.05 * index)
           for index in range(n_computations)]
    RandomCrasher(crash_probability, window=(0.2, 2.0), recover_after=60.0,
                  protect=[HOME, DELIVERY], seed=seed).install(kernel)
    kernel.run(until=500.0)

    counts = [len(completions(kernel, DELIVERY, ft_id)) for ft_id in ids]
    return {
        "completed": sum(1 for count in counts if count >= 1),
        "duplicates": sum(max(0, count - 1) for count in counts),
        "messages": kernel.stats.messages_sent,
        "batches": kernel.stats.batches,
        "coalesced": kernel.stats.batched_messages,
        "early_flushes": kernel.stats.early_flushes,
    }


def sweep_point(batched: bool, crash_probability: float, smoke: bool):
    n_computations, seeds = _population(smoke)
    totals = {"completed": 0, "duplicates": 0, "messages": 0, "batches": 0,
              "coalesced": 0, "early_flushes": 0}
    for seed in seeds:
        outcome = run_ft_round(batched, crash_probability, seed, n_computations)
        for key in totals:
            totals[key] += outcome[key]
    totals["attempted"] = n_computations * len(seeds)
    return totals


@pytest.fixture(scope="module")
def ft_sweep(smoke):
    rows = {}
    for probability in CRASH_PROBABILITIES:
        rows[probability] = {
            "unbatched": sweep_point(False, probability, smoke),
            "fabric": sweep_point(True, probability, smoke),
        }
    return rows


def test_e11a_guards_on_the_fabric(ft_sweep, smoke, emit_report):
    n_computations, seeds = _population(smoke)
    report = Report("E11a", "rear guards on the delivery fabric vs un-batched "
                            f"({n_computations * len(seeds)} computations per point, "
                            f"{len(INTERMEDIATE) + 1}-hop shared itinerary, "
                            f"window={FABRIC_WINDOW}s, "
                            f"max={FABRIC_MAX_MESSAGES} msgs, "
                            f"deadline={FABRIC_DEADLINE}s)")
    table = report.table(
        "E6 failure schedules, guard traffic batched vs not",
        ["crash prob", "guards", "completed", "duplicates", "wire msgs",
         "batches", "coalesced", "early flushes"])
    for probability, row in sorted(ft_sweep.items()):
        for label in ("unbatched", "fabric"):
            outcome = row[label]
            table.add_row(probability, label,
                          f"{outcome['completed']}/{outcome['attempted']}",
                          outcome["duplicates"], outcome["messages"],
                          outcome["batches"], outcome["coalesced"],
                          outcome["early_flushes"])
    reductions = {probability: ratio(row["unbatched"]["messages"],
                                     max(1, row["fabric"]["messages"]))
                  for probability, row in ft_sweep.items()}
    table.add_note("message reduction (unbatched/fabric): " +
                   ", ".join(f"{probability}: {reduction:.2f}x"
                             for probability, reduction in sorted(reductions.items())))
    table.add_note("home and delivery sites never crash (the computation's "
                   "anchor points), matching E6")
    emit_report(report)

    for probability, row in ft_sweep.items():
        unbatched, fabric = row["unbatched"], row["fabric"]
        # Fault tolerance is untouched by batching: every protected
        # computation still completes, exactly once.
        assert fabric["completed"] >= unbatched["completed"], probability
        assert fabric["completed"] == fabric["attempted"], probability
        assert fabric["duplicates"] == 0, probability
        # The protection traffic genuinely rode the fabric...
        assert fabric["batches"] > 0, probability
        assert fabric["coalesced"] > 0, probability
        # ...and the wire carried measurably fewer messages.
        assert fabric["messages"] < unbatched["messages"], probability


# =============================================================================
# E11b — size-threshold early flush vs pure window on a hot pair
# =============================================================================

@pytest.fixture(scope="module")
def hot_pair(smoke):
    deliveries, threshold = (20, 10) if smoke else (60, 30)
    base = dict(n_senders=1, deliveries_per_sender=deliveries,
                batch_window=HOT_WINDOW, serialize_setup=True, transport="rsh")
    pure = run_courier_fan_in(CourierFanInParams(**base))
    adaptive = run_courier_fan_in(CourierFanInParams(
        batch_max_messages=threshold, **base))
    return pure, adaptive, deliveries


def test_e11b_size_threshold_beats_pure_window_on_hot_pair(hot_pair, emit_report):
    pure, adaptive, deliveries = hot_pair
    report = Report("E11b", f"hot (source,destination) pair: {deliveries} folders "
                            f"under a {HOT_WINDOW}s window")
    table = report.table(
        "pure window vs size-threshold early flush",
        ["fabric", "wire msgs", "batches", "early flushes", "sim s to drain",
         "folders recv"])
    table.add_row("pure window", pure.wire_messages, pure.batches,
                  pure.early_flushes, round(pure.sim_seconds, 3),
                  pure.folders_received)
    table.add_row("size threshold", adaptive.wire_messages, adaptive.batches,
                  adaptive.early_flushes, round(adaptive.sim_seconds, 3),
                  adaptive.folders_received)
    table.add_note(f"drain speedup {pure.sim_seconds / adaptive.sim_seconds:.1f}x: "
                   "a full batch ships the moment it fills instead of waiting "
                   "out the window")
    emit_report(report)

    # Nothing is lost either way.
    assert pure.folders_received == adaptive.folders_received == deliveries
    # The thresholds actually fired...
    assert adaptive.early_flushes > 0
    assert pure.early_flushes == 0
    # ...and the hot pair drains in measurably fewer simulated seconds.
    assert adaptive.sim_seconds < pure.sim_seconds
