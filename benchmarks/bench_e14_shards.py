"""E14 — Sharded multi-kernel simulation (repro.shard).

The paper's TACOMA ran its agent system across many independent Unix
hosts; ``KernelConfig(shards=N)`` reproduces that structure inside the
simulator: sites partition across N shard engines, each with its own
event loop and transport, advanced in conservative clock-sync rounds with
cross-shard folders handed over by the mail router.  Two claims:

* **Scaling** — on a 200-site churn workload with cross-shard courier
  traffic, aggregate event throughput under the parallel-host model
  (total events over the *slowest shard's* busy wall-time, coordination
  overhead excluded and reported separately) grows near-linearly, and is
  at least 3x at 8 shards vs 1.
* **Equivalence** — sharding is a performance structure, not a semantic
  one: ``shards=1`` matches the unsharded kernel's counters exactly, and
  every shard count completes the same agents with identical counters
  and zero late arrivals (the sync is purely conservative by default).

Run with ``--smoke`` for the CI sanity pass (tiny population, the 3x
scaling floor is not asserted — wall-clock ratios are noise at that size).
"""

from __future__ import annotations

from typing import Dict, Optional

import pytest

from repro.bench import Report
from repro.bench.workloads import ShardedChurnParams, run_sharded_churn

#: sharded arms of the sweep (the unsharded baseline runs separately)
SHARD_COUNTS = (1, 2, 4, 8)
#: full-mode scaling floor: 8 shards must deliver at least this speedup
SCALING_FLOOR = 3.0

FULL = dict(n_sites=200, n_agents=2_000, wave_size=500)
SMOKE = dict(n_sites=40, n_agents=200, wave_size=50)


def _population(smoke: bool) -> Dict[str, int]:
    return dict(SMOKE if smoke else FULL)


def _shard_counts(smoke: bool):
    return (1, 4) if smoke else SHARD_COUNTS


@pytest.fixture(scope="module")
def shard_sweep(smoke):
    """Unsharded baseline plus one run per shard count, same seed/workload."""
    base = _population(smoke)
    arms: Dict[Optional[int], object] = {
        None: run_sharded_churn(ShardedChurnParams(**base))}
    for shards in _shard_counts(smoke):
        arms[shards] = run_sharded_churn(
            ShardedChurnParams(shards=shards, **base))
    return arms


def test_e14_sharded_scaling_and_equivalence(shard_sweep, smoke, emit_report):
    population = _population(smoke)
    baseline = shard_sweep[1]
    report = Report("E14", "sharded multi-kernel scaling "
                           f"({population['n_sites']} sites, "
                           f"{population['n_agents']} couriers in waves of "
                           f"{population['wave_size']}, conservative clock "
                           "sync, throughput = events / slowest shard's busy "
                           "wall-time)")
    table = report.table(
        "churn with cross-shard couriers: throughput vs shard count",
        ["shards", "completed", "events", "handoffs", "late", "rounds",
         "max busy s", "total busy s", "sync s", "events/busy s", "speedup"])
    for shards, outcome in sorted(shard_sweep.items(),
                                  key=lambda item: (item[0] is not None,
                                                    item[0] or 0)):
        table.add_row("unsharded" if shards is None else shards,
                      f"{outcome.agents_completed}/{outcome.agents_launched}",
                      outcome.events, outcome.handoffs, outcome.late_arrivals,
                      outcome.rounds, round(outcome.busy_seconds, 4),
                      round(outcome.total_busy_seconds, 4),
                      round(outcome.sync_seconds, 4),
                      round(outcome.throughput),
                      round(outcome.throughput / baseline.throughput, 2))
    table.add_note("shards model parallel hosts: the busy denominator is the "
                   "slowest shard's event-execution wall-time; clock-sync "
                   "coordination is the separate 'sync s' column")
    table.add_note("identical counters in every row: sharding changes where "
                   "events run, never what happens")
    emit_report(report)

    speedup = shard_sweep[max(_shard_counts(smoke))].throughput \
        / baseline.throughput
    print(f"E14-SUMMARY | sites={population['n_sites']} "
          f"agents={population['n_agents']} | "
          f"speedup@{max(_shard_counts(smoke))}shards={speedup:.2f}x | "
          f"late_arrivals={sum(o.late_arrivals for o in shard_sweep.values())} "
          f"| counters_equal="
          f"{all(o.counters == baseline.counters for o in shard_sweep.values())}")

    unsharded = shard_sweep[None]
    # shards=1 IS the classic kernel: counters match the unsharded baseline
    # exactly, bit for bit.
    assert baseline.counters == unsharded.counters
    assert baseline.events == unsharded.events
    assert baseline.sim_seconds == unsharded.sim_seconds
    for shards, outcome in shard_sweep.items():
        # Every arm finishes everything it launched, drops nothing, and —
        # with the default purely-conservative sync — never clamps an
        # arrival into a shard's past.
        assert outcome.agents_completed == outcome.agents_launched, shards
        assert outcome.late_arrivals == 0, shards
        # Semantics are shard-invariant: same ledger and traffic counters.
        assert outcome.counters == baseline.counters, shards
    for shards in _shard_counts(smoke):
        if shards > 1:
            # The workload genuinely crosses shard boundaries.
            assert shard_sweep[shards].handoffs > 0, shards
    if not smoke:
        assert speedup >= SCALING_FLOOR, (
            f"8-shard speedup {speedup:.2f}x under the {SCALING_FLOOR}x floor")


def test_e14_timed_sharded_churn(benchmark, smoke):
    """pytest-benchmark guard on the sharded pipeline's simulation cost."""
    base = _population(True)  # always the small population: this is a timer
    outcome = benchmark(lambda: run_sharded_churn(
        ShardedChurnParams(shards=4, **base)))
    assert outcome.agents_completed == outcome.agents_launched
