"""E2 — Site-local folders bound the flooding agent population (paper section 2).

Claim: a flooding agent that clones at every neighbour grows "without
bound"; recording visits in a site-local folder lets clones terminate, so
the diffusion agent covers the network with a bounded population.

The experiment floods random connected topologies of increasing size with
both variants and reports coverage and the number of agent transfers.  The
expected shape: diffusion's transfers grow roughly with the number of
edges, the naive flood's transfers grow exponentially with its TTL (and it
still may not cover everything).
"""

from __future__ import annotations

import pytest

from repro.bench import Report
from repro.core import Briefcase, Kernel, KernelConfig
from repro.net import random_topology
from repro.sysagents.diffusion import DIFFUSION_CABINET

SIZES = (8, 16, 32)
NAIVE_TTLS = (2, 3, 4)


def run_diffusion(n_sites: int, seed: int = 5):
    topo = random_topology(n_sites, edge_probability=0.25, seed=seed)
    kernel = Kernel(topo, transport="tcp", config=KernelConfig(rng_seed=seed))
    briefcase = Briefcase()
    briefcase.set("PAYLOAD", "wave")
    kernel.launch(topo.sites()[0], "diffusion", briefcase)
    kernel.run()
    covered = sum(1 for name in kernel.site_names()
                  if kernel.site(name).cabinet(DIFFUSION_CABINET).get("PAYLOAD") == "wave")
    return {"covered": covered, "sites": n_sites,
            "transfers": kernel.stats.migrations,
            "bytes": kernel.stats.bytes_sent,
            "duration": kernel.now}


def run_naive(n_sites: int, ttl: int, seed: int = 5):
    topo = random_topology(n_sites, edge_probability=0.25, seed=seed)
    kernel = Kernel(topo, transport="tcp", config=KernelConfig(rng_seed=seed))
    briefcase = Briefcase()
    briefcase.set("PAYLOAD", "wave")
    briefcase.set("TTL", ttl)
    kernel.launch(topo.sites()[0], "naive_flood", briefcase)
    kernel.run(max_events=200_000)
    covered = sum(1 for name in kernel.site_names()
                  if kernel.site(name).cabinet(DIFFUSION_CABINET).get("PAYLOAD") == "wave")
    return {"covered": covered, "sites": n_sites, "ttl": ttl,
            "transfers": kernel.stats.migrations,
            "bytes": kernel.stats.bytes_sent}


@pytest.fixture(scope="module")
def diffusion_rows():
    return {size: run_diffusion(size) for size in SIZES}


@pytest.fixture(scope="module")
def naive_rows():
    return {ttl: run_naive(12, ttl) for ttl in NAIVE_TTLS}


def test_e2_diffusion_scaling(benchmark, diffusion_rows, emit_report):
    report = Report("E2", "diffusion with site-local visit records: full coverage, "
                          "bounded population")
    table = report.table("diffusion over random topologies (p=0.25)",
                         ["sites", "covered", "agent transfers", "transfers per site",
                          "bytes"])
    for size, row in sorted(diffusion_rows.items()):
        table.add_row(size, row["covered"], row["transfers"],
                      round(row["transfers"] / size, 2), row["bytes"])
    table.add_note("coverage is total in every run; transfers grow near-linearly in sites")
    emit_report(report)

    for size, row in diffusion_rows.items():
        assert row["covered"] == size
        assert row["transfers"] <= size * size

    benchmark.pedantic(run_diffusion, args=(16,), rounds=1, iterations=1)


def test_e2_naive_flood_explosion(benchmark, naive_rows, diffusion_rows, emit_report):
    report = Report("E2b", "naive flooding without visit records (12 sites)")
    table = report.table("clone population vs TTL",
                         ["ttl", "covered (of 12)", "agent transfers"])
    for ttl, row in sorted(naive_rows.items()):
        table.add_row(ttl, row["covered"], row["transfers"])
    diffusion_12 = run_diffusion(12)
    table.add_note(f"diffusion covers 12/12 with {diffusion_12['transfers']} transfers; "
                   "the naive flood needs exponentially more transfers as TTL grows")
    emit_report(report)

    transfers = [naive_rows[ttl]["transfers"] for ttl in sorted(naive_rows)]
    assert transfers == sorted(transfers)
    # Super-linear growth between successive TTLs.
    assert transfers[-1] - transfers[-2] > transfers[-2] - transfers[-3]
    # And even the largest TTL run spends more transfers than diffusion.
    assert transfers[-1] > diffusion_12["transfers"]

    benchmark.pedantic(run_naive, args=(12, 3), rounds=1, iterations=1)
