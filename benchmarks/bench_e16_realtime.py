"""E16 — Wall-clock execution backend (repro.rt).

Every experiment so far ran on simulated time; the paper's system ran on
real Unix hosts.  E16 races the courier fan-in workload on both sides of
the :mod:`repro.core.timing` seam — ``KernelConfig(backend="sim")`` and
``backend="realtime"`` (:class:`repro.rt.AsyncioScheduler`) — and makes
two claims:

* **Logical parity** — the realtime run completes end-to-end with the
  same logical outcomes as the sim run: every folder delivered, equal
  wire-message and delivery counts, identical lifecycle/ledger counters,
  zero undeliverable messages.  Only the *times* differ (wall-derived,
  not replayable).
* **Hardware honesty** — the table reports real events/second for both
  backends.  The sim row's wall time is pure compute (it fast-forwards
  the gaps between events), so its events/sec measure the simulator's
  own speed; the realtime row actually sleeps the scheduled latencies
  out, so its wall time ~ the workload's horizon and its events/sec is
  what this host genuinely sustains at the workload's real-time pace.
  The wall-clock bound asserted on the realtime arm keeps the CI step
  bounded.

Results land stamped (seed, git SHA, backend) in
``benchmarks/results/e16_realtime.json``.  Run with ``--smoke`` for the
CI sanity pass (tiny fan-in, a few real seconds).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.bench import Report, run_stamp
from repro.bench.workloads import CourierFanInParams, run_courier_fan_in

#: shared workload shape; tcp keeps per-delivery setup cheap so the
#: realtime arm's wall time stays dominated by link latencies, not sleeps
#: inflated by rsh forking costs
FULL = dict(n_senders=8, deliveries_per_sender=12, payload_bytes=128,
            transport="tcp", serialize_setup=False, link_latency=0.004)
SMOKE = dict(n_senders=3, deliveries_per_sender=4, payload_bytes=64,
             transport="tcp", serialize_setup=False, link_latency=0.002)

#: the realtime arm must finish well inside CI patience: its wall time is
#: the workload horizon (sub-second here) plus scheduler overhead
WALL_BOUND_SECONDS = 30.0


def _params(smoke: bool, backend: str) -> CourierFanInParams:
    return CourierFanInParams(backend=backend,
                              **(SMOKE if smoke else FULL))


@pytest.fixture(scope="module")
def fan_in_arms(smoke):
    """The same seeded fan-in on both backends."""
    return {backend: run_courier_fan_in(_params(smoke, backend))
            for backend in ("sim", "realtime")}


@pytest.mark.realtime
def test_e16_realtime_backend(fan_in_arms, smoke, emit_report, results_dir):
    sim, realtime = fan_in_arms["sim"], fan_in_arms["realtime"]
    population = SMOKE if smoke else FULL
    report = Report(
        "E16", "wall-clock execution backend (repro.rt): courier fan-in, "
        f"{population['n_senders']} senders x "
        f"{population['deliveries_per_sender']} deliveries into one hub "
        f"over {population['transport']}")
    table = report.table(
        "sim vs realtime on the same seeded fan-in",
        ["backend", "folders", "wire msgs", "events", "sim s", "wall s",
         "events/wall s"])
    for outcome in (sim, realtime):
        table.add_row(outcome.backend, outcome.folders_received,
                      outcome.wire_messages, outcome.events,
                      round(outcome.sim_seconds, 4),
                      round(outcome.wall_seconds, 4),
                      round(outcome.events / outcome.wall_seconds)
                      if outcome.wall_seconds > 0 else 0)
    table.add_note("sim wall time is pure compute (gaps between events are "
                   "skipped): its events/sec measure the simulator; the "
                   "realtime row really sleeps the latencies out, so its "
                   "events/sec is the host's honest real-time rate")
    table.add_note("logical outcomes (folders, wire messages, ledger "
                   "counters) are asserted identical across backends; "
                   "event *times* are wall-derived under realtime and not "
                   "replayable")
    emit_report(report)

    payload = {
        "experiment": "E16",
        "stamp": run_stamp(seed=_params(smoke, "sim").seed,
                           backend=["sim", "realtime"]),
        "smoke": smoke,
        "wall_bound_seconds": WALL_BOUND_SECONDS,
        "arms": [dataclasses.asdict(outcome)
                 for outcome in (sim, realtime)],
    }
    json_path = os.path.join(results_dir, "e16_realtime.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"E16 results JSON -> {json_path}")

    # --- logical parity: the tentpole claim --------------------------------
    expected = (population["n_senders"]
                * population["deliveries_per_sender"])
    for outcome in (sim, realtime):
        assert outcome.folders_received == expected, outcome.backend
        assert outcome.counters["undeliverable"] == 0, outcome.backend
    assert realtime.wire_messages == sim.wire_messages
    assert realtime.deliveries_requested == sim.deliveries_requested
    assert realtime.counters == sim.counters
    assert realtime.events == sim.events

    # --- wall-clock honesty ------------------------------------------------
    # The realtime arm really waited: its wall time covers (most of) the
    # sim horizon — while staying bounded for CI.
    assert realtime.wall_seconds >= 0.5 * sim.sim_seconds
    assert realtime.wall_seconds < WALL_BOUND_SECONDS

    sim_rate = sim.events / sim.wall_seconds if sim.wall_seconds > 0 else 0.0
    rt_rate = (realtime.events / realtime.wall_seconds
               if realtime.wall_seconds > 0 else 0.0)
    print(f"E16-SUMMARY | folders={realtime.folders_received}/{expected} "
          f"parity=ok | sim {sim_rate:.0f} ev/s (compute-bound) vs "
          f"realtime {rt_rate:.0f} ev/s (wall {realtime.wall_seconds:.3f}s "
          f"~ horizon {sim.sim_seconds:.3f}s)")
