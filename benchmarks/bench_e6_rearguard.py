"""E6 — Rear guards let computations survive site failures (paper section 5).

Claim: leaving a rear guard behind at each hop lets an itinerant
computation proceed "even though one or more of its agents is the victim of
a site failure", at the cost of extra agents and messages.

The experiment sweeps the per-site crash probability and compares the
protected agent against the unprotected baseline on: completion rate,
duplicate completions (must be zero), and message overhead.  Expected
shape: the baseline's completion rate decays quickly with the crash
probability; the rear-guard agent stays at 100% (origin and delivery sites
are protected from crashes, as in the paper's model where the home of the
computation survives), paying a message overhead that grows with the
failure rate (more relaunches).
"""

from __future__ import annotations

import pytest

from repro.bench import Report, ratio
from repro.core import Kernel, KernelConfig
from repro.fault import completions, launch_ft_computation, launch_plain_computation
from repro.net import RandomCrasher, lan

SITES = [f"n{i}" for i in range(8)]
HOME, DELIVERY = SITES[0], SITES[-1]
INTERMEDIATE = SITES[1:-1]
CRASH_PROBABILITIES = (0.0, 0.25, 0.5, 0.75)
N_COMPUTATIONS = 5
SEEDS = (11, 29)


def run_batch(protected: bool, crash_probability: float, seed: int):
    kernel = Kernel(lan(SITES), transport="tcp", config=KernelConfig(rng_seed=seed))
    for index, name in enumerate(SITES):
        kernel.site(name).cabinet("data").put("VALUE", index)
    ids = []
    for index in range(N_COMPUTATIONS):
        rotation = index % len(INTERMEDIATE)
        itinerary = INTERMEDIATE[rotation:] + INTERMEDIATE[:rotation] + [DELIVERY]
        if protected:
            ids.append(launch_ft_computation(kernel, HOME, itinerary, per_hop=0.5,
                                             max_relaunches=4, work_seconds=0.25,
                                             delay=0.05 * index))
        else:
            ids.append(launch_plain_computation(kernel, HOME, itinerary,
                                                work_seconds=0.25, delay=0.05 * index))
    RandomCrasher(crash_probability, window=(0.2, 2.0), recover_after=60.0,
                  protect=[HOME, DELIVERY], seed=seed).install(kernel)
    kernel.run(until=500.0)

    counts = [len(completions(kernel, DELIVERY, ft_id)) for ft_id in ids]
    return {
        "completed": sum(1 for count in counts if count >= 1),
        "duplicates": sum(max(0, count - 1) for count in counts),
        "messages": kernel.stats.messages_sent,
        "migrations": kernel.stats.migrations,
    }


def sweep_point(protected: bool, crash_probability: float):
    totals = {"completed": 0, "duplicates": 0, "messages": 0, "migrations": 0}
    for seed in SEEDS:
        outcome = run_batch(protected, crash_probability, seed)
        for key in totals:
            totals[key] += outcome[key]
    totals["attempted"] = N_COMPUTATIONS * len(SEEDS)
    return totals


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    for probability in CRASH_PROBABILITIES:
        rows[probability] = {
            "protected": sweep_point(True, probability),
            "plain": sweep_point(False, probability),
        }
    return rows


def test_e6_completion_rate_table(benchmark, sweep, emit_report):
    report = Report("E6", "rear guards vs site crashes "
                          f"({N_COMPUTATIONS * len(SEEDS)} computations per point, "
                          "7-hop itineraries)")
    table = report.table(
        "completion under increasing crash probability",
        ["crash prob", "plain completed", "guarded completed", "guarded duplicates",
         "message overhead x"])
    for probability, row in sorted(sweep.items()):
        plain, protected = row["plain"], row["protected"]
        table.add_row(probability,
                      f"{plain['completed']}/{plain['attempted']}",
                      f"{protected['completed']}/{protected['attempted']}",
                      protected["duplicates"],
                      round(ratio(protected["messages"], max(1, plain["messages"])), 2))
    table.add_note("overhead = guarded messages / plain messages at the same crash rate; "
                   "home and delivery sites never crash (the computation's anchor points)")
    emit_report(report)

    for probability, row in sweep.items():
        protected = row["protected"]
        # The headline: every protected computation completes, exactly once.
        assert protected["completed"] == protected["attempted"], probability
        assert protected["duplicates"] == 0
    # The unprotected baseline degrades as crashes become likely.
    assert sweep[0.75]["plain"]["completed"] < sweep[0.0]["plain"]["completed"]
    # Fault tolerance is not free: guards cost messages even without failures.
    assert sweep[0.0]["protected"]["messages"] > sweep[0.0]["plain"]["messages"]

    benchmark.pedantic(run_batch, args=(True, 0.5, 11), rounds=1, iterations=1)


def test_e6_overhead_is_bounded_without_failures(benchmark, sweep, emit_report):
    """Ablation: what do the guards cost when nothing ever fails?"""
    no_failure = sweep[0.0]
    report = Report("E6b", "rear-guard overhead in the failure-free case")
    table = report.table("failure-free cost", ["variant", "messages", "migrations"])
    table.add_row("plain", no_failure["plain"]["messages"],
                  no_failure["plain"]["migrations"])
    table.add_row("rear-guarded", no_failure["protected"]["messages"],
                  no_failure["protected"]["migrations"])
    emit_report(report)

    overhead = ratio(no_failure["protected"]["messages"],
                     max(1, no_failure["plain"]["messages"]))
    # Releases + occasional spurious relaunches: noticeable but bounded.
    assert 1.0 < overhead < 6.0

    benchmark.pedantic(run_batch, args=(False, 0.5, 11), rounds=1, iterations=1)
