"""E8 — The applications: StormCast and agent mail (paper section 6).

Claim: the agent metaphor is evaluated "to construct a variety of
distributed applications": StormCast (storm prediction from distributed
sensors) and an interactive mail system whose messages are agents.

Tables: (a) end-to-end StormCast — mobile pipeline vs client-server on
bytes, forecast latency and agreement, with and without a sensor-site
failure; (b) mail delivery under increasing site failure rates, showing
store-and-forward letters still arriving after recovery.
"""

from __future__ import annotations

import pytest

from repro.apps.mail import MailSystem
from repro.apps.stormcast import StormCastParams, run_agent_pipeline, run_client_server
from repro.bench import Report, bytes_human, ratio
from repro.net import FailureSchedule, RandomCrasher

STORM_PARAMS = StormCastParams(n_sensors=8, samples_per_site=200, storm_rate=0.03,
                               raw_payload_bytes=1024, seed=42)
FAILED_SENSOR = "sensor03"


def storm_with_failure(mode: str):
    params = StormCastParams(n_sensors=8, samples_per_site=200, storm_rate=0.03,
                             raw_payload_bytes=1024, seed=42,
                             failures=FailureSchedule().crash(FAILED_SENSOR, at=0.0)
                             .recover(FAILED_SENSOR, at=300.0))
    return run_agent_pipeline(params) if mode == "agent" else run_client_server(params)


def run_mail_round(crash_probability: float, seed: int = 3, letters: int = 12):
    sites = [f"office{i}" for i in range(6)]
    # The long-running mail deployment defaults to keep-results retention:
    # outcomes are read from mailbox cabinets, never from terminal agents.
    mail = MailSystem.build(sites, seed=seed)
    kernel = mail.kernel
    RandomCrasher(crash_probability, window=(0.0, 2.0), recover_after=5.0,
                  protect=[sites[0]], seed=seed).install(kernel)
    import random as _random
    rng = _random.Random(seed)
    for index in range(letters):
        source, target = rng.sample(sites, 2)
        mail.send(f"user{index}", source, "peer", target, f"letter-{index}", "body",
                  retry_interval=0.5, max_retries=40, delay=0.1 * index)
    kernel.run(until=120.0)
    outcomes = mail.outcomes()
    delivered = sum(1 for outcome in outcomes if outcome["status"] == "delivered")
    gave_up = sum(1 for outcome in outcomes if outcome["status"] == "gave-up")
    retries = sum(1 for site in sites
                  for entry in mail.delivery_log(site) if entry["event"] == "retry")
    return {"crash_probability": crash_probability, "letters": letters,
            "delivered": delivered, "gave_up": gave_up, "retries": retries,
            "messages": kernel.stats.messages_sent}


@pytest.fixture(scope="module")
def storm_results():
    return {
        ("agent", "healthy"): run_agent_pipeline(STORM_PARAMS),
        ("server", "healthy"): run_client_server(STORM_PARAMS),
        ("agent", "one sensor down"): storm_with_failure("agent"),
        ("server", "one sensor down"): storm_with_failure("server"),
    }


@pytest.fixture(scope="module")
def mail_rows():
    return [run_mail_round(probability) for probability in (0.0, 0.3, 0.6)]


def test_e8_stormcast_table(benchmark, storm_results, emit_report):
    report = Report("E8", "StormCast end to end: mobile pipeline vs client-server "
                          f"({STORM_PARAMS.n_sensors} sensors x "
                          f"{STORM_PARAMS.samples_per_site} readings x "
                          f"{STORM_PARAMS.raw_payload_bytes} B)")
    table = report.table(
        "forecast runs",
        ["pipeline", "condition", "bytes on wire", "time to forecast s",
         "stations alerted", "sensors covered"])
    for (mode, condition), result in storm_results.items():
        table.add_row("mobile-agent" if mode == "agent" else "client-server", condition,
                      bytes_human(result.bytes_on_wire), round(result.duration, 2),
                      len(result.alert_stations()), result.sites_covered)
    healthy_ratio = ratio(storm_results[("server", "healthy")].bytes_on_wire,
                          storm_results[("agent", "healthy")].bytes_on_wire)
    table.add_note(f"bandwidth advantage of the mobile pipeline (healthy run): "
                   f"{healthy_ratio:.1f}x")
    emit_report(report)

    agent_healthy = storm_results[("agent", "healthy")]
    server_healthy = storm_results[("server", "healthy")]
    assert agent_healthy.alert_stations() == server_healthy.alert_stations()
    assert healthy_ratio > 10
    # With one sensor down, both pipelines degrade gracefully: they cover
    # one site fewer and still produce a forecast.
    assert storm_results[("agent", "one sensor down")].predictions
    assert storm_results[("server", "one sensor down")].sites_covered == \
        STORM_PARAMS.n_sensors - 1

    benchmark.pedantic(run_agent_pipeline, args=(STORM_PARAMS,), rounds=1, iterations=1)


def test_e8_mail_table(benchmark, mail_rows, emit_report):
    report = Report("E8b", "agent mail under site failures (12 letters between 6 offices)")
    table = report.table(
        "delivery vs per-site crash probability (crashed sites recover after 5 s)",
        ["crash prob", "delivered", "gave up", "store-and-forward retries", "messages"])
    for row in mail_rows:
        table.add_row(row["crash_probability"], f"{row['delivered']}/{row['letters']}",
                      row["gave_up"], row["retries"], row["messages"])
    table.add_note("letters to crashed sites wait at their stranded site and retry; "
                   "with recovery enabled nearly everything is eventually delivered")
    emit_report(report)

    assert mail_rows[0]["delivered"] == mail_rows[0]["letters"]
    # Failures cost retries, but store-and-forward keeps the majority of the
    # mail flowing (letters whose *sender* site is down at send time are the
    # ones that are lost — there is no agent to retry them).
    assert mail_rows[-1]["retries"] > mail_rows[0]["retries"]
    assert mail_rows[-1]["delivered"] >= mail_rows[-1]["letters"] // 2

    benchmark.pedantic(run_mail_round, args=(0.3,), rounds=1, iterations=1)
