"""E9 — Kernel hot paths at high agent populations (ROADMAP scaling goal).

Claim: per-site queries (``agents_at``, ``site_load``) must cost
O(residents at the site), not O(every agent ever launched), or any
workload that keeps placing work by load — the paper's monitor/broker
scheduling service, the E9 balancer below — goes quadratic in the number
of agents served.

Two measurements:

* **query cost vs. history** — a kernel with a fixed resident population
  is driven through ever more launch/finish history; the per-query cost
  of the indexed path stays flat while the brute-force ledger scan (the
  pre-index implementation, kept as ``Kernel._agents_at_scan`` for
  verification) grows linearly.  The acceptance gate asserts the indexed
  path is ≥5x faster at the 10k-agent point.
* **end-to-end throughput** — the 10k-agent / 20-site load-balancing
  scenario of :mod:`repro.bench.workloads` runs to completion on the
  indexed kernel; the pre-index wall time is modelled from the measured
  per-probe scan cost times the balancer's probe count.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import Report
from repro.bench.workloads import HighPopulationParams, execute_high_population
from repro.core import Kernel, KernelConfig
from repro.net import lan

N_SITES = 20
RESIDENTS = 50
HISTORY_POINTS = (0, 2_000, 10_000)
#: acceptance floor for indexed vs scan per-query speedup at the 10k point
REQUIRED_SPEEDUP = 5.0


def _sleeper(ctx, bc):
    yield ctx.sleep(1_000)


def _transient(ctx, bc):
    yield ctx.sleep(0.001)


def _populated_kernel(history: int):
    """A 20-site kernel with RESIDENTS live agents and *history* finished ones."""
    sites = [f"node{i:02d}" for i in range(N_SITES)]
    kernel = Kernel(lan(sites), transport="tcp", config=KernelConfig(rng_seed=3))
    for index in range(RESIDENTS):
        kernel.launch(sites[index % N_SITES], _sleeper)
    kernel.run(until=0.1)
    if history:
        kernel.launch_many([(sites[index % N_SITES], _transient)
                            for index in range(history)])
        kernel.run(until=5.0)
    assert kernel.completed == history
    return kernel, sites


def _time_per_query(query, sites, repetitions: int) -> float:
    """Mean microseconds per single-site query over *repetitions* sweeps."""
    start = time.perf_counter()
    for _ in range(repetitions):
        for name in sites:
            query(name)
    elapsed = time.perf_counter() - start
    return elapsed / (repetitions * len(sites)) * 1e6


@pytest.fixture(scope="module")
def query_cost_rows():
    rows = []
    for history in HISTORY_POINTS:
        kernel, sites = _populated_kernel(history)
        indexed_us = _time_per_query(kernel.site_load, sites, repetitions=500)
        scan_us = _time_per_query(
            lambda name: kernel.site(name).load_metric(
                len(kernel._agents_at_scan(name))),
            sites, repetitions=20)
        rows.append((history, kernel.launched, RESIDENTS, indexed_us, scan_us))
    return rows


def test_e9_query_cost_independent_of_history(query_cost_rows, emit_report):
    report = Report("E9", "per-site query cost: resident index vs ledger scan")
    table = report.table(
        f"site_load per query ({N_SITES} sites, {RESIDENTS} residents)",
        ["finished history", "total launched", "residents",
         "indexed us", "scan us", "speedup"])
    for history, launched, residents, indexed_us, scan_us in query_cost_rows:
        table.add_row(history, launched, residents, round(indexed_us, 3),
                      round(scan_us, 3), round(scan_us / indexed_us, 1))
    table.add_note("scan is the pre-index implementation "
                   "(kept as Kernel._agents_at_scan for verification)")
    emit_report(report)

    # The indexed path only sees residents: its cost must not track history.
    baseline = query_cost_rows[0][3]
    final = query_cost_rows[-1][3]
    assert final < baseline * 4, \
        f"indexed query cost grew with history: {baseline:.3f}us -> {final:.3f}us"
    # The scan pays for the full ledger and must be >= 5x slower at 10k.
    _, _, _, indexed_us, scan_us = query_cost_rows[-1]
    assert scan_us / indexed_us >= REQUIRED_SPEEDUP


def test_e9_high_population_throughput(benchmark, emit_report):
    params = HighPopulationParams(n_sites=N_SITES, n_agents=10_000, wave_size=500)
    start = time.perf_counter()
    kernel, result = execute_high_population(params)
    indexed_wall = time.perf_counter() - start

    assert result.agents_completed == result.agents_launched == params.n_agents
    # The balancer kept the placement even (the whole point of probing).
    assert result.placement_spread <= params.wave_size // params.n_sites * 2

    # Model the pre-index wall time: every balancer probe would have paid
    # the measured per-probe scan cost on this very kernel's final ledger.
    sites = params.site_names()
    scan_us = _time_per_query(
        lambda name: kernel.site(name).load_metric(
            len(kernel._agents_at_scan(name))),
        sites, repetitions=20)
    modelled_scan_wall = indexed_wall + result.load_queries * scan_us / 1e6

    report = Report("E9b", "10k-agent / 20-site load-balancing throughput")
    table = report.table("end-to-end run", ["kernel", "wall s", "agents/s"])
    table.add_row("indexed", round(indexed_wall, 2),
                  int(params.n_agents / indexed_wall))
    table.add_row("pre-index (modelled)", round(modelled_scan_wall, 2),
                  int(params.n_agents / modelled_scan_wall))
    table.add_note(f"{result.load_queries} load probes; modelled pre-index run "
                   f"charges each probe the measured {scan_us:.0f}us ledger scan")
    table.add_note(f"placement spread {result.placement_spread}, "
                   f"peak residents {result.peak_residents}, "
                   f"sim duration {result.sim_seconds:.2f}s")
    emit_report(report)

    assert modelled_scan_wall / indexed_wall >= REQUIRED_SPEEDUP

    # pytest-benchmark tracks a smaller configuration for regression history.
    benchmark(lambda: execute_high_population(
        HighPopulationParams(n_sites=10, n_agents=1_000, wave_size=200)))
