"""E17 — Observability overhead and trace reconstruction (repro.obs).

Two claims:

* **Overhead** — on the E15 churn workload (couriers doing local work and
  sending one folder to a far peer), the tracing layer costs

  - ~0% when guarded off: ``obs_enabled=False`` (the default) or
    ``obs_sample=0.0`` — every instrumentation point is one attribute
    read, and an unsampled trace never puts TRACE folders in the
    briefcase, so the whole downstream path is skipped;
  - <5% at a realistic sampling rate (``obs_sample=0.1``);
  - full tracing (``obs_sample=1.0``) is reported honestly — every
    courier's launch/run/delivery becomes spans, which is the price of a
    complete dump, not the recommended steady-state mode.

* **Reconstruction** — a single rear-guard FT itinerary's complete hop
  timeline (launch -> per-hop execution -> checkpoint barrier wait ->
  migration -> guard releases -> delivery) reconstructs from one JSONL
  file via :mod:`repro.obs.report`, and the span tree is identical under
  the inproc / thread (and, where available, process) shard backends.

Every number lands in ``benchmarks/results/e17_obs.json``; the FT trace
dump itself is kept as ``benchmarks/results/e17_trace.jsonl`` (the CI
artifact — feed it to ``python -m repro.obs.report`` to read the run).

Run with ``--smoke`` for the CI sanity pass (tiny populations; the
overhead bound is only loosely asserted there — sub-second runs measure
noise, not cost).
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

from repro.bench import Report, run_stamp
from repro.bench.workloads import ShardedChurnParams, run_sharded_churn
from repro.core.kernel import Kernel, KernelConfig
from repro.fault.ftmove import launch_ft_computation
from repro.net.topology import lan
from repro.obs.report import build_trees, hop_timeline, load_trace, trace_ids
from repro.shard import process_backend_available

FULL_BASE = dict(n_sites=100, n_agents=1_000, wave_size=250, shards=None)
SMOKE_BASE = dict(n_sites=20, n_agents=100, wave_size=50, shards=None)
REPEATS = 5

#: the asserted sampling rate — the recommended steady-state mode
SAMPLE_RATE = 0.1
#: overhead ceilings (fractions of the baseline wall time).  The "off2"
#: null control — the baseline configuration run a second time — measures
#: the host's wall-clock noise floor, and its deviation is added to both
#: ceilings: on a quiet host the strict bounds apply, on a noisy CI
#: container the run still distinguishes real cost from scheduler jitter.
GUARDED_CEILING = 0.02
SAMPLED_CEILING = 0.05
#: smoke populations finish in milliseconds, so only a catastrophic
#: regression is caught there; the real bounds run in the full pass
SMOKE_CEILING = 1.0

ARMS = (
    ("off", False, 1.0),
    ("off2", False, 1.0),
    ("guarded", True, 0.0),
    ("sampled", True, SAMPLE_RATE),
    ("full", True, 1.0),
)

FT_ITINERARY = ("alpha", "beta", "gamma", "delta")


@pytest.fixture(scope="module")
def overhead_arms(smoke) -> Dict[str, float]:
    """Best-of-N wall seconds per observability arm, identical workload."""
    base = dict(SMOKE_BASE if smoke else FULL_BASE)
    # One untimed warmup so the first arm does not absorb import and
    # allocator warmup that the later arms then appear to "win" against;
    # the repeats interleave the arms round-robin so a slow system period
    # degrades every arm equally instead of skewing one comparison.
    run_sharded_churn(ShardedChurnParams(**base))
    walls: Dict[str, float] = {}
    for _ in range(REPEATS):
        for name, enabled, sample in ARMS:
            outcome = run_sharded_churn(ShardedChurnParams(
                obs_enabled=enabled, obs_sample=sample, **base))
            assert outcome.agents_completed == outcome.agents_launched, name
            if name not in walls or outcome.wall_seconds < walls[name]:
                walls[name] = outcome.wall_seconds
    return walls


def _run_ft_trace(backend: str, path=None, durable_checkpoints=True):
    """One rear-guard itinerary under *backend*; returns its agent spans.

    ``durable_checkpoints`` subscribes ``on_site_added``, which cannot
    cross the process boundary — the backend-parity runs turn it off so
    the same itinerary can race all three backends.
    """
    config = KernelConfig(shards=2, shard_backend=backend, obs_enabled=True,
                          durability="wal-group-commit",
                          obs_path=path)
    kernel = Kernel(topology=lan(list(FT_ITINERARY)), config=config)
    launch_ft_computation(kernel, FT_ITINERARY[0], list(FT_ITINERARY[1:]),
                          ft_id="ft-e17",
                          durable_checkpoints=durable_checkpoints)
    kernel.run(until=120.0)
    spans = kernel.trace_spans()
    kernel.close()
    return spans


def test_e17_observability(overhead_arms, smoke, emit_report, results_dir):
    base = dict(SMOKE_BASE if smoke else FULL_BASE)
    off = overhead_arms["off"]
    overhead = {name: (wall / off - 1.0) if off > 0 else 0.0
                for name, wall in overhead_arms.items()}

    report = Report(
        "E17", "observability overhead + trace reconstruction "
        f"(churn arm: {base['n_sites']} sites x {base['n_agents']} couriers, "
        f"best of {REPEATS}; FT arm: {len(FT_ITINERARY)}-site rear-guard "
        "itinerary dumped to JSONL)")
    noise = abs(overhead["off2"])
    table = report.table(
        "tracing cost on the E15 churn workload",
        ["arm", "obs_enabled", "sample", "wall s", "overhead vs off"])
    for name, enabled, sample in ARMS:
        table.add_row(name, enabled, sample,
                      round(overhead_arms[name], 4),
                      f"{overhead[name]:+.1%}")
    table.add_note("'off2' is the null control: the baseline run twice — "
                   "its deviation is the host's wall-clock noise floor and "
                   "widens the asserted ceilings accordingly")
    table.add_note("'guarded' leaves tracing compiled in but samples "
                   "nothing: the hot-path guard is one attribute read and "
                   "unsampled traces never touch the briefcase")
    table.add_note(f"the asserted steady-state mode is sample={SAMPLE_RATE}; "
                   "full tracing is the price of a complete dump")

    # --- FT itinerary: dump, reconstruct, compare across backends ------------
    trace_path = os.path.join(results_dir, "e17_trace.jsonl")
    if os.path.exists(trace_path):
        os.remove(trace_path)
    spans = _run_ft_trace("inproc", path=trace_path)
    dumped = load_trace(trace_path)
    assert len(dumped) == len(spans), "JSONL dump lost spans"

    agent_traces = trace_ids(dumped)
    assert "ft-e17" in agent_traces
    rows = hop_timeline(dumped, "ft-e17")
    names = [row["name"] for row in rows]
    assert names[0] == "launch", "itinerary must start at the launch root"
    assert names.count("ft-hop") == len(FT_ITINERARY), \
        "one hop span per itinerary site"
    assert names.count("migration") == len(FT_ITINERARY) - 1, \
        "one migration leg between consecutive sites"
    assert "ft-ckpt" in names, "checkpoint barrier waits must be spanned"
    assert "ft-release" in names, "rear-guard releases must be spanned"
    last_hop = [row for row in rows if row["name"] == "ft-hop"][-1]
    assert last_hop["attrs"].get("status") == "delivered", \
        "the final hop must record delivery"
    # Infra pseudo-traces (WAL commits) ride the same file, separate ids.
    infra = [span for span in dumped if span["trace_id"].startswith("~")]
    assert any(span["name"] == "wal-commit" for span in infra), \
        "durable runs must record wal-commit spans"

    def tree_shapes(span_dicts):
        trees = build_trees(span for span in span_dicts
                            if not span["trace_id"].startswith("~"))
        return {tid: tuple(root.tree_shape() for root in roots)
                for tid, roots in trees.items()}

    backends = ["thread"]
    if not smoke and process_backend_available():
        backends.append("process")
    reference = tree_shapes(_run_ft_trace("inproc",
                                          durable_checkpoints=False))
    for backend in backends:
        shapes = tree_shapes(_run_ft_trace(backend,
                                           durable_checkpoints=False))
        assert shapes == reference, \
            f"span tree diverged on the {backend} backend"

    table2 = report.table(
        "FT itinerary reconstruction from one JSONL file",
        ["check", "value"])
    table2.add_row("spans dumped", len(dumped))
    table2.add_row("timeline rows (trace ft-e17)", len(rows))
    table2.add_row("hops / migrations / releases",
                   f"{names.count('ft-hop')} / {names.count('migration')} / "
                   f"{names.count('ft-release')}")
    table2.add_row("wal-commit infra spans",
                   sum(1 for span in infra if span["name"] == "wal-commit"))
    table2.add_row("identical span trees on", "inproc/" + "/".join(backends))
    emit_report(report)

    payload = {
        "experiment": "E17",
        "stamp": run_stamp(seed=ShardedChurnParams().seed,
                           sample=SAMPLE_RATE),
        "smoke": smoke,
        "walls": overhead_arms,
        "overhead": overhead,
        "trace_spans": len(dumped),
        "timeline_rows": len(rows),
        "backends_compared": ["inproc"] + backends,
    }
    json_path = os.path.join(results_dir, "e17_obs.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"E17 results JSON -> {json_path}")
    print(f"E17 trace JSONL  -> {trace_path}")

    guarded_bound = SMOKE_CEILING if smoke else GUARDED_CEILING + noise
    sampled_bound = SMOKE_CEILING if smoke else SAMPLED_CEILING + noise
    print(f"E17-SUMMARY | overhead guarded={overhead['guarded']:+.1%} "
          f"sampled@{SAMPLE_RATE}={overhead['sampled']:+.1%} "
          f"full={overhead['full']:+.1%} | noise-floor={noise:.1%} | "
          f"bounds guarded<{guarded_bound:.1%} "
          f"sampled<{sampled_bound:.1%} | spans={len(dumped)}")
    assert overhead["guarded"] < guarded_bound, (
        f"guarded-off tracing cost {overhead['guarded']:+.1%} "
        f"(bound {guarded_bound:.0%})")
    assert overhead["sampled"] < sampled_bound, (
        f"sampled tracing cost {overhead['sampled']:+.1%} "
        f"(bound {sampled_bound:.0%})")


def test_e17_timed_traced_churn(benchmark, smoke):
    """pytest-benchmark guard on the fully-traced churn pipeline."""
    outcome = benchmark(lambda: run_sharded_churn(ShardedChurnParams(
        obs_enabled=True, obs_sample=1.0, **SMOKE_BASE)))
    assert outcome.agents_completed == outcome.agents_launched
