"""E1 — Agents conserve network bandwidth vs. client-server (paper section 1).

Claim: "By structuring a system in terms of agents, applications can be
constructed in which communication-network bandwidth is conserved ...
there is rarely a need to transmit raw data from one site to another."

The experiment sweeps the query selectivity (fraction of records that are
relevant) and the raw record size, and reports the bytes each architecture
puts on the wire plus the agent's advantage factor.  The expected shape:
the mobile agent wins by a factor that grows with record size and shrinks
as selectivity approaches 1 (when everything is relevant there is nothing
to filter away, and carrying the accumulated results from site to site can
even make the agent the more expensive architecture — the crossover).
"""

from __future__ import annotations

import pytest

from repro.bench import DataGatherParams, Report, ratio, run_agent_gather, \
    run_client_server_gather

SELECTIVITIES = (0.01, 0.05, 0.2, 0.5, 1.0)
RECORD_BYTES = (128, 512, 2048)

#: the representative point timed by pytest-benchmark
REPRESENTATIVE = DataGatherParams(n_sites=8, records_per_site=100, record_bytes=512,
                                  selectivity=0.05, seed=13)


def _sweep():
    rows = []
    for record_bytes in RECORD_BYTES:
        for selectivity in SELECTIVITIES:
            params = DataGatherParams(n_sites=8, records_per_site=100,
                                      record_bytes=record_bytes,
                                      selectivity=selectivity, seed=13)
            agent = run_agent_gather(params)
            server = run_client_server_gather(params)
            rows.append((record_bytes, selectivity, agent, server))
    return rows


@pytest.fixture(scope="module")
def sweep_rows():
    return _sweep()


def test_e1_table(benchmark, sweep_rows, emit_report):
    """Regenerate the E1 table and time the representative agent run."""
    report = Report("E1", "bandwidth: mobile agent vs client-server data gathering "
                          "(8 sites x 100 records)")
    table = report.table(
        "bytes on the wire by architecture",
        ["record B", "selectivity", "agent bytes", "server bytes", "agent wins x",
         "same answer"])
    for record_bytes, selectivity, agent, server in sweep_rows:
        table.add_row(record_bytes, selectivity, agent.bytes_on_wire, server.bytes_on_wire,
                      round(ratio(server.bytes_on_wire, agent.bytes_on_wire), 1),
                      agent.relevant_found == server.relevant_found)
    table.add_note("agent wins x = server bytes / agent bytes; >1 means the agent "
                   "architecture moved fewer bytes")
    emit_report(report)

    # Shape assertions (the paper's qualitative claim): when only a small
    # fraction of the data is relevant, the agent wins clearly; the win is
    # largest at the lowest selectivity.
    low_selectivity = [row for row in sweep_rows if row[1] <= 0.05 and row[0] >= 512]
    assert all(ratio(server.bytes_on_wire, agent.bytes_on_wire) > 3
               for _, _, agent, server in low_selectivity)
    one_percent = [row for row in sweep_rows if row[1] == 0.01]
    assert all(ratio(server.bytes_on_wire, agent.bytes_on_wire) > 8
               for _, _, agent, server in one_percent)

    benchmark.pedantic(run_agent_gather, args=(REPRESENTATIVE,), rounds=1, iterations=1)


def test_e1_crossover_with_full_selectivity(benchmark, sweep_rows, emit_report):
    """At selectivity 1.0 the agent's advantage collapses (the crossover)."""
    report = Report("E1b", "bandwidth crossover as selectivity approaches 1")
    table = report.table("advantage factor vs selectivity (record size 512 B)",
                         ["selectivity", "agent wins x"])
    factors = {}
    for record_bytes, selectivity, agent, server in sweep_rows:
        if record_bytes == 512:
            factor = ratio(server.bytes_on_wire, agent.bytes_on_wire)
            factors[selectivity] = factor
            table.add_row(selectivity, round(factor, 2))
    emit_report(report)

    assert factors[0.01] > factors[0.5] > factors[1.0]
    assert factors[1.0] < 2.0

    benchmark.pedantic(
        run_client_server_gather, args=(REPRESENTATIVE,), rounds=1, iterations=1)
