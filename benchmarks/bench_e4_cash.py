"""E4 — Electronic cash: validation foils double spending; audits assign blame
(paper section 3).

Claim: "An attempt by an agent to spend retired or copied ECUs will be
foiled if a validation agent is always consulted before any service is
rendered", and disputes are settled by audits over signed records instead
of transactions.

The experiment runs marketplaces with increasing fractions of cheating
shoppers and reports: services delivered to honest vs cheating customers,
double-spend attempts caught, money-supply conservation, and the auditor's
verdicts.  Expected shape: honest shoppers always get served, cheats never
do, the money supply never changes, and audits blame exactly the cheats.
"""

from __future__ import annotations

import pytest

from repro.bench import Report
from repro.cash import (Auditor, AuditRecord, KeyDirectory, Mint, VALIDATION_AGENT_NAME,
                        Wallet, identity_for, make_validation_behaviour,
                        make_vendor_behaviour, shopper_behaviour)
from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.net import lan

PRICE = 10
CHEAT_MIXES = (0.0, 0.25, 0.5)
SHOPPERS = 12


def run_marketplace(cheat_fraction: float, seed: int = 31):
    kernel = Kernel(lan(["home", "market"]), transport="tcp",
                    config=KernelConfig(rng_seed=seed))
    mint = Mint(seed=seed)
    directory = KeyDirectory()
    register_behaviour("shopper", shopper_behaviour, replace=True)
    kernel.install_agent("market", VALIDATION_AGENT_NAME,
                         make_validation_behaviour(mint), replace=True)
    kernel.install_agent("market", "vendor",
                         make_vendor_behaviour(price=PRICE,
                                               signer=directory.new_signer("vendor")),
                         replace=True)

    n_cheats = int(round(SHOPPERS * cheat_fraction))
    cheats = (["double_spend", "claim_paid"] * SHOPPERS)[:n_cheats]
    honest_funding = 0
    for index in range(SHOPPERS):
        name = f"shopper-{index:02d}"
        cheat = cheats[index] if index < len(cheats) else None
        signer = directory.new_signer(name)
        briefcase = Briefcase()
        briefcase.set("HOME", "home")
        briefcase.set("VENDOR_SITE", "market")
        briefcase.set("VENDOR_NAME", "vendor")
        briefcase.set("PRICE", PRICE)
        briefcase.set("EXCHANGE_ID", f"exchange-{name}")
        briefcase.set("IDENTITY", identity_for(signer))
        if cheat == "double_spend":
            spent = mint.issue_many([PRICE])
            for ecu in spent:
                mint.retire_and_reissue(ecu)
            copies = briefcase.folder("SPENT_COPIES", create=True)
            for ecu in spent:
                copies.push(ecu.to_wire())
        elif cheat == "claim_paid":
            briefcase.set("CHEAT", cheat)
        else:
            Wallet(briefcase).deposit(mint.issue_many([5, 5, 5]))
            honest_funding += 15
        if cheat:
            briefcase.set("CHEAT", cheat)
        kernel.launch("home", "shopper", briefcase, name=name, delay=0.01 * index)

    supply_before = mint.outstanding_value()
    kernel.run(until=120.0)

    outcomes = kernel.site("home").cabinet("purchases").elements("outcomes")
    served_honest = sum(1 for outcome in outcomes
                        if outcome["got_service"] and not outcome.get("cheat"))
    served_cheats = sum(1 for outcome in outcomes
                        if outcome["got_service"] and outcome.get("cheat"))

    # Audit every cheating exchange.
    auditor = Auditor(directory)
    records = [AuditRecord.from_wire(record) for record in
               kernel.site("home").cabinet("purchases").elements("audit")]
    witnesses = kernel.site("market").cabinet("audit").elements("witness")
    guilty_found = 0
    audited = 0
    for outcome in outcomes:
        if not outcome.get("cheat"):
            continue
        audited += 1
        finding = auditor.audit(outcome["exchange_id"], records,
                                witness_records=witnesses, expected_price=PRICE)
        shopper_name = outcome["exchange_id"].replace("exchange-", "")
        if (not finding.clean and shopper_name in finding.guilty) or \
                outcome.get("cheat") == "double_spend":
            # Double spending is already foiled upstream by validation; the
            # audit trail may legitimately be empty for it.
            guilty_found += 1

    return {
        "cheat_fraction": cheat_fraction,
        "outcomes": len(outcomes),
        "served_honest": served_honest,
        "served_cheats": served_cheats,
        "double_spends_caught": mint.double_spend_attempts,
        "supply_before": supply_before,
        "supply_after": mint.outstanding_value(),
        "validations": mint.validated_count,
        "cheats_audited": audited,
        "cheats_blamed": guilty_found,
    }


@pytest.fixture(scope="module")
def marketplace_rows():
    return [run_marketplace(mix) for mix in CHEAT_MIXES]


def test_e4_cheating_mix_table(benchmark, marketplace_rows, emit_report):
    report = Report("E4", "electronic cash: validation vs cheats, audits vs disputes "
                          f"({SHOPPERS} shoppers, price {PRICE})")
    table = report.table(
        "marketplace under increasing cheat fractions",
        ["cheat fraction", "honest served", "cheats served", "double spends caught",
         "supply drift", "cheats blamed / audited"])
    for row in marketplace_rows:
        table.add_row(row["cheat_fraction"], row["served_honest"], row["served_cheats"],
                      row["double_spends_caught"],
                      row["supply_after"] - row["supply_before"],
                      f"{row['cheats_blamed']}/{row['cheats_audited']}")
    table.add_note("supply drift 0 = no money created or destroyed anywhere in the run")
    emit_report(report)

    for row in marketplace_rows:
        n_cheats = int(round(SHOPPERS * row["cheat_fraction"]))
        assert row["served_cheats"] == 0
        assert row["served_honest"] == SHOPPERS - n_cheats
        assert row["supply_after"] == row["supply_before"]
        assert row["cheats_blamed"] == row["cheats_audited"]

    benchmark.pedantic(run_marketplace, args=(0.25,), rounds=1, iterations=1)


def test_e4_validation_throughput(benchmark):
    """Microbenchmark: mint-side cost of one validate-and-reissue cycle."""
    mint = Mint(seed=1)
    coins = iter(mint.issue_many([1] * 50_000))

    def one_cycle():
        mint.retire_and_reissue(next(coins))

    benchmark(one_cycle)
    assert mint.double_spend_attempts == 0
