"""Shared fixtures for the experiment benchmarks.

Every benchmark module regenerates one experiment of EXPERIMENTS.md: it
builds the experiment's table(s) once per session (the sweep is the
expensive part), prints them (visible with ``-s``), saves them under
``benchmarks/results/``, and lets pytest-benchmark time one representative
configuration per pipeline so regressions in simulation cost show up.
"""

from __future__ import annotations

import os

import pytest

#: where rendered experiment tables are written
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run benchmarks with tiny populations (CI sanity run: the "
             "pipelines and their invariants execute, the numbers are not "
             "representative)")


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "realtime: runs the wall-clock backend (real sleeps; selected in "
        "the CI realtime smoke step with -m realtime)")


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """True when the benchmark session runs in --smoke (tiny population) mode."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory the experiment reports are saved into."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit_report(results_dir):
    """Print a Report and persist it under benchmarks/results/."""

    def _emit(report) -> str:
        report.print()
        return report.save(results_dir)

    return _emit
