"""E10 — Lifecycle ledger retention + the batched delivery fabric.

Two claims, matching the ROADMAP kernel-scaling follow-ups:

* **E10a (retention)** — under churn, the flat ``keep-all`` ledger retains a
  full :class:`AgentInstance` (briefcase, spec, generator bookkeeping) for
  every agent ever launched.  The lifecycle table's ``keep-results`` policy
  archives terminal agents into compact records: the number of full
  instances retained stays flat at the live population while ``result_of``
  keeps working for every launched agent; ``keep-counts`` additionally
  bounds the ledger itself.  Measured over a 50k-agent churn workload with
  per-agent briefcase ballast, with ``tracemalloc`` confirming the memory
  ratio.
* **E10b (batching)** — the courier used to pay one wire message (one
  header, one transport setup) per delivered folder.  With the
  per-destination outbox enabled, a 10k-courier fan-in coalesces each
  site's folders per flush window into one batched message: ≥3x fewer wire
  messages (in practice far more) and measurably less simulated time under
  the source-serialized setup cost model (one rsh fork at a time per site —
  the serial cost a batch pays once instead of N times).
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest

from repro.bench import Report
from repro.bench.workloads import (AgentChurnParams, CourierFanInParams,
                                   execute_agent_churn, run_courier_fan_in)

# -- E10a configuration -------------------------------------------------------

CHURN_AGENTS = 50_000
CHURN_WAVE = 2_500
KEEP_COUNTS_BOUND = 2_000
RETENTIONS = ("keep-all", "keep-results", f"keep-counts:{KEEP_COUNTS_BOUND}")

# -- E10b configuration -------------------------------------------------------

FANIN_SENDERS = 20
FANIN_DELIVERIES = 500          # per sender -> 10k couriered folders total
FANIN_WINDOW = 0.25
#: acceptance floor from the issue: batching must cut wire messages >= 3x
REQUIRED_MESSAGE_REDUCTION = 3.0


# =============================================================================
# E10a — retention policies under churn
# =============================================================================

def _run_churn(retention: str):
    """One churn run under *retention*, with traced live memory afterwards."""
    gc.collect()
    tracemalloc.start()
    try:
        kernel, result = execute_agent_churn(AgentChurnParams(
            n_agents=CHURN_AGENTS, wave_size=CHURN_WAVE, retention=retention))
        # Probe results while the kernel is alive: retained records must
        # still answer result_of even though their instances were archived.
        probes = 0
        for agent_id in result.sample_ids:
            try:
                value = kernel.result_of(agent_id)
            except Exception:
                continue
            assert isinstance(value, str)  # the worker returns its site name
            probes += 1
        gc.collect()
        current_bytes, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    del kernel
    gc.collect()
    return result, probes, current_bytes


@pytest.fixture(scope="module")
def churn_rows():
    rows = {}
    for retention in RETENTIONS:
        rows[retention.partition(":")[0]] = _run_churn(retention)
    return rows


def test_e10a_retention_keeps_ledger_flat(churn_rows, emit_report):
    report = Report("E10a", "lifecycle ledger retention under 50k-agent churn")
    table = report.table(
        f"churn of {CHURN_AGENTS} agents in waves of {CHURN_WAVE}",
        ["retention", "retained entries", "full instances", "compact records",
         "evicted", "live MB", "result_of probes ok"])
    for name, (result, probes, traced) in churn_rows.items():
        table.add_row(name, result.retained_entries, result.retained_instances,
                      result.retained_records, result.evicted,
                      round(traced / 1e6, 1), probes)
    table.add_note("'full instances' is what pins briefcases/specs; keep-results "
                   "archives terminal agents into compact AgentRecord objects")
    table.add_note("live MB is tracemalloc's live allocation count right after "
                   "the run, kernel still referenced")
    emit_report(report)

    keep_all, _, keep_all_bytes = churn_rows["keep-all"]
    keep_results, results_probes, keep_results_bytes = churn_rows["keep-results"]
    keep_counts, _, _ = churn_rows["keep-counts"]

    # keep-all retains every instance ever launched (the pre-ledger shape).
    assert keep_all.retained_instances == keep_all.agents_launched

    # keep-results: the count of *full instances* is flat — at quiescence
    # zero remain — while every agent is still in the ledger as a record
    # and result_of answers for the sampled early agents.
    assert keep_results.retained_instances == 0
    assert keep_results.retained_records == keep_results.agents_launched
    assert results_probes == len(keep_results.sample_ids) > 0
    for checkpoint in keep_results.checkpoints:
        assert checkpoint["instances"] <= 2 * CHURN_WAVE

    # ...and the steady-state memory is a fraction of keep-all's.
    assert keep_results_bytes < keep_all_bytes * 0.6, \
        f"keep-results retained {keep_results_bytes/1e6:.1f}MB " \
        f"vs keep-all {keep_all_bytes/1e6:.1f}MB"

    # keep-counts bounds the ledger itself.
    assert keep_counts.retained_entries <= KEEP_COUNTS_BOUND
    assert keep_counts.evicted == keep_counts.agents_launched - \
        keep_counts.retained_entries
    # The state counters stay exact even after eviction.
    assert keep_counts.agents_completed == keep_counts.agents_launched


# =============================================================================
# E10b — batched per-destination delivery
# =============================================================================

@pytest.fixture(scope="module")
def fanin_rows():
    base = dict(n_senders=FANIN_SENDERS, deliveries_per_sender=FANIN_DELIVERIES,
                serialize_setup=True, transport="rsh")
    off = run_courier_fan_in(CourierFanInParams(batch_window=0.0, **base))
    on = run_courier_fan_in(CourierFanInParams(batch_window=FANIN_WINDOW, **base))
    return off, on


def test_e10b_batching_cuts_messages_and_sim_time(fanin_rows, emit_report):
    off, on = fanin_rows
    total = FANIN_SENDERS * FANIN_DELIVERIES

    report = Report("E10b", "courier fan-in: delivery fabric on vs off")
    table = report.table(
        f"{FANIN_SENDERS} sites courier {FANIN_DELIVERIES} folders each to one hub "
        f"(rsh, source-serialized setup)",
        ["batching", "wire msgs", "batches", "coalesced", "bytes on wire",
         "hdr bytes saved", "sim s", "folders recv"])
    for label, row in (("off", off), (f"window={FANIN_WINDOW}s", on)):
        table.add_row(label, row.wire_messages, row.batches, row.batched_messages,
                      row.bytes_on_wire, row.header_bytes_saved,
                      round(row.sim_seconds, 2), row.folders_received)
    table.add_note(f"message reduction {off.wire_messages / on.wire_messages:.1f}x, "
                   f"sim-time reduction {off.sim_seconds / on.sim_seconds:.1f}x")
    emit_report(report)

    # Nothing is lost to batching: every folder reaches its contact.
    assert off.folders_received == on.folders_received == total

    # The acceptance gates: >=3x fewer wire messages, measurably less
    # simulated time, and strictly fewer bytes (the saved headers).
    assert off.wire_messages / on.wire_messages >= REQUIRED_MESSAGE_REDUCTION
    assert on.sim_seconds < off.sim_seconds / 2
    assert on.bytes_on_wire < off.bytes_on_wire
    assert on.batched_messages > 0
    assert on.header_bytes_saved > 0


def test_e10_regression_benchmark(benchmark):
    """pytest-benchmark tracks a small fan-in configuration for history."""
    benchmark(lambda: run_courier_fan_in(CourierFanInParams(
        n_senders=5, deliveries_per_sender=40, batch_window=0.1)))
