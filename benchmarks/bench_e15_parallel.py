"""E15 — Real parallel shard execution (repro.shard.backend).

E14 established the *model* speedup: events over the slowest shard's busy
time, with every burst still executing serially on one thread.  E15 races
the real thing — the same churn workload under the three execution
backends (``KernelConfig(shard_backend=...)``):

* ``inproc`` — E14's serial round loop (the baseline),
* ``thread`` — per-round bursts on a persistent thread pool.  Under
  CPython's GIL pure-Python event callbacks cannot overlap, so this arm
  measures the seam's overhead honestly rather than promising a speedup,
* ``process`` — one long-lived spawn worker per shard: separate
  interpreters, real cores, coordinator round-trips over pipes.

Two claims:

* **Equivalence** — at every shard count all backends produce identical
  events, handoffs, agent outcomes and ledger counters (asserted
  unconditionally; the property-test suite hammers the same invariant on
  random seeds).
* **Wall-clock** — on a multi-core host (4+ CPUs) the scaled arm (a
  2000-site switched fabric, 50k couriers) runs at higher real
  events/second on ``process`` (or ``thread``) than ``inproc`` at 4+
  shards.  On single-core hosts the assertion is skipped and the summary
  says so — coordination cost without parallel hardware is the honest
  result, not a failure.

Per-round coordination overhead (round wall-time minus the slowest burst:
pool hops, inbox drains, worker round-trips) is broken out per arm, and
every number lands in ``benchmarks/results/e15_parallel.json``.

Run with ``--smoke`` for the CI sanity pass (tiny populations, inproc +
thread at 2 shards, no wall-clock floor).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Tuple

import pytest

from repro.bench import Report, run_stamp
from repro.bench.workloads import ShardedChurnParams, run_sharded_churn
from repro.shard import process_backend_available

SHARD_COUNTS = (1, 2, 4, 8)
#: scaled-arm shard count the wall-clock claim is made at
SCALED_SHARDS = 8
#: multi-core floor: the parallel backends only have to win where the
#: hardware can actually run bursts concurrently
MIN_CPUS_FOR_SPEEDUP = 4

FULL_BASE = dict(n_sites=200, n_agents=2_000, wave_size=500)
FULL_SCALED = dict(n_sites=2_000, n_agents=50_000, wave_size=5_000,
                   topology="fabric", hosts_per_switch=50)
SMOKE_BASE = dict(n_sites=40, n_agents=200, wave_size=50)
SMOKE_SCALED = dict(n_sites=80, n_agents=400, wave_size=100,
                    topology="fabric", hosts_per_switch=20)


def _backends(smoke: bool) -> List[str]:
    backends = ["inproc", "thread"]
    if not smoke and process_backend_available():
        backends.append("process")
    return backends


def _shard_counts(smoke: bool) -> Tuple[int, ...]:
    return (2,) if smoke else SHARD_COUNTS


@pytest.fixture(scope="module")
def parallel_sweep(smoke):
    """Every (arm, backend, shards) cell of the E15 matrix, same seeds.

    The base arm sweeps backends over every shard count; the scaled arm
    only races the shard count the wall-clock claim is made at (its rows
    are the expensive ones).
    """
    arms: Dict[Tuple[str, str, int], object] = {}
    base = dict(SMOKE_BASE if smoke else FULL_BASE)
    for backend in _backends(smoke):
        for shards in _shard_counts(smoke):
            arms["base", backend, shards] = run_sharded_churn(
                ShardedChurnParams(shards=shards, backend=backend, **base))
    scaled = dict(SMOKE_SCALED if smoke else FULL_SCALED)
    scaled_shards = 2 if smoke else SCALED_SHARDS
    for backend in _backends(smoke):
        arms["scaled", backend, scaled_shards] = run_sharded_churn(
            ShardedChurnParams(shards=scaled_shards, backend=backend,
                               **scaled))
    return arms


def test_e15_parallel_backends(parallel_sweep, smoke, emit_report,
                               results_dir):
    cpus = os.cpu_count() or 1
    backends = _backends(smoke)
    scaled_shards = 2 if smoke else SCALED_SHARDS
    population = dict(SMOKE_BASE if smoke else FULL_BASE)
    scaled_pop = dict(SMOKE_SCALED if smoke else FULL_SCALED)

    report = Report(
        "E15", "real parallel shard execution "
        f"(backends {'/'.join(backends)}; base arm "
        f"{population['n_sites']} sites x {population['n_agents']} couriers "
        f"on a LAN, scaled arm {scaled_pop['n_sites']}-host switched fabric "
        f"x {scaled_pop['n_agents']} couriers; host has {cpus} CPU(s))")
    table = report.table(
        "wall-clock events/second by execution backend",
        ["arm", "backend", "shards", "events", "wall s", "events/wall s",
         "vs inproc", "max busy s", "sync s", "overhead s", "handoffs"])
    for (arm, backend, shards), outcome in sorted(parallel_sweep.items()):
        baseline = parallel_sweep[arm, "inproc", shards]
        table.add_row(
            arm, backend, shards, outcome.events,
            round(outcome.wall_seconds, 4),
            round(outcome.wall_throughput),
            f"{outcome.wall_throughput / baseline.wall_throughput:.2f}x"
            if baseline.wall_throughput > 0 else "n/a",
            round(outcome.busy_seconds, 4), round(outcome.sync_seconds, 4),
            round(outcome.overhead_seconds, 4), outcome.handoffs)
    table.add_note("identical events/handoffs/counters in every backend row "
                   "of an (arm, shards) cell: the backend changes where "
                   "bursts execute, never what the simulation does")
    table.add_note("'overhead s' is per-round coordination: round wall-time "
                   "minus the slowest burst (pool hops, inbox drains, worker "
                   "round-trips)")
    if cpus < MIN_CPUS_FOR_SPEEDUP:
        table.add_note(f"host has {cpus} CPU(s): the wall-clock speedup "
                       f"floor needs >= {MIN_CPUS_FOR_SPEEDUP} cores and is "
                       "not asserted here — rows still measure real "
                       "coordination cost honestly")
    emit_report(report)

    # --- persist the full matrix as JSON (the CI artifact) -------------------
    payload = {
        "experiment": "E15",
        "stamp": run_stamp(seed=ShardedChurnParams().seed,
                           backend=list(backends)),
        "smoke": smoke,
        "cpus": cpus,
        "backends": backends,
        "process_backend_available": process_backend_available(),
        "arms": [
            {"arm": arm, "backend": backend, "shards": shards,
             "wall_throughput": outcome.wall_throughput,
             "model_throughput": outcome.throughput,
             **dataclasses.asdict(outcome)}
            for (arm, backend, shards), outcome
            in sorted(parallel_sweep.items())],
    }
    json_path = os.path.join(results_dir, "e15_parallel.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"E15 results JSON -> {json_path}")

    # --- equivalence: unconditional, every cell ------------------------------
    cells = sorted({(arm, shards)
                    for arm, _backend, shards in parallel_sweep})
    for arm, shards in cells:
        reference = parallel_sweep[arm, backends[0], shards]
        for backend in backends:
            outcome = parallel_sweep[arm, backend, shards]
            label = (arm, backend, shards)
            assert outcome.agents_completed == outcome.agents_launched, label
            assert outcome.late_arrivals == 0, label
            assert outcome.events == reference.events, label
            assert outcome.handoffs == reference.handoffs, label
            assert outcome.counters == reference.counters, label
            assert outcome.sim_seconds == reference.sim_seconds, label
        if shards > 1:
            assert reference.handoffs > 0, (arm, shards)

    # --- wall-clock: the tentpole claim, where the hardware allows -----------
    scaled_inproc = parallel_sweep["scaled", "inproc", scaled_shards]
    parallel_best = max(
        (parallel_sweep["scaled", backend, scaled_shards].wall_throughput
         for backend in backends if backend != "inproc"),
        default=0.0)
    speedup = (parallel_best / scaled_inproc.wall_throughput
               if scaled_inproc.wall_throughput > 0 else 0.0)
    print(f"E15-SUMMARY | cpus={cpus} backends={'/'.join(backends)} | "
          f"scaled@{scaled_shards}shards wall-speedup(best parallel vs "
          f"inproc)={speedup:.2f}x | asserted="
          f"{not smoke and cpus >= MIN_CPUS_FOR_SPEEDUP}")
    if not smoke and cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup > 1.0, (
            f"no parallel backend beat inproc on the scaled arm at "
            f"{scaled_shards} shards on a {cpus}-CPU host "
            f"({speedup:.2f}x)")


def test_e15_timed_thread_backend(benchmark, smoke):
    """pytest-benchmark guard on the thread backend's coordination cost."""
    base = dict(SMOKE_BASE)
    outcome = benchmark(lambda: run_sharded_churn(
        ShardedChurnParams(shards=4, backend="thread", **base)))
    assert outcome.agents_completed == outcome.agents_launched
