"""Ablations — design choices DESIGN.md calls out, measured.

Three ablations, each isolating one mechanism the reproduction adds on top
of the paper's sketch:

* **A1 (metered migration, §3).** The paper proposes electronic cash as the
  runaway-agent containment mechanism; the kernel also has a blunt step
  budget.  The ablation compares how far a runaway spreads under (a) no
  containment but the kernel step budget, (b) tolls of 1 ECU/hop with
  varying funding.
* **A2 (failure-detection path, §5/§6).** Rear guards can presume loss by
  timeout alone or react to Horus view changes.  The ablation measures the
  time from crash to completed recovery for both detectors.
* **A3 (collector parallelism, §6).** StormCast can cover the sensor fleet
  with one itinerant collector or with several in parallel; the ablation
  sweeps the collector count and reports time-to-forecast vs bytes.
"""

from __future__ import annotations

import pytest

from repro.apps.stormcast import StormCastParams, run_agent_pipeline
from repro.bench import Report, bytes_human
from repro.cash import Mint
from repro.cash.metering import fund_briefcase, install_metering, toll_revenue
from repro.core import Briefcase, Kernel, KernelConfig, register_behaviour
from repro.fault import completions, install_horus_guard_detection, launch_ft_computation
from repro.net import FailureSchedule, lan, ring


# ---------------------------------------------------------------------------
# A1 — runaway containment: step budget vs electronic cash
# ---------------------------------------------------------------------------

def _runaway(ctx, bc):
    sites = ctx.sites()
    target = sites[(sites.index(ctx.site_name) + 1) % len(sites)]
    bc.set("HOPS", bc.get("HOPS", 0) + 1)
    result = yield ctx.jump(bc, target)
    return "halted" if not result.value else "hopping"


register_behaviour("ablation_runaway", _runaway, replace=True)


def run_runaway(containment: str, funding: int = 0, max_steps: int = 400,
                event_cap: int = 60_000):
    kernel = Kernel(lan([f"h{i}" for i in range(5)]), transport="tcp",
                    config=KernelConfig(rng_seed=4, max_agent_steps=max_steps))
    mint = Mint(seed=4)
    briefcase = Briefcase()
    if containment == "tolls":
        install_metering(kernel, mint, toll=1)
        fund_briefcase(mint, briefcase, funding)
    kernel.launch("h0", "ablation_runaway", briefcase)
    # The event cap stands in for "how long the operator lets this go on";
    # a genuinely unbounded runaway would keep spreading forever.
    kernel.run(max_events=event_cap)
    return {"containment": containment, "funding": funding,
            "migrations": kernel.stats.migrations,
            "bytes": kernel.stats.bytes_sent,
            "tolls": toll_revenue(kernel) if containment == "tolls" else 0,
            "killed": kernel.killed}


@pytest.fixture(scope="module")
def runaway_rows():
    rows = [run_runaway("step-budget")]
    for funding in (2, 5, 10):
        rows.append(run_runaway("tolls", funding=funding))
    return rows


def test_a1_runaway_containment(benchmark, runaway_rows, emit_report):
    report = Report("A1", "containing a runaway agent: kernel step budget vs "
                          "electronic cash tolls (1 ECU per hop)")
    table = report.table("damage radius of a hop-forever agent",
                         ["containment", "funding", "migrations", "bytes on wire",
                          "tolls collected", "killed by kernel"])
    for row in runaway_rows:
        table.add_row(row["containment"], row["funding"] or "-", row["migrations"],
                      bytes_human(row["bytes"]), row["tolls"] or "-",
                      "yes" if row["killed"] else "no")
    table.add_note("with tolls the damage radius equals the funding exactly and no "
                   "kernel enforcement is needed; the per-instance step budget cannot "
                   "contain a hopping runaway at all — every hop starts a fresh "
                   "instance with a fresh budget, so it spreads until the operator "
                   "pulls the plug (the event cap here)")
    emit_report(report)

    by_funding = {row["funding"]: row for row in runaway_rows if row["containment"] == "tolls"}
    for funding, row in by_funding.items():
        assert row["migrations"] == funding
        assert row["tolls"] == funding
        assert row["killed"] == 0
    step_budget = next(row for row in runaway_rows if row["containment"] == "step-budget")
    # The kernel's per-instance budget never trips (each hop is a new
    # instance), which is exactly why the paper reaches for an economic
    # mechanism: the uncontained runaway spreads orders of magnitude further.
    assert step_budget["killed"] == 0
    assert step_budget["migrations"] > 20 * max(by_funding)

    benchmark.pedantic(run_runaway, args=("tolls", 5), rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A2 — failure detection: timeout vs Horus view changes
# ---------------------------------------------------------------------------

def run_recovery(view_assisted: bool, seed: int = 3):
    sites = [f"s{i}" for i in range(6)]
    kernel = Kernel(ring(sites), transport="horus", config=KernelConfig(rng_seed=seed))
    for index, name in enumerate(sites):
        kernel.site(name).cabinet("data").put("VALUE", index)
    if view_assisted:
        install_horus_guard_detection(kernel)
    ft_id = launch_ft_computation(kernel, "s0", sites[1:], per_hop=0.6, work_seconds=0.05,
                                  max_relaunches=4, view_assisted=view_assisted)
    crash_at = 0.05
    FailureSchedule().crash("s3", at=crash_at).recover("s3", at=300.0).install(kernel)
    kernel.run(until=400.0)
    records = completions(kernel, sites[-1], ft_id)
    return {"detector": "horus views" if view_assisted else "timeout",
            "completions": len(records),
            "recovery_time": (records[0]["completed_at"] - crash_at) if records else None,
            "messages": kernel.stats.messages_sent}


@pytest.fixture(scope="module")
def recovery_rows():
    return [run_recovery(False), run_recovery(True)]


def test_a2_detection_latency(benchmark, recovery_rows, emit_report):
    report = Report("A2", "rear-guard failure detection: conservative timeout vs "
                          "Horus view changes (single crash on the itinerary)")
    table = report.table("crash-to-completion latency",
                         ["detector", "completions", "time from crash to completion s",
                          "messages"])
    for row in recovery_rows:
        table.add_row(row["detector"], row["completions"],
                      round(row["recovery_time"], 2), row["messages"])
    table.add_note("the view-assisted guard relaunches as soon as the membership view "
                   "excludes the dead site instead of waiting out its timeout")
    emit_report(report)

    timeout_row = next(row for row in recovery_rows if row["detector"] == "timeout")
    view_row = next(row for row in recovery_rows if row["detector"] == "horus views")
    assert timeout_row["completions"] == view_row["completions"] == 1
    assert view_row["recovery_time"] < timeout_row["recovery_time"] / 2

    benchmark.pedantic(run_recovery, args=(True,), rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A3 — StormCast collector parallelism
# ---------------------------------------------------------------------------

STORM = StormCastParams(n_sensors=12, samples_per_site=150, storm_rate=0.03,
                        raw_payload_bytes=512, seed=33)


@pytest.fixture(scope="module")
def parallelism_rows():
    return {n: run_agent_pipeline(STORM, n_collectors=n) for n in (1, 2, 4, 6)}


def test_a3_collector_parallelism(benchmark, parallelism_rows, emit_report):
    report = Report("A3", "StormCast collector parallelism "
                          f"({STORM.n_sensors} sensors, {STORM.samples_per_site} readings "
                          "each)")
    table = report.table("time to forecast vs collector count",
                         ["collectors", "time to forecast s", "bytes on wire",
                          "migrations", "alerts"])
    for count, result in sorted(parallelism_rows.items()):
        table.add_row(count, round(result.duration, 2), bytes_human(result.bytes_on_wire),
                      result.migrations, len(result.alert_stations()))
    table.add_note("parallel collectors shorten the itinerary each agent walks; the byte "
                   "cost stays nearly flat because each still carries only its own "
                   "partition's evidence")
    emit_report(report)

    durations = [parallelism_rows[count].duration for count in sorted(parallelism_rows)]
    assert durations == sorted(durations, reverse=True)
    alert_sets = {tuple(result.alert_stations()) for result in parallelism_rows.values()}
    assert len(alert_sets) == 1
    # Bytes grow only modestly (one extra hub delivery per collector).
    assert parallelism_rows[6].bytes_on_wire < 2 * parallelism_rows[1].bytes_on_wire

    benchmark.pedantic(run_agent_pipeline, args=(STORM,), kwargs={"n_collectors": 4},
                       rounds=1, iterations=1)
