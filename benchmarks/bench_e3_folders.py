"""E3 — Briefcases are cheap to move, cabinets are cheap to access (paper section 2).

Claim: "folders must be easy to transfer from one computing system to
another ... elaborate index structures are not suitable" for carried
folders, while file cabinets "can be implemented using techniques that
optimize access times even if this increases the cost of moving the file
cabinet."

The experiment measures, as the number of stored elements grows:

* the modelled move cost of a briefcase vs. a file cabinet holding the
  same content (simulated bytes-equivalent);
* the *real* (wall-clock) cost of membership queries against a briefcase
  folder (linear scan) vs. a cabinet (digest index) — this is the micro-
  benchmark pytest-benchmark times.
"""

from __future__ import annotations

import pytest

from repro.bench import Report
from repro.core import Briefcase, FileCabinet, Folder

ELEMENT_COUNTS = (100, 1_000, 5_000)
ELEMENT_SIZE = 64


def build_pair(count: int):
    """A briefcase and a cabinet holding the same `count` elements."""
    elements = [f"element-{index:06d}".ljust(ELEMENT_SIZE, "x") for index in range(count)]
    briefcase = Briefcase([Folder("DATA", elements)])
    cabinet = FileCabinet("store")
    cabinet.deposit(briefcase)
    return briefcase, cabinet, elements


@pytest.fixture(scope="module")
def cost_rows():
    rows = []
    for count in ELEMENT_COUNTS:
        briefcase, cabinet, _ = build_pair(count)
        rows.append((count, briefcase.wire_size(), cabinet.storage_size(),
                     cabinet.move_cost()))
    return rows


def test_e3_move_cost_table(benchmark, cost_rows, emit_report):
    report = Report("E3", "briefcase vs file cabinet: move cost and access cost")
    table = report.table("modelled move cost (bytes-equivalent)",
                         ["elements", "briefcase wire", "cabinet storage",
                          "cabinet move cost", "cabinet/briefcase"])
    for count, briefcase_wire, storage, move in cost_rows:
        table.add_row(count, briefcase_wire, storage, move,
                      round(move / briefcase_wire, 1))
    table.add_note("cabinets trade mobility for access speed: moving one costs "
                   f"{FileCabinet.MOVE_COST_FACTOR}x its stored bytes")
    emit_report(report)

    for _, briefcase_wire, _, move in cost_rows:
        assert move > briefcase_wire

    # Time building + shipping model of a mid-sized briefcase.
    benchmark(lambda: build_pair(1_000)[0].wire_size())


def test_e3_membership_query_briefcase_scan(benchmark):
    """Linear scan through a carried folder (the price of index-free mobility)."""
    briefcase, _, elements = build_pair(2_000)
    needle = elements[-1]

    def scan():
        return needle in briefcase.folder("DATA").elements()

    assert benchmark(scan) is True


def test_e3_membership_query_cabinet_index(benchmark, emit_report):
    """Digest-indexed membership in a cabinet (the payoff of staying put)."""
    _, cabinet, elements = build_pair(2_000)
    needle = elements[-1]

    def probe():
        return cabinet.contains_element("DATA", needle)

    assert benchmark(probe) is True

    report = Report("E3b", "access path comparison at 2000 elements")
    table = report.table("membership query implementation", ["structure", "mechanism"])
    table.add_row("briefcase folder", "decode + linear scan (no index to ship)")
    table.add_row("file cabinet", "per-folder digest index (rebuilt locally, never shipped)")
    emit_report(report)
