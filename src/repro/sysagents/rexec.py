"""``rexec``: the agent that moves execution to another site.

"An agent moves from one site to another by meeting with the local rexec
agent.  The rexec agent expects to find two folders in the briefcase with
which it is invoked: a HOST folder names the site where execution is to be
moved and a CONTACT folder names the agent to be executed at that site."

``rexec`` is a *system* agent: it is the only ordinary path to the
:class:`~repro.core.syscalls.Transmit` syscall (besides the courier, which
is itself built on rexec-style transmission).
"""

from __future__ import annotations

from repro.core.briefcase import CONTACT_FOLDER, HOST_FOLDER, Briefcase
from repro.core.context import AgentContext
from repro.net.message import MessageKind

__all__ = ["rexec_behaviour"]


def rexec_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Ship the briefcase to the HOST site and have CONTACT executed there.

    The meet ends with ``True`` when the transfer was handed to the network
    and ``False`` otherwise (missing folders, unknown destination, local
    site crash racing the send).  In-flight loss is of course still
    possible — that is what the rear guards of section 5 are for.
    """
    host = briefcase.get(HOST_FOLDER)
    contact = briefcase.get(CONTACT_FOLDER, "ag_py")
    # A KIND folder naming a supported transfer kind is a per-shipment
    # override (a rear guard relaunching its snapshot asks for the
    # batchable ft-relaunch kind); it is consumed so it never leaks into
    # the next jump of the re-animated agent.  Any other KIND folder is an
    # ordinary piece of the agent's luggage and travels untouched.
    kind = MessageKind.AGENT_TRANSFER
    if briefcase.get("KIND") in (MessageKind.AGENT_TRANSFER, MessageKind.FT_RELAUNCH):
        kind = briefcase.remove("KIND").peek()
    if host is None:
        ctx.log("rexec: briefcase has no HOST folder")
        yield ctx.end_meet(False)
        return False
    if host == ctx.site_name:
        # Moving to the current site degenerates to a local meet with the
        # contact agent; no network traffic is generated.
        result = yield ctx.meet(contact, briefcase)
        yield ctx.end_meet(True)
        return result.value if result is not None else True

    accepted = yield ctx.transmit(host, contact, briefcase, kind=kind)
    if not accepted:
        ctx.log(f"rexec: transfer to {host!r} was refused (down or unreachable)")
    yield ctx.end_meet(bool(accepted))
    return bool(accepted)
