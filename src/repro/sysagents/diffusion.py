"""The diffusion agent: controlled flooding over the whole network.

Paper section 2 introduces the flooding example twice:

* the *naive* variant clones at every adjacent site and never checks whether
  a site was already visited, so "the number of agents increases without
  bound" on cyclic topologies;
* the *diffusion* variant "records its visit in a site-local folder" and
  terminates instead of cloning when it lands on an already-visited site.
  Section 2 then generalises it: the diffusion agent "executes a specified
  agent locally and then creates a clone of itself at every site that
  appears in the set difference of the site-local SITES folder and the
  briefcase SITES folder."

Both variants are implemented so experiment E2 can compare them.  The
briefcase layout:

* ``SITES`` — the sites the *sender* already knows to be covered (clones
  extend this as they go);
* ``TASK`` — optional; the name of an agent to meet locally at each visited
  site (the "specified agent");
* ``PAYLOAD`` — optional; data handed to the TASK agent / left in the local
  ``diffusion`` cabinet (the message being flooded);
* ``TTL`` — optional hop budget for the naive variant so the unbounded
  growth can be measured without actually running forever.
"""

from __future__ import annotations

from typing import List

from repro.core.briefcase import SITES_FOLDER, Briefcase
from repro.core.context import AgentContext

__all__ = ["diffusion_behaviour", "naive_flood_behaviour"]

#: name of the site-local cabinet used to record visits
DIFFUSION_CABINET = "diffusion"
#: folder (in that cabinet) listing visited/known-covered site names
VISITED_FOLDER = "SITES"


def _known_sites(briefcase: Briefcase) -> List[str]:
    if not briefcase.has(SITES_FOLDER):
        return []
    return [site for site in briefcase.folder(SITES_FOLDER).elements()]


def _deliver_locally(ctx: AgentContext, briefcase: Briefcase):
    """Record the visit, store the payload, and run the TASK agent if named."""
    cabinet = ctx.cabinet(DIFFUSION_CABINET)
    cabinet.put(VISITED_FOLDER, ctx.site_name)
    if briefcase.has("PAYLOAD"):
        cabinet.put("PAYLOAD", briefcase.get("PAYLOAD"))
    task = briefcase.get("TASK")
    if task is not None:
        task_briefcase = Briefcase()
        if briefcase.has("PAYLOAD"):
            task_briefcase.set("PAYLOAD", briefcase.get("PAYLOAD"))
        task_briefcase.set("ORIGIN", briefcase.get("ORIGIN", ctx.site_name))
        yield ctx.meet(task, task_briefcase)


def diffusion_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Flood with duplicate suppression via the site-local SITES folder."""
    cabinet = ctx.cabinet(DIFFUSION_CABINET)
    if cabinet.contains_element(VISITED_FOLDER, ctx.site_name):
        # Someone already delivered here: terminate instead of cloning.
        yield ctx.end_meet("duplicate")
        return "duplicate"

    yield from _deliver_locally(ctx, briefcase)

    # Clone to every site in the set difference of (all reachable neighbours)
    # and (sites the briefcase already knows to be covered, plus what the
    # local cabinet has recorded).
    known = set(_known_sites(briefcase))
    known.add(ctx.site_name)
    locally_recorded = set(cabinet.elements(VISITED_FOLDER))
    covered = known | locally_recorded
    targets = [site for site in ctx.neighbors() if site not in covered]

    for target in targets:
        clone = briefcase.copy()
        clone.discard(SITES_FOLDER)
        sites_folder = clone.folder(SITES_FOLDER, create=True)
        for site in sorted(covered | set(targets)):
            sites_folder.push(site)
        yield ctx.jump(clone, target)

    yield ctx.end_meet(len(targets))
    return len(targets)


def naive_flood_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Flood by cloning at every neighbour with no visit record (paper's anti-pattern).

    A TTL folder bounds the explosion so the experiment terminates; each
    clone decrements it.  The number of agent transfers generated is the
    quantity E2 contrasts with the diffusion agent.
    """
    yield from _deliver_locally(ctx, briefcase)

    ttl = briefcase.get("TTL", 0)
    if ttl <= 0:
        yield ctx.end_meet(0)
        return 0

    targets = ctx.neighbors()
    for target in targets:
        clone = briefcase.copy()
        clone.set("TTL", ttl - 1)
        yield ctx.jump(clone, target)

    yield ctx.end_meet(len(targets))
    return len(targets)
