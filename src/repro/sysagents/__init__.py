"""System agents: the services every TACOMA site provides (paper sections 2 and 6).

"A collection of system agents provides a variety of support functions."
:func:`install_standard_agents` puts the basic four — ``ag_py``, ``rexec``,
the courier and the diffusion agent — on a site; the kernel calls it for
every site unless told otherwise.  Higher-level system agents (electronic
cash validation, brokers, monitors, rear guards) live in their own
subpackages and are installed by the workloads that need them.
"""

from repro.core.registry import register_behaviour
from repro.core.site import Site
from repro.sysagents.agpy import ag_py_behaviour
from repro.sysagents.courier import courier_behaviour
from repro.sysagents.diffusion import (DIFFUSION_CABINET, VISITED_FOLDER,
                                       diffusion_behaviour, naive_flood_behaviour)
from repro.sysagents.rexec import rexec_behaviour
from repro.sysagents.shell import shell_behaviour

__all__ = [
    "ag_py_behaviour", "rexec_behaviour", "courier_behaviour",
    "diffusion_behaviour", "naive_flood_behaviour", "shell_behaviour",
    "install_standard_agents", "STANDARD_AGENTS",
    "DIFFUSION_CABINET", "VISITED_FOLDER",
]

#: name -> (behaviour, is_system_agent) for the agents every site gets
STANDARD_AGENTS = {
    "ag_py": (ag_py_behaviour, True),
    "rexec": (rexec_behaviour, True),
    "courier": (courier_behaviour, True),
    "diffusion": (diffusion_behaviour, False),
    "naive_flood": (naive_flood_behaviour, False),
    "shell": (shell_behaviour, False),
}

# Register the standard behaviours under their well-known names so CODE
# folders can reference them and ctx.jump can re-ship them by name.
for _name, (_behaviour, _system) in STANDARD_AGENTS.items():
    register_behaviour(_name, _behaviour, replace=True)


def install_standard_agents(site: Site) -> None:
    """Install the standard system agents on *site* (idempotent)."""
    for name, (behaviour, system) in STANDARD_AGENTS.items():
        site.install(name, behaviour, system=system, replace=True)
