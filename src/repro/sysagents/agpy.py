"""``ag_py``: the agent that animates shipped code (the paper's ``ag_tcl``).

"The most basic of these is ``ag_tcl``, which pops a Tcl procedure from the
CODE folder and executes that procedure."  Here the CODE folder contains a
code element (see :mod:`repro.core.codec`): either a registered behaviour
name or shipped Python source.  ``ag_py`` pops it, materialises the
behaviour, and spawns it at the local site with the rest of the briefcase.
"""

from __future__ import annotations

from repro.core.briefcase import CODE_FOLDER, Briefcase
from repro.core.codec import behaviour_from_code
from repro.core.context import AgentContext
from repro.core.errors import CodecError, MissingFolderError

__all__ = ["ag_py_behaviour"]


def ag_py_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Pop the CODE folder, build the behaviour, and run it locally.

    ``ag_py`` ends its meet (or terminates, when it arrived as a top-level
    transfer) with the id of the agent it started, or ``None`` when the CODE
    folder was missing or unusable — in which case the failure is recorded
    in the site's ``_errors`` cabinet rather than raised, because a shipped
    agent has no caller to propagate to.
    """
    try:
        code_element = briefcase.folder(CODE_FOLDER).pop()
    except MissingFolderError:
        ctx.cabinet("_errors").put("ag_py", "arrival without a CODE folder")
        ctx.log("ag_py: no CODE folder in briefcase")
        return None
    except Exception as exc:  # empty folder
        ctx.cabinet("_errors").put("ag_py", f"unusable CODE folder: {exc}")
        ctx.log(f"ag_py: unusable CODE folder: {exc}")
        return None

    try:
        behaviour = behaviour_from_code(code_element)
    except CodecError as exc:
        ctx.cabinet("_errors").put("ag_py", f"code rejected: {exc}")
        ctx.log(f"ag_py: code rejected: {exc}")
        return None

    agent_id = yield ctx.spawn(behaviour, briefcase)
    # Hand back the new agent's id to whoever met us (rexec's caller, or the
    # kernel arrival path, which ignores it).
    yield ctx.end_meet(agent_id)
    return agent_id
