"""The courier agent: deliver a folder to an agent on another site.

"Given an rexec agent, it is not difficult to program a *courier* agent,
which transfers a folder to a specified agent on a specified machine.  This
allows agents to communicate without having to meet (on a common machine)."

The courier expects in its briefcase:

* ``HOST`` — destination site name;
* ``CONTACT`` — name of the agent to execute at the destination with the
  delivered payload;
* ``PAYLOAD_NAME`` — the name of the folder being delivered (also present
  in the briefcase);
* ``KIND`` (optional) — the wire message kind, defaulting to
  ``folder-delivery``; monitors use ``status`` for load reports, and the
  fault-tolerance layer ships release notices as ``ft-release`` so guard
  bookkeeping coalesces in the delivery fabric like any other payload.

Only the payload folder travels — the courier builds a minimal delivery
briefcase rather than shipping everything it was handed, which is exactly
the bandwidth argument of section 1.  Courier transmissions go through the
transport's **delivery fabric**: when batching is enabled, folder
deliveries and status reports bound for the same destination site within
the flush window share one wire message (one header, one setup delay), and
the destination kernel fans the folders back out to their contacts.
"""

from __future__ import annotations

from repro.core.briefcase import CONTACT_FOLDER, HOST_FOLDER, Briefcase
from repro.core.context import AgentContext
from repro.net.message import MessageKind

__all__ = ["courier_behaviour"]


def courier_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Deliver the named payload folder to CONTACT at HOST."""
    host = briefcase.get(HOST_FOLDER)
    contact = briefcase.get(CONTACT_FOLDER)
    payload_name = briefcase.get("PAYLOAD_NAME")
    if host is None or contact is None or payload_name is None:
        ctx.log("courier: request must carry HOST, CONTACT and PAYLOAD_NAME folders")
        yield ctx.end_meet(False)
        return False
    if not briefcase.has(payload_name):
        ctx.log(f"courier: payload folder {payload_name!r} is missing")
        yield ctx.end_meet(False)
        return False

    delivery = Briefcase()
    delivery.add(briefcase.folder(payload_name).copy())
    delivery.set("SENDER_SITE", ctx.site_name)
    delivery.set("PAYLOAD_NAME", payload_name)

    if host == ctx.site_name:
        result = yield ctx.meet(contact, delivery)
        yield ctx.end_meet(result is not None)
        return True

    kind = briefcase.get("KIND", MessageKind.FOLDER_DELIVERY)
    if kind not in (MessageKind.FOLDER_DELIVERY, MessageKind.STATUS,
                    MessageKind.FT_RELEASE):
        # Only contact-addressed payload kinds reach their contact at the
        # destination; anything else would silently strand the folder.
        ctx.log(f"courier: unsupported delivery kind {kind!r}")
        yield ctx.end_meet(False)
        return False
    # With the delivery fabric enabled, "accepted" means the folder was
    # queued in the per-destination outbox (or handed to the wire); either
    # way it has left this agent's hands.
    accepted = yield ctx.transmit(host, contact, delivery, kind=kind)
    yield ctx.end_meet(bool(accepted))
    return bool(accepted)
