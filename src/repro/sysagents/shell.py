"""A tiny shell agent: interprets a COMMANDS folder against the local site.

The paper mentions that "the CONTACT folder might contain the name of an
agent that is a shell or a compiler."  This shell gives examples and tests a
contact target that is *not* ``ag_py``: instead of carrying code, the
briefcase carries a list of simple commands that are interpreted against
the local file cabinets.

Supported commands (each command is a dict pushed onto the ``COMMANDS``
folder, executed FIFO):

* ``{"op": "put", "cabinet": c, "folder": f, "value": v}``
* ``{"op": "get", "cabinet": c, "folder": f}`` — appends the value to RESULTS
* ``{"op": "list", "cabinet": c}`` — appends the folder names to RESULTS
* ``{"op": "load"}`` — appends the local load metric to RESULTS
"""

from __future__ import annotations

from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext

__all__ = ["shell_behaviour"]


def shell_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """Execute the COMMANDS folder and end the meet with the RESULTS folder."""
    results = briefcase.folder("RESULTS", create=True)
    if not briefcase.has("COMMANDS"):
        yield ctx.end_meet(0)
        return 0

    commands = briefcase.folder("COMMANDS")
    executed = 0
    while commands:
        command = commands.dequeue()
        if not isinstance(command, dict) or "op" not in command:
            results.push({"error": f"malformed command: {command!r}"})
            continue
        op = command["op"]
        if op == "put":
            ctx.cabinet(command.get("cabinet", "default")).put(
                command["folder"], command.get("value"))
            executed += 1
        elif op == "get":
            value = ctx.cabinet(command.get("cabinet", "default")).get(command["folder"])
            results.push({"folder": command["folder"], "value": value})
            executed += 1
        elif op == "list":
            names = ctx.cabinet(command.get("cabinet", "default")).names()
            results.push({"cabinet": command.get("cabinet", "default"), "folders": names})
            executed += 1
        elif op == "load":
            results.push({"site": ctx.site_name, "load": ctx.site_load()})
            executed += 1
        else:
            results.push({"error": f"unknown op {op!r}"})
    yield ctx.end_meet(executed)
    return executed
