"""Toy cryptographic primitives for the electronic-cash subsystem.

The paper's prototype "used the security mechanisms provided by UNIX" and
cites Chaum [C92] for the untraceable-cash design.  Real blind signatures
are out of scope (DESIGN.md section 6); what the experiments need is:

* unforgeable-without-the-secret ECU serial numbers (so agents cannot mint
  money) — provided by HMAC-SHA256 over the serial with the mint's secret;
* signed audit records (so the auditor can attribute actions) — provided by
  per-principal HMAC signing keys.

These primitives are *toys*: the secret lives in the same process as the
agents.  The protocol structure built on top of them is what reproduces the
paper.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Optional

__all__ = ["Signer", "generate_serial", "serial_certificate", "verify_certificate"]

#: serial numbers are drawn uniformly from [0, 2**SERIAL_BITS)
SERIAL_BITS = 128


def generate_serial(rng: Optional[random.Random] = None) -> int:
    """Draw a fresh 'large random number' for an ECU (paper section 3)."""
    rng = rng or random.Random()
    return rng.getrandbits(SERIAL_BITS)


def serial_certificate(secret: bytes, serial: int, amount: int) -> str:
    """The mint's certificate binding a serial to an amount."""
    body = f"{serial}:{amount}".encode("utf-8")
    return hmac.new(secret, body, hashlib.sha256).hexdigest()


def verify_certificate(secret: bytes, serial: int, amount: int, certificate: str) -> bool:
    """Check that *certificate* was produced by the mint holding *secret*."""
    expected = serial_certificate(secret, serial, amount)
    return hmac.compare_digest(expected, certificate)


class Signer:
    """A per-principal signing key used for audit records."""

    def __init__(self, principal: str, secret: Optional[bytes] = None,
                 rng: Optional[random.Random] = None):
        self.principal = principal
        if secret is None:
            rng = rng or random.Random()
            secret = rng.getrandbits(256).to_bytes(32, "big")
        self._secret = secret

    def sign(self, payload: str) -> str:
        """HMAC signature of *payload* under this principal's key."""
        return hmac.new(self._secret, payload.encode("utf-8"), hashlib.sha256).hexdigest()

    def verify(self, payload: str, signature: str) -> bool:
        """True if *signature* is this principal's signature over *payload*."""
        return hmac.compare_digest(self.sign(payload), signature)

    def __repr__(self) -> str:
        return f"Signer({self.principal!r})"
