"""Audits instead of transactions (paper section 3).

The paper rejects transactional exchange-of-funds-for-services because the
mechanism "would impact performance and would be effective only if it were
trusted" and "would be alien to the computer illiterate."  Its solution:

* "Participants document their actions so that a third party (a court, in
  real life) can perform an audit to find violations of a contract."
* "An aggrieved agent requests an audit."
* "Documenting actions sometimes requires the presence of a third agent and
  the use of cryptographic protocols."

This module provides the audit records participants write, the key
directory that lets the auditor verify signatures, and the
:class:`Auditor`, which reconstructs an exchange from the records of both
parties plus the validation agent's witness record and reports who (if
anyone) violated the contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cash.crypto import Signer

__all__ = ["AuditRecord", "KeyDirectory", "AuditFinding", "Auditor",
           "make_record", "record_payload"]


@dataclass
class AuditRecord:
    """One signed statement by a participant about an exchange."""

    exchange_id: str
    actor: str                 # principal name
    role: str                  # "customer" | "provider" | "witness"
    action: str                # "paid" | "received-payment" | "provided-service" | ...
    amount: int
    at: float
    signature: str
    details: Dict[str, object] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, object]:
        return {
            "exchange_id": self.exchange_id, "actor": self.actor, "role": self.role,
            "action": self.action, "amount": self.amount, "at": self.at,
            "signature": self.signature, "details": dict(self.details),
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "AuditRecord":
        return cls(
            exchange_id=str(payload["exchange_id"]), actor=str(payload["actor"]),
            role=str(payload["role"]), action=str(payload["action"]),
            amount=int(payload["amount"]), at=float(payload["at"]),
            signature=str(payload["signature"]),
            details=dict(payload.get("details", {})),
        )


def record_payload(exchange_id: str, actor: str, action: str, amount: int) -> str:
    """Canonical string a participant signs for an audit record."""
    return f"{exchange_id}|{actor}|{action}|{amount}"


def make_record(signer: Signer, exchange_id: str, role: str, action: str,
                amount: int, at: float,
                details: Optional[Dict[str, object]] = None) -> AuditRecord:
    """Build and sign an audit record for *signer*'s principal."""
    return AuditRecord(
        exchange_id=exchange_id, actor=signer.principal, role=role, action=action,
        amount=amount, at=at,
        signature=signer.sign(record_payload(exchange_id, signer.principal, action, amount)),
        details=details or {},
    )


class KeyDirectory:
    """Registry of principals' signing keys — the 'court clerk' of the audit scheme."""

    def __init__(self) -> None:
        self._signers: Dict[str, Signer] = {}

    def new_signer(self, principal: str) -> Signer:
        """Create (or return) the signer for *principal*."""
        if principal not in self._signers:
            self._signers[principal] = Signer(principal)
        return self._signers[principal]

    def register(self, signer: Signer) -> None:
        """Register an externally created signer."""
        self._signers[signer.principal] = signer

    def signer_for(self, principal: str) -> Optional[Signer]:
        """The signer for *principal*, if known."""
        return self._signers.get(principal)

    def __contains__(self, principal: str) -> bool:
        return principal in self._signers

    def __len__(self) -> int:
        return len(self._signers)


@dataclass
class AuditFinding:
    """The auditor's verdict about one exchange."""

    exchange_id: str
    violations: List[str] = field(default_factory=list)
    guilty: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no contract violation was found."""
        return not self.violations


class Auditor:
    """The third party that reconstructs an exchange and finds violations."""

    def __init__(self, directory: KeyDirectory):
        self.directory = directory

    # -- signature checking -----------------------------------------------------

    def verify_record(self, record: AuditRecord) -> bool:
        """Check the record's signature against the directory."""
        signer = self.directory.signer_for(record.actor)
        if signer is None:
            return False
        return signer.verify(
            record_payload(record.exchange_id, record.actor, record.action, record.amount),
            record.signature)

    # -- the audit proper ---------------------------------------------------------

    def audit(self, exchange_id: str, records: List[AuditRecord],
              witness_records: Optional[List[Dict[str, object]]] = None,
              expected_price: Optional[int] = None) -> AuditFinding:
        """Reconstruct one exchange and report violations.

        *records* are what the two parties produced (typically pulled from
        their briefcases or site cabinets); *witness_records* are the
        validation agent's entries for the same exchange id.
        """
        finding = AuditFinding(exchange_id=exchange_id)
        relevant = [record for record in records if record.exchange_id == exchange_id]

        # Forged or unverifiable records are themselves violations.
        verified: List[AuditRecord] = []
        for record in relevant:
            if self.verify_record(record):
                verified.append(record)
            else:
                finding.violations.append(f"unverifiable record from {record.actor!r}")
                finding.guilty.append(record.actor)

        witness_amount = 0
        for witness in (witness_records or []):
            if witness.get("exchange_id") == exchange_id and \
                    witness.get("action") == "validated-payment":
                witness_amount += int(witness.get("amount", 0))

        paid = [record for record in verified if record.action == "paid"]
        payment_received = [record for record in verified
                            if record.action == "received-payment"]
        service_provided = [record for record in verified
                            if record.action == "provided-service"]
        service_received = [record for record in verified
                            if record.action == "received-service"]

        customer = next((record.actor for record in verified
                         if record.role == "customer"), None)
        provider = next((record.actor for record in verified
                         if record.role == "provider"), None)

        # Violation 1: the customer claims payment the provider denies.
        if paid and not payment_received:
            if witness_amount > 0:
                finding.violations.append(
                    "provider denies a payment the validation agent witnessed")
                if provider:
                    finding.guilty.append(provider)
            else:
                finding.violations.append(
                    "customer claims an unwitnessed payment (claims to have paid "
                    "when it has not)")
                if customer:
                    finding.guilty.append(customer)

        # Violation 2: payment happened but no service was delivered.
        payment_happened = bool(payment_received) or witness_amount > 0
        if payment_happened and not service_provided and not service_received:
            finding.violations.append("payment was accepted but no service was provided")
            if provider:
                finding.guilty.append(provider)

        # Violation 3: the provider claims service the customer never acknowledged.
        if service_provided and not service_received and not payment_happened:
            finding.violations.append(
                "provider claims service for an exchange with no payment")
            if provider:
                finding.guilty.append(provider)

        # Violation 4: short payment relative to the agreed price.
        if expected_price is not None and payment_happened:
            received_total = sum(record.amount for record in payment_received) or witness_amount
            if received_total < expected_price:
                finding.violations.append(
                    f"payment of {received_total} is below the agreed price {expected_price}")
                if customer:
                    finding.guilty.append(customer)

        if not relevant:
            finding.notes.append("no records for this exchange")
        finding.guilty = sorted(set(finding.guilty))
        return finding
