"""Metered migration: charging agents for services to contain runaways (paper section 3).

"We also hoped that electronic cash would provide a mechanism for
controlling run-away agents.  Specifically, charging for services would
limit possible damage by a run-away agent."

The kernel already has a blunt step budget; this module implements the
economic mechanism the paper actually proposes: a *metered* ``rexec`` that
charges a toll (in ECUs, drawn from the travelling agent's own wallet and
validated through the local validation agent) before shipping the agent.
An agent that runs out of cash simply cannot move any further — its damage
radius is bounded by its funding, no matter how buggy or malicious its
code is.

Usage::

    install_metering(kernel, mint, toll=1)
    fund_briefcase(mint, briefcase, amount=5)      # agent can afford 5 hops
    kernel.launch(origin, "runaway", briefcase)    # will be stopped after 5 hops

The metered rexec keeps the standard name ``rexec`` so *every* migration in
the system — including ``ctx.jump`` — goes through the toll booth; the
original behaviour is reinstalled under ``rexec_unmetered`` for system
workloads that must stay free (none of the standard agents need it).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cash.mint import Mint
from repro.cash.validation import VALIDATION_AGENT_NAME, make_validation_behaviour
from repro.cash.wallet import ECUS_FOLDER, Wallet
from repro.core.briefcase import CONTACT_FOLDER, HOST_FOLDER, Briefcase
from repro.core.context import AgentContext
from repro.core.errors import InsufficientFundsError
from repro.core.kernel import Kernel
from repro.net.message import MessageKind

__all__ = ["make_metered_rexec", "install_metering", "fund_briefcase",
           "toll_revenue", "TOLL_CABINET"]

#: site-local cabinet where collected tolls are banked
TOLL_CABINET = "tolls"
#: name the unmetered rexec is preserved under after install_metering
UNMETERED_REXEC = "rexec_unmetered"


def fund_briefcase(mint: Mint, briefcase: Briefcase, amount: int,
                   denomination: int = 1) -> int:
    """Put *amount* ECUs (in ``denomination``-sized coins) into a briefcase wallet."""
    coins = [denomination] * (amount // denomination)
    remainder = amount - sum(coins)
    if remainder:
        coins.append(remainder)
    Wallet(briefcase).deposit(mint.issue_many(coins))
    return amount


def make_metered_rexec(toll: int = 1,
                       validation_agent: str = VALIDATION_AGENT_NAME) -> Callable:
    """Build a rexec behaviour that charges *toll* ECUs per migration.

    The toll is taken from the travelling briefcase's own ``ECUS`` folder,
    validated (and thereby retired) through the local validation agent, and
    banked in the site's ``tolls`` cabinet.  A briefcase that cannot pay is
    not shipped; the meet ends with ``False`` and a ``METERING`` folder
    explains why, so a *legitimate* caller can react (top up, go home),
    while a runaway simply stops spreading.
    """

    def metered_rexec_behaviour(ctx: AgentContext, briefcase: Briefcase):
        host = briefcase.get(HOST_FOLDER)
        contact = briefcase.get(CONTACT_FOLDER, "ag_py")
        if host is None:
            ctx.log("metered rexec: briefcase has no HOST folder")
            yield ctx.end_meet(False)
            return False
        if host == ctx.site_name:
            # Local "moves" are free, exactly like the unmetered rexec.
            result = yield ctx.meet(contact, briefcase)
            yield ctx.end_meet(True)
            return result.value if result is not None else True

        if toll > 0:
            wallet = Wallet(briefcase, ECUS_FOLDER)
            try:
                payment, paid_total = wallet.select_payment(toll)
            except InsufficientFundsError:
                briefcase.set("METERING", {"refused": True, "reason": "insufficient funds",
                                           "toll": toll, "balance": wallet.balance(),
                                           "at": ctx.now})
                ctx.cabinet(TOLL_CABINET).put("refusals", {
                    "agent": ctx.agent_name, "toll": toll, "balance": wallet.balance(),
                    "at": ctx.now})
                ctx.log(f"metered rexec: refused transfer to {host!r} "
                        f"(balance {wallet.balance()} < toll {toll})")
                yield ctx.end_meet(False)
                return False

            # Validate (retire) the toll so copies of it are worthless, then
            # bank the fresh replacement coins in the site's toll cabinet.
            validation_request = Briefcase()
            submit = validation_request.folder("SUBMIT", create=True)
            for ecu in payment:
                submit.push(ecu.to_wire())
            result = yield ctx.meet(validation_agent, validation_request)
            validated = result.value or 0
            if validated < toll:
                # The agent tried to pay with bad money; treat as unpaid.
                briefcase.set("METERING", {"refused": True, "reason": "invalid payment",
                                           "toll": toll, "at": ctx.now})
                ctx.cabinet(TOLL_CABINET).put("refusals", {
                    "agent": ctx.agent_name, "toll": toll, "reason": "invalid payment",
                    "at": ctx.now})
                yield ctx.end_meet(False)
                return False
            till = ctx.cabinet(TOLL_CABINET)
            for record in validation_request.folder("FRESH", create=True).elements():
                till.put("collected", record)
            # Overshoot beyond the toll (paying a 5-ECU coin for a 1-ECU toll)
            # is noted rather than refunded — funding with 1-ECU coins avoids
            # it entirely, and a real deployment would run the split protocol
            # of the validation agent here.
            change = validated - toll
            if change > 0:
                briefcase.set("METERING_CHANGE_OWED", change)

        accepted = yield ctx.transmit(host, contact, briefcase,
                                      kind=MessageKind.AGENT_TRANSFER)
        if not accepted:
            ctx.log(f"metered rexec: transfer to {host!r} was refused by the network")
        yield ctx.end_meet(bool(accepted))
        return bool(accepted)

    return metered_rexec_behaviour


def install_metering(kernel: Kernel, mint: Mint, toll: int = 1,
                     validation_behaviour: Optional[Callable] = None) -> None:
    """Meter every migration in *kernel*: toll ECUs per inter-site hop.

    Installs (a) a validation agent backed by *mint* at every site (unless
    one is already installed), (b) the metered rexec under the well-known
    ``rexec`` name, and (c) the original rexec under ``rexec_unmetered``.
    """
    from repro.sysagents.rexec import rexec_behaviour

    validator = validation_behaviour or make_validation_behaviour(mint)
    metered = make_metered_rexec(toll=toll)
    for site_name in kernel.site_names():
        site = kernel.site(site_name)
        if not site.is_installed(VALIDATION_AGENT_NAME):
            site.install(VALIDATION_AGENT_NAME, validator, system=True)
        site.install(UNMETERED_REXEC, rexec_behaviour, system=True, replace=True)
        site.install("rexec", metered, system=True, replace=True)


def toll_revenue(kernel: Kernel) -> int:
    """Total toll value collected across every site (experiment metric)."""
    total = 0
    for site_name in kernel.site_names():
        cabinet = kernel.site(site_name).cabinet(TOLL_CABINET)
        total += sum(int(record.get("amount", 0))
                     for record in cabinet.elements("collected")
                     if isinstance(record, dict))
    return total
