"""The trusted validation agent (paper section 3).

"To solve this problem, a trusted *validation agent* is employed.  This
agent can check whether a record it is shown corresponds to a valid ECU.
If it is valid, then a record for an equivalent ECU is returned, but this
record has a new random number (effectively retiring an old bill and
replacing it by a new one)."

The behaviour is a closure over a :class:`~repro.cash.mint.Mint` (shared by
every site that installs the agent — the mint plays the role the UNIX
security mechanisms played in the prototype).  Protocol, all through the
briefcase of the meet:

* ``SUBMIT`` — folder of ECU wire records to validate;
* ``OP`` — optional; ``"validate"`` (default) or ``"split"``;
* ``SPLIT`` — for ``"split"``: the desired denominations of the first
  submitted ECU;
* results: ``FRESH`` (replacement ECU records), ``REJECTED`` (each element a
  dict with the offending record and the reason), ``VALIDATED_TOTAL``.

The validation agent also acts as the *witness* for audits: every
successful validation appends a signed record to the local ``audit``
cabinet keyed by the optional ``EXCHANGE_ID`` folder.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cash.crypto import Signer
from repro.cash.ecu import ECU
from repro.cash.mint import Mint
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.errors import InvalidECUError

__all__ = ["make_validation_behaviour", "VALIDATION_AGENT_NAME"]

#: the well-known name validation agents are installed under
VALIDATION_AGENT_NAME = "validation"


def make_validation_behaviour(mint: Mint,
                              signer: Optional[Signer] = None) -> Callable:
    """Build a validation-agent behaviour bound to *mint*.

    The same behaviour object can be installed at many sites; the mint is
    the single source of truth about serial validity (the "trusted" part).
    """
    witness = signer or Signer(f"{mint.mint_id}-validation")

    def validation_behaviour(ctx: AgentContext, briefcase: Briefcase):
        fresh = briefcase.folder("FRESH", create=True)
        rejected = briefcase.folder("REJECTED", create=True)
        operation = briefcase.get("OP", "validate")
        exchange_id = briefcase.get("EXCHANGE_ID")
        validated_total = 0

        records = []
        if briefcase.has("SUBMIT"):
            records = briefcase.folder("SUBMIT").elements()

        for position, record in enumerate(records):
            try:
                ecu = ECU.from_wire(record)
            except InvalidECUError as exc:
                rejected.push({"record": record, "reason": str(exc)})
                continue
            split = None
            if operation == "split" and position == 0 and briefcase.has("SPLIT"):
                split = [int(amount) for amount in briefcase.folder("SPLIT").elements()]
            try:
                replacements = mint.retire_and_reissue(ecu, split=split)
            except InvalidECUError as exc:
                rejected.push({"record": record, "reason": str(exc)})
                continue
            validated_total += ecu.amount
            for replacement in replacements:
                fresh.push(replacement.to_wire())

        briefcase.set("VALIDATED_TOTAL", validated_total)

        # Witness record for the audit scheme of section 3: the validation
        # agent documents that value moved, without knowing from whom to whom.
        if exchange_id is not None and validated_total > 0:
            payload = f"{exchange_id}:validated:{validated_total}"
            ctx.cabinet("audit").put("witness", {
                "exchange_id": exchange_id,
                "action": "validated-payment",
                "amount": validated_total,
                "at": ctx.now,
                "witness": witness.principal,
                "signature": witness.sign(payload),
            })

        yield ctx.end_meet(validated_total)
        return validated_total

    return validation_behaviour
