"""ECU records: the electronic cash unit of paper section 3.

"The solution we adopted was to implement each unit of electronic cash
(ECU) as a record containing an amount and a large random number.  Only
certain of these random numbers appear on the records for valid ECUs."

An :class:`ECU` is therefore a small immutable record: an amount (integer
currency units), the serial, and the mint's certificate over the pair.
Whether the serial is *currently* valid is the mint's knowledge, not the
record's — copies of spent ECUs look exactly like the original, which is
the whole double-spending problem the validation agent solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.errors import InvalidECUError

__all__ = ["ECU"]


@dataclass(frozen=True)
class ECU:
    """One electronic cash unit: amount + serial + mint certificate."""

    amount: int
    serial: int
    certificate: str
    mint_id: str = "tacoma-mint"

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise InvalidECUError(f"ECU amount must be positive, got {self.amount}")
        if self.serial < 0:
            raise InvalidECUError("ECU serial must be non-negative")

    def to_wire(self) -> Dict[str, object]:
        """Plain-dict form stored in folders and shipped between sites."""
        return {
            "amount": self.amount,
            "serial": self.serial,
            "certificate": self.certificate,
            "mint_id": self.mint_id,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "ECU":
        """Rebuild an ECU from :meth:`to_wire` output."""
        try:
            return cls(
                amount=int(payload["amount"]),
                serial=int(payload["serial"]),
                certificate=str(payload["certificate"]),
                mint_id=str(payload.get("mint_id", "tacoma-mint")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidECUError(f"malformed ECU record: {payload!r}") from exc

    def __repr__(self) -> str:
        return f"ECU(amount={self.amount}, serial=...{self.serial % 100000:05d})"
