"""The mint: the authority that knows which ECU serials are valid.

The mint is the state behind the trusted *validation agent* (paper
section 3).  It records, for each valid serial, the amount it is worth —
and nothing else.  In particular it never records who owns or transfers an
ECU, which is how the untraceability requirement is met: "the validation
agent does not require knowledge of the source or destination of a
transfer."

Retiring a serial and issuing a replacement is one atomic operation
(:meth:`retire_and_reissue`) so a crash between the two cannot destroy
money in the simulation.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cash.crypto import generate_serial, serial_certificate, verify_certificate
from repro.cash.ecu import ECU
from repro.core.errors import InvalidECUError

__all__ = ["Mint"]


class Mint:
    """Issues ECUs, validates them, and retires spent serials."""

    def __init__(self, mint_id: str = "tacoma-mint", seed: Optional[int] = None):
        self.mint_id = mint_id
        self.rng = random.Random(seed)
        self._secret = self.rng.getrandbits(256).to_bytes(32, "big")
        #: serial -> amount for every currently valid ECU
        self._valid: Dict[int, int] = {}
        #: serials that were once valid and have been retired (spent)
        self._retired: Dict[int, int] = {}
        self._lock = threading.Lock()
        # Ledger counters for experiment E4.
        self.issued_count = 0
        self.validated_count = 0
        self.rejected_count = 0
        self.double_spend_attempts = 0

    # -- issuing -----------------------------------------------------------------

    def issue(self, amount: int) -> ECU:
        """Create a brand-new ECU worth *amount*."""
        if amount <= 0:
            raise InvalidECUError(f"cannot issue an ECU worth {amount}")
        with self._lock:
            serial = self._fresh_serial()
            self._valid[serial] = amount
            self.issued_count += 1
        return ECU(amount=amount, serial=serial,
                   certificate=serial_certificate(self._secret, serial, amount),
                   mint_id=self.mint_id)

    def issue_many(self, amounts: Iterable[int]) -> List[ECU]:
        """Issue one ECU per amount in *amounts*."""
        return [self.issue(amount) for amount in amounts]

    def _fresh_serial(self) -> int:
        while True:
            serial = generate_serial(self.rng)
            if serial not in self._valid and serial not in self._retired:
                return serial

    # -- validation ---------------------------------------------------------------

    def check(self, ecu: ECU) -> Tuple[bool, str]:
        """Is *ecu* currently spendable?  Returns (ok, reason)."""
        if ecu.mint_id != self.mint_id:
            return False, "foreign mint"
        if not verify_certificate(self._secret, ecu.serial, ecu.amount, ecu.certificate):
            return False, "forged certificate"
        with self._lock:
            if ecu.serial in self._retired:
                return False, "retired serial (double spend)"
            if self._valid.get(ecu.serial) != ecu.amount:
                return False, "unknown serial"
        return True, "valid"

    def retire_and_reissue(self, ecu: ECU,
                           split: Optional[List[int]] = None) -> List[ECU]:
        """Atomically retire *ecu* and return replacement ECU(s).

        With *split* the replacement is a list of ECUs whose amounts are
        *split* (they must sum to the retired amount) — this is how change is
        made.  Raises :class:`InvalidECUError` if the ECU is not valid, and
        counts the attempt as a double spend when the serial was retired.
        """
        ok, reason = self.check(ecu)
        if not ok:
            self.rejected_count += 1
            if "double spend" in reason:
                self.double_spend_attempts += 1
            raise InvalidECUError(f"ECU rejected: {reason}")
        amounts = split if split is not None else [ecu.amount]
        if sum(amounts) != ecu.amount or any(amount <= 0 for amount in amounts):
            raise InvalidECUError(
                f"split {amounts} does not preserve the retired amount {ecu.amount}")
        with self._lock:
            del self._valid[ecu.serial]
            self._retired[ecu.serial] = ecu.amount
            self.validated_count += 1
            fresh: List[ECU] = []
            for amount in amounts:
                serial = self._fresh_serial()
                self._valid[serial] = amount
                self.issued_count += 1
                fresh.append(ECU(amount=amount, serial=serial,
                                 certificate=serial_certificate(self._secret, serial, amount),
                                 mint_id=self.mint_id))
        return fresh

    # -- conservation accounting -----------------------------------------------------

    def outstanding_value(self) -> int:
        """Total value of all currently valid ECUs (the money supply)."""
        with self._lock:
            return sum(self._valid.values())

    def retired_value(self) -> int:
        """Total value that has passed through retirement (audit statistic)."""
        with self._lock:
            return sum(self._retired.values())

    def valid_serial_count(self) -> int:
        """Number of currently valid serials."""
        with self._lock:
            return len(self._valid)

    def __repr__(self) -> str:
        return (f"Mint({self.mint_id!r}, outstanding={self.outstanding_value()}, "
                f"valid_serials={self.valid_serial_count()})")
