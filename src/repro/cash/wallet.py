"""Wallets: how agents carry ECUs in their briefcases.

"Each agent stores records for the ECUs it owns.  An agent transfers funds
by placing these records in a briefcase that is then passed to the intended
recipient of those funds."  A :class:`Wallet` is a thin view over a folder
(by convention named ``ECUS``) in a briefcase or cabinet: it parses the ECU
records, selects coins for a payment, and writes the remainder back.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cash.ecu import ECU
from repro.core.briefcase import Briefcase
from repro.core.errors import InsufficientFundsError
from repro.core.folder import Folder

__all__ = ["Wallet", "ECUS_FOLDER"]

#: conventional folder name for carried cash
ECUS_FOLDER = "ECUS"


class Wallet:
    """A view over the ECU records stored in a briefcase folder."""

    def __init__(self, briefcase: Briefcase, folder_name: str = ECUS_FOLDER):
        self._briefcase = briefcase
        self._folder_name = folder_name

    # -- reading ------------------------------------------------------------------

    def _folder(self) -> Folder:
        return self._briefcase.folder(self._folder_name, create=True)

    def ecus(self) -> List[ECU]:
        """Every ECU currently in the wallet."""
        return [ECU.from_wire(record) for record in self._folder().elements()]

    def balance(self) -> int:
        """Total face value carried."""
        return sum(ecu.amount for ecu in self.ecus())

    def __len__(self) -> int:
        return len(self._folder())

    # -- writing -------------------------------------------------------------------

    def deposit(self, ecus: List[ECU]) -> None:
        """Add ECU records to the wallet."""
        folder = self._folder()
        for ecu in ecus:
            folder.push(ecu.to_wire())

    def replace_all(self, ecus: List[ECU]) -> None:
        """Overwrite the wallet contents with *ecus*."""
        folder = self._folder()
        folder.clear()
        for ecu in ecus:
            folder.push(ecu.to_wire())

    # -- payments ------------------------------------------------------------------

    def select_payment(self, amount: int) -> Tuple[List[ECU], int]:
        """Pick ECUs covering *amount* and remove them from the wallet.

        Returns ``(selected, total_selected)`` where ``total_selected >=
        amount`` (the excess is change the payee's validation step returns).
        Raises :class:`InsufficientFundsError` when the balance is too small;
        the wallet is left untouched in that case.
        """
        if amount <= 0:
            return [], 0
        available = self.ecus()
        if sum(ecu.amount for ecu in available) < amount:
            raise InsufficientFundsError(
                f"wallet holds {sum(e.amount for e in available)}, needs {amount}")
        # Greedy: spend smallest coins first so large coins stay for later
        # payments and the amount of change stays small.
        available.sort(key=lambda ecu: ecu.amount)
        selected: List[ECU] = []
        total = 0
        for ecu in available:
            if total >= amount:
                break
            selected.append(ecu)
            total += ecu.amount
        remaining = [ecu for ecu in available if ecu not in selected]
        self.replace_all(remaining)
        return selected, total

    def pay_into(self, other: Briefcase, amount: int,
                 folder_name: Optional[str] = None) -> int:
        """Move ECUs worth at least *amount* into another briefcase's folder.

        Returns the total face value actually transferred.  This is the
        paper's funds transfer: "placing these records in a briefcase that
        is then passed to the intended recipient."
        """
        selected, total = self.select_payment(amount)
        target = Wallet(other, folder_name or self._folder_name)
        target.deposit(selected)
        return total

    def __repr__(self) -> str:
        return f"Wallet(folder={self._folder_name!r}, balance={self.balance()})"
