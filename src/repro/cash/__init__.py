"""Electronic cash for agents (paper section 3).

The pieces:

* :class:`~repro.cash.ecu.ECU` — amount + large random serial + mint certificate;
* :class:`~repro.cash.mint.Mint` — knows which serials are valid; retires and reissues;
* :class:`~repro.cash.wallet.Wallet` — ECUs carried in a briefcase folder;
* :func:`~repro.cash.validation.make_validation_behaviour` — the trusted validation agent;
* :mod:`~repro.cash.exchange` — vendors, mobile shoppers, and the cheating modes;
* :mod:`~repro.cash.audit` — signed action records and the third-party auditor.
"""

from repro.cash.audit import (AuditFinding, Auditor, AuditRecord, KeyDirectory, make_record,
                              record_payload)
from repro.cash.crypto import Signer, generate_serial
from repro.cash.ecu import ECU
from repro.cash.exchange import (identity_for, make_vendor_behaviour, shopper_behaviour,
                                 signer_from_identity)
from repro.cash.metering import (TOLL_CABINET, fund_briefcase, install_metering,
                                 make_metered_rexec, toll_revenue)
from repro.cash.mint import Mint
from repro.cash.validation import VALIDATION_AGENT_NAME, make_validation_behaviour
from repro.cash.wallet import ECUS_FOLDER, Wallet

__all__ = [
    "ECU", "Mint", "Wallet", "ECUS_FOLDER",
    "Signer", "generate_serial",
    "VALIDATION_AGENT_NAME", "make_validation_behaviour",
    "make_vendor_behaviour", "shopper_behaviour", "identity_for", "signer_from_identity",
    "AuditRecord", "AuditFinding", "Auditor", "KeyDirectory", "make_record", "record_payload",
    "install_metering", "make_metered_rexec", "fund_briefcase", "toll_revenue", "TOLL_CABINET",
]
