"""Exchanging funds for services: vendors, shoppers, and cheats (paper section 3).

"It must not be possible to obtain a service without paying for it or to
pay without obtaining the service."  The paper rejects transactions and
relies on documented actions plus audits.  This module provides the two
participant behaviours the experiments use:

* :func:`make_vendor_behaviour` — a service provider installed at a site
  under a well-known name.  It validates payment through the local
  validation agent (retiring the customer's ECUs), provides the service,
  and documents what it did.
* :func:`shopper_behaviour` — a mobile customer that travels to the vendor's
  site, pays out of the wallet in its briefcase, consumes the service,
  documents its side, and carries the audit records home.

Both sides support the cheating modes the paper worries about, so the E4
experiment can show that the validation agent stops double spending and
that audits attribute the remaining frauds correctly:

* customer ``"double_spend"`` — pays with copies of already-spent ECUs;
* customer ``"claim_paid"`` — pays nothing but documents a payment;
* vendor ``"no_service"`` — accepts payment and provides nothing;
* vendor ``"deny_payment"`` — accepts payment but documents nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cash.audit import make_record
from repro.cash.crypto import Signer
from repro.cash.validation import VALIDATION_AGENT_NAME
from repro.cash.wallet import ECUS_FOLDER, Wallet
from repro.core.briefcase import Briefcase
from repro.core.context import AgentContext
from repro.core.errors import InsufficientFundsError

__all__ = ["make_vendor_behaviour", "shopper_behaviour", "identity_for", "signer_from_identity"]


# ---------------------------------------------------------------------------
# identities carried in briefcases
# ---------------------------------------------------------------------------

def identity_for(signer: Signer) -> Dict[str, str]:
    """The briefcase-carriable form of a principal's signing identity (toy crypto)."""
    return {"principal": signer.principal, "secret_hex": signer._secret.hex()}  # noqa: SLF001


def signer_from_identity(identity: Dict[str, str]) -> Signer:
    """Rebuild a signer from :func:`identity_for` output."""
    return Signer(identity["principal"], secret=bytes.fromhex(identity["secret_hex"]))


# ---------------------------------------------------------------------------
# the vendor (service provider)
# ---------------------------------------------------------------------------

def make_vendor_behaviour(price: int, signer: Signer,
                          service: Optional[Callable[[Briefcase], object]] = None,
                          service_name: str = "service",
                          cheat: Optional[str] = None) -> Callable:
    """Build a vendor behaviour with the given price, identity and (optional) cheat."""

    def default_service(briefcase: Briefcase) -> object:
        return {"service": service_name, "exchange": briefcase.get("EXCHANGE_ID")}

    provide = service or default_service

    def vendor_behaviour(ctx: AgentContext, briefcase: Briefcase):
        exchange_id = briefcase.get("EXCHANGE_ID", f"exchange-{ctx.agent_id}")
        audit_cabinet = ctx.cabinet("audit")
        till = ctx.cabinet("till")

        # 1. Validate whatever payment the customer handed over.  The
        #    submitted records are retired by the mint, so copies held by the
        #    customer become worthless — this is the double-spend defence.
        validation_request = Briefcase()
        if briefcase.has("PAYMENT"):
            submit = validation_request.folder("SUBMIT", create=True)
            for record in briefcase.folder("PAYMENT").elements():
                submit.push(record)
        validation_request.set("EXCHANGE_ID", exchange_id)
        result = yield ctx.meet(VALIDATION_AGENT_NAME, validation_request)
        validated_total = result.value or 0

        rejected = []
        if validation_request.has("REJECTED"):
            rejected = validation_request.folder("REJECTED").elements()
        if rejected:
            briefcase.set("PAYMENT_REJECTED", [entry["reason"] for entry in rejected])

        paid_enough = validated_total >= price

        # 2. Bank the fresh (reissued) ECUs in the site-local till.
        if validation_request.has("FRESH"):
            till_wallet = Wallet(_cabinet_briefcase(till), ECUS_FOLDER)
            till_wallet.deposit(
                [_ecu_from(record) for record in validation_request.folder("FRESH").elements()])

        # 3. Document the vendor's side (unless it is the denying cheat).
        if paid_enough and cheat != "deny_payment":
            record = make_record(signer, exchange_id, "provider", "received-payment",
                                 validated_total, ctx.now)
            audit_cabinet.put("records", record.to_wire())
            briefcase.folder("AUDIT", create=True).push(record.to_wire())

        # 4. Provide the service (unless cheating or unpaid).
        provided = False
        if paid_enough and cheat not in ("no_service", "deny_payment"):
            briefcase.set("SERVICE_RESULT", provide(briefcase))
            provided = True
            record = make_record(signer, exchange_id, "provider", "provided-service",
                                 price, ctx.now)
            audit_cabinet.put("records", record.to_wire())
            briefcase.folder("AUDIT", create=True).push(record.to_wire())

        # 5. Return change, if the till can make it.
        change_due = max(0, validated_total - price) if paid_enough else validated_total
        if change_due > 0 and cheat is None:
            till_wallet = Wallet(_cabinet_briefcase(till), ECUS_FOLDER)
            try:
                till_wallet.pay_into(briefcase, change_due, folder_name="CHANGE")
            except InsufficientFundsError:
                briefcase.set("CHANGE_OWED", change_due)

        summary = {
            "exchange_id": exchange_id,
            "validated_total": validated_total,
            "paid_enough": paid_enough,
            "provided": provided,
            "rejected": len(rejected),
        }
        briefcase.set("VENDOR_SUMMARY", summary)
        yield ctx.end_meet(summary)
        return summary

    return vendor_behaviour


def _cabinet_briefcase(cabinet) -> Briefcase:
    """Adapt a cabinet to the Wallet API by wrapping its ECUS folder in a briefcase.

    The wallet mutates the folder in place, and the folder object lives in
    the cabinet, so deposits/withdrawals are durable at the site.
    """
    briefcase = Briefcase()
    briefcase.add(cabinet.folder(ECUS_FOLDER, create=True))
    return briefcase


def _ecu_from(record):
    from repro.cash.ecu import ECU
    return ECU.from_wire(record)


# ---------------------------------------------------------------------------
# the shopper (mobile customer)
# ---------------------------------------------------------------------------

def shopper_behaviour(ctx: AgentContext, briefcase: Briefcase):
    """A mobile customer: travel to the vendor, pay, consume, document, go home.

    Briefcase folders (set up by the workload that launches the shopper):

    * ``HOME`` / ``VENDOR_SITE`` / ``VENDOR_NAME`` — itinerary;
    * ``PRICE`` — agreed price;
    * ``EXCHANGE_ID`` — identifier both parties use in audit records;
    * ``IDENTITY`` — :func:`identity_for` of the customer's signer;
    * ``ECUS`` — the wallet;
    * ``CHEAT`` — optional cheat mode (``"double_spend"`` / ``"claim_paid"``);
    * ``SPENT_COPIES`` — for the double spender: ECU records it already spent.

    Results deposited at HOME in the ``purchases`` cabinet: the vendor
    summary, audit records of both sides, and whether the service arrived.
    """
    home = briefcase.get("HOME")
    vendor_site = briefcase.get("VENDOR_SITE")
    vendor_name = briefcase.get("VENDOR_NAME", "vendor")
    price = briefcase.get("PRICE", 0)
    exchange_id = briefcase.get("EXCHANGE_ID", f"exchange-{ctx.agent_id}")
    cheat = briefcase.get("CHEAT")
    phase = briefcase.get("PHASE", "start")

    if phase == "start" and ctx.site_name != vendor_site:
        briefcase.set("PHASE", "shop")
        yield ctx.jump(briefcase, vendor_site)
        return "travelling-to-vendor"

    if phase in ("start", "shop") and ctx.site_name == vendor_site:
        signer = signer_from_identity(briefcase.get("IDENTITY"))
        wallet = Wallet(briefcase, ECUS_FOLDER)
        purchase = Briefcase()
        purchase.set("EXCHANGE_ID", exchange_id)
        purchase.set("CUSTOMER", signer.principal)

        paid_amount = 0
        payment = purchase.folder("PAYMENT", create=True)
        if cheat == "double_spend" and briefcase.has("SPENT_COPIES"):
            for record in briefcase.folder("SPENT_COPIES").elements():
                payment.push(record)
                paid_amount += int(record.get("amount", 0))
        elif cheat == "claim_paid":
            paid_amount = 0  # hands over nothing at all
        else:
            try:
                paid_amount = wallet.pay_into(purchase, price, folder_name="PAYMENT")
            except InsufficientFundsError:
                briefcase.set("OUTCOME", "insufficient-funds")
                paid_amount = 0

        # Document the customer's side.  The honest customer documents what
        # it actually paid; the "claim_paid" cheat documents the full price.
        documented = price if cheat == "claim_paid" else paid_amount
        if documented > 0 or cheat == "claim_paid":
            record = make_record(signer, exchange_id, "customer", "paid",
                                 documented, ctx.now)
            briefcase.folder("AUDIT", create=True).push(record.to_wire())

        summary = None
        if paid_amount > 0 or cheat in ("claim_paid", "double_spend"):
            result = yield ctx.meet(vendor_name, purchase)
            summary = result.value

        # Collect results: service, change, and the vendor's audit records.
        if purchase.has("SERVICE_RESULT"):
            briefcase.set("SERVICE_RESULT", purchase.get("SERVICE_RESULT"))
            record = make_record(signer, exchange_id, "customer", "received-service",
                                 price, ctx.now)
            briefcase.folder("AUDIT", create=True).push(record.to_wire())
        if purchase.has("CHANGE"):
            Wallet(briefcase, ECUS_FOLDER).deposit(
                [_ecu_from(rec) for rec in purchase.folder("CHANGE").elements()])
        if purchase.has("AUDIT"):
            audit = briefcase.folder("AUDIT", create=True)
            for record in purchase.folder("AUDIT").elements():
                audit.push(record)
        briefcase.set("VENDOR_SUMMARY", purchase.get("VENDOR_SUMMARY", summary))

        briefcase.set("PHASE", "home")
        if home is not None and home != ctx.site_name:
            yield ctx.jump(briefcase, home)
            return "travelling-home"
        # fall through when home is the vendor site

    if briefcase.get("PHASE") == "home" or ctx.site_name == home:
        outcome = {
            "exchange_id": exchange_id,
            "got_service": briefcase.has("SERVICE_RESULT"),
            "vendor_summary": briefcase.get("VENDOR_SUMMARY"),
            "remaining_balance": Wallet(briefcase, ECUS_FOLDER).balance(),
            "cheat": cheat,
            "outcome": briefcase.get("OUTCOME", "completed"),
        }
        cabinet = ctx.cabinet("purchases")
        cabinet.put("outcomes", outcome)
        if briefcase.has("AUDIT"):
            for record in briefcase.folder("AUDIT").elements():
                cabinet.put("audit", record)
        yield ctx.sleep(0)
        return outcome
    return "unexpected-phase"
