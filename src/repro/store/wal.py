"""The write-ahead log: committed redo records for durable cabinets.

The WAL is *logical*: each record carries the full serialized state of one
folder at commit time (``elements`` is the folder's raw byte elements, or
``None`` for a deletion).  Replaying records in order therefore converges —
the last record for a folder wins — which is exactly the property the
group commit relies on: every mutation between two commits collapses into
one record per dirty folder.

Sizes are tracked because the store's cost model charges
bytes-proportional work: a commit of N records carrying B payload bytes is
priced ``write_latency * N + write_byte_latency * B + fsync_latency``
through the shared :class:`~repro.flow.CostModel` (see
:meth:`~repro.store.policy.StoreCosts.wal_cost_model`), so
:attr:`WalRecord.size_bytes` is load-bearing, not just telemetry.
:meth:`WriteAheadLog.fold_into` lets the snapshot layer compact old
records into base images (see :mod:`repro.store.snapshot`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["WalRecord", "WalSink", "WriteAheadLog", "apply_states"]

#: a collapsed per-folder state map: (cabinet, folder) -> elements (None = deleted)
FolderStates = Dict[Tuple[str, str], Optional[Tuple[bytes, ...]]]


def apply_states(states: FolderStates,
                 images: Dict[str, Dict[str, Tuple[bytes, ...]]]) -> None:
    """Apply collapsed folder states to per-cabinet base *images* in place.

    The single definition of redo semantics — compaction
    (:meth:`WriteAheadLog.fold_into`) and recovery
    (:meth:`SiteStore.durable_state`) both go through here, so they can
    never disagree about what a deletion record means.
    """
    for (cabinet, folder), elements in states.items():
        image = images.setdefault(cabinet, {})
        if elements is None:
            image.pop(folder, None)
        else:
            image[folder] = elements


class WalRecord:
    """One committed redo record: the durable state of one folder."""

    __slots__ = ("seq", "cabinet", "folder", "elements", "size_bytes",
                 "committed_at")

    def __init__(self, seq: int, cabinet: str, folder: str,
                 elements: Optional[Tuple[bytes, ...]], committed_at: float):
        self.seq = seq
        self.cabinet = cabinet
        self.folder = folder
        #: raw stored elements at commit time; None records a deletion
        self.elements = elements
        self.size_bytes = sum(len(item) for item in elements) if elements else 0
        self.committed_at = committed_at

    def __repr__(self) -> str:
        what = "DEL" if self.elements is None else f"{len(self.elements)} elems"
        return (f"WalRecord(#{self.seq} {self.cabinet}/{self.folder}: {what}, "
                f"{self.size_bytes}B @ {self.committed_at:.4f})")


class WalSink:
    """Where committed redo records additionally land, beyond the logical log.

    The base class is the no-op used by the sim backend: commits are
    priced by the cost model, nothing touches the filesystem.  The
    realtime backend substitutes :class:`repro.rt.FileWalSink`, which
    appends each group commit to a real file and pays a real ``fsync``.
    The sink is a write-only mirror — recovery always replays the
    logical :class:`WriteAheadLog`, so swapping sinks can never change
    crash/recovery semantics.
    """

    def commit(self, records: Sequence["WalRecord"]) -> None:
        """One group commit's records became durable."""

    def close(self) -> None:
        """Release any held resources; idempotent."""


class WriteAheadLog:
    """An append-only list of committed redo records for one site."""

    def __init__(self) -> None:
        self._records: List[WalRecord] = []
        self._next_seq = 1
        #: total records ever committed (survives compaction, for ledgers)
        self.total_committed = 0

    # -- writing -----------------------------------------------------------

    def commit(self, captures: Iterable[Tuple[str, str, Optional[Tuple[bytes, ...]]]],
               at: float) -> List[WalRecord]:
        """Append one group commit's captured folder states; returns the records."""
        records = []
        for cabinet, folder, elements in captures:
            record = WalRecord(self._next_seq, cabinet, folder, elements, at)
            self._next_seq += 1
            self._records.append(record)
            records.append(record)
        self.total_committed += len(records)
        return records

    # -- reading -----------------------------------------------------------

    @property
    def records(self) -> List[WalRecord]:
        """The committed redo records not yet folded into a snapshot."""
        return self._records

    @property
    def bytes_pending(self) -> int:
        """Payload bytes across the records awaiting compaction."""
        return sum(record.size_bytes for record in self._records)

    def __len__(self) -> int:
        return len(self._records)

    def replay_states(self) -> FolderStates:
        """Collapse the redo records into final per-folder states (last wins)."""
        states: FolderStates = {}
        for record in self._records:
            states[(record.cabinet, record.folder)] = record.elements
        return states

    # -- compaction --------------------------------------------------------

    def fold_into(self, images: Dict[str, Dict[str, Tuple[bytes, ...]]]) -> int:
        """Apply every record to the base *images* and truncate the log.

        Returns the number of records folded.  ``images`` maps cabinet name
        to ``{folder name: raw elements}``; a deletion record removes the
        folder from the image.
        """
        folded = len(self._records)
        apply_states(self.replay_states(), images)
        self._records = []
        return folded

    def __repr__(self) -> str:
        return (f"WriteAheadLog({len(self._records)} records pending replay, "
                f"{self.total_committed} ever committed)")
