"""Durable storage for file cabinets (paper section 6).

The paper says cabinets "can be flushed to disk when permanence is
required".  Before this subsystem existed, permanence was free and fake:
``Kernel.crash_site`` killed every resident agent while every in-memory
cabinet silently survived, so crash experiments never paid a durability
cost and never lost un-flushed state.

:class:`SiteStore` makes permanence a real, priced resource.  Each site
owns one store holding

* a write-ahead log (:mod:`repro.store.wal`) whose group commit is batched
  on the *simulated* clock — per-record write latency plus one fsync per
  commit, the classic amortisation;
* snapshot/compaction (:mod:`repro.store.snapshot`) folding old redo
  records into per-cabinet base images so recovery does not replay history
  forever;
* a pluggable :class:`DurabilityPolicy` (:mod:`repro.store.policy`):
  ``none`` (the legacy free-permanence model), ``flush-on-demand``
  (explicit synchronous checkpoints) and ``wal-group-commit`` (journal
  every cabinet mutation, commit in batches).

Crash semantics become honest end to end: ``Kernel.crash_site`` discards
un-logged cabinet state (emitting a ``state lost`` kernel event),
``Kernel.recover_site`` replays snapshot + WAL with a modelled recovery
delay before the site accepts traffic, and the durability counters are
surfaced in :class:`~repro.net.stats.NetworkStats`.
"""

from repro.store.policy import (POLICIES, DurabilityPolicy, FlushOnDemand, NoDurability,
                                StoreCosts, WalGroupCommit, resolve_policy)
from repro.store.sitestore import SiteStore
from repro.store.snapshot import CabinetImage, capture_cabinet, restore_cabinet
from repro.store.wal import WalRecord, WriteAheadLog

__all__ = [
    "DurabilityPolicy", "NoDurability", "FlushOnDemand", "WalGroupCommit",
    "POLICIES", "resolve_policy", "StoreCosts",
    "WalRecord", "WriteAheadLog",
    "CabinetImage", "capture_cabinet", "restore_cabinet",
    "SiteStore",
]
