"""The per-site durable store: dirty tracking, group commit, crash, recovery.

One :class:`SiteStore` sits beside each :class:`~repro.core.site.Site`
when the kernel runs with a durable policy.  Cabinets opt in through
:meth:`make_durable`; their mutations (routed through the cabinet API)
mark folders dirty, and the configured :class:`DurabilityPolicy` decides
when dirty state becomes durable:

* ``wal-group-commit`` — the first dirty mutation arms a commit event
  ``commit_window`` simulated seconds out; when it fires, the dirty
  folders are captured into WAL redo records and become durable once the
  batched write (+ one fsync) completes.  A crash in that window loses the
  whole batch — that is the honesty the experiments measure.
* ``flush-on-demand`` — nothing is durable until :meth:`flush` runs; the
  flush returns the simulated delay the caller must sleep (agents use
  ``yield from wait_until_durable(ctx)``).

Write costs come from the shared flow-control layer: the disk is a
:class:`~repro.flow.CostModel` (per-record base + bytes-proportional term
+ one fsync per sync), so a commit's price scales with the payload bytes
its redo records carry, not just their count.  Commit *timing* is owned by
a :class:`~repro.flow.CommitGovernor`: normally the full
``commit_window``, but a pending durability barrier (an agent blocked in
``wait_until_durable`` — e.g. the FT layer's pre-jump checkpoint)
*piggybacks* on the group commit, shipping the in-flight batch
immediately instead of waiting out the window.

Crash and recovery are driven by the kernel: :meth:`on_crash` discards all
volatile cabinet state (durable cabinets are rebuilt later, non-durable
ones are simply gone) and reports what was lost;
:meth:`begin_recovery`/:meth:`complete_recovery` model replaying snapshot
images + WAL with a delay proportional to the state replayed, during which
the site refuses traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import StoreError
from repro.core.timing import Scheduler
from repro.flow import CommitGovernor
from repro.store.policy import DurabilityPolicy, StoreCosts
from repro.store.snapshot import (CabinetImage, capture_cabinet, capture_folder,
                                  image_folder_count, restore_cabinet)
from repro.store.wal import WalSink, WriteAheadLog, apply_states

__all__ = ["SiteStore"]

#: a captured folder state awaiting (or part of) a commit
Capture = Tuple[str, str, Optional[Tuple[bytes, ...]]]


class SiteStore:
    """Durable storage for one site's file cabinets."""

    def __init__(self, site, loop: Scheduler, policy: DurabilityPolicy,
                 costs: StoreCosts, stats,
                 log_event: Optional[Callable[[str, str, str], None]] = None,
                 governor: Optional[CommitGovernor] = None,
                 sink: Optional[WalSink] = None, obs=None):
        if not policy.durable:
            raise StoreError("a SiteStore needs a durable policy; "
                             "policy 'none' builds no stores")
        self.site = site
        #: any Scheduler: the sim EventLoop or the realtime AsyncioScheduler
        self.loop = loop
        #: where committed records additionally land (no-op under sim;
        #: a real fsynced file under realtime with store_realtime_dir)
        self.sink = sink if sink is not None else WalSink()
        self.policy = policy
        self.costs = costs
        #: whether a pending durability barrier commits the batch early;
        #: the commit window itself stays on ``costs`` (read live)
        self.governor = governor if governor is not None else CommitGovernor()
        self.stats = stats
        self._log = log_event or (lambda agent, site_name, message: None)
        #: the owning kernel's tracer (repro.obs); None or disabled keeps
        #: the store span-free
        self.obs = obs
        self._obs_sync_span = None

        self.wal = WriteAheadLog()
        #: per-cabinet base images the WAL is compacted into
        self.images: Dict[str, CabinetImage] = {}
        #: cabinet names that opted into durability
        self.durable_cabinets: set = set()

        #: (cabinet, folder) pairs mutated since the last capture, in order
        self._dirty: Dict[Tuple[str, str], None] = {}
        self._commit_event = None
        #: captures whose batched write+fsync is still in progress
        self._inflight: Optional[List[Capture]] = None
        self._inflight_done_at = 0.0
        self._finalize_event = None
        #: monotonic journal position: bumped per mutation; a capture
        #: records the position it covers, and _durable_through advances
        #: when its sync completes — the exact predicate behind barriers
        self._mutation_counter = 0
        self._inflight_through = 0
        self._durable_through = 0
        #: True while recovery rebuilds cabinets (suppresses journaling)
        self._restoring = False

        self.recovering = False
        self._recovery_token = 0
        self._recovery_delay = 0.0

    # ------------------------------------------------------------------
    # opt-in and journaling
    # ------------------------------------------------------------------

    def make_durable(self, cabinet_name: str) -> None:
        """Opt the named cabinet into durability.

        Contents present at opt-in time become the cabinet's base image
        (durable immediately, a setup-time courtesy); everything after
        that follows the policy.  The cabinet need not exist yet — a
        later ``site.cabinet(name)`` is adopted automatically.
        """
        if cabinet_name in self.durable_cabinets:
            return
        self.durable_cabinets.add(cabinet_name)
        if self.site.has_cabinet(cabinet_name):
            cabinet = self.site.cabinet(cabinet_name)
            self.adopt(cabinet)
            self.images[cabinet_name] = capture_cabinet(cabinet)
        else:
            self.images[cabinet_name] = {}

    def adopt(self, cabinet) -> None:
        """Attach the journaling hook to *cabinet* if it is durable."""
        if cabinet.name in self.durable_cabinets:
            name = cabinet.name
            cabinet.attach_store(lambda folder_name: self._on_mutation(name, folder_name))

    def _on_mutation(self, cabinet_name: str, folder_name: str) -> None:
        """A durable cabinet mutated: journal it per the policy."""
        if self._restoring or not self.policy.tracks_mutations:
            return
        self.stats.record_wal_append()
        self._mutation_counter += 1
        self._dirty[(cabinet_name, folder_name)] = None
        if self.policy.group_commit:
            self._arm_commit(self.costs.commit_window)

    @property
    def dirty_count(self) -> int:
        """(cabinet, folder) pairs whose durable image is stale (tests)."""
        return len(self._dirty) + (len(self._inflight) if self._inflight else 0)

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------

    def _capture_dirty(self) -> List[Capture]:
        """Freeze the current state of every dirty folder; clears the set."""
        captures: List[Capture] = []
        for cabinet_name, folder_name in self._dirty:
            elements: Optional[Tuple[bytes, ...]] = None
            if self.site.has_cabinet(cabinet_name):
                cabinet = self.site.cabinet(cabinet_name)
                if cabinet.has(folder_name):
                    elements = capture_folder(cabinet.folder(folder_name))
            captures.append((cabinet_name, folder_name, elements))
        self._dirty.clear()
        return captures

    @staticmethod
    def _captures_bytes(captures: List[Capture]) -> int:
        """Payload bytes the captured folder states carry (deletions are free)."""
        return sum(sum(len(element) for element in elements)
                   for _, _, elements in captures if elements)

    def _dirty_bytes_estimate(self) -> int:
        """Payload bytes the dirty set would capture right now.

        Reads the live folders' raw (already serialized) elements, so the
        estimate is exact for the current state — though a batch can still
        grow or shrink before its commit actually captures it, which is why
        barrier callers loop.
        """
        total = 0
        for cabinet_name, folder_name in self._dirty:
            if self.site.has_cabinet(cabinet_name):
                cabinet = self.site.cabinet(cabinet_name)
                if cabinet.has(folder_name):
                    total += sum(len(element) for element
                                 in cabinet.folder(folder_name).raw_elements())
        return total

    @property
    def cost_model(self):
        """The disk's shared price model (per record, per byte, per fsync).

        Derived live from ``self.costs`` so tests swapping the cost table
        on a running store see their prices — and the commit window, which
        also lives on ``costs`` — take effect immediately.
        """
        return self.costs.wal_cost_model()

    def _write_cost(self, n_records: int, size_bytes: int = 0) -> float:
        """Simulated seconds to write *n_records* (*size_bytes* of payload)
        and fsync once — the shared cost model's pricing of the disk."""
        return self.cost_model.cost(items=n_records, size_bytes=size_bytes,
                                    syncs=1)

    def _arm_commit(self, delay: float) -> None:
        """Arm the group-commit event *delay* out (at most one armed at a time)."""
        if self._commit_event is None:
            self._commit_event = self.loop.schedule(
                delay, self._commit, label=f"store-commit-{self.site.name}")

    def _rearm_commit(self, at: float) -> bool:
        """Pull the armed commit event forward to absolute time *at*.

        Used by barrier piggybacking when a sync is already on the disk:
        the dirty tail commits the moment the disk frees up instead of
        waiting out a fresh window.  Never pushes a commit later; returns
        whether the commit actually moved.
        """
        if self._commit_event is not None:
            if self._commit_event.time <= at + 1e-12:
                return False
            self._commit_event.cancel()
            self._commit_event = None
        self._arm_commit(max(0.0, at - self.loop.now))
        return True

    def _start_sync(self, captures: List[Capture]) -> float:
        """Begin the batched write+fsync for *captures*; returns its cost.

        The single place syncs are armed: the captures become durable only
        when :meth:`_finalize` runs, and they cover every mutation journaled
        up to now (``_inflight_through``).
        """
        cost = self._write_cost(len(captures), self._captures_bytes(captures))
        self._inflight = captures
        self._inflight_through = self._mutation_counter
        self._inflight_done_at = self.loop.now + cost
        if self.obs is not None and self.obs.active:
            # One span per batched write+fsync on the site's store
            # pseudo-trace; finished (or dropped) by _finalize / on_crash.
            from repro.obs import infra_trace_id
            self._obs_sync_span = self.obs.begin(
                infra_trace_id("store", self.site.name), "wal-commit",
                self.obs.next_key(self.site.name), kind="store",
                site=self.site.name,
                attrs={"records": len(captures),
                       "bytes": self._captures_bytes(captures)})
        self._finalize_event = self.loop.schedule(
            cost, self._finalize, label=f"store-fsync-{self.site.name}")
        return cost

    def _commit(self) -> None:
        """The armed group-commit fires: capture the batch, start the sync."""
        self._commit_event = None
        if self._inflight is not None:
            # The previous batch is still syncing (its write+fsync outlasted
            # the commit window): one sync at a time — defer this commit
            # until the in-flight one completes, never clobber it.
            self._arm_commit(max(0.0, self._inflight_done_at - self.loop.now))
            return
        captures = self._capture_dirty()
        if captures:
            self._start_sync(captures)

    def _finalize(self) -> None:
        """The batched write+fsync completed: the records are durable."""
        self._finalize_event = None
        if self._inflight is None:  # crashed while syncing
            return
        records = self.wal.commit(self._inflight, at=self.loop.now)
        self._inflight = None
        if self._obs_sync_span is not None:
            self.obs.finish(self._obs_sync_span, status="committed")
            self._obs_sync_span = None
        self._durable_through = self._inflight_through
        self.sink.commit(records)
        self.stats.record_wal_commit(
            len(records), sum(record.size_bytes for record in records))
        self._maybe_compact()

    def flush(self) -> float:
        """Start making every pending mutation durable (explicit checkpoint).

        The dirty state is captured immediately and the batched write+fsync
        is scheduled; the batch is durable only once that completes, so a
        crash inside the flush window still loses it — the same crash model
        as a group commit.  Returns the simulated delay the caller should
        sleep to ride out the sync (loop on :meth:`barrier` to be robust
        against concurrent flushes re-batching the sync).

        A sync already on the disk is never cancelled or restarted — doing
        so would let sustained flush traffic starve durability forever.
        Instead the dirty tail is queued behind it (a follow-up commit at
        the in-flight sync's completion) and the returned delay covers both.
        """
        if self._inflight is not None:
            if self._dirty:
                self._arm_commit(max(0.0, self._inflight_done_at - self.loop.now))
            wait = max(0.0, self._inflight_done_at - self.loop.now)
            if self._dirty:
                wait += self._write_cost(len(self._dirty),
                                         self._dirty_bytes_estimate())
            return wait
        if self._commit_event is not None:
            self._commit_event.cancel()
            self._commit_event = None
        captures = self._capture_dirty()
        if not captures:
            return 0.0
        return self._start_sync(captures)

    def mutation_mark(self) -> int:
        """The journal position of the most recent mutation.

        ``barrier(mark)`` with this value waits for exactly the state
        written so far — later mutations by other agents cannot starve the
        caller, and re-batched syncs cannot silently outlive its sleep.
        """
        return self._mutation_counter

    def is_durable(self, mark: int) -> bool:
        """True once every mutation journaled up to *mark* is durable."""
        return mark <= self._durable_through

    def _piggyback_commit(self) -> None:
        """A durability barrier is pending: ship the dirty batch now.

        The barrier rides the group-commit mechanism instead of waiting for
        it — further coalescing only adds latency to an agent that is
        already blocked.  With the disk free, the armed window commit is
        cancelled and the capture+sync starts immediately; with a sync
        already in flight, the dirty tail is queued to commit the moment
        the disk frees up (one sync at a time, never clobbered).
        """
        if not self._dirty:
            return
        if self._inflight is not None:
            # Counted only when the tail commit genuinely moved forward —
            # a commit already due at (or before) the disk's completion
            # was not accelerated by this barrier.
            if self._rearm_commit(self._inflight_done_at):
                self.stats.record_barrier_piggyback()
            return
        if self._commit_event is not None:
            self._commit_event.cancel()
            self._commit_event = None
        self.stats.record_barrier_piggyback()
        self._start_sync(self._capture_dirty())

    def barrier(self, mark: Optional[int] = None) -> float:
        """Simulated seconds to sleep before state up to *mark* is durable.

        The returned delay is an estimate (a batch can grow — and its sync
        lengthen — after the estimate), so callers that must not outrun the
        store loop until it reaches 0::

            delay = store.barrier(mark)
            while delay > 0:
                yield ctx.sleep(delay)
                delay = store.barrier(mark)

        The loop converges in a bounded number of rounds: once the commit
        covering *mark* has fired, the next estimate is the exact time left
        on its write+fsync.  With no *mark*, everything pending right now
        is awaited.  Flush-on-demand policies start the flush themselves.

        Under ``wal-group-commit`` with the governor's piggybacking on
        (the default), a barrier that would otherwise sit out the commit
        window triggers the commit immediately — the wait collapses to the
        batched write+fsync, which is the checkpoint-latency win the E13
        experiment measures.
        """
        if mark is None:
            mark = self._mutation_counter
        if self.is_durable(mark):
            return 0.0
        if self._inflight is not None and mark <= self._inflight_through:
            return max(0.0, self._inflight_done_at - self.loop.now)
        if not self.policy.group_commit:
            # The mark is still sitting in the dirty set: flush it.
            return self.flush()
        if self.governor.piggyback:
            self._piggyback_commit()
            if self._inflight is not None and mark <= self._inflight_through:
                return max(0.0, self._inflight_done_at - self.loop.now)
        elif self._dirty:  # defensive: dirty state must always have a commit armed
            self._arm_commit(self.costs.commit_window)
        candidates = []
        if self._inflight is not None:
            candidates.append(self._inflight_done_at)
        if self._commit_event is not None:
            candidates.append(self._commit_event.time
                              + self._write_cost(max(1, len(self._dirty)),
                                                 self._dirty_bytes_estimate()))
        if not candidates:
            return 0.0
        return max(0.0, max(candidates) - self.loop.now)

    def _maybe_compact(self) -> None:
        """Fold the WAL into the base images once it outgrows the threshold."""
        if len(self.wal) > self.costs.snapshot_threshold:
            folded = self.wal.fold_into(self.images)
            self.stats.record_store_snapshot(folded)

    # ------------------------------------------------------------------
    # crash and recovery
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """The site crashed: discard everything that was not durable yet."""
        lost_records = len(self._dirty) + (len(self._inflight) if self._inflight else 0)
        # Un-flushed durable folders: dirty pairs plus anything captured
        # into a sync that never completed (dirtied-then-removed folders
        # count too — the deletion was just as un-durable).
        lost_durable = set(self._dirty)
        if self._inflight is not None:
            lost_durable.update((cabinet_name, folder_name)
                                for cabinet_name, folder_name, _ in self._inflight)
        volatile_folders = len(lost_durable)
        for cabinet in self.site.cabinets():
            if cabinet.name not in self.durable_cabinets:
                volatile_folders += sum(1 for folder in cabinet.folders() if folder)
        if self._commit_event is not None:
            self._commit_event.cancel()
            self._commit_event = None
        if self._finalize_event is not None:
            self._finalize_event.cancel()
            self._finalize_event = None
        if self._obs_sync_span is not None:
            # The sync died with the site: the span still tells the story.
            self.obs.finish(self._obs_sync_span, status="crashed", aborted=True)
            self._obs_sync_span = None
        self._dirty.clear()
        self._inflight = None
        if self.recovering:
            self.abort_recovery()
        for cabinet in self.site.cabinets():
            cabinet.clear()
        self.stats.record_state_lost(volatile_folders, lost_records)
        if volatile_folders or lost_records:
            self._log("kernel", self.site.name,
                      f"state lost: {volatile_folders} un-flushed folders and "
                      f"{lost_records} un-committed records discarded")

    def begin_recovery(self) -> Tuple[float, int]:
        """Start replaying: returns (modelled delay, a token guarding completion).

        The token is invalidated by :meth:`abort_recovery` (a crash during
        replay), so a stale completion callback becomes a no-op.
        """
        if self.recovering:
            raise StoreError(f"site {self.site.name!r} is already recovering")
        self.recovering = True
        replayed = image_folder_count(self.images) + len(self.wal)
        self._recovery_delay = (self.costs.recovery_base
                                + self.costs.replay_latency * replayed)
        return self._recovery_delay, self._recovery_token

    def recovery_valid(self, token: int) -> bool:
        """True when a completion scheduled with *token* should still run."""
        return self.recovering and token == self._recovery_token

    def abort_recovery(self) -> None:
        """A crash interrupted the replay; the durable image is untouched."""
        self.recovering = False
        self._recovery_token += 1

    def complete_recovery(self) -> int:
        """Rebuild every durable cabinet from snapshot + WAL; returns folders restored."""
        if not self.recovering:
            raise StoreError(f"site {self.site.name!r} has no recovery in progress")
        self.recovering = False
        self._recovery_token += 1
        merged = self.durable_state()
        expected = sum(len(merged.get(name, {})) for name in self.durable_cabinets)
        restored = 0
        self._restoring = True
        try:
            for cabinet_name in self.durable_cabinets:
                cabinet = self.site.cabinet(cabinet_name)
                restored += restore_cabinet(cabinet, merged.get(cabinet_name, {}))
        finally:
            self._restoring = False
        self.stats.record_recovery(self._recovery_delay, restored,
                                   folders_lost=max(0, expected - restored))
        return restored

    def close(self) -> None:
        """Release the WAL sink's resources (idempotent; kernel-driven)."""
        self.sink.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def durable_state(self) -> Dict[str, CabinetImage]:
        """The current durable image: base snapshots with the WAL applied."""
        merged: Dict[str, CabinetImage] = {name: dict(image)
                                           for name, image in self.images.items()}
        apply_states(self.wal.replay_states(), merged)
        return merged

    def __repr__(self) -> str:
        return (f"SiteStore({self.site.name!r}, policy={self.policy.name!r}, "
                f"{len(self.durable_cabinets)} durable cabinets, "
                f"{len(self.wal)} WAL records, {len(self._dirty)} dirty)")
