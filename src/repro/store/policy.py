"""Durability policies and the store cost model.

A policy decides *when* cabinet state becomes durable; the
:class:`~repro.store.sitestore.SiteStore` provides the mechanisms (dirty
tracking, group commit, snapshots, replay).  Three policies ship with the
system:

``none``
    The legacy model: no store is built at all, cabinets survive crashes
    for free.  Kept as the explicit baseline so experiments can price it.
``flush-on-demand``
    Mutations are tracked but volatile until someone calls
    :meth:`SiteStore.flush` (or yields a durability barrier).  The flush is
    synchronous: the caller is charged write latency per dirty folder plus
    one fsync.
``wal-group-commit``
    Every cabinet mutation is journaled; an armed group-commit event fires
    ``commit_window`` simulated seconds after the first dirty mutation and
    makes the whole batch durable for one fsync.

Custom policies subclass :class:`DurabilityPolicy` and can be passed
directly as ``KernelConfig.durability``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.flow import CostModel

__all__ = ["DurabilityPolicy", "NoDurability", "FlushOnDemand", "WalGroupCommit",
           "POLICIES", "resolve_policy", "StoreCosts"]


@dataclass(frozen=True)
class StoreCosts:
    """Simulated-time prices of the durable store (from ``KernelConfig``)."""

    #: seconds charged per WAL record written at commit/flush time
    write_latency: float = 0.0002
    #: seconds charged per payload byte a WAL record carries — the
    #: bytes-proportional term of the disk's cost model, so a fat snapshot
    #: record genuinely costs more than a tiny counter update (the default
    #: models a ~100 MB/s log device)
    write_byte_latency: float = 0.00000001
    #: seconds charged per fsync (once per group commit or explicit flush)
    fsync_latency: float = 0.004
    #: group-commit window: how long the WAL batches appends before syncing
    commit_window: float = 0.05
    #: seconds charged per base-image folder / redo record replayed at recovery
    replay_latency: float = 0.0005
    #: fixed cost of beginning recovery (log scan, cabinet directory walk)
    recovery_base: float = 0.05
    #: committed redo records tolerated before compaction folds them into
    #: the base snapshot images
    snapshot_threshold: int = 256

    def wal_cost_model(self) -> CostModel:
        """The disk as a :class:`~repro.flow.CostModel`.

        One batched write of N records carrying B payload bytes costs
        ``write_latency * N + write_byte_latency * B + fsync_latency``
        — the same shared pricing shape the transports use for the wire.
        """
        return CostModel(base=self.write_latency,
                         per_byte=self.write_byte_latency,
                         sync=self.fsync_latency)


class DurabilityPolicy:
    """Base class: what a site store does about cabinet mutations.

    Attributes
    ----------
    durable:
        False only for :class:`NoDurability`; the kernel builds no stores
        when the policy is not durable.
    tracks_mutations:
        Mutations of durable cabinets mark folders dirty (needed by both
        explicit flushes and the WAL).
    group_commit:
        Dirty folders arm a group-commit event ``commit_window`` out; the
        batch becomes durable when the commit's write+fsync completes.
    """

    name = "abstract"
    durable = True
    tracks_mutations = True
    group_commit = False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class NoDurability(DurabilityPolicy):
    """Legacy free permanence: no store, cabinets survive crashes unpriced."""

    name = "none"
    durable = False
    tracks_mutations = False


class FlushOnDemand(DurabilityPolicy):
    """State becomes durable only at explicit, synchronous flush points."""

    name = "flush-on-demand"


class WalGroupCommit(DurabilityPolicy):
    """Journal every mutation; group-commit batches on the simulated clock."""

    name = "wal-group-commit"
    group_commit = True


POLICIES = {
    NoDurability.name: NoDurability,
    FlushOnDemand.name: FlushOnDemand,
    WalGroupCommit.name: WalGroupCommit,
}


def resolve_policy(spec: Union[str, DurabilityPolicy, None]) -> DurabilityPolicy:
    """Resolve a ``KernelConfig.durability`` value to a policy instance."""
    if spec is None:
        return NoDurability()
    if isinstance(spec, DurabilityPolicy):
        return spec
    if isinstance(spec, str):
        try:
            return POLICIES[spec]()
        except KeyError:
            raise ValueError(f"unknown durability policy {spec!r}; "
                             f"choose from {sorted(POLICIES)}") from None
    raise ValueError(f"cannot build a durability policy from {spec!r}")
