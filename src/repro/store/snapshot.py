"""Cabinet snapshots: base images the WAL is compacted into and replayed over.

A :class:`CabinetImage` is the durable byte-level state of one cabinet:
``{folder name: tuple of raw stored elements}``.  Images are what the
store keeps between group commits; recovery rebuilds live
:class:`~repro.core.cabinet.FileCabinet` objects from images plus the
WAL's redo records (see :meth:`SiteStore.complete_recovery`).

Capturing copies only references to the immutable ``bytes`` elements, so a
snapshot is cheap in real memory; the *simulated* cost of writing it is
charged by the store's cost model, not here.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.cabinet import FileCabinet
from repro.core.folder import Folder

__all__ = ["CabinetImage", "capture_folder", "capture_cabinet", "restore_cabinet",
           "image_folder_count"]

#: durable byte-level state of one cabinet: folder name -> raw elements
CabinetImage = Dict[str, Tuple[bytes, ...]]


def capture_folder(folder: Folder) -> Tuple[bytes, ...]:
    """The raw stored elements of *folder*, frozen."""
    return tuple(folder.raw_elements())


def capture_cabinet(cabinet: FileCabinet) -> CabinetImage:
    """Freeze the full byte-level state of *cabinet*."""
    return {folder.name: capture_folder(folder) for folder in cabinet.folders()}


def restore_cabinet(cabinet: FileCabinet, image: CabinetImage) -> int:
    """Rebuild *cabinet*'s contents from *image*; returns folders restored.

    The cabinet is cleared first, then every imaged folder is re-added so
    the cabinet's element indexes are rebuilt consistently.
    """
    cabinet.clear()
    for folder_name, elements in image.items():
        folder = Folder(folder_name)
        folder._elements = list(elements)  # noqa: SLF001 - byte-exact restore
        cabinet.add(folder)
    return len(image)


def image_folder_count(images: Dict[str, CabinetImage],
                       cabinet: Optional[str] = None) -> int:
    """Total folders held across *images* (or in one cabinet's image)."""
    if cabinet is not None:
        return len(images.get(cabinet, {}))
    return sum(len(image) for image in images.values())
