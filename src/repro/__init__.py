"""repro: a reproduction of "Operating System Support for Mobile Agents" (TACOMA, HotOS 1995).

The package layout mirrors the paper:

* :mod:`repro.core` — folders, briefcases, file cabinets, ``meet``, the kernel (section 2);
* :mod:`repro.net` — the simulated network, the rsh/TCP/Horus transports (section 6);
* :mod:`repro.flow` — flow control and cost models shared by the network and the
  durable store (adaptive batch windows, bytes-proportional pricing, commit governance);
* :mod:`repro.sysagents` — ``ag_py``, ``rexec``, courier, diffusion (sections 2, 6);
* :mod:`repro.cash` — electronic cash, validation, audits (section 3);
* :mod:`repro.scheduling` — brokers, monitors, tickets, protected agents (section 4);
* :mod:`repro.fault` — rear guards and fault-tolerant moves (section 5);
* :mod:`repro.apps` — StormCast and the agent-based mail system (section 6);
* :mod:`repro.bench` — shared benchmark harness for EXPERIMENTS.md.
"""

from repro.core import Briefcase, FileCabinet, Folder, Kernel, KernelConfig
from repro.net import (HorusTransport, RshTransport, TcpTransport, Topology, lan,
                       random_topology, ring, star, two_clusters)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Folder", "Briefcase", "FileCabinet", "Kernel", "KernelConfig",
    "Topology", "lan", "two_clusters", "ring", "star", "random_topology",
    "RshTransport", "TcpTransport", "HorusTransport",
]
