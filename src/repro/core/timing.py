"""The clock/scheduler seam every layer times itself against.

TACOMA's subsystems — transports, stores, failure detectors, shard
coordinators — all reduce their notion of time to three operations:
"what time is it", "run this at T", and "run this after dt".  This
module names that contract explicitly:

* :class:`Clock` — a monotonic source of "now" in seconds.
* :class:`Scheduler` — an event queue that orders callbacks by
  ``(time, sequence)`` and drives a :class:`Clock` forward as it runs.
* :class:`ScheduledEvent` — the cancellable handle a scheduler returns.

Two implementations exist:

* :class:`~repro.net.simclock.SimClock` / :class:`~repro.net.simclock.EventLoop`
  — the deterministic discrete-event pair every test and benchmark runs
  on (``KernelConfig(backend="sim")``, the default).  Time advances only
  when events fire; identical seeds give bit-identical runs.
* :class:`~repro.rt.WallClock` / :class:`~repro.rt.AsyncioScheduler` —
  the wall-clock pair (``backend="realtime"``): the same heap of events,
  but each gap to the next due event is a real ``asyncio`` sleep, so
  scheduled latencies become measured latencies.

The protocols are structural (:func:`typing.runtime_checkable`
:class:`typing.Protocol`): any object with the right surface satisfies
them, no inheritance required.  Components should annotate against these
types rather than importing ``EventLoop`` directly.

:data:`default_timer` is the one process-wide wall-clock timer used for
measuring real elapsed time (benchmark walls, shard busy-time
attribution).  Components take it as an injectable
``timer: Callable[[], float] = default_timer`` parameter so tests can
substitute fake timers.
"""

from __future__ import annotations

import time
from typing import (Any, Callable, Iterable, List, Optional, Protocol,
                    Sequence, runtime_checkable)

__all__ = ["Clock", "ScheduledEvent", "Scheduler", "default_timer",
           "PAST_EPSILON"]

#: timestamps this far in the past are forgiven (float jitter from callers
#: computing ``now + dt - dt``); anything older is a scheduling bug under
#: the sim backend.  The realtime scheduler is more forgiving — wall time
#: moves between computing a deadline and scheduling it — and clamps late
#: timestamps to "now" instead.
PAST_EPSILON = 1e-9

#: the process-wide wall-clock timer: monotonic, high-resolution seconds.
#: The single default behind every ``timer=`` parameter in the codebase.
default_timer: Callable[[], float] = time.perf_counter


@runtime_checkable
class Clock(Protocol):
    """A monotonic source of "now" in seconds.

    ``_advance_to`` is the scheduler-facing half of the contract: the
    simulated clock literally jumps to the event's timestamp, while the
    wall clock only raises a logical floor (real time has already
    passed).  It never moves backwards.
    """

    @property
    def now(self) -> float:
        """Current time in seconds."""
        ...

    def _advance_to(self, timestamp: float) -> None:
        """Advance (never rewind) the clock to *timestamp*."""
        ...


@runtime_checkable
class ScheduledEvent(Protocol):
    """The cancellable handle a :class:`Scheduler` returns."""

    time: float
    cancelled: bool

    def cancel(self) -> None:
        """Prevent the callback from firing; idempotent."""
        ...


@runtime_checkable
class Scheduler(Protocol):
    """An event queue ordering callbacks by ``(time, sequence)``.

    Everything that looks like concurrency in the agent system — meets,
    migrations, delivery latencies, heartbeats, group commits — is a
    callback scheduled here.  Same-timestamp events fire in scheduling
    order, which is what keeps the sim backend deterministic and the
    realtime backend faithful to it.
    """

    clock: Clock

    @property
    def now(self) -> float:
        """Current time (convenience mirror of ``clock.now``)."""
        ...

    @property
    def pending(self) -> int:
        """Not-yet-cancelled events still queued."""
        ...

    @property
    def processed(self) -> int:
        """Events executed so far."""
        ...

    def schedule(self, delay: float, callback: Callable[[], Any],
                 label: str = "") -> ScheduledEvent:
        """Run *callback* after *delay* seconds."""
        ...

    def schedule_many(self, entries: Iterable[Sequence]) -> List[ScheduledEvent]:
        """Schedule a batch of ``(delay, callback[, label])`` entries."""
        ...

    def schedule_at(self, timestamp: float, callback: Callable[[], Any],
                    label: str = "") -> ScheduledEvent:
        """Run *callback* at absolute time *timestamp*."""
        ...

    def step(self) -> bool:
        """Execute the next event; False when the queue is empty."""
        ...

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or *max_events* fire)."""
        ...

    def run_until(self, timestamp: float,
                  max_events: Optional[int] = None) -> int:
        """Run events with time <= *timestamp*."""
        ...

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or None."""
        ...
