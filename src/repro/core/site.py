"""Sites: the places where agents execute.

"Each site in our system runs a Tcl interpreter, which provides the place
where agents execute" (paper section 6).  A :class:`Site` owns the
site-local file cabinets, the table of agents installed under well-known
names (``rexec``, ``ag_py``, the broker, ...), per-kind message hooks used
by lower-level subsystems, and the load/capacity attributes the scheduling
experiments manipulate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.cabinet import FileCabinet
from repro.core.errors import UnknownAgentError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.agent import AgentInstance

__all__ = ["Site"]

#: signature of a per-kind message hook: hook(message) -> None
MessageHook = Callable[[Message], None]


class Site:
    """One place in the network where agents can execute."""

    def __init__(self, name: str, capacity: float = 1.0):
        self.name = name
        #: relative processing capacity; the scheduling experiments vary this
        self.capacity = capacity
        #: synthetic load added by workloads (e.g. "this machine is busy")
        self.background_load = 0.0
        #: False while the site is crashed
        self.alive = True
        #: how many times this site has crashed (ledger for experiments)
        self.crash_count = 0
        self._cabinets: Dict[str, FileCabinet] = {}
        #: name -> (behaviour, is_system_agent)
        self._installed: Dict[str, Tuple[Callable, bool]] = {}
        self._message_hooks: Dict[str, MessageHook] = {}
        #: total messages that arrived addressed to an unknown contact
        self.undeliverable = 0
        #: live index of resident (non-terminal) agent instances, keyed by
        #: agent id.  Maintained by the kernel on start/finish/kill/arrival
        #: so per-site queries cost O(residents), not O(all agents ever).
        self._residents: Dict[str, "AgentInstance"] = {}
        #: the durable store attached by the kernel when it runs with a
        #: durability policy other than "none" (see :mod:`repro.store`);
        #: None means legacy free permanence — cabinets survive crashes.
        self.store = None

    # -- installed agents ---------------------------------------------------------

    def install(self, name: str, behaviour: Callable, system: bool = False,
                replace: bool = False) -> None:
        """Install *behaviour* under the well-known *name* at this site."""
        if name in self._installed and not replace:
            existing, _ = self._installed[name]
            if existing is not behaviour:
                raise UnknownAgentError(
                    f"site {self.name!r} already has an agent installed as {name!r}")
        self._installed[name] = (behaviour, system)

    def uninstall(self, name: str) -> None:
        """Remove an installed agent (no effect if absent)."""
        self._installed.pop(name, None)

    def installed_names(self) -> List[str]:
        """Names of every agent installed at this site."""
        return list(self._installed)

    def is_installed(self, name: str) -> bool:
        """True if an agent named *name* is installed here."""
        return name in self._installed

    def resolve(self, name: str) -> Tuple[Callable, bool]:
        """Return ``(behaviour, is_system)`` for the installed agent *name*."""
        try:
            return self._installed[name]
        except KeyError:
            raise UnknownAgentError(
                f"site {self.name!r} has no agent installed under {name!r}") from None

    # -- resident agents ----------------------------------------------------------
    #
    # The resident index is maintained by the kernel's lifecycle ledger
    # (:class:`~repro.core.lifecycle.AgentTable`): ``register`` calls
    # ``add_resident`` and ``retire`` calls ``remove_resident``, so the
    # index can never disagree with the ledger.

    def add_resident(self, instance: "AgentInstance") -> None:
        """Index *instance* as resident here (lifecycle-ledger handshake)."""
        self._residents[instance.agent_id] = instance

    def remove_resident(self, agent_id: str) -> None:
        """Drop an agent from the resident index (no effect if absent)."""
        self._residents.pop(agent_id, None)

    def has_resident(self, agent_id: str) -> bool:
        """True if the agent is currently indexed as resident here (O(1))."""
        return agent_id in self._residents

    def residents(self) -> List["AgentInstance"]:
        """The resident (non-terminal) agent instances, in arrival order."""
        return list(self._residents.values())

    def resident_count(self) -> int:
        """How many non-terminal agents are currently resident (O(1))."""
        return len(self._residents)

    # -- file cabinets ----------------------------------------------------------------

    def attach_store(self, store) -> None:
        """Attach a durable :class:`~repro.store.SiteStore` to this site."""
        self.store = store
        for cabinet in self._cabinets.values():
            store.adopt(cabinet)

    def cabinet(self, name: str = "default") -> FileCabinet:
        """Return the named cabinet, creating it on first use."""
        if name not in self._cabinets:
            cabinet = FileCabinet(name, site=self.name)
            self._cabinets[name] = cabinet
            if self.store is not None:
                self.store.adopt(cabinet)
        return self._cabinets[name]

    def has_cabinet(self, name: str) -> bool:
        """True if the cabinet already exists (without creating it)."""
        return name in self._cabinets

    def cabinets(self) -> List[FileCabinet]:
        """Every cabinet at this site."""
        return list(self._cabinets.values())

    def flush_cabinets(self, directory: str) -> List[str]:
        """Flush every cabinet to *directory*; returns the written paths."""
        return [cabinet.flush(directory) for cabinet in self._cabinets.values()]

    # -- message hooks -------------------------------------------------------------------

    def set_message_hook(self, kind: str, hook: MessageHook) -> None:
        """Route arriving messages of *kind* to *hook* instead of the default path."""
        self._message_hooks[kind] = hook

    def message_hook(self, kind: str) -> Optional[MessageHook]:
        """The hook registered for *kind*, if any."""
        return self._message_hooks.get(kind)

    # -- load model ---------------------------------------------------------------------

    def load_metric(self, active_agents: int) -> float:
        """Load as seen by the monitor agent: queued work normalised by capacity."""
        capacity = self.capacity if self.capacity > 0 else 1e-9
        return (active_agents + self.background_load) / capacity

    # -- failure state --------------------------------------------------------------------

    def mark_crashed(self) -> None:
        """Record a crash.

        What the crash does to cabinet contents is the durability policy's
        business, not this ledger's: with policy ``none`` (no store
        attached) cabinets survive untouched — the legacy free-permanence
        model — while a durable store discards un-flushed state and
        rebuilds the durable part at recovery (see :mod:`repro.store`).
        """
        self.alive = False
        self.crash_count += 1

    def mark_recovered(self) -> None:
        """Record recovery from a crash."""
        self.alive = True

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        return (f"Site({self.name!r}, {status}, {len(self._installed)} agents installed, "
                f"{len(self._residents)} resident, {len(self._cabinets)} cabinets)")
