"""Agent model: specifications, running instances, and lifecycle states.

An *agent* in TACOMA is just code plus a briefcase; at runtime the kernel
wraps that in an :class:`AgentInstance`, which owns the behaviour generator
and the bookkeeping the experiments read (steps executed, sites visited,
result, failure cause).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.briefcase import Briefcase

__all__ = ["AgentState", "AgentSpec", "AgentInstance"]

_agent_counter = itertools.count(1)


class AgentState:
    """Lifecycle states of an agent instance."""

    CREATED = "created"     # instantiated, not yet stepped
    RUNNING = "running"     # currently executing or scheduled to execute
    WAITING = "waiting"     # blocked on a meet, a sleep, or a transmit
    DONE = "done"           # behaviour returned (or yielded Terminate)
    FAILED = "failed"       # behaviour raised an unhandled exception
    KILLED = "killed"       # site crash or kernel enforcement killed it

    TERMINAL = (DONE, FAILED, KILLED)

    @classmethod
    def is_terminal(cls, state: str) -> bool:
        """True once the agent can never run again."""
        return state in cls.TERMINAL


@dataclass
class AgentSpec:
    """What is needed to start an agent: a behaviour, a briefcase, a place.

    ``code_element`` is the shippable description of the behaviour (see
    :mod:`repro.core.codec`); it is what ``ctx.jump`` re-attaches to the
    briefcase when the agent moves.
    """

    behaviour: Callable
    briefcase: Briefcase = field(default_factory=Briefcase)
    name: Optional[str] = None
    site: Optional[str] = None
    code_element: Optional[Dict[str, Any]] = None
    system: bool = False


class AgentInstance:
    """A running (or finished) agent at a site.

    The kernel owns these; user code sees them mainly through the kernel's
    ledger when collecting results, and through ``ctx`` while running.

    A ``__slots__`` class: high-population workloads keep hundreds of
    thousands of these alive at once, and the slot layout roughly halves
    the per-instance overhead.  Terminal instances can be archived into
    compact :class:`~repro.core.lifecycle.AgentRecord` objects by the
    lifecycle ledger's retention policies; records duck-type the read-only
    surface below (``state``, ``result``, ``finished``, ``ok``, ...).
    """

    __slots__ = ("agent_id", "spec", "name", "site_name", "briefcase", "state",
                 "system", "parent_id", "meet_parent", "meet_ended", "generator",
                 "result", "error", "steps", "started_at", "finished_at",
                 "visited", "children")

    def __init__(self, spec: AgentSpec, site_name: str,
                 parent_id: Optional[str] = None, meet_parent: Optional[str] = None):
        self.agent_id = f"agent-{next(_agent_counter):06d}"
        self.spec = spec
        self.name = spec.name or self.agent_id
        self.site_name = site_name
        self.briefcase = spec.briefcase
        self.state = AgentState.CREATED
        self.system = spec.system
        #: agent that spawned this one (None for kernel launches)
        self.parent_id = parent_id
        #: agent currently blocked in a meet on this agent (None outside meets)
        self.meet_parent = meet_parent
        #: True once this agent has terminated its current meet
        self.meet_ended = meet_parent is None
        #: generator produced by calling the behaviour (None until started)
        self.generator = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.steps = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: every site this logical agent has executed at (itinerary trace)
        self.visited: List[str] = [site_name]
        #: ids of agents this one spawned or met
        self.children: List[str] = []

    # -- state helpers -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the agent reached a terminal state."""
        return AgentState.is_terminal(self.state)

    @property
    def ok(self) -> bool:
        """True if the agent finished normally."""
        return self.state == AgentState.DONE

    def mark_running(self) -> None:
        self.state = AgentState.RUNNING

    def mark_waiting(self) -> None:
        self.state = AgentState.WAITING

    def mark_done(self, result: Any, at: float) -> None:
        self.state = AgentState.DONE
        self.result = result
        self.finished_at = at

    def mark_failed(self, error: BaseException, at: float) -> None:
        self.state = AgentState.FAILED
        self.error = error
        self.finished_at = at

    def mark_killed(self, at: float, reason: str = "site crash") -> None:
        self.state = AgentState.KILLED
        self.error = RuntimeError(reason)
        self.finished_at = at

    def close_generator(self) -> None:
        """Close the behaviour generator, running its ``finally:`` blocks.

        Every terminal path must call this: an abandoned suspended generator
        keeps its frame (and everything the frame references) alive and its
        cleanup code never runs.  Closing an exhausted or never-started
        generator is a no-op; a generator that refuses to stop (swallows
        GeneratorExit or raises during cleanup) is abandoned rather than
        allowed to take the kernel down.
        """
        generator = self.generator
        if generator is None:
            return
        self.generator = None
        try:
            generator.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"AgentInstance({self.agent_id} name={self.name!r} "
                f"site={self.site_name!r} state={self.state})")
