"""Agent lifecycle ledger: the :class:`AgentTable` and its retention policies.

The kernel used to keep every :class:`~repro.core.agent.AgentInstance` ever
launched in one flat dict.  That was fine for the paper-scale experiments,
but a million-agent churn workload pins a briefcase, a spec and a closed
generator frame per agent forever, and name lookups scan the whole history.
The :class:`AgentTable` extracts that bookkeeping into a subsystem:

* **registration** — instances enter the table exactly once; the table also
  performs the per-site resident-index handshake (``site.add_resident`` on
  registration, ``site.remove_resident`` on retirement) so the index can
  never disagree with the ledger;
* **retirement** — every terminal path (finish, fail, kill) funnels through
  :meth:`AgentTable.retire`, which updates the O(1) state counters and then
  applies the configured :class:`RetentionPolicy`;
* **retention** — ``keep-all`` keeps the full instance (the historical
  behaviour), ``keep-results`` archives terminal agents into compact
  :class:`AgentRecord` objects (dropping briefcases, specs and generator
  references while keeping results readable), and ``keep-counts`` evicts
  all but the most recent N terminal agents so the ledger itself stays
  bounded;
* **indexes** — a name index makes ``agents_named`` O(instances with that
  name) instead of O(all agents ever), and the state counters back the
  kernel's ``counters()`` snapshot without any scan.

The kernel's public API (``agents``, ``agent``, ``agents_named``,
``result_of``, ``counters``) is unchanged — it delegates here.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Sequence, Union

from repro.core.agent import AgentInstance, AgentState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.site import Site

__all__ = [
    "AgentRecord", "AgentTable", "MergedAgentTable",
    "RetentionPolicy", "KeepAll", "KeepResults", "KeepCounts",
    "make_retention", "RETENTION_POLICIES",
]


class AgentRecord:
    """Compact archive of a terminal agent.

    Keeps only what result-collection and post-mortem queries read: identity,
    final state, result/error, timing and the itinerary trace.  The
    briefcase, the spec (behaviour callable, code element) and the generator
    reference are deliberately dropped — they are what make a retired
    :class:`AgentInstance` expensive to retain.

    Records duck-type the read-only surface of an instance (``state``,
    ``result``, ``finished``, ``site_name``...), so ledger consumers do not
    need to distinguish the two.
    """

    __slots__ = ("agent_id", "name", "site_name", "state", "result", "error",
                 "steps", "parent_id", "started_at", "finished_at", "visited")

    def __init__(self, instance: AgentInstance):
        self.agent_id = instance.agent_id
        self.name = instance.name
        self.site_name = instance.site_name
        self.state = instance.state
        self.result = instance.result
        self.error = instance.error
        self.steps = instance.steps
        self.parent_id = instance.parent_id
        self.started_at = instance.started_at
        self.finished_at = instance.finished_at
        self.visited = tuple(instance.visited)

    @property
    def finished(self) -> bool:
        """Records only exist for terminal agents."""
        return True

    @property
    def ok(self) -> bool:
        """True if the archived agent finished normally."""
        return self.state == AgentState.DONE

    def __repr__(self) -> str:
        return (f"AgentRecord({self.agent_id} name={self.name!r} "
                f"site={self.site_name!r} state={self.state})")


#: either a live instance or its archived record
LedgerEntry = Union[AgentInstance, AgentRecord]


class RetentionPolicy:
    """What happens to an agent's ledger entry when it reaches a terminal state.

    ``archive`` maps the terminal instance to the entry the table should
    retain (the instance itself, a compact record, or ``None`` to drop it);
    ``enforce`` runs after each retirement and may evict older terminal
    entries (see :class:`KeepCounts`).
    """

    name = "abstract"
    #: policies that evict by recency need the table's terminal-order queue;
    #: the others skip it so keep-all does not grow a parallel id history
    tracks_terminal_order = False

    def archive(self, instance: AgentInstance) -> Optional[LedgerEntry]:
        raise NotImplementedError

    def enforce(self, table: "AgentTable") -> None:
        """Post-retirement hook; the default keeps everything."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class KeepAll(RetentionPolicy):
    """Retain the full instance forever — the historical kernel behaviour."""

    name = "keep-all"

    def archive(self, instance: AgentInstance) -> LedgerEntry:
        return instance


class KeepResults(RetentionPolicy):
    """Archive terminal agents into compact :class:`AgentRecord` objects.

    ``result_of``/``agent``/``agents_named`` keep working for every agent
    ever launched, but the briefcase, spec and generator no longer pin
    memory once the agent is terminal.
    """

    name = "keep-results"

    def archive(self, instance: AgentInstance) -> LedgerEntry:
        return AgentRecord(instance)


class KeepCounts(RetentionPolicy):
    """Keep compact records for only the most recent *max_terminal* agents.

    Older terminal agents are evicted from the ledger entirely (the state
    counters remain exact); looking one up afterwards raises
    ``UnknownAgentError``, exactly as if the id had never existed.  This is
    the policy for unbounded churn workloads where the ledger itself must
    stay O(residents + max_terminal).
    """

    name = "keep-counts"
    tracks_terminal_order = True

    def __init__(self, max_terminal: int = 10_000):
        if max_terminal < 0:
            raise ValueError(f"max_terminal must be >= 0, got {max_terminal}")
        self.max_terminal = max_terminal

    def archive(self, instance: AgentInstance) -> LedgerEntry:
        return AgentRecord(instance)

    def enforce(self, table: "AgentTable") -> None:
        while len(table.terminal_order) > self.max_terminal:
            table.evict_oldest_terminal()

    def __repr__(self) -> str:
        return f"KeepCounts(max_terminal={self.max_terminal})"


RETENTION_POLICIES = {
    KeepAll.name: KeepAll,
    KeepResults.name: KeepResults,
    KeepCounts.name: KeepCounts,
}


def make_retention(policy: Union[str, RetentionPolicy, None]) -> RetentionPolicy:
    """Resolve a retention spec to a policy instance.

    Accepts a :class:`RetentionPolicy` instance, ``None`` (keep-all), or a
    string: ``"keep-all"``, ``"keep-results"``, ``"keep-counts"`` or
    ``"keep-counts:<N>"`` for an explicit terminal-history bound.
    """
    if policy is None:
        return KeepAll()
    if isinstance(policy, RetentionPolicy):
        return policy
    if isinstance(policy, str):
        name, _, arg = policy.partition(":")
        cls = RETENTION_POLICIES.get(name)
        if cls is None:
            raise ValueError(f"unknown retention policy {policy!r}; "
                             f"choose from {sorted(RETENTION_POLICIES)}")
        if arg:
            if cls is not KeepCounts:
                raise ValueError(f"retention policy {name!r} takes no argument")
            return KeepCounts(max_terminal=int(arg))
        return cls()
    raise ValueError(f"cannot build a retention policy from {policy!r}")


class AgentTable:
    """The agent lifecycle ledger: registration, indexes, archival.

    One per kernel.  The table owns the entry dict the kernel's ``agents``
    property exposes, the name index behind ``agents_named``, the launch /
    terminal state counters behind ``counters()``, and the per-site
    resident-index handshake.
    """

    def __init__(self, retention: Union[str, RetentionPolicy, None] = None):
        self.retention = make_retention(retention)
        #: agent id -> live instance or archived record (insertion ordered)
        self.entries: Dict[str, LedgerEntry] = {}
        #: name -> {agent id -> entry}; inner dicts keep insertion order so
        #: ``named()`` returns instances in launch order, like the old scan
        self._by_name: Dict[str, Dict[str, LedgerEntry]] = {}
        #: terminal agent ids in retirement order (KeepCounts eviction queue)
        self.terminal_order: Deque[str] = deque()

        # O(1) state counters (the kernel ledger the experiments read).
        self.launched = 0
        self.completed = 0
        self.failed = 0
        self.killed = 0
        #: terminal instances replaced by compact records
        self.archived = 0
        #: terminal entries dropped from the ledger entirely
        self.evicted = 0

    # -- registration / retirement -------------------------------------------------

    def register(self, instance: AgentInstance, site: Optional["Site"]) -> None:
        """Enter a new instance into the ledger and its site's resident index."""
        self.entries[instance.agent_id] = instance
        self._by_name.setdefault(instance.name, {})[instance.agent_id] = instance
        self.launched += 1
        if site is not None:
            site.add_resident(instance)

    def retire(self, instance: AgentInstance, site: Optional["Site"]) -> None:
        """Process a terminal instance: unindex, count, apply retention.

        Every terminal path (finish, fail, kill) must come through here
        exactly once; callers guard with ``instance.finished`` before
        marking, so double retirement cannot happen.
        """
        if site is not None:
            site.remove_resident(instance.agent_id)
        state = instance.state
        if state == AgentState.DONE:
            self.completed += 1
        elif state == AgentState.FAILED:
            self.failed += 1
        elif state == AgentState.KILLED:
            self.killed += 1
        entry = self.retention.archive(instance)
        if entry is None:
            self._discard(instance.agent_id, instance.name)
            self.evicted += 1
            return
        if entry is not instance:
            self.entries[instance.agent_id] = entry
            self._by_name[instance.name][instance.agent_id] = entry
            self.archived += 1
        if self.retention.tracks_terminal_order:
            self.terminal_order.append(instance.agent_id)
            self.retention.enforce(self)

    def evict_oldest_terminal(self) -> Optional[str]:
        """Drop the oldest terminal entry from the ledger (retention hook)."""
        while self.terminal_order:
            agent_id = self.terminal_order.popleft()
            entry = self.entries.get(agent_id)
            if entry is None:
                continue  # already discarded
            self._discard(agent_id, entry.name)
            self.evicted += 1
            return agent_id
        return None

    def _discard(self, agent_id: str, name: str) -> None:
        self.entries.pop(agent_id, None)
        named = self._by_name.get(name)
        if named is not None:
            named.pop(agent_id, None)
            if not named:
                del self._by_name[name]

    # -- lookups -------------------------------------------------------------------

    def get(self, agent_id: str) -> Optional[LedgerEntry]:
        """The entry for *agent_id*, or None if unknown or evicted."""
        return self.entries.get(agent_id)

    def named(self, name: str) -> List[LedgerEntry]:
        """Every retained entry launched under *name*, in launch order (O(matches))."""
        named = self._by_name.get(name)
        return list(named.values()) if named else []

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, agent_id: str) -> bool:
        return agent_id in self.entries

    # -- counters ------------------------------------------------------------------

    @property
    def terminal(self) -> int:
        """Total agents that reached a terminal state."""
        return self.completed + self.failed + self.killed

    @property
    def active(self) -> int:
        """Agents launched but not yet terminal."""
        return self.launched - self.terminal

    def state_counts(self) -> Dict[str, int]:
        """O(1) snapshot of the lifecycle ledger."""
        return {
            "launched": self.launched,
            "active": self.active,
            "completed": self.completed,
            "failed": self.failed,
            "killed": self.killed,
            "archived": self.archived,
            "evicted": self.evicted,
            "retained": len(self.entries),
        }

    def ledger_entry_kinds(self) -> Dict[str, int]:
        """How many retained entries are live instances vs compact records."""
        records = sum(1 for entry in self.entries.values()
                      if isinstance(entry, AgentRecord))
        return {"instances": len(self.entries) - records, "records": records}

    def __repr__(self) -> str:
        return (f"AgentTable(retention={self.retention.name!r}, "
                f"retained={len(self.entries)}, launched={self.launched}, "
                f"terminal={self.terminal})")


class MergedAgentTable:
    """A read-only merged view over several shards' :class:`AgentTable` ledgers.

    The sharded kernel facade exposes one of these as ``kernel.table`` so
    ``agents_named`` / ``result_of`` / ``counters`` stay one API: lookups
    fan out to the shard tables (agent ids are unique cluster-wide, so at
    most one table answers), counters sum, and ``named()`` concatenates in
    shard order then launch order.  Registration and retirement always
    happen on the owning shard's own table — this view never mutates.
    """

    def __init__(self, parts: Sequence[AgentTable]):
        self._parts = list(parts)
        # All shards share one retention spec (built from the same config).
        self.retention = self._parts[0].retention if self._parts else make_retention(None)

    @property
    def entries(self) -> Dict[str, LedgerEntry]:
        """A fresh merged id -> entry mapping (shard order, then launch order)."""
        merged: Dict[str, LedgerEntry] = {}
        for part in self._parts:
            merged.update(part.entries)
        return merged

    def get(self, agent_id: str) -> Optional[LedgerEntry]:
        for part in self._parts:
            entry = part.entries.get(agent_id)
            if entry is not None:
                return entry
        return None

    def named(self, name: str) -> List[LedgerEntry]:
        found: List[LedgerEntry] = []
        for part in self._parts:
            found.extend(part.named(name))
        return found

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)

    def __contains__(self, agent_id: str) -> bool:
        return any(agent_id in part for part in self._parts)

    def __getattr__(self, name: str) -> int:
        if name in ("launched", "completed", "failed", "killed",
                    "archived", "evicted"):
            return sum(getattr(part, name) for part in self._parts)
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    @property
    def terminal(self) -> int:
        return sum(part.terminal for part in self._parts)

    @property
    def active(self) -> int:
        return sum(part.active for part in self._parts)

    def state_counts(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for part in self._parts:
            for key, value in part.state_counts().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def ledger_entry_kinds(self) -> Dict[str, int]:
        merged = {"instances": 0, "records": 0}
        for part in self._parts:
            for key, value in part.ledger_entry_kinds().items():
                merged[key] += value
        return merged

    def __repr__(self) -> str:
        return (f"MergedAgentTable(shards={len(self._parts)}, "
                f"retained={len(self)}, launched={self.launched}, "
                f"terminal={self.terminal})")
