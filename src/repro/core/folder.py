"""Folders: the basic unit of agent-carried data (paper section 2).

A *folder* is "a list of elements, each of which is an uninterpreted
sequence of bits.  Because it is a list, it can be treated as a stack or a
queue."  Folders must be cheap to move between sites, so the representation
is a flat list of ``bytes`` with no index structures.

The paper stresses that folder contents are *uninterpreted and typeless*,
which is what lets a folder hold another agent, a briefcase, or a whole
queued meeting request (section 4).  To keep user code pleasant, this class
accepts ``bytes``, ``str`` (encoded as UTF-8) and arbitrary picklable
Python objects (encoded through :mod:`repro.core.codec` helpers); whatever
goes in, the stored element is always ``bytes``.
"""

from __future__ import annotations

import pickle
from typing import Any, Iterable, Iterator, List, Optional

from repro.core.errors import EmptyFolderError, FolderError

__all__ = ["Folder"]

# A tiny tag prefix distinguishes raw bytes from pickled objects so that
# ``pop_object`` can refuse to unpickle something that was stored raw.
_RAW_TAG = b"R"
_PICKLE_TAG = b"P"
_TEXT_TAG = b"T"


def _encode(element: Any) -> bytes:
    """Encode *element* into the tagged byte representation stored in folders."""
    if isinstance(element, bytes):
        return _RAW_TAG + element
    if isinstance(element, bytearray):
        return _RAW_TAG + bytes(element)
    if isinstance(element, str):
        return _TEXT_TAG + element.encode("utf-8")
    try:
        return _PICKLE_TAG + pickle.dumps(element, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pragma: no cover - exercised via FolderError tests
        raise FolderError(f"element of type {type(element).__name__} "
                          f"cannot be stored in a folder: {exc}") from exc


def _decode(stored: bytes) -> Any:
    """Decode a tagged byte element back into the Python value that was stored."""
    tag, payload = stored[:1], stored[1:]
    if tag == _RAW_TAG:
        return payload
    if tag == _TEXT_TAG:
        return payload.decode("utf-8")
    if tag == _PICKLE_TAG:
        return pickle.loads(payload)
    raise FolderError(f"corrupt folder element (unknown tag {tag!r})")


class Folder:
    """An ordered list of uninterpreted byte elements.

    The two access disciplines of the paper are both provided:

    * **stack**: :meth:`push` / :meth:`pop` / :meth:`peek` operate on the
      *top* (the end of the list);
    * **queue**: :meth:`enqueue` (an alias of :meth:`push`) /
      :meth:`dequeue` / :meth:`front` operate FIFO.

    Elements are stored as tagged ``bytes``; :meth:`pop` and friends return
    the original value (``bytes``, ``str`` or unpickled object).  The raw
    stored form is reachable through :meth:`raw_elements` and is what the
    wire-size model charges for.
    """

    __slots__ = ("name", "_elements")

    def __init__(self, name: str, elements: Optional[Iterable[Any]] = None):
        if not name or not isinstance(name, str):
            raise FolderError("folder name must be a non-empty string")
        self.name = name
        self._elements: List[bytes] = []
        if elements is not None:
            for element in elements:
                self.push(element)

    # -- stack discipline ---------------------------------------------------

    def push(self, element: Any) -> None:
        """Append *element* to the top of the folder."""
        self._elements.append(_encode(element))

    def pop(self) -> Any:
        """Remove and return the top (most recently pushed) element."""
        if not self._elements:
            raise EmptyFolderError(f"folder {self.name!r} is empty")
        return _decode(self._elements.pop())

    def peek(self) -> Any:
        """Return the top element without removing it."""
        if not self._elements:
            raise EmptyFolderError(f"folder {self.name!r} is empty")
        return _decode(self._elements[-1])

    # -- queue discipline ---------------------------------------------------

    def enqueue(self, element: Any) -> None:
        """Append *element* to the back of the queue (same end as :meth:`push`)."""
        self.push(element)

    def dequeue(self) -> Any:
        """Remove and return the oldest element (FIFO order)."""
        if not self._elements:
            raise EmptyFolderError(f"folder {self.name!r} is empty")
        return _decode(self._elements.pop(0))

    def front(self) -> Any:
        """Return the oldest element without removing it."""
        if not self._elements:
            raise EmptyFolderError(f"folder {self.name!r} is empty")
        return _decode(self._elements[0])

    # -- whole-folder operations --------------------------------------------

    def clear(self) -> None:
        """Remove every element."""
        self._elements.clear()

    def extend(self, elements: Iterable[Any]) -> None:
        """Push every element of *elements* in order."""
        for element in elements:
            self.push(element)

    def elements(self) -> List[Any]:
        """Return all elements, oldest first, decoded to their original values."""
        return [_decode(stored) for stored in self._elements]

    def raw_elements(self) -> List[bytes]:
        """Return the stored (tagged) byte elements, oldest first."""
        return list(self._elements)

    def replace(self, elements: Iterable[Any]) -> None:
        """Replace the folder contents with *elements* (oldest first)."""
        self.clear()
        self.extend(elements)

    def copy(self) -> "Folder":
        """Return an independent copy of this folder.

        Stored elements are normalised to immutable ``bytes`` on the way, so
        a mutable buffer smuggled into the source cannot be shared by the
        clone (copying an immutable ``bytes`` object is free — CPython
        returns the same object).
        """
        clone = Folder(self.name)
        clone._elements = [stored if type(stored) is bytes else bytes(stored)
                           for stored in self._elements]
        return clone

    # -- size model ----------------------------------------------------------

    def wire_size(self) -> int:
        """Bytes this folder occupies when shipped between sites.

        The model charges the encoded element bytes plus a small fixed
        per-element and per-folder framing overhead.  This is what every
        bandwidth experiment (E1, E3, E7) measures.
        """
        framing_per_element = 4
        framing_per_folder = 16 + len(self.name.encode("utf-8"))
        return framing_per_folder + sum(
            len(stored) + framing_per_element for stored in self._elements
        )

    # -- dunder conveniences --------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __bool__(self) -> bool:
        # An empty folder is still a folder; truthiness follows emptiness to
        # make ``while folder:`` drain loops natural.
        return bool(self._elements)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.elements())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Folder):
            return NotImplemented
        return self.name == other.name and self._elements == other._elements

    def __repr__(self) -> str:
        return f"Folder({self.name!r}, {len(self._elements)} elements)"

    # -- (de)serialisation helpers used by the codec -------------------------

    def to_wire(self) -> dict:
        """Return a plain-dict representation suitable for the codec."""
        return {"name": self.name, "elements": list(self._elements)}

    @classmethod
    def from_wire(cls, payload: dict) -> "Folder":
        """Rebuild a folder from :meth:`to_wire` output."""
        folder = cls(payload["name"])
        elements = payload["elements"]
        if not all(isinstance(element, bytes) for element in elements):
            raise FolderError("wire payload for a folder must contain bytes elements")
        folder._elements = list(elements)
        return folder
