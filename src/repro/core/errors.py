"""Exception hierarchy for the TACOMA reproduction.

Every error raised by the library derives from :class:`TacomaError`, so a
caller can catch the whole family with one ``except`` clause.  Subsystems
define narrower classes here rather than in their own modules so the
hierarchy is visible in one place.
"""

from __future__ import annotations


class TacomaError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Core data-structure errors
# ---------------------------------------------------------------------------

class FolderError(TacomaError):
    """A folder operation failed (bad element type, empty pop, ...)."""


class EmptyFolderError(FolderError):
    """Attempted to pop or peek an element from an empty folder."""


class BriefcaseError(TacomaError):
    """A briefcase operation failed."""


class MissingFolderError(BriefcaseError, KeyError):
    """The briefcase (or cabinet) does not contain the requested folder."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep a readable message
        return Exception.__str__(self)


class CabinetError(TacomaError):
    """A file-cabinet operation failed."""


class CabinetPersistenceError(CabinetError):
    """Flushing or loading a file cabinet to/from disk failed."""


class StoreError(TacomaError):
    """A durable-store operation failed (bad policy, recovery misuse, ...)."""


# ---------------------------------------------------------------------------
# Codec / code-shipping errors
# ---------------------------------------------------------------------------

class CodecError(TacomaError):
    """Serialisation or deserialisation of agent code/state failed."""


class UnknownBehaviourError(CodecError):
    """A CODE folder referenced a behaviour that is not registered."""


class CodeCompilationError(CodecError):
    """Shipped source code could not be compiled at the destination site."""


# ---------------------------------------------------------------------------
# Kernel / runtime errors
# ---------------------------------------------------------------------------

class KernelError(TacomaError):
    """The kernel could not satisfy a request."""


class UnknownSiteError(KernelError):
    """A request referred to a site that is not part of the system."""


class UnknownAgentError(KernelError):
    """A request referred to an agent name or id that is not known."""


class SiteDownError(KernelError):
    """The target site has crashed and cannot run agents or accept messages."""


class MeetError(KernelError):
    """A meet operation could not be carried out."""


class SyscallError(KernelError):
    """An agent yielded a malformed or disallowed syscall."""


class AgentCrashedError(KernelError):
    """An agent raised an unhandled exception while executing."""

    def __init__(self, agent_id: str, cause: BaseException):
        super().__init__(f"agent {agent_id} crashed: {cause!r}")
        self.agent_id = agent_id
        self.cause = cause


# ---------------------------------------------------------------------------
# Network errors
# ---------------------------------------------------------------------------

class NetworkError(TacomaError):
    """A network-level operation failed."""


class NoRouteError(NetworkError):
    """There is no usable path between two sites (partition or missing link)."""


class TransportError(NetworkError):
    """A transport could not deliver a message."""


class GroupError(NetworkError):
    """A Horus group-communication operation failed."""


class NotMemberError(GroupError):
    """The calling endpoint is not a member of the group it addressed."""


# ---------------------------------------------------------------------------
# Electronic cash errors
# ---------------------------------------------------------------------------

class CashError(TacomaError):
    """An electronic-cash operation failed."""


class InvalidECUError(CashError):
    """An ECU record failed validation (forged, retired, or double spent)."""


class InsufficientFundsError(CashError):
    """A wallet does not hold enough valid ECUs for the requested payment."""


class AuditViolation(CashError):
    """The auditor found a contract violation in an exchange record."""


# ---------------------------------------------------------------------------
# Scheduling errors
# ---------------------------------------------------------------------------

class SchedulingError(TacomaError):
    """A broker/scheduling operation failed."""


class NoProviderError(SchedulingError):
    """No service provider is registered for the requested service."""


class TicketError(SchedulingError):
    """A ticket was missing, expired, or forged."""


# ---------------------------------------------------------------------------
# Fault-tolerance errors
# ---------------------------------------------------------------------------

class FaultToleranceError(TacomaError):
    """A rear-guard / recovery operation failed."""


class ComputationLostError(FaultToleranceError):
    """A mobile computation could not be recovered after a failure."""
