"""Kernel requests ("syscalls") that agent behaviours yield.

An agent behaviour is a generator function ``def behaviour(ctx, briefcase)``
that *yields* instances of the classes below; the kernel performs the
request and resumes the generator with the result.  This mirrors the paper's
model where "services for agents — communication, synchronization, and so
on — are provided directly by other agents": the only kernel primitives are
meeting, ending a meet, sleeping, spawning locally, and (for system agents
only) pushing bytes onto the network.  Everything else — migration,
couriers, diffusion, brokering, electronic cash — is built from these by
agents in :mod:`repro.sysagents` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.briefcase import Briefcase

__all__ = [
    "Syscall", "Meet", "EndMeet", "Sleep", "Spawn", "Transmit", "Terminate",
    "MeetResult",
]


class Syscall:
    """Marker base class for everything an agent may yield to the kernel."""

    __slots__ = ()


@dataclass
class Meet(Syscall):
    """Execute the agent installed under *agent_name* at the current site.

    The named agent runs with *briefcase*; the caller resumes when the callee
    terminates the meet (explicitly with :class:`EndMeet` or implicitly by
    returning).  The yield evaluates to a :class:`MeetResult`.

    The briefcase is shared by reference for the duration of the meet — this
    is the paper's "argument list" semantics; results are typically written
    into the same briefcase.
    """

    agent_name: str
    briefcase: Briefcase = field(default_factory=Briefcase)


@dataclass
class MeetResult:
    """What a ``yield Meet(...)`` evaluates to in the caller."""

    #: value passed to EndMeet (or returned) by the callee
    value: Any
    #: the briefcase that was passed in (callee may have modified it)
    briefcase: Briefcase
    #: id of the callee agent instance (it may still be running)
    agent_id: str


@dataclass
class EndMeet(Syscall):
    """Terminate the current meet, resuming the caller.

    The callee keeps executing after yielding ``EndMeet`` — the paper is
    explicit that "after the meet terminates, B may continue executing
    concurrently with A."  Yielding ``EndMeet`` outside a meet is a no-op.
    """

    value: Any = None


@dataclass
class Sleep(Syscall):
    """Suspend the agent for *duration* simulated seconds."""

    duration: float = 0.0


@dataclass
class Spawn(Syscall):
    """Start a new top-level agent at the current site.

    ``behaviour`` may be a registered behaviour name (string) or a callable.
    The yield evaluates to the new agent's id.  Spawning at a *remote* site
    is deliberately impossible here: that is what meeting ``rexec`` is for.
    """

    behaviour: Any
    briefcase: Briefcase = field(default_factory=Briefcase)
    name: Optional[str] = None
    #: explicit shippable code element for the spawned agent; ``ag_py`` uses
    #: this to hand a source-shipped agent its own code so it can jump again
    code_element: Optional[dict] = None


@dataclass
class Transmit(Syscall):
    """Hand a briefcase to the network (system agents only).

    The briefcase is serialised and sent to *destination*; on arrival the
    agent installed there under *contact* is met with the reconstructed
    briefcase.  The yield evaluates to ``True`` if the message was handed to
    the transport (delivery may still fail in flight) and ``False`` if it was
    dropped immediately (source crashed, no route).

    Ordinary agents are not allowed to transmit: they must meet ``rexec`` or
    the courier, exactly as in the paper.  The kernel enforces this.
    """

    destination: str
    contact: str
    briefcase: Briefcase
    kind: str = "agent-transfer"


@dataclass
class Terminate(Syscall):
    """Finish the agent immediately with the given result.

    Equivalent to returning from the behaviour, but usable from deep inside
    helper sub-generators via ``yield``.
    """

    result: Any = None
