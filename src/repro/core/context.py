"""AgentContext: the view an executing agent has of its current place.

Behaviours receive a context as their first argument.  It exposes the local
site (file cabinets, load, neighbours), the simulated clock, a per-agent
random stream, and convenience constructors for the common syscalls —
including :meth:`jump`, the standard "ship myself to another site via
rexec" idiom of the paper.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, List, Optional

from repro.core.briefcase import CONTACT_FOLDER, HOST_FOLDER, Briefcase
from repro.core.cabinet import FileCabinet
from repro.core.codec import attach_code
from repro.core.folder import Folder
from repro.core.syscalls import EndMeet, Meet, Sleep, Spawn, Terminate, Transmit
from repro.obs import TRACE_ID_FOLDER, TRACE_PARENT_FOLDER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.agent import AgentInstance
    from repro.core.kernel import Kernel
    from repro.core.site import Site

__all__ = ["AgentContext", "wait_until_durable"]


def wait_until_durable(ctx: "AgentContext", mark: Optional[int] = None):
    """Generator helper: sleep until the site's durable state reaches *mark*.

    Captures the journal mark up front (defaulting to everything written so
    far by the time of the call), so later mutations by other agents cannot
    starve the caller, then loops on the store's barrier estimate — a batch
    can grow (and its sync lengthen) after being priced.  Use as::

        yield from wait_until_durable(ctx)

    A no-op under durability policy "none".
    """
    store = ctx.store
    if store is None:
        return
    if mark is None:
        mark = store.mutation_mark()
    delay = store.barrier(mark)
    while delay > 0:
        yield ctx.sleep(delay)
        delay = store.barrier(mark)


class AgentContext:
    """Everything an agent may touch while executing at a site."""

    def __init__(self, kernel: "Kernel", site: "Site", instance: "AgentInstance"):
        self._kernel = kernel
        self._site = site
        self._instance = instance
        # Deterministic per-agent stream derived from the kernel seed and the
        # agent id, so repeated runs are reproducible.
        self.rng = random.Random(f"{kernel.config.rng_seed}:{instance.agent_id}")

    # -- identity and environment -------------------------------------------------

    @property
    def agent_id(self) -> str:
        """Unique id of this agent instance."""
        return self._instance.agent_id

    @property
    def agent_name(self) -> str:
        """The (possibly well-known) name this instance runs under."""
        return self._instance.name

    @property
    def site_name(self) -> str:
        """Name of the site currently executing the agent."""
        return self._site.name

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._kernel.loop.now

    @property
    def briefcase(self) -> Briefcase:
        """The briefcase this instance was started with."""
        return self._instance.briefcase

    @property
    def is_system_agent(self) -> bool:
        """True if this instance runs with system-agent privileges."""
        return self._instance.system

    def sites(self) -> List[str]:
        """Names of every site in the system (the paper assumes a known site list)."""
        return self._kernel.site_names()

    def neighbors(self) -> List[str]:
        """Sites directly linked to the current site."""
        return self._kernel.topology.neighbors(self._site.name)

    def site_load(self, site_name: Optional[str] = None) -> float:
        """Current load metric of a site (defaults to the local site)."""
        return self._kernel.site_load(site_name or self._site.name)

    def resident_count(self, site_name: Optional[str] = None) -> int:
        """How many active agents are resident at a site (O(1), via the
        kernel's per-site index; defaults to the local site)."""
        if site_name is None:
            return self._site.resident_count()
        return self._kernel.site(site_name).resident_count()

    # -- local storage -------------------------------------------------------------

    def cabinet(self, name: str = "default") -> FileCabinet:
        """The site-local file cabinet called *name* (created on first use)."""
        return self._site.cabinet(name)

    def has_cabinet(self, name: str) -> bool:
        """True if the site already has a cabinet called *name*."""
        return self._site.has_cabinet(name)

    @property
    def store(self):
        """The site's durable store, or None when durability is "none"."""
        return self._site.store

    @property
    def site_crash_count(self) -> int:
        """How many times the current site has crashed (the crash epoch).

        Lets agents tag site-local records with the epoch they were written
        in: a record from an older epoch may describe state that died with
        the crash (the ft visitor's done-markers use this to tell "the
        original is still here, alive" from "the computation died here").
        """
        return self._site.crash_count

    # -- logging and tracing -----------------------------------------------------------

    def log(self, message: str) -> None:
        """Append a line to the kernel's event log (visible to tests/benchmarks)."""
        self._kernel.log_event(self._instance.agent_id, self._site.name, message)

    @property
    def obs(self):
        """The kernel's tracer (repro.obs) — disabled unless ``obs_enabled``."""
        return self._kernel.obs

    @property
    def trace_id(self) -> Optional[str]:
        """This agent's trace id, or None when the itinerary is untraced."""
        return self._instance.briefcase.get(TRACE_ID_FOLDER)

    @property
    def trace_parent(self) -> Optional[str]:
        """The span id new child spans (and hops) should parent under."""
        return self._instance.briefcase.get(TRACE_PARENT_FOLDER)

    def set_trace_parent(self, span_id: str) -> None:
        """Re-point the causal parent carried in the briefcase.

        Layered protocols (the FT layer's per-hop spans) call this before
        a jump so everything at the next site parents under the hop span
        rather than the itinerary root.
        """
        self._instance.briefcase.set(TRACE_PARENT_FOLDER, span_id)

    def propagate_trace(self, briefcase: Briefcase) -> Briefcase:
        """Copy this agent's trace context into another briefcase.

        Meets hand the callee a *separate* briefcase, so causality does not
        flow into couriers (or other helpers) by itself; wrapping the
        request briefcase keeps the delivery on the sender's trace.
        Returns the briefcase for chaining; a no-op when untraced.
        """
        trace_id = self.trace_id
        if trace_id is not None:
            briefcase.set(TRACE_ID_FOLDER, trace_id)
            parent = self.trace_parent
            if parent is not None:
                briefcase.set(TRACE_PARENT_FOLDER, parent)
        return briefcase

    # -- syscall constructors ---------------------------------------------------------

    def meet(self, agent_name: str, briefcase: Optional[Briefcase] = None) -> Meet:
        """Meet the agent installed under *agent_name* at this site."""
        return Meet(agent_name, briefcase if briefcase is not None else Briefcase())

    def end_meet(self, value: Any = None) -> EndMeet:
        """Terminate the current meet, letting the caller resume."""
        return EndMeet(value)

    def sleep(self, duration: float) -> Sleep:
        """Suspend for *duration* simulated seconds."""
        return Sleep(duration)

    def spawn(self, behaviour: Any, briefcase: Optional[Briefcase] = None,
              name: Optional[str] = None) -> Spawn:
        """Start a new top-level agent at this site."""
        return Spawn(behaviour, briefcase if briefcase is not None else Briefcase(), name)

    def terminate(self, result: Any = None) -> Terminate:
        """Finish this agent immediately."""
        return Terminate(result)

    def transmit(self, destination: str, contact: str, briefcase: Briefcase,
                 kind: str = "agent-transfer") -> Transmit:
        """Low-level network send — only permitted for system agents."""
        return Transmit(destination, contact, briefcase, kind)

    # -- the canonical migration idiom -------------------------------------------------

    def jump(self, briefcase: Briefcase, host: str, contact: str = "ag_py") -> Meet:
        """Meet ``rexec`` so that this agent's code and *briefcase* move to *host*.

        The returned syscall follows the paper exactly: a HOST folder names
        the destination, a CONTACT folder names the agent to execute there
        (``ag_py`` by default, which pops the CODE folder and runs it), and
        the CODE folder carries this agent's own code so a fresh copy starts
        at the destination.  The *current* instance keeps running at the
        current site after the meet with rexec returns — itinerant agents
        normally ``return`` right after yielding a jump.
        """
        code_element = self._instance.spec.code_element
        if code_element is not None:
            briefcase.set("CODE", code_element)
        elif not briefcase.has("CODE"):
            # Last resort: try to derive a code element from the behaviour.
            attach_code(briefcase, self._instance.spec.behaviour, self._kernel.registry)
        briefcase.set(HOST_FOLDER, host)
        briefcase.set(CONTACT_FOLDER, contact)
        return Meet("rexec", briefcase)

    def send_folder(self, folder: Folder, destination_site: str,
                    destination_agent: str, kind: Optional[str] = None) -> Meet:
        """Meet the courier to deliver *folder* to an agent on another site.

        *kind* optionally overrides the wire message kind (the courier
        defaults to ``folder-delivery``); monitors pass ``status`` so load
        reports coalesce in the delivery fabric alongside folder traffic.
        """
        request = Briefcase()
        request.add(folder.copy())
        request.set(HOST_FOLDER, destination_site)
        request.set(CONTACT_FOLDER, destination_agent)
        request.set("PAYLOAD_NAME", folder.name)
        if kind is not None:
            request.set("KIND", kind)
        if self._kernel.obs.active:
            self.propagate_trace(request)
        return Meet("courier", request)

    def __repr__(self) -> str:
        return (f"AgentContext(agent={self._instance.agent_id}, "
                f"site={self._site.name!r}, now={self.now:.4f})")
