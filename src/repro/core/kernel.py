"""The TACOMA kernel: scheduling agents, meets, migration and failures.

The kernel ties everything together:

* it owns the event loop — the deterministic discrete-event
  :class:`~repro.net.simclock.EventLoop` under the default
  ``KernelConfig(backend="sim")``, or :class:`repro.rt.AsyncioScheduler`
  on wall clock under ``backend="realtime"`` (both implement the
  :class:`~repro.core.timing.Scheduler` protocol) — and a
  :class:`~repro.net.transport.Transport`;
* it creates one :class:`~repro.core.site.Site` per topology node and
  installs the standard system agents (``rexec``, ``ag_py``, the courier,
  the diffusion agent) on each;
* it executes agent behaviours (generator coroutines), interpreting the
  syscalls of :mod:`repro.core.syscalls`;
* it implements the ``meet`` semantics of the paper — the caller resumes
  when the callee terminates the meet; the callee may keep running;
* it accepts agent transfers from the network and re-animates them by
  meeting the CONTACT agent (normally ``ag_py``);
* it injects failures (site crashes, partitions) and keeps the ledgers the
  experiments read (agents completed/failed/killed, meets, migrations,
  bytes on the wire).
"""

from __future__ import annotations

import itertools
import random
from collections import ChainMap, deque
from dataclasses import dataclass
from types import MappingProxyType
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Union)

from repro.core.agent import AgentInstance, AgentSpec, AgentState
from repro.core.briefcase import Briefcase
from repro.core.codec import (code_element_copy, code_element_of, pack_briefcase,
                              unpack_briefcase, wire_size_of)
from repro.core.context import AgentContext
from repro.core.errors import (KernelError, MeetError, SyscallError, UnknownAgentError,
                               UnknownSiteError)
from repro.core.lifecycle import AgentTable, MergedAgentTable, RetentionPolicy
from repro.core.registry import BehaviourRegistry, default_registry
from repro.core.site import Site
from repro.core.syscalls import EndMeet, Meet, MeetResult, Sleep, Spawn, Syscall, Terminate, Transmit
from repro.flow import CommitGovernor
from repro.net.horus import HorusTransport
from repro.net.message import Message, MessageKind
from repro.net.rsh import RshTransport
from repro.net.simclock import EventLoop
from repro.net.stats import NetworkStats, StatsView
from repro.net.tcp import TcpTransport
from repro.net.topology import Topology, lan
from repro.net.transport import Transport
from repro.obs import (TRACE_ID_FOLDER, TRACE_PARENT_FOLDER, MetricsRegistry,
                       MetricsView, Tracer, TracerView, infra_trace_id)
from repro.store.policy import DurabilityPolicy, StoreCosts, resolve_policy
from repro.store.sitestore import SiteStore

__all__ = ["Kernel", "KernelConfig", "EventLog"]

#: the transports selectable by name (paper section 6's three rexec variants)
TRANSPORTS = {
    "rsh": RshTransport,
    "tcp": TcpTransport,
    "horus": HorusTransport,
}


class EventLog:
    """The kernel event log, bounded by ``KernelConfig.event_log_max``.

    A drop-in replacement for the unbounded list the kernel used to keep:
    append/iterate/len/index/slice all work and entries stay
    ``(time, agent_id, site_name, message)`` tuples.  Past the cap the
    oldest entries are dropped (``dropped`` counts them) while ``total``
    keeps the absolute sequence, so digest readers ask for "everything
    past sequence N" (:meth:`since`) and survive drops.
    """

    __slots__ = ("max_entries", "dropped", "total", "_entries")

    def __init__(self, max_entries: int = 0, entries: Iterable = ()):
        self.max_entries = int(max_entries)
        self._entries = deque(
            entries, maxlen=self.max_entries if self.max_entries > 0 else None)
        self.dropped = 0
        self.total = len(self._entries)

    def append(self, entry: tuple) -> None:
        if 0 < self.max_entries <= len(self._entries):
            self.dropped += 1
        self._entries.append(entry)
        self.total += 1

    def extend(self, entries: Iterable) -> None:
        for entry in entries:
            self.append(entry)

    def since(self, seq: int):
        """``(new_seq, entries)``: every entry past absolute index *seq*.

        When *seq* predates the retained window (the cap overtook a slow
        reader), the returned entries start at the oldest retained one.
        """
        first_retained = self.total - len(self._entries)
        skip = max(0, seq - first_retained)
        if skip == 0:
            fresh = list(self._entries)
        else:
            fresh = list(itertools.islice(self._entries, skip, None))
        return self.total, fresh

    def clear(self) -> None:
        """Drop the retained entries (the absolute sequence never rewinds)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]

    def __repr__(self) -> str:
        return f"EventLog({len(self._entries)} retained, {self.dropped} dropped)"


@dataclass
class KernelConfig:
    """Tunable costs and limits of the simulated kernel."""

    #: CPU time charged per behaviour step (one yield)
    step_cost: float = 0.0005
    #: extra cost of setting up a meet (argument marshalling, dispatch)
    meet_overhead: float = 0.001
    #: cost of creating a new top-level agent locally
    spawn_overhead: float = 0.001
    #: local cost of handing a briefcase to the transport
    transmit_overhead: float = 0.0005
    #: an agent exceeding this many steps is killed as a runaway (section 3
    #: motivates limiting runaway agents; the step budget is the kernel-side
    #: safety net, electronic cash is the economic one)
    max_agent_steps: int = 1_000_000
    #: seed for every random stream derived by the kernel
    rng_seed: int = 42
    #: terminal-agent retention policy of the lifecycle ledger: "keep-all",
    #: "keep-results", "keep-counts[:N]" or a RetentionPolicy instance (see
    #: :mod:`repro.core.lifecycle`)
    retention: Union[str, "RetentionPolicy"] = "keep-all"
    #: delivery-fabric flush window in simulated seconds; 0 disables
    #: batching and preserves one-wire-message-per-folder behaviour
    delivery_batch_window: float = 0.0
    #: flush an outbox early once it holds this many messages (0 = no limit)
    delivery_batch_max_messages: int = 0
    #: flush an outbox early once it queues this many payload bytes (0 = no limit)
    delivery_batch_max_bytes: int = 0
    #: hard deadline (seconds): with > 0 the flush window slides with
    #: traffic but an outbox never waits longer than this past its first
    #: queued message (0 = fixed window, no sliding)
    delivery_batch_deadline: float = 0.0
    #: adaptive per-destination windows (repro.flow): with flow_window_max
    #: > 0, each (source, destination) pair's flush window is sized from
    #: its observed arrival rate — hot pairs tight, trickle pairs wide —
    #: clamped into [flow_window_min, flow_window_max]; requires a positive
    #: delivery_batch_window (the fabric master switch, also the seed
    #: window for pairs with no traffic history)
    flow_window_min: float = 0.0
    flow_window_max: float = 0.0
    #: how many messages an adaptive window should ideally coalesce
    flow_target_batch: int = 8
    #: EWMA smoothing factor of the per-pair rate estimators
    flow_ewma_alpha: float = 0.2
    #: serialize per-message transport setup at each source site (the cost
    #: model under which batching pays in simulated time, not just bytes)
    serialize_transport_setup: bool = False
    #: durability policy of the per-site stores: "none" (legacy free
    #: permanence, the default), "flush-on-demand", "wal-group-commit", or
    #: a DurabilityPolicy instance (see :mod:`repro.store`)
    durability: Union[str, "DurabilityPolicy"] = "none"
    #: seconds charged per WAL record written at commit/flush time
    store_write_latency: float = 0.0002
    #: seconds charged per payload byte a WAL record carries (the
    #: bytes-proportional term of the disk cost model; the default models
    #: a ~100 MB/s log device)
    store_write_byte_latency: float = 0.00000001
    #: seconds charged per fsync (one per group commit or explicit flush)
    store_fsync_latency: float = 0.004
    #: group-commit window: how long the WAL batches dirty state before
    #: syncing (wal-group-commit only)
    store_commit_window: float = 0.05
    #: let a pending durability barrier (wait_until_durable, the FT layer's
    #: pre-jump checkpoints) trigger the group commit immediately instead
    #: of waiting out the commit window (see repro.flow.CommitGovernor)
    store_barrier_piggyback: bool = True
    #: seconds charged per snapshot folder / redo record replayed at recovery
    store_replay_latency: float = 0.0005
    #: fixed cost of beginning a recovery replay
    store_recovery_base: float = 0.05
    #: committed redo records tolerated before compaction folds them into
    #: the base snapshot images
    store_snapshot_threshold: int = 256
    #: number of shards the simulation is partitioned into.  1 (default)
    #: runs the classic single event loop; with N > 1 the kernel becomes a
    #: facade over N shard engines advanced under conservative clock sync
    #: (see :mod:`repro.shard`)
    shards: int = 1
    #: explicit site -> shard id placement overrides; sites not listed are
    #: placed by a stable CRC-32 hash of their name
    shard_placement: Optional[Dict[str, int]] = None
    #: where each synchronisation round's shard bursts execute: "inproc"
    #: (serial, the default), "thread" (a persistent pool, one worker per
    #: shard), or "process" (long-lived spawn workers — real multi-core
    #: parallelism; see :mod:`repro.shard.backend`).  Inert at shards=1.
    shard_backend: str = "inproc"
    #: execution backend of the event loop itself: "sim" (the default —
    #: the deterministic discrete-event EventLoop/SimClock pair, time
    #: advances only as events fire) or "realtime" (repro.rt's
    #: AsyncioScheduler — the same heap of events, but every gap to the
    #: next due event is a real asyncio sleep, so delivery latencies,
    #: heartbeats and commit windows really elapse).  Realtime requires
    #: shards=1 and rejects shard_backend="process".
    backend: str = "sim"
    #: directory for real on-disk WAL mirrors, one ``<site>.wal`` file
    #: per site, fsynced per group commit (realtime + a durable policy
    #: only; see :class:`repro.rt.FileWalSink`).  None keeps the WAL
    #: purely logical.
    store_realtime_dir: Optional[str] = None
    #: causal tracing (repro.obs): off by default — every instrumentation
    #: point then costs a single attribute read
    obs_enabled: bool = False
    #: fraction of traces recorded, decided per trace id by a
    #: deterministic CRC-32 hash (1.0 = everything, 0.0 = guard cost only)
    obs_sample: float = 1.0
    #: capacity of the in-memory span ring buffer (per kernel/shard)
    obs_ring: int = 65536
    #: JSONL file finished spans are appended to.  On a classic kernel the
    #: file is written live; a sharded facade writes it at ``close()`` by
    #: merging every shard's ring (engines never open the file themselves)
    obs_path: Optional[str] = None
    #: cap on retained kernel event-log lines; past it the oldest are
    #: dropped (counted in ``event_log.dropped``).  0 = unbounded.
    event_log_max: int = 200_000


class Kernel:
    """A running TACOMA system: sites + network + agents.

    Parameters
    ----------
    topology:
        The site graph.  Defaults to a 3-site LAN, which is enough for the
        quickstart example.
    transport:
        ``"rsh"``, ``"tcp"``, ``"horus"``, a Transport subclass, or an
        already-constructed Transport instance.
    config:
        Cost/limit knobs (:class:`KernelConfig`).
    install_system_agents:
        Install ``ag_py``/``rexec``/courier/diffusion on every site
        (benchmarks that measure bare kernel cost turn this off).
    registry:
        Behaviour registry used to resolve names; defaults to the
        process-wide registry.
    retention:
        Terminal-agent retention policy for the lifecycle ledger; overrides
        ``config.retention`` when given (see :mod:`repro.core.lifecycle`).
    """

    def __init__(self, topology: Optional[Topology] = None,
                 transport: Union[str, Transport, type] = "tcp",
                 config: Optional[KernelConfig] = None,
                 install_system_agents: bool = True,
                 registry: Optional[BehaviourRegistry] = None,
                 retention: Union[str, RetentionPolicy, None] = None,
                 _shard_ctx=None):
        self.config = config or KernelConfig()
        if self.config.shards < 1:
            raise KernelError(f"shards must be >= 1, got {self.config.shards}")
        from repro.shard.backend import BACKENDS
        if self.config.shard_backend not in BACKENDS:
            raise KernelError(
                f"unknown shard_backend {self.config.shard_backend!r}; "
                f"expected one of {BACKENDS}")
        if self.config.backend not in ("sim", "realtime"):
            raise KernelError(
                f"unknown backend {self.config.backend!r}; "
                "expected 'sim' or 'realtime'")
        if self.config.backend == "realtime":
            if self.config.shards != 1:
                raise KernelError(
                    "backend='realtime' requires shards=1: the realtime "
                    "scheduler drives a single wall-clock event loop "
                    "(shard the sim backend instead, or run one realtime "
                    "kernel per host)")
            if self.config.shard_backend == "process":
                raise KernelError(
                    "backend='realtime' cannot use shard_backend='process': "
                    "spawned shard workers and the wall-clock scheduler "
                    "are mutually exclusive (keep the default 'inproc')")
        elif self.config.store_realtime_dir is not None:
            raise KernelError(
                "store_realtime_dir requires backend='realtime': the sim "
                "backend keeps the WAL purely logical (priced, not paid)")
        if not 0.0 <= self.config.obs_sample <= 1.0:
            raise KernelError(f"obs_sample must be in [0.0, 1.0], got "
                              f"{self.config.obs_sample}")
        if self.config.obs_ring < 1:
            raise KernelError(f"obs_ring must be >= 1, got "
                              f"{self.config.obs_ring}")
        if self.config.event_log_max < 0:
            raise KernelError(f"event_log_max must be >= 0 (0 = unbounded), "
                              f"got {self.config.event_log_max}")
        #: the ShardSet when this kernel is a sharded facade; None for the
        #: classic single-loop kernel and for the per-shard engines
        self._shards = None
        #: this engine's ShardContext when it is one shard of a facade
        self._shard_ctx = _shard_ctx
        if self.config.shards > 1 and _shard_ctx is None:
            self._init_facade(topology, transport, install_system_agents,
                              registry, retention)
            return
        self.topology = topology if topology is not None else lan(["alpha", "beta", "gamma"])
        self.loop = self._make_loop()
        self.stats = NetworkStats()
        self.registry = registry or default_registry()
        # Engines offset the seed by their shard id so shards do not mirror
        # each other's random streams; shard 0 (and the classic kernel)
        # keeps the configured seed exactly.
        self.rng = random.Random(self.config.rng_seed
                                 + (_shard_ctx.shard_id if _shard_ctx else 0))
        self.transport = self._make_transport(transport)
        if _shard_ctx is not None:
            self.transport.boundary = _shard_ctx.router.boundary_for(
                _shard_ctx.shard_id)
        #: this kernel's tracer (repro.obs) — disabled unless obs_enabled
        self.obs = self._make_tracer()
        self.transport.obs = self.obs
        #: the metrics seam: every number the kernel publishes reads from
        #: here (store_summary, shard digests, benchmark JSON alike)
        self.metrics = MetricsRegistry()
        self.metrics.register("net", self.stats.snapshot)
        self.metrics.register("flow", self.transport.flow.metrics)
        transport_metrics = getattr(self.transport, "metrics", None)
        if transport_metrics is not None:  # tcp/horus publish extra telemetry
            self.metrics.register("transport", transport_metrics)
        if self.config.backend == "realtime":
            # Wall-clock honesty metrics: how late the scheduler wakes.
            self.loop.lag_observe = self.metrics.histogram(
                "rt_sleep_lag_seconds").observe
        #: open "run" spans by agent id / open recovery spans by site name
        self._obs_runs: Dict[str, Any] = {}
        self._obs_recovery: Dict[str, Any] = {}
        #: per-engine trace-id counter; launches reach each engine in the
        #: same order on every shard backend, so assigned ids match too
        self._obs_trace_seq = 0
        if self.config.delivery_batch_window == 0 and (
                self.config.delivery_batch_max_messages > 0
                or self.config.delivery_batch_max_bytes > 0
                or self.config.delivery_batch_deadline > 0):
            # The window is the fabric's master switch; thresholds or a
            # deadline without it would silently never fire.
            raise KernelError(
                "delivery_batch_max_messages/_max_bytes/_deadline require a "
                "positive delivery_batch_window (the fabric is off at 0)")
        if self.config.delivery_batch_window == 0 and (
                self.config.flow_window_min > 0
                or self.config.flow_window_max > 0):
            # Same guard for the adaptive bounds: with the fabric off, no
            # outbox exists for the flow controller to size.
            raise KernelError(
                "flow_window_min/_max require a positive "
                "delivery_batch_window (the fabric is off at 0)")
        if self.config.flow_target_batch <= 0:
            # Validated here (not only in configure_batching) so a typo is
            # caught even while the fabric is off.
            raise KernelError(f"flow_target_batch must be > 0, got "
                              f"{self.config.flow_target_batch}")
        if not 0.0 < self.config.flow_ewma_alpha <= 1.0:
            raise KernelError(f"flow_ewma_alpha must be in (0, 1], got "
                              f"{self.config.flow_ewma_alpha}")
        if self.config.flow_window_min > 0 >= self.config.flow_window_max:
            # A floor with no ceiling is silently inert (adaptive mode is
            # keyed on flow_window_max > 0); refuse rather than ignore it.
            raise KernelError(
                "flow_window_min requires a positive flow_window_max "
                "(adaptive windows are off while flow_window_max is 0)")
        if (self.config.flow_window_max > 0
                and self.config.flow_window_min > self.config.flow_window_max):
            raise KernelError(
                f"flow_window_min ({self.config.flow_window_min}) must not "
                f"exceed flow_window_max ({self.config.flow_window_max})")
        if (self.config.delivery_batch_window != 0
                or self.config.serialize_transport_setup
                or self.config.delivery_batch_max_messages != 0
                or self.config.delivery_batch_max_bytes != 0
                or self.config.delivery_batch_deadline != 0
                or self.config.flow_window_min != 0
                or self.config.flow_window_max != 0):
            # != 0 (not > 0) so a negative knob reaches configure_batching
            # and raises there instead of silently running with batching off.
            self.transport.configure_batching(
                self.config.delivery_batch_window,
                serialize_setup=self.config.serialize_transport_setup,
                max_messages=self.config.delivery_batch_max_messages,
                max_bytes=self.config.delivery_batch_max_bytes,
                deadline=self.config.delivery_batch_deadline,
                window_min=self.config.flow_window_min,
                window_max=self.config.flow_window_max,
                target_batch=self.config.flow_target_batch,
                ewma_alpha=self.config.flow_ewma_alpha)

        self.sites: Dict[str, Site] = {}
        #: callbacks fired (with the site name) when a site joins late via
        #: :meth:`add_site`; extensions like the Horus guard-group wiring
        #: use this so late sites are not invisible to them
        self._site_added_hooks: List[Callable[[str], None]] = []
        #: callbacks fired (with the site name) once a recovery completes
        #: and the site accepts traffic again (checkpoint revival uses this)
        self._site_recovered_hooks: List[Callable[[str], None]] = []
        #: the resolved durability policy; "none" builds no stores at all
        self.durability = resolve_policy(self.config.durability)
        #: per-site durable stores (empty when the policy is "none")
        self.stores: Dict[str, SiteStore] = {}
        for name in self.topology.sites():
            if _shard_ctx is not None and name not in _shard_ctx.owned:
                continue  # another shard hosts this site
            site = Site(name)
            self.sites[name] = site
            self.transport.register_endpoint(name, self._make_site_handler(name))
            self._attach_store(site)

        #: the lifecycle ledger: registration, indexes, retention (the
        #: kernel's agent-facing API delegates here)
        self.table = AgentTable(retention if retention is not None
                                else self.config.retention)
        self.event_log = EventLog(self.config.event_log_max)
        #: memo for _best_effort_code: deriving a CODE element per
        #: launch/meet/arrival re-ran registry reverse lookups (and raised
        #: exceptions for unregistered callables) on every hot-path call.
        #: Cleared whenever the registry mutates, and size-capped so a
        #: kernel launching unique closures cannot pin them forever.
        self._code_cache: Dict[Any, Optional[dict]] = {}
        self._code_cache_version = self.registry.version

        # Ledger counters read by experiments and tests.  The agent-state
        # counters (launched/completed/failed/killed) live in the lifecycle
        # table and are exposed below as properties; these four are kernel
        # events the table does not see.
        self.meets = 0
        self.transmits = 0
        self.arrivals = 0
        self.undeliverable = 0

        #: remembered so late-joined sites (add_site) match the population
        self._install_system_agents = install_system_agents
        if install_system_agents:
            from repro.sysagents import install_standard_agents
            for site in self.sites.values():
                install_standard_agents(site)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _init_facade(self, topology, transport, install_system_agents,
                     registry, retention) -> None:
        """Build a sharded kernel: N engine kernels behind this facade.

        Sites are partitioned by the placement map, each shard gets its own
        event loop / transport / ledgers, and the facade re-exposes the
        classic surface through merged views (``stats``, ``table``,
        ``sites``) plus method delegation — callers never see shards unless
        they ask (``kernel.shard_set``).
        """
        from repro.shard import (ClockSync, MailRouter, Shard, ShardContext,
                                 ShardSet, make_backend, resolve_placement)
        if isinstance(transport, Transport):
            raise KernelError(
                "a sharded kernel builds one transport per shard; pass a "
                "transport name or class, not a constructed instance")
        self.topology = topology if topology is not None else lan(["alpha", "beta", "gamma"])
        self.registry = registry or default_registry()
        backend_name = self.config.shard_backend
        placement = resolve_placement(self.topology.sites(), self.config.shards,
                                      self.config.shard_placement)
        router = MailRouter(placement,
                            inbox_handoffs=(backend_name == "thread"))
        if backend_name == "process":
            engines, backend = self._spawn_process_engines(
                transport, install_system_agents, retention, placement, router)
        else:
            engines = []
            for shard_id in range(self.config.shards):
                owned = frozenset(name for name, owner in placement.items()
                                  if owner == shard_id)
                engines.append(Kernel(
                    topology=self.topology, transport=transport,
                    config=self.config,
                    install_system_agents=install_system_agents,
                    registry=self.registry, retention=retention,
                    _shard_ctx=ShardContext(shard_id, owned, router)))
            backend = make_backend(backend_name, router, self.config.shards)
        router.attach_engines(engines)
        clock_sync = ClockSync(self.topology, router.placement,
                               shards=self.config.shards,
                               flow_bonus=self.config.flow_window_min)
        router.clock_sync = clock_sync
        if backend.distributed:
            backend.clock_sync = clock_sync
        self._engines = engines
        self._router = router
        self._clock_sync = clock_sync
        self._backend = backend
        self._shards = ShardSet([Shard(shard_id, engine)
                                 for shard_id, engine in enumerate(engines)],
                                clock_sync, backend=backend)

        # The merged facade surface: one API over N shards.
        self.stats = StatsView([engine.stats for engine in engines])
        #: the facade's own tracer (sync-round spans ride the ShardSet
        #: clock); every engine span is merged in through the TracerView
        facade_tracer = (Tracer(clock=self._shards,
                                sample=self.config.obs_sample)
                         if self.config.obs_enabled else None)
        self.obs = TracerView([engine.obs for engine in engines],
                              own=facade_tracer)
        self._shards.obs = facade_tracer
        self.metrics = MetricsView([engine.metrics for engine in engines])
        self.metrics.register("net", self.stats.snapshot)
        self.table = MergedAgentTable([engine.table for engine in engines])
        self.sites = ChainMap(*[engine.sites for engine in engines])
        self.stores = ChainMap(*[engine.stores for engine in engines])
        self.durability = engines[0].durability
        #: shard 0 anchors the pieces that need a single identity: failure
        #: schedules ride its clock, log_event stamps it, and code that
        #: introspects ``kernel.transport`` sees its transport
        self.loop = engines[0].loop
        self.transport = engines[0].transport
        self.rng = engines[0].rng
        self._install_system_agents = install_system_agents

    def _spawn_process_engines(self, transport, install_system_agents,
                               retention, placement, router):
        """Build the process backend: one spawn worker per shard.

        The facade keeps :class:`ProcessEngineProxy` objects where the
        in-process backends keep engine kernels; the merged views and the
        delegation methods work over either because the proxies present
        the same surface (served from worker state digests).
        """
        import pickle

        from repro.core.registry import default_registry as _default_registry
        from repro.shard.procworker import (ProcessBackend, WorkerSpec,
                                            preload_module_names)
        if self.registry is not _default_registry():
            raise KernelError(
                "shard_backend='process' rebuilds behaviours from the "
                "process-wide default registry in each worker; a custom "
                "registry instance cannot cross the process boundary (use "
                "shard_backend='thread' or register behaviours in the "
                "default registry)")
        try:
            pickle.dumps((self.config, retention, transport, self.topology))
        except Exception as error:
            raise KernelError(
                "shard_backend='process' ships the topology, config and "
                f"transport to spawn workers, but pickling failed: {error} "
                "(pass the transport by name, keep LinkSpec-based "
                "topologies, and avoid closures in the config)") from None
        transport_name = (transport if isinstance(transport, str)
                          else getattr(transport, "name", transport.__name__))
        preload = preload_module_names(self.registry)
        specs = []
        for shard_id in range(self.config.shards):
            owned = frozenset(name for name, owner in placement.items()
                              if owner == shard_id)
            specs.append(WorkerSpec(
                shard_id=shard_id, topology=self.topology,
                transport=transport, config=self.config,
                install_system_agents=install_system_agents,
                retention=retention, owned=owned, placement=placement,
                preload_modules=preload))
        backend = ProcessBackend(specs, transport_name)
        # Share the live placement map so late-joining sites (add_site)
        # route correctly without re-plumbing the backend.
        backend.placement = router.placement
        return backend.proxies, backend

    def __getattr__(self, name: str):
        # Only ever reached for attributes missing from __dict__ — i.e. on
        # the sharded facade, which does not carry the engine-level ledger
        # attributes.  Classic kernels and shard engines always have the
        # real attributes, so this costs them nothing.
        shards = self.__dict__.get("_shards")
        if shards is not None:
            engines = self.__dict__["_engines"]
            if name in ("meets", "transmits", "arrivals", "undeliverable"):
                return sum(getattr(engine, name) for engine in engines)
            if name == "event_log":
                merged = []
                for engine in engines:
                    merged.extend(engine.event_log)
                merged.sort(key=lambda entry: entry[0])
                return merged
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    @property
    def shard_set(self):
        """The ShardSet coordinator, or None on a classic kernel."""
        return self._shards

    def shard_summary(self) -> Dict[str, Any]:
        """Cross-shard coordination ledger (what the E15 report prints).

        Works on any kernel: a classic single-loop kernel reports
        ``shards=1, backend=None`` with all-zero handoff counters, so
        benchmark code can print it unconditionally.
        """
        stats = self.stats
        summary: Dict[str, Any] = {
            "shards": self.config.shards if self._shards is not None else 1,
            "backend": self._backend.name if self._shards is not None else None,
            "shard_handoffs": stats.shard_handoffs,
            "shard_handoff_bytes": stats.shard_handoff_bytes,
            "shard_late_arrivals": stats.shard_late_arrivals,
        }
        if self._shards is not None:
            summary["rounds"] = self._shards.rounds
            summary["sync_seconds"] = self._shards.sync_seconds
            summary["overhead_seconds"] = self._shards.overhead_seconds
            summary["handoffs_drained"] = self._shards.handoffs_drained
            summary["clock_rebuilds"] = self._clock_sync.rebuilds
        return summary

    def close(self) -> None:
        """Release held resources: shard workers, WAL sinks, asyncio loops.

        Idempotent — call it unconditionally when done with a kernel (or
        use the kernel as a context manager, which calls it on exit).  On
        a sharded facade it shuts the backend's worker threads/processes
        down; on a classic kernel it closes every site store's WAL sink
        and, under ``backend="realtime"``, the owned asyncio loop.  A
        closed realtime kernel (and a process-backend facade whose
        workers are gone) cannot run further; in-process shard backends
        rebuild their pool lazily if run again.
        """
        if self._shards is not None:
            if self.config.obs_enabled and self.config.obs_path is not None:
                # Engines ring-buffer their spans; the facade owns the file.
                self.dump_trace(self.config.obs_path)
            self._shards.close()
            return
        for store in self.stores.values():
            store.close()
        self.obs.close()
        loop_close = getattr(self.loop, "close", None)
        if loop_close is not None:
            loop_close()

    def __enter__(self) -> "Kernel":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _engine_for(self, site_name: str) -> "Kernel":
        """The shard engine owning *site_name* (facade only)."""
        owner = self._router.placement.get(site_name)
        if owner is None:
            raise UnknownSiteError(f"unknown site {site_name!r}")
        return self._engines[owner]

    def _make_loop(self) -> EventLoop:
        """Build the event loop the configured backend runs on.

        ``"sim"`` is the deterministic discrete-event loop; ``"realtime"``
        is :class:`repro.rt.AsyncioScheduler` — same heap and ordering,
        real sleeps between events.  Imported lazily so the sim backend
        never touches :mod:`asyncio`.
        """
        if self.config.backend == "realtime":
            from repro.rt import AsyncioScheduler
            return AsyncioScheduler()
        return EventLoop()

    def _make_tracer(self) -> Tracer:
        """Build this kernel's tracer from the ``obs_*`` config knobs.

        Disabled (the default) returns the no-op tracer: every
        instrumentation point then costs one attribute read.  Shard
        engines always record into ring buffers — the facade merges them
        (``dump_trace``) — so ``obs_path`` opens a live JSONL file only on
        classic kernels.  Under ``backend="realtime"`` spans additionally
        carry monotonic wall-clock stamps, the feed-back path from
        observed latencies to sim cost-model prices.
        """
        if not self.config.obs_enabled:
            return Tracer.disabled()
        from repro.obs import JsonlSink, RingSink, TeeSink
        sink = RingSink(self.config.obs_ring)
        if self.config.obs_path is not None and self._shard_ctx is None:
            sink = TeeSink([sink, JsonlSink(self.config.obs_path)])
        wall_timer = None
        if self.config.backend == "realtime":
            from timeit import default_timer
            wall_timer = default_timer
        return Tracer(clock=self.loop, sink=sink,
                      sample=self.config.obs_sample, wall_timer=wall_timer)

    def _make_transport(self, transport: Union[str, Transport, type]) -> Transport:
        if isinstance(transport, Transport):
            return transport
        if isinstance(transport, str):
            try:
                transport_cls = TRANSPORTS[transport]
            except KeyError:
                raise KernelError(f"unknown transport {transport!r}; "
                                  f"choose from {sorted(TRANSPORTS)}") from None
        elif isinstance(transport, type) and issubclass(transport, Transport):
            transport_cls = transport
        else:
            raise KernelError(f"cannot build a transport from {transport!r}")
        return transport_cls(self.loop, self.topology, self.stats,
                             rng=random.Random(self.config.rng_seed + 1))

    def _attach_store(self, site: Site) -> None:
        """Build and attach the site's durable store (no-op for policy "none")."""
        if not self.durability.durable:
            return
        costs = StoreCosts(
            write_latency=self.config.store_write_latency,
            write_byte_latency=self.config.store_write_byte_latency,
            fsync_latency=self.config.store_fsync_latency,
            commit_window=self.config.store_commit_window,
            replay_latency=self.config.store_replay_latency,
            recovery_base=self.config.store_recovery_base,
            snapshot_threshold=self.config.store_snapshot_threshold,
        )
        governor = CommitGovernor(piggyback=self.config.store_barrier_piggyback)
        sink = None
        if self.config.store_realtime_dir is not None:
            import os

            from repro.rt import FileWalSink
            os.makedirs(self.config.store_realtime_dir, exist_ok=True)
            sink = FileWalSink(os.path.join(self.config.store_realtime_dir,
                                            f"{site.name}.wal"))
            # Measured flush+fsync wall latency per group commit.
            sink.latency_observe = self.metrics.histogram(
                "wal_fsync_wall_seconds").observe
        store = SiteStore(site, self.loop, self.durability, costs, self.stats,
                          log_event=self.log_event, governor=governor,
                          sink=sink, obs=self.obs)
        site.attach_store(store)
        self.stores[site.name] = store

    # ------------------------------------------------------------------
    # site access
    # ------------------------------------------------------------------

    def site(self, name: str) -> Site:
        """The :class:`Site` called *name*."""
        try:
            return self.sites[name]
        except KeyError:
            raise UnknownSiteError(f"unknown site {name!r}") from None

    def site_names(self) -> List[str]:
        """All site names (cluster-wide: shard engines see every site too)."""
        return list(self.topology.sites())

    def add_site(self, name: str, links: Sequence = (),
                 install_system_agents: Optional[bool] = None) -> Site:
        """Register a new site with a *running* kernel (late join).

        *links* lists the peers to connect the new site to — plain site
        names (default link parameters) or ``(peer, LinkSpec)`` pairs.  The
        site gets a transport endpoint, the standard system agents (by
        default matching whether the kernel was constructed with them, so
        a late site never differs from the founding population), and every
        ``on_site_added`` subscriber is notified, so extensions that
        enumerated the sites at install time (e.g. the Horus guard group)
        can wire the newcomer in.
        """
        if self._shards is not None:
            return self._add_site_sharded(name, links, install_system_agents)
        if name in self.sites:
            raise KernelError(f"site {name!r} already exists")
        resolved_links = [link if isinstance(link, tuple) else (link, None)
                          for link in links]
        for peer, _ in resolved_links:
            # Validate before touching the topology: a bad entry must not
            # leave a half-registered node behind.  Checked against the
            # topology (not the local site dict) because a shard engine
            # hosts only its own sites but may link to any site.
            if not self.topology.has_site(peer):
                raise UnknownSiteError(f"cannot link new site {name!r} to "
                                       f"unknown site {peer!r}")
        if not self.topology.has_site(name):
            self.topology.add_site(name)
        for peer, spec in resolved_links:
            self.topology.add_link(name, peer, spec)
        site = Site(name)
        self.sites[name] = site
        self.transport.register_endpoint(name, self._make_site_handler(name))
        self._attach_store(site)
        if (self._install_system_agents if install_system_agents is None
                else install_system_agents):
            from repro.sysagents import install_standard_agents
            install_standard_agents(site)
        self.log_event("kernel", name, "site added")
        if self._shard_ctx is not None:
            # New sites (and their links) can shorten cross-shard paths, so
            # the lookahead matrix must be rebuilt before the next horizon.
            self._shard_ctx.router.clock_sync_invalidate()
        for hook in list(self._site_added_hooks):
            hook(name)
        return site

    def _add_site_sharded(self, name: str, links: Sequence,
                          install_system_agents: Optional[bool]) -> Site:
        """Facade add_site: place the newcomer, delegate to its owner."""
        if self._router.placement.get(name) is not None:
            raise KernelError(f"site {name!r} already exists")
        overrides = self.config.shard_placement or {}
        owner = overrides.get(name)
        if owner is None:
            from repro.shard import default_shard_of
            owner = default_shard_of(name, self.config.shards)
        owner = int(owner)
        if not 0 <= owner < self.config.shards:
            raise KernelError(f"shard_placement[{name!r}] = {owner} is "
                              f"outside [0, {self.config.shards})")
        if self._backend.distributed:
            return self._add_site_distributed(name, links,
                                              install_system_agents, owner)
        self._router.assign(name, owner)
        try:
            site = self._engines[owner].add_site(
                name, links=links, install_system_agents=install_system_agents)
        except Exception:
            self._router.unassign(name)
            raise
        self._clock_sync.invalidate()
        return site

    def _add_site_distributed(self, name: str, links: Sequence,
                              install_system_agents: Optional[bool],
                              owner: int):
        """Process-backend add_site: every worker's topology must learn it.

        The owning worker runs the full engine ``add_site`` (site object,
        endpoint, stores, system agents); the others only mirror the
        placement and the new topology edges so their routing and any
        relayed traffic see the newcomer.  The facade keeps its own
        topology copy current for ClockSync and queries.
        """
        resolved = [link if isinstance(link, tuple) else (link, None)
                    for link in links]
        for peer, _ in resolved:
            if not self.topology.has_site(peer):
                raise UnknownSiteError(f"cannot link new site {name!r} to "
                                       f"unknown site {peer!r}")
        self._router.assign(name, owner)
        try:
            site = self._engines[owner].add_site(
                name, links=list(links),
                install_system_agents=install_system_agents, owner=owner)
        except Exception:
            self._router.unassign(name)
            raise
        if not self.topology.has_site(name):
            self.topology.add_site(name)
        for peer, spec in resolved:
            self.topology.add_link(name, peer, spec)
        for shard_id, engine in enumerate(self._engines):
            if shard_id != owner:
                engine.site_assigned(name, resolved, owner)
        self._clock_sync.invalidate()
        # No facade-side log_event: the owning worker's add_site already
        # logged "site added" and the digest merges it in.
        return site

    def on_site_added(self, callback: Callable[[str], None]) -> None:
        """Subscribe *callback* to late site registrations (see :meth:`add_site`)."""
        if self._shards is not None:
            # Each engine fires for the sites it hosts; subscribing the
            # callback everywhere keeps the facade's contract: one call per
            # added site, whichever shard it landed on.
            for engine in self._engines:
                engine.on_site_added(callback)
            return
        self._site_added_hooks.append(callback)

    def on_site_recovered(self, callback: Callable[[str], None]) -> None:
        """Subscribe *callback* to completed site recoveries.

        Fired once the site accepts traffic again — after the durable
        store's replay (when one exists), immediately on the legacy
        instant-recovery path otherwise.  Checkpoint revival
        (:mod:`repro.fault.recovery`) is the canonical subscriber.
        """
        if self._shards is not None:
            for engine in self._engines:
                engine.on_site_recovered(callback)
            return
        self._site_recovered_hooks.append(callback)

    # ------------------------------------------------------------------
    # durable stores
    # ------------------------------------------------------------------

    def store(self, site_name: str) -> Optional[SiteStore]:
        """The durable store of *site_name*, or None under policy "none"."""
        self.site(site_name)  # raise UnknownSiteError for bad names
        return self.stores.get(site_name)

    def make_durable(self, cabinet_name: str,
                     sites: Optional[Iterable[str]] = None) -> int:
        """Opt the named cabinet into durability at the given (default: all) sites.

        Returns how many stores accepted the opt-in; 0 under policy "none",
        so callers can opt in unconditionally and pay nothing when
        durability is off.
        """
        targets = list(sites) if sites is not None else self.site_names()
        if self._shards is not None and self._backend.distributed:
            # The stores live in worker processes: group the targets by
            # owning shard and opt in with one RPC per worker.
            by_owner: Dict[int, List[str]] = {}
            for site_name in targets:
                owner = self._router.placement.get(site_name)
                if owner is None:
                    raise UnknownSiteError(f"unknown site {site_name!r}")
                by_owner.setdefault(owner, []).append(site_name)
            return sum(
                self._engines[owner].make_durable(cabinet_name, sites=names)
                for owner, names in by_owner.items())
        opted = 0
        for site_name in targets:
            store = self.store(site_name)
            if store is not None:
                store.make_durable(cabinet_name)
                opted += 1
        return opted

    def store_summary(self) -> Dict[str, Any]:
        """Aggregate durability ledger (what the E12 report prints).

        Reads the metrics registry — which re-exposes the stats snapshot
        as its ``"net"`` source — selected by prefix, so a durability
        counter added to :class:`NetworkStats` *or* registered directly
        with ``kernel.metrics`` shows up here without a second list to
        maintain.
        """
        summary: Dict[str, Any] = {
            key: value for key, value in self.metrics.collect().items()
            if key.startswith(("wal_", "store_", "recover", "durable_",
                               "state_lost_"))}
        summary["policy"] = self.durability.name
        return summary

    # ------------------------------------------------------------------
    # observability (repro.obs)
    # ------------------------------------------------------------------

    def trace_spans(self) -> List[Dict[str, Any]]:
        """Every recorded span as dicts, oldest first (sharded: merged)."""
        return self.obs.export()

    def dump_trace(self, path: str) -> int:
        """Write every recorded span to *path* as JSONL; returns the count.

        One file per kernel regardless of sharding or execution backend —
        the :mod:`repro.obs.report` analyzer reconstructs itineraries and
        latency breakdowns from it.
        """
        import json
        spans = self.trace_spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True, default=str))
                handle.write("\n")
        return len(spans)

    def _obs_trace_launch(self, briefcase: Briefcase, site_name: str) -> None:
        """Assign a fresh trace id at top-level launch (plus its root span).

        A briefcase already carrying TRACE_ID (an FT itinerary names its
        trace after the computation id, callers may pre-assign) keeps the
        id and only gets the root span; one carrying a TRACE_PARENT too is
        mid-itinerary and left alone.  The id counter advances whether or
        not the trace is sampled, so ids are stable under any sampling
        rate — and identical across shard execution backends, because
        launches reach each engine in the same order everywhere.
        """
        trace_id = briefcase.get(TRACE_ID_FOLDER)
        if trace_id is None:
            self._obs_trace_seq += 1
            shard = self._shard_ctx.shard_id if self._shard_ctx is not None else 0
            trace_id = f"t{shard}:{site_name}:{self._obs_trace_seq}"
        elif briefcase.get(TRACE_PARENT_FOLDER) is not None:
            return
        if not self.obs.sampled(trace_id):
            if briefcase.get(TRACE_ID_FOLDER) is not None:
                # An unsampled pre-assigned id must not leak spans further
                # down the itinerary either.
                briefcase.remove(TRACE_ID_FOLDER)
            return
        root = self.obs.record(trace_id, "launch", "root", start=self.loop.now,
                               kind="agent", site=site_name)
        briefcase.set(TRACE_ID_FOLDER, trace_id)
        briefcase.set(TRACE_PARENT_FOLDER, root.span_id)

    def _obs_begin_run(self, instance: AgentInstance) -> None:
        """Open the agent's "run" span (start to finish/fail/kill)."""
        trace_id = instance.briefcase.get(TRACE_ID_FOLDER)
        if trace_id is None:
            return
        attrs = ({"agent": instance.spec.name}
                 if instance.spec.name is not None else None)
        self._obs_runs[instance.agent_id] = self.obs.begin(
            trace_id, "run", self.obs.next_key(instance.site_name),
            parent_id=instance.briefcase.get(TRACE_PARENT_FOLDER),
            kind="agent", site=instance.site_name, attrs=attrs)

    def _obs_end_run(self, instance: AgentInstance, status: str) -> None:
        span = self._obs_runs.pop(instance.agent_id, None)
        if span is not None:
            self.obs.finish(span, status=status)

    def _obs_record_arrival(self, site: Site, message: Message,
                            briefcase: Briefcase) -> None:
        """Record the network leg that carried a traced agent/folder here.

        The span covers send to delivery and is recorded destination-side
        in one shot, so no open-span handle ever crosses an engine (or
        process) boundary.  The briefcase's TRACE_PARENT is re-pointed at
        it, parenting the arrival's "run" span under the network leg.
        """
        trace_id, parent = message.trace
        name = ("migration" if message.kind in MessageKind.MIGRATION_KINDS
                else "delivery")
        sent_at = message.sent_at if message.sent_at is not None else self.loop.now
        span = self.obs.record(
            trace_id, name, self.obs.next_key(site.name),
            start=sent_at, end=self.loop.now, parent_id=parent, kind="net",
            site=site.name, source=message.source,
            destination=message.destination,
            attrs={"kind": message.kind, "bytes": message.size_bytes()})
        briefcase.set(TRACE_PARENT_FOLDER, span.span_id)

    def install_agent(self, site_name: Optional[str], name: str, behaviour: Callable,
                      system: bool = False, replace: bool = False) -> None:
        """Install a named agent at one site (or every site when *site_name* is None)."""
        if self._shards is not None:
            # Delegate to the owning engine(s) instead of poking Site
            # objects from here: on the process backend sites live in
            # worker processes and installation must cross as an RPC.
            if site_name is not None:
                self._engine_for(site_name).install_agent(
                    site_name, name, behaviour, system=system, replace=replace)
            else:
                for engine in self._engines:
                    engine.install_agent(None, name, behaviour,
                                         system=system, replace=replace)
            return
        targets = [self.site(site_name)] if site_name is not None else list(self.sites.values())
        for site in targets:
            site.install(name, behaviour, system=system, replace=replace)

    def agents_at(self, site_name: str, active_only: bool = True) -> List[AgentInstance]:
        """Agent instances located at *site_name*.

        The active (default) query reads the site's live resident index —
        O(residents at the site).  The historical query (``active_only=
        False``) still scans the full ledger, since terminal agents are
        dropped from the index the moment they finish.
        """
        if active_only:
            site = self.sites.get(site_name)
            return site.residents() if site is not None else []
        return self._agents_at_scan(site_name, active_only=False)

    def _agents_at_scan(self, site_name: str, active_only: bool = True) -> List[AgentInstance]:
        """Brute-force O(all agents) scan; the reference the index is checked against."""
        return [agent for agent in self.table.entries.values()
                if agent.site_name == site_name and (not active_only or not agent.finished)]

    def site_load(self, site_name: str) -> float:
        """The load metric of a site (what monitor agents report to brokers)."""
        site = self.site(site_name)
        return site.load_metric(site.resident_count())

    # ------------------------------------------------------------------
    # launching agents
    # ------------------------------------------------------------------

    def launch(self, site_name: str, behaviour: Union[str, Callable],
               briefcase: Optional[Briefcase] = None, name: Optional[str] = None,
               system: bool = False, delay: float = 0.0) -> str:
        """Create a new top-level agent at *site_name* and schedule it to start.

        *behaviour* may be a callable or a registered behaviour name.
        Returns the new agent's id; results are read back later through
        :meth:`result_of` or :meth:`agent`.
        """
        if delay < 0:
            raise KernelError(f"cannot schedule agent starts {delay} seconds "
                              f"in the past")
        if self._shards is not None:
            return self._engine_for(site_name).launch(
                site_name, behaviour, briefcase, name=name, system=system,
                delay=delay)
        site = self.site(site_name)
        resolved, resolved_system = self._resolve_behaviour(site, behaviour)
        spec = AgentSpec(
            behaviour=resolved,
            briefcase=briefcase if briefcase is not None else Briefcase(),
            name=name or (behaviour if isinstance(behaviour, str) else None),
            site=site_name,
            code_element=self._best_effort_code(behaviour, resolved),
            system=system or resolved_system,
        )
        if self.obs.active:
            self._obs_trace_launch(spec.briefcase, site_name)
        instance = AgentInstance(spec, site_name)
        self._register(instance)
        self.loop.schedule(delay, lambda: self._start(instance),
                           label=f"start-{instance.agent_id}")
        return instance.agent_id

    def launch_many(self, requests: Sequence[tuple], delay: float = 0.0) -> List[str]:
        """Launch a batch of top-level agents with one scheduler pass.

        Each request is ``(site_name, behaviour)`` or ``(site_name,
        behaviour, briefcase)``.  The batch is atomic: every site and
        behaviour reference is resolved before any agent is registered, so
        a bad entry raises without leaving earlier entries half-launched.
        All start events go through :meth:`EventLoop.schedule_many`, which
        is what high-population workloads (thousands of agents per wave)
        want.
        """
        if delay < 0:
            raise KernelError(f"cannot schedule agent starts {delay} seconds "
                              f"in the past")
        if self._shards is not None:
            return self._launch_many_sharded(requests, delay)
        specs: List[tuple] = []
        for request in requests:
            site_name, behaviour = request[0], request[1]
            briefcase = request[2] if len(request) > 2 else None
            site = self.site(site_name)
            resolved, resolved_system = self._resolve_behaviour(site, behaviour)
            specs.append((site_name, AgentSpec(
                behaviour=resolved,
                briefcase=briefcase if briefcase is not None else Briefcase(),
                name=behaviour if isinstance(behaviour, str) else None,
                site=site_name,
                code_element=self._best_effort_code(behaviour, resolved),
                system=resolved_system,
            )))
        instances: List[AgentInstance] = []
        for site_name, spec in specs:
            if self.obs.active:
                self._obs_trace_launch(spec.briefcase, site_name)
            instance = AgentInstance(spec, site_name)
            self._register(instance)
            instances.append(instance)
        self.loop.schedule_many(
            [(delay, (lambda inst=instance: self._start(inst)),
              f"start-{instance.agent_id}") for instance in instances])
        return [instance.agent_id for instance in instances]

    def _launch_many_sharded(self, requests: Sequence[tuple],
                             delay: float) -> List[str]:
        """Facade launch_many: one batched scheduler pass per owning shard.

        Site names are validated up front; ids come back in request order.
        Atomicity is per shard — a behaviour that fails to resolve aborts
        its own shard's batch, but batches already handed to other shards
        stay launched (cross-shard launches are independent by design).
        """
        requests = list(requests)
        owners = [self._engine_for(request[0]) for request in requests]
        grouped: Dict[int, List[int]] = {}
        for index, engine in enumerate(owners):
            grouped.setdefault(id(engine), []).append(index)
        ids: List[Optional[str]] = [None] * len(requests)
        for engine in self._engines:
            indexes = grouped.get(id(engine))
            if not indexes:
                continue
            batch_ids = engine.launch_many([requests[i] for i in indexes],
                                           delay=delay)
            for position, index in enumerate(indexes):
                ids[index] = batch_ids[position]
        return ids

    def _resolve_behaviour(self, site: Site, behaviour: Union[str, Callable]):
        """Resolve a behaviour reference to (callable, is_system)."""
        if callable(behaviour):
            return behaviour, False
        if isinstance(behaviour, str):
            if site.is_installed(behaviour):
                return site.resolve(behaviour)
            if behaviour in self.registry:
                return self.registry.resolve(behaviour), False
            raise UnknownAgentError(
                f"behaviour {behaviour!r} is neither installed at {site.name!r} "
                f"nor registered")
        raise KernelError(f"cannot launch {behaviour!r}: expected a name or a callable")

    _CODE_UNSET = object()
    #: _code_cache entries keep strong references to behaviour callables, so
    #: the cache is cleared rather than allowed to grow past this.
    _CODE_CACHE_MAX = 4096

    def _best_effort_code(self, original: Any, resolved: Callable) -> Optional[dict]:
        """Derive (and memoise) the CODE element for a behaviour reference.

        Launch/meet/arrival all pass through here, so the derivation —
        registry reverse lookup, or a raised-and-swallowed exception for
        unregistered callables — is cached per (original, resolved) pair.
        Any registry mutation (register, replace, unregister) bumps the
        registry version and flushes the memo, so cached elements can never
        name a behaviour the registry has since rebound.
        """
        if self._code_cache_version != self.registry.version:
            self._code_cache.clear()
            self._code_cache_version = self.registry.version
        key: Any = (original, resolved)
        try:
            cached = self._code_cache.get(key, self._CODE_UNSET)
        except TypeError:  # unhashable reference (e.g. a raw CODE dict)
            key = None
        else:
            if cached is not self._CODE_UNSET:
                return code_element_copy(cached)
        element: Optional[dict] = None
        for candidate in (original, resolved):
            try:
                element = code_element_of(candidate, self.registry)
                break
            except Exception:
                continue
        if key is not None:
            if len(self._code_cache) >= self._CODE_CACHE_MAX:
                self._code_cache.clear()
            self._code_cache[key] = code_element_copy(element)
        return element

    def _register(self, instance: AgentInstance) -> None:
        """Enter a new instance into the lifecycle ledger + site index."""
        self.table.register(instance, self.sites.get(instance.site_name))

    def _retire(self, instance: AgentInstance) -> None:
        """Hand a terminal instance to the ledger: unindex, count, archive."""
        self.table.retire(instance, self.sites.get(instance.site_name))

    # ------------------------------------------------------------------
    # running the simulation
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop (to quiescence, or up to simulated time *until*).

        On a sharded kernel this advances every shard in conservative
        synchronisation rounds: *until* is honoured globally (no shard's
        clock passes it) and *max_events* is one global budget shared
        across shards, not a per-shard allowance.
        """
        if self._shards is not None:
            return self._shards.run(until=until, max_events=max_events)
        if until is None:
            return self.loop.run(max_events=max_events)
        return self.loop.run_until(until, max_events=max_events)

    @property
    def now(self) -> float:
        """Current simulated time (sharded: the slowest shard's clock)."""
        if self._shards is not None:
            return self._shards.now
        return self.loop.now

    # ------------------------------------------------------------------
    # agent bookkeeping (thin delegations to the lifecycle AgentTable)
    # ------------------------------------------------------------------

    @property
    def agents(self) -> Mapping[str, AgentInstance]:
        """A read-only view of the lifecycle ledger's entries.

        Values are live :class:`AgentInstance` objects, or compact
        :class:`~repro.core.lifecycle.AgentRecord` archives for terminal
        agents under the ``keep-results``/``keep-counts`` retention policies.
        A mapping proxy, not the dict itself: external mutation would desync
        the table's name index and state counters.
        """
        return MappingProxyType(self.table.entries)

    @property
    def launched(self) -> int:
        """Total agents ever registered (top-level, meet callees, arrivals)."""
        return self.table.launched

    @property
    def completed(self) -> int:
        """Agents that finished normally."""
        return self.table.completed

    @property
    def failed(self) -> int:
        """Agents whose behaviour raised."""
        return self.table.failed

    @property
    def killed(self) -> int:
        """Agents terminated from outside (crashes, runaway enforcement)."""
        return self.table.killed

    def agent(self, agent_id: str) -> AgentInstance:
        """The instance (or archived record) with the given id."""
        entry = self.table.get(agent_id)
        if entry is None:
            raise UnknownAgentError(f"unknown agent id {agent_id!r}")
        return entry

    def agents_named(self, name: str) -> List[AgentInstance]:
        """Every retained instance launched under the given name.

        O(instances with that name) via the table's name index, not a scan
        of the full ledger.
        """
        return self.table.named(name)

    def result_of(self, agent_id: str) -> Any:
        """The result of a finished agent (raises if it failed or is unfinished).

        Works for archived records too: ``keep-results`` retention drops the
        briefcase and spec of a terminal agent but keeps the result readable.
        """
        instance = self.agent(agent_id)
        if instance.state == AgentState.DONE:
            return instance.result
        if instance.state == AgentState.FAILED:
            raise KernelError(f"agent {agent_id} failed: {instance.error!r}")
        if instance.state == AgentState.KILLED:
            raise KernelError(f"agent {agent_id} was killed: {instance.error!r}")
        raise KernelError(f"agent {agent_id} has not finished (state={instance.state})")

    def counters(self) -> Dict[str, int]:
        """Snapshot of the kernel ledger used by tests and benchmark reports.

        Agent-state counts come from the lifecycle table's O(1) snapshot;
        nothing here scans agent history.
        """
        return {
            **self.table.state_counts(),
            "meets": self.meets,
            "transmits": self.transmits,
            "arrivals": self.arrivals,
            "undeliverable": self.undeliverable,
        }

    def log_event(self, agent_id: str, site_name: str, message: str) -> None:
        """Append a line to the kernel event log (agents call this via ctx.log).

        Sharded: the event lands in the log of the shard owning
        *site_name* — stamped with that shard's clock, next to the rest of
        that site's history.  Only events about unplaced scopes (``"*"``,
        facade-level notes) fall back to shard 0.  The facade's
        ``event_log`` property merges every shard's log in time order.
        """
        if self._shards is not None:
            owner = self._router.placement.get(site_name)
            engine = self._engines[owner] if owner is not None else self._engines[0]
            engine.log_event(agent_id, site_name, message)
            return
        self.event_log.append((self.loop.now, agent_id, site_name, message))

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------

    def crash_site(self, name: str) -> None:
        """Crash a site: kill resident agents, refuse traffic until recovery.

        With a durable store attached, the crash also discards every piece
        of cabinet state that had not reached the store (un-flushed
        folders, un-committed WAL records), logging a ``state lost`` kernel
        event; under policy "none" cabinets survive untouched.  Crashing a
        site that is mid-recovery aborts the replay — the durable image is
        unharmed and a later :meth:`recover_site` starts over.
        """
        if self._shards is not None:
            owner = self._engine_for(name)
            owner.crash_site(name)
            for engine in self._engines:
                if engine is not owner:
                    # Non-owning shards drop their pending outboxes to the
                    # crashed site and forget its flow telemetry, exactly
                    # as the owning transport does for local traffic.
                    engine.transport.on_site_down(name)
            if self._backend.distributed:
                # Workers mark their own topology copies; keep the
                # facade's copy (ClockSync, route queries) in step.
                self.topology.mark_down(name)
            return
        site = self.site(name)
        if not site.alive:
            store = self.stores.get(name)
            if store is not None and store.recovering:
                # Crashed again while replaying: the recovery never
                # completed, so the site keeps refusing traffic and the
                # scheduled completion becomes a stale no-op.
                store.abort_recovery()
                site.mark_crashed()
                self.log_event("kernel", name, "site crashed during recovery; "
                                               "replay aborted")
                if self.obs.active:
                    span = self._obs_recovery.pop(name, None)
                    if span is not None:
                        self.obs.finish(span, aborted=True)
            return
        site.mark_crashed()
        self.topology.mark_down(name)
        self.transport.on_site_down(name)
        for agent in site.residents():  # snapshot: _kill unindexes as it goes
            self._kill(agent, reason=f"site {name} crashed")
        store = self.stores.get(name)
        if store is not None:
            store.on_crash()
        self.log_event("kernel", name, "site crashed")
        if self.obs.active:
            self.obs.record(infra_trace_id("site", name), "crash",
                            self.obs.next_key(name), start=self.loop.now,
                            kind="fault", site=name)

    def recover_site(self, name: str) -> None:
        """Recover a crashed site.

        Installed agents always survive (they model code on disk).  What
        happens to cabinet state depends on the durability policy:

        * ``none`` (no store) — the legacy model: recovery is instant and
          every cabinet survives verbatim, permanence is free and fake;
        * a durable policy — only the durable image (snapshot + committed
          WAL) survives.  The store replays it with a modelled delay
          proportional to the state replayed, and the site keeps refusing
          traffic until the replay completes; only then is the site marked
          up and ``on_site_recovered`` fired.
        """
        if self._shards is not None:
            owner = self._engine_for(name)
            owner.recover_site(name)
            for engine in self._engines:
                if engine is not owner:
                    engine.transport.on_site_up(name)
            if self._backend.distributed:
                self.topology.mark_up(name)
            return
        site = self.site(name)
        if site.alive:
            return
        store = self.stores.get(name)
        if store is None:
            site.mark_recovered()
            self.topology.mark_up(name)
            self.transport.on_site_up(name)
            self.log_event("kernel", name, "site recovered")
            if self.obs.active:
                self.obs.record(infra_trace_id("site", name), "recovery",
                                self.obs.next_key(name), start=self.loop.now,
                                kind="fault", site=name,
                                attrs={"instant": True})
            self._fire_site_recovered(name)
            return
        if store.recovering:
            return  # a replay is already underway
        delay, token = store.begin_recovery()
        self.log_event("kernel", name,
                       f"site recovering: replaying snapshot + WAL "
                       f"({delay:.4f}s)")
        if self.obs.active:
            self._obs_recovery[name] = self.obs.begin(
                infra_trace_id("site", name), "recovery",
                self.obs.next_key(name), kind="fault", site=name,
                attrs={"replay_delay": delay})
        self.loop.schedule(delay, lambda: self._complete_recovery(name, token),
                           label=f"recover-{name}")

    def _complete_recovery(self, name: str, token: int) -> None:
        """The store's replay finished: restore cabinets and open the site."""
        site = self.sites[name]
        store = self.stores[name]
        if site.alive or not store.recovery_valid(token):
            return  # aborted by a crash-during-recovery, or stale
        restored = store.complete_recovery()
        site.mark_recovered()
        self.topology.mark_up(name)
        self.transport.on_site_up(name)
        self.log_event("kernel", name,
                       f"site recovered: {restored} durable folders restored")
        if self.obs.active:
            span = self._obs_recovery.pop(name, None)
            if span is not None:
                self.obs.finish(span, restored=restored)
        self._fire_site_recovered(name)

    def _fire_site_recovered(self, name: str) -> None:
        for hook in list(self._site_recovered_hooks):
            hook(name)

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Partition the network into the given site groups.

        Pending delivery-fabric outboxes whose pair the partition severed
        are flushed through the (now partitioned) network immediately: the
        queued messages had not left their source yet, so cross-partition
        batches are dropped with normal per-message drop accounting rather
        than silently surviving the partition.  Same-side outboxes are left
        coalescing undisturbed.
        """
        self.topology.set_partition(groups)
        if self._shards is not None:
            if self._backend.distributed:
                # Each worker partitions its own topology copy and flushes
                # its severed outboxes in one RPC.
                for engine in self._engines:
                    engine.partition(groups)
            else:
                for engine in self._engines:
                    engine.transport.flush_outboxes(only_unroutable=True,
                                                    cause="partition")
        else:
            self.transport.flush_outboxes(only_unroutable=True, cause="partition")
        self.log_event("kernel", "*", f"partition installed: {[list(g) for g in groups]}")

    def heal_partition(self) -> None:
        """Heal any active partition."""
        self.topology.heal_partition()
        if self._shards is not None and self._backend.distributed:
            for engine in self._engines:
                engine.heal_partition()
        self.log_event("kernel", "*", "partition healed")

    # ------------------------------------------------------------------
    # behaviour execution
    # ------------------------------------------------------------------

    def _kill(self, instance: AgentInstance, reason: str) -> None:
        """Terminate an agent from outside: crash, enforcement, dead site.

        All kill paths funnel through here so the generator is always
        closed (its ``finally:`` blocks run, its frame is released) and the
        site resident index stays exact.
        """
        if instance.finished:
            return
        instance.mark_killed(self.loop.now, reason=reason)
        instance.close_generator()
        if self.obs.active:
            self._obs_end_run(instance, "killed")
        self._retire(instance)

    def _start(self, instance: AgentInstance) -> None:
        if instance.finished:
            return
        site = self.sites[instance.site_name]
        if not site.alive:
            self._kill(instance, reason=f"site {site.name} is down")
            return
        instance.started_at = self.loop.now
        if self.obs.active:
            self._obs_begin_run(instance)
        context = AgentContext(self, site, instance)
        try:
            outcome = instance.spec.behaviour(context, instance.briefcase)
        except Exception as error:  # behaviour blew up before yielding anything
            self._fail(instance, error)
            return
        if outcome is not None and hasattr(outcome, "send") and hasattr(outcome, "throw"):
            instance.generator = outcome
            self._resume(instance, None)
        else:
            # Plain function behaviour: it already ran to completion.
            self._finish(instance, outcome)

    def _resume(self, instance: AgentInstance, value: Any = None,
                error: Optional[BaseException] = None) -> None:
        if instance.finished:
            return
        site = self.sites[instance.site_name]
        if not site.alive:
            self._kill(instance, reason=f"site {site.name} is down")
            return
        instance.mark_running()
        try:
            if error is not None:
                request = instance.generator.throw(error)
            else:
                request = instance.generator.send(value)
        except StopIteration as stop:
            self._finish(instance, stop.value)
            return
        except Exception as failure:
            self._fail(instance, failure)
            return
        instance.steps += 1
        if instance.steps > self.config.max_agent_steps:
            self._kill(instance, reason="runaway agent exceeded step budget")
            self._release_meet_parent_on_abnormal_end(
                instance, MeetError(f"met agent {instance.name!r} was killed as a runaway"))
            return
        self._dispatch(instance, request)

    def _dispatch(self, instance: AgentInstance, request: Any) -> None:
        if isinstance(request, Meet):
            self._do_meet(instance, request)
        elif isinstance(request, EndMeet):
            self._do_end_meet(instance, request)
        elif isinstance(request, Sleep):
            self._do_sleep(instance, request)
        elif isinstance(request, Spawn):
            self._do_spawn(instance, request)
        elif isinstance(request, Transmit):
            self._do_transmit(instance, request)
        elif isinstance(request, Terminate):
            self._finish(instance, request.result)
        elif isinstance(request, Syscall):  # a Syscall subclass we do not handle
            self._throw_back(instance, SyscallError(f"unsupported syscall {request!r}"))
        else:
            self._throw_back(instance, SyscallError(
                f"agents must yield Syscall objects, got {type(request).__name__}"))

    def _throw_back(self, instance: AgentInstance, error: Exception) -> None:
        """Deliver an error to the agent on its next step."""
        self.loop.schedule(self.config.step_cost,
                           lambda: self._resume(instance, error=error),
                           label=f"error-{instance.agent_id}")

    # -- individual syscalls ----------------------------------------------------------

    def _do_meet(self, caller: AgentInstance, request: Meet) -> None:
        site = self.sites[caller.site_name]
        try:
            behaviour, is_system = site.resolve(request.agent_name)
        except UnknownAgentError as error:
            self._throw_back(caller, MeetError(str(error)))
            return
        spec = AgentSpec(
            behaviour=behaviour,
            briefcase=request.briefcase,
            name=request.agent_name,
            site=site.name,
            code_element=self._best_effort_code(request.agent_name, behaviour),
            system=is_system,
        )
        callee = AgentInstance(spec, site.name, parent_id=caller.agent_id,
                               meet_parent=caller.agent_id)
        self._register(callee)
        caller.children.append(callee.agent_id)
        caller.mark_waiting()
        self.meets += 1
        self.loop.schedule(self.config.meet_overhead + self.config.step_cost,
                           lambda: self._start(callee),
                           label=f"meet-{caller.agent_id}-{request.agent_name}")

    def _do_end_meet(self, callee: AgentInstance, request: EndMeet) -> None:
        self._release_meet_parent(callee, request.value)
        # The callee keeps running concurrently with its (former) caller.
        self.loop.schedule(self.config.step_cost, lambda: self._resume(callee, None),
                           label=f"continue-{callee.agent_id}")

    def _do_sleep(self, instance: AgentInstance, request: Sleep) -> None:
        instance.mark_waiting()
        delay = max(0.0, float(request.duration)) + self.config.step_cost
        self.loop.schedule(delay, lambda: self._resume(instance, None),
                           label=f"wake-{instance.agent_id}")

    def _do_spawn(self, parent: AgentInstance, request: Spawn) -> None:
        site = self.sites[parent.site_name]
        behaviour: Callable
        is_system = False
        if callable(request.behaviour):
            behaviour = request.behaviour
        else:
            try:
                behaviour, is_system = self._resolve_behaviour(site, request.behaviour)
            except (UnknownAgentError, KernelError) as error:
                self._throw_back(parent, error)
                return
        code_element = getattr(request, "code_element", None) or \
            self._best_effort_code(request.behaviour, behaviour)
        spec = AgentSpec(
            behaviour=behaviour,
            briefcase=request.briefcase,
            name=request.name or (request.behaviour
                                  if isinstance(request.behaviour, str) else None),
            site=site.name,
            code_element=code_element,
            system=is_system,
        )
        child = AgentInstance(spec, site.name, parent_id=parent.agent_id)
        self._register(child)
        parent.children.append(child.agent_id)
        self.loop.schedule_many((
            (self.config.spawn_overhead, lambda: self._start(child),
             f"spawn-{child.agent_id}"),
            (self.config.step_cost, lambda: self._resume(parent, child.agent_id),
             f"spawned-{parent.agent_id}"),
        ))

    def _do_transmit(self, sender: AgentInstance, request: Transmit) -> None:
        if not sender.system:
            self._throw_back(sender, SyscallError(
                "only system agents may transmit; ordinary agents meet rexec or the courier"))
            return
        if request.destination not in self.topology:
            self._throw_back(sender, SyscallError(
                f"transmit to unknown site {request.destination!r}"))
            return
        payload_bytes = pack_briefcase(request.briefcase)
        declared = wire_size_of(request.briefcase)
        message = Message(
            source=sender.site_name,
            destination=request.destination,
            kind=request.kind,
            payload={"contact": request.contact, "briefcase": payload_bytes},
            declared_size=declared,
        )
        if self.obs.active:
            trace_id = request.briefcase.get(TRACE_ID_FOLDER)
            if trace_id is not None:
                message.trace = (trace_id,
                                 request.briefcase.get(TRACE_PARENT_FOLDER))
        self.transmits += 1
        # Through the delivery fabric: batchable kinds (folder deliveries,
        # status reports) may coalesce with other traffic to the same
        # destination; everything else is sent immediately.
        event = self.transport.post(message)
        accepted = event is not None
        self.loop.schedule(self.config.transmit_overhead + self.config.step_cost,
                           lambda: self._resume(sender, accepted),
                           label=f"transmitted-{sender.agent_id}")

    # -- completion paths ---------------------------------------------------------------

    def _finish(self, instance: AgentInstance, result: Any) -> None:
        if instance.finished:
            return
        instance.mark_done(result, self.loop.now)
        instance.close_generator()
        if self.obs.active:
            self._obs_end_run(instance, "done")
        self._retire(instance)
        self._release_meet_parent(instance, result)

    def _fail(self, instance: AgentInstance, error: BaseException) -> None:
        if instance.finished:
            return
        instance.mark_failed(error, self.loop.now)
        instance.close_generator()
        if self.obs.active:
            self._obs_end_run(instance, "failed")
        self._retire(instance)
        self.log_event(instance.agent_id, instance.site_name, f"failed: {error!r}")
        self._release_meet_parent_on_abnormal_end(
            instance, MeetError(f"met agent {instance.name!r} failed: {error!r}"))

    def _release_meet_parent(self, callee: AgentInstance, value: Any) -> None:
        """Resume the agent blocked on this callee's meet, if any."""
        if callee.meet_ended or callee.meet_parent is None:
            return
        callee.meet_ended = True
        parent = self.table.get(callee.meet_parent)
        if parent is None or parent.finished:
            return
        result = MeetResult(value=value, briefcase=callee.briefcase,
                            agent_id=callee.agent_id)
        self.loop.schedule(self.config.step_cost, lambda: self._resume(parent, result),
                           label=f"meet-return-{parent.agent_id}")

    def _release_meet_parent_on_abnormal_end(self, callee: AgentInstance,
                                             error: Exception) -> None:
        if callee.meet_ended or callee.meet_parent is None:
            return
        callee.meet_ended = True
        parent = self.table.get(callee.meet_parent)
        if parent is None or parent.finished:
            return
        self.loop.schedule(self.config.step_cost, lambda: self._resume(parent, error=error),
                           label=f"meet-error-{parent.agent_id}")

    # ------------------------------------------------------------------
    # network arrivals
    # ------------------------------------------------------------------

    def _make_site_handler(self, site_name: str) -> Callable[[Message], None]:
        def handler(message: Message) -> None:
            self._on_message(site_name, message)
        return handler

    def _on_message(self, site_name: str, message: Message) -> None:
        site = self.sites.get(site_name)
        if site is None or not site.alive:
            # The network delivered to a site the kernel cannot serve (the
            # site crashed kernel-side while the link stayed up, or was never
            # registered).  These used to vanish without touching the
            # undeliverable ledgers, so crash experiments undercounted loss.
            # A batch envelope loses every coalesced message it carried.
            count = (len(message.payload.get("messages", ()))
                     if message.kind == MessageKind.BATCH else 1)
            if site is not None:
                site.undeliverable += count
            self.undeliverable += count
            self.log_event("kernel", site_name,
                           f"message {message.kind!r} dropped: site unavailable")
            return
        if message.kind == MessageKind.BATCH:
            # Delivery-fabric envelope: unbatch and fan each coalesced
            # message out through the normal per-kind path (folder
            # deliveries to their contacts, status reports likewise).
            delivered_at = message.delivered_at
            for sub in message.payload.get("messages", ()):
                sub.delivered_at = delivered_at
                sub.hops = message.hops
                self._on_message(site_name, sub)
            return
        # Site-level hooks deliberately override the default routing for
        # their kind — including contact-addressed STATUS traffic below, so
        # a STATUS hook at a broker site intercepts monitor load reports.
        hook = site.message_hook(message.kind)
        if hook is not None:
            hook(message)
            return
        payload = message.payload
        if message.kind in (MessageKind.AGENT_TRANSFER, MessageKind.FOLDER_DELIVERY,
                            MessageKind.FT_RELEASE, MessageKind.FT_RELAUNCH):
            # Rear-guard traffic is contact-addressed exactly like folder
            # deliveries: releases execute the release agent, relaunches
            # re-animate the snapshot through its CONTACT (normally ag_py).
            self._accept_agent_transfer(site, message)
            return
        if (message.kind == MessageKind.STATUS and isinstance(payload, dict)
                and "contact" in payload and "briefcase" in payload):
            # Contact-addressed status traffic (monitor load reports routed
            # through the courier) executes its contact like a folder
            # delivery instead of rotting in the message cabinet.
            self._accept_agent_transfer(site, message)
            return
        # Default path for control/status/data traffic: deposit into the
        # site's message cabinet so agents can poll it.
        site.cabinet("_messages").put(message.kind, message.payload)

    def _accept_agent_transfer(self, site: Site, message: Message) -> None:
        payload = message.payload
        contact = payload.get("contact")
        raw = payload.get("briefcase")
        if contact is None or raw is None:
            site.undeliverable += 1
            self.undeliverable += 1
            return
        try:
            briefcase = unpack_briefcase(raw)
        except Exception:
            site.undeliverable += 1
            self.undeliverable += 1
            return
        if not site.is_installed(contact):
            site.undeliverable += 1
            self.undeliverable += 1
            self.log_event("kernel", site.name,
                           f"arrival for unknown contact {contact!r} dropped")
            return
        behaviour, is_system = site.resolve(contact)
        spec = AgentSpec(
            behaviour=behaviour,
            briefcase=briefcase,
            name=contact,
            site=site.name,
            code_element=self._best_effort_code(contact, behaviour),
            system=is_system,
        )
        if self.obs.active and message.trace is not None:
            self._obs_record_arrival(site, message, briefcase)
        instance = AgentInstance(spec, site.name)
        self._register(instance)
        self.arrivals += 1
        self.loop.schedule(self.config.meet_overhead, lambda: self._start(instance),
                           label=f"arrival-{instance.agent_id}")

    def __repr__(self) -> str:
        return (f"Kernel({len(self.sites)} sites, transport={self.transport.name!r}, "
                f"agents={len(self.table)}, t={self.loop.now:.4f})")
