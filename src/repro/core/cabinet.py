"""File cabinets: site-local groupings of folders (paper section 2).

"Just as an agent's folders are grouped into briefcases, we have found it
useful to group site-local folders.  We refer to such a grouping as a *file
cabinet*.  File cabinets support the same operations as briefcases, but we
expect these operations to be implemented differently" — cabinets are
optimised for access at the cost of being expensive to move, and "can be
flushed to disk when permanence is required" (section 6).

This implementation keeps folders in a dict plus a per-folder element index
(element digest -> positions) so membership queries used by agents such as
the diffusion agent are O(1), and offers :meth:`flush` / :meth:`load` for
persistence.  The deliberately large :meth:`move_cost` is what experiment
E3 measures against the briefcase's cheap wire size.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.briefcase import Briefcase
from repro.core.errors import CabinetError, CabinetPersistenceError, MissingFolderError
from repro.core.folder import Folder

__all__ = ["FileCabinet"]


def _digest(stored: bytes) -> str:
    return hashlib.sha1(stored).hexdigest()


class FileCabinet:
    """A site-local folder store with access-time indexes and disk persistence.

    The cabinet mirrors the briefcase API (``folder``, ``put``, ``get``,
    ``has`` ...) so agent code can treat "local storage" and "carried
    storage" uniformly, which is exactly the symmetry the paper points out.
    On top of that it maintains an element index per folder so that
    :meth:`contains_element` — the operation the diffusion agent's
    "have I visited this site already?" check needs — does not scan lists.
    """

    #: charged per byte when (rarely) a cabinet is moved between sites; the
    #: factor models re-building indexes and copying the backing store.
    MOVE_COST_FACTOR = 8

    def __init__(self, name: str, site: Optional[str] = None):
        if not name:
            raise CabinetError("cabinet name must be a non-empty string")
        self.name = name
        self.site = site
        self._folders: Dict[str, Folder] = {}
        self._index: Dict[str, Dict[str, int]] = {}
        #: number of lookups served; used by the access-cost model in E3
        self.access_count = 0
        #: mutation hook installed by a durable SiteStore (see repro.store);
        #: called with the folder name on every cabinet-level mutation
        self._store_hook: Optional[Callable[[str], None]] = None

    # -- durability hook ---------------------------------------------------------

    def attach_store(self, hook: Callable[[str], None]) -> None:
        """Route cabinet-level mutations to a durable store's journal.

        The hook only sees mutations made through the cabinet API (``add``,
        ``remove``, ``put``, ``deposit``, folder creation).  Code that grabs
        a :class:`Folder` and mutates it directly must call :meth:`touch`
        for the change to reach the journal.
        """
        self._store_hook = hook

    def touch(self, folder_name: str) -> None:
        """Reconcile a direct Folder edit: rebuild the element index and
        mark the folder dirty for the durable store."""
        if folder_name in self._folders:
            self._reindex(folder_name)
        else:
            self._index.pop(folder_name, None)
        self._notify(folder_name)

    def _notify(self, folder_name: str) -> None:
        if self._store_hook is not None:
            self._store_hook(folder_name)

    # -- folder access (briefcase-compatible surface) ---------------------------

    def add(self, folder: Folder, replace: bool = False) -> Folder:
        """Add *folder* to the cabinet (indexing its elements)."""
        if folder.name in self._folders and not replace:
            raise CabinetError(f"cabinet already has a folder named {folder.name!r}")
        self._folders[folder.name] = folder
        self._reindex(folder.name)
        self._notify(folder.name)
        return folder

    def folder(self, name: str, create: bool = False) -> Folder:
        """Return (optionally creating) the folder called *name*."""
        self.access_count += 1
        if name in self._folders:
            return self._folders[name]
        if create:
            return self.add(Folder(name))
        raise MissingFolderError(f"cabinet {self.name!r} has no folder named {name!r}")

    def remove(self, name: str) -> Folder:
        """Remove and return the folder called *name*."""
        try:
            folder = self._folders.pop(name)
        except KeyError:
            raise MissingFolderError(
                f"cabinet {self.name!r} has no folder named {name!r}") from None
        self._index.pop(name, None)
        self._notify(name)
        return folder

    def has(self, name: str) -> bool:
        """True if the cabinet holds a folder called *name*."""
        return name in self._folders

    def clear(self) -> None:
        """Drop every folder (crash semantics: volatile state is discarded).

        Used by the durable store when a site crashes; deliberately does
        *not* notify the store hook — the store itself drives the clearing.
        """
        self._folders.clear()
        self._index.clear()

    def names(self) -> List[str]:
        """All folder names in the cabinet."""
        return list(self._folders)

    def folders(self) -> List[Folder]:
        """All folders in the cabinet."""
        return list(self._folders.values())

    # -- element conveniences ----------------------------------------------------

    def put(self, folder_name: str, element: Any) -> None:
        """Push *element* into *folder_name*, creating the folder if needed."""
        folder = self.folder(folder_name, create=True)
        folder.push(element)
        self._index_element(folder_name, folder.raw_elements()[-1])
        self._notify(folder_name)

    def get(self, folder_name: str, default: Any = None) -> Any:
        """Top element of *folder_name*, or *default*."""
        if not self.has(folder_name):
            return default
        folder = self.folder(folder_name)
        if not folder:
            return default
        return folder.peek()

    def contains_element(self, folder_name: str, element: Any) -> bool:
        """O(1) membership test: is *element* stored in *folder_name*?

        This is the primitive the flooding/diffusion example relies on to
        terminate instead of cloning without bound.
        """
        self.access_count += 1
        if folder_name not in self._folders:
            return False
        probe = Folder("_probe")
        probe.push(element)
        key = _digest(probe.raw_elements()[0])
        return self._index.get(folder_name, {}).get(key, 0) > 0

    def elements(self, folder_name: str) -> List[Any]:
        """All elements of *folder_name* (empty list if the folder is missing)."""
        if folder_name not in self._folders:
            return []
        return self._folders[folder_name].elements()

    # -- briefcase interchange ------------------------------------------------------

    def deposit(self, briefcase: Briefcase, names: Optional[Iterable[str]] = None) -> None:
        """Copy folders from a briefcase into the cabinet (merging by name).

        This is how an agent "leaves information behind" at a site.
        """
        wanted = set(names) if names is not None else None
        for folder in briefcase.folders():
            if wanted is not None and folder.name not in wanted:
                continue
            if folder.name in self._folders:
                mine = self._folders[folder.name]
                for stored in folder.raw_elements():
                    mine._elements.append(stored)  # noqa: SLF001
            else:
                self._folders[folder.name] = folder.copy()
            self._reindex(folder.name)
            self._notify(folder.name)

    def withdraw(self, names: Iterable[str]) -> Briefcase:
        """Copy the named folders out into a fresh briefcase (cabinet keeps them)."""
        briefcase = Briefcase()
        for name in names:
            if name in self._folders:
                briefcase.add(self._folders[name].copy())
        return briefcase

    # -- cost model ---------------------------------------------------------------

    def storage_size(self) -> int:
        """Bytes of folder payload stored in the cabinet."""
        return sum(folder.wire_size() for folder in self._folders.values())

    def move_cost(self) -> int:
        """Simulated cost (bytes-equivalent) of relocating this cabinet.

        Deliberately much larger than the storage size: cabinets trade
        mobility for access speed (paper section 2).
        """
        return self.storage_size() * self.MOVE_COST_FACTOR

    # -- persistence -----------------------------------------------------------------

    def flush(self, directory: str) -> str:
        """Write the cabinet to ``directory`` and return the file path.

        The on-disk format is JSON with hex-encoded elements — simple,
        inspectable, and independent of pickle availability at load time.
        The write is atomic (temp file + ``os.replace``) and the temp file
        is removed on failure, so a crash or error mid-flush can neither
        leave a torn cabinet file nor litter the directory: the previous
        flush, if any, stays intact.
        """
        tmp_path = None
        try:
            os.makedirs(directory, exist_ok=True)
            payload = {
                "name": self.name,
                "site": self.site,
                "folders": [
                    {
                        "name": folder.name,
                        "elements": [stored.hex() for stored in folder.raw_elements()],
                    }
                    for folder in self._folders.values()
                ],
            }
            path = os.path.join(directory, f"{self.name}.cabinet.json")
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
            tmp_path = None
            return path
        except OSError as exc:
            raise CabinetPersistenceError(f"flush of cabinet {self.name!r} failed: {exc}") from exc
        finally:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    @classmethod
    def load(cls, path: str) -> "FileCabinet":
        """Rebuild a cabinet previously written by :meth:`flush`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CabinetPersistenceError(f"load of cabinet from {path!r} failed: {exc}") from exc
        cabinet = cls(payload["name"], site=payload.get("site"))
        for folder_payload in payload["folders"]:
            folder = Folder(folder_payload["name"])
            folder._elements = [bytes.fromhex(item) for item in folder_payload["elements"]]
            cabinet.add(folder)
        return cabinet

    # -- internals -----------------------------------------------------------------

    def _reindex(self, folder_name: str) -> None:
        index: Dict[str, int] = {}
        for stored in self._folders[folder_name].raw_elements():
            key = _digest(stored)
            index[key] = index.get(key, 0) + 1
        self._index[folder_name] = index

    def _index_element(self, folder_name: str, stored: bytes) -> None:
        key = _digest(stored)
        index = self._index.setdefault(folder_name, {})
        index[key] = index.get(key, 0) + 1

    # -- dunders ---------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._folders

    def __len__(self) -> int:
        return len(self._folders)

    def __repr__(self) -> str:
        return f"FileCabinet({self.name!r}, site={self.site!r}, {len(self._folders)} folders)"
