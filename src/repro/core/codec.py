"""Code and state shipping: how agents travel as data.

Paper section 2: an agent moves by meeting ``rexec`` with a briefcase whose
CODE folder contains "the source code for the agent that originally met
with rexec ... this scheme allows an agent to move to a destination site
having a completely different machine language."

Two CODE representations are supported:

``registered``
    The CODE element names a behaviour in the
    :mod:`~repro.core.registry`.  This is the common fast path (every site
    "has the binary").

``source``
    The CODE element carries Python source text plus the name of the entry
    function.  The destination compiles it with :func:`compile`/``exec`` in
    a fresh namespace — the analogue of the destination Tcl interpreter
    evaluating shipped script text, and the demonstration of the
    "different machine language" property.

The briefcase itself is shipped via its :meth:`~repro.core.briefcase.Briefcase.to_wire`
form wrapped with :func:`pack_briefcase` / :func:`unpack_briefcase`; its
wire size feeds the bandwidth model.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Optional

from repro.core.briefcase import CODE_FOLDER, Briefcase
from repro.core.errors import CodecError, CodeCompilationError, UnknownBehaviourError
from repro.core.registry import BehaviourRegistry, default_registry

__all__ = [
    "code_for", "code_from_source", "behaviour_from_code", "code_element_of",
    "code_element_copy", "pack_briefcase", "unpack_briefcase", "attach_code",
    "wire_size_of",
]


# ---------------------------------------------------------------------------
# CODE elements
# ---------------------------------------------------------------------------

def code_for(behaviour_name: str) -> Dict[str, str]:
    """A CODE element referencing a registered behaviour by name."""
    return {"kind": "registered", "name": behaviour_name}


def code_from_source(source: str, entry: str = "agent_main") -> Dict[str, str]:
    """A CODE element carrying Python source; *entry* is the behaviour function name."""
    if entry not in source:
        raise CodecError(f"entry point {entry!r} does not appear in the supplied source")
    return {"kind": "source", "source": source, "entry": entry}


def code_element_of(behaviour: Any,
                    registry: Optional[BehaviourRegistry] = None) -> Dict[str, str]:
    """Best-effort CODE element for *behaviour*.

    Accepts a behaviour name, an already-built CODE element, or a callable
    that is registered in *registry* (default registry if omitted).
    """
    registry = registry or default_registry()
    if isinstance(behaviour, str):
        return code_for(behaviour)
    if isinstance(behaviour, dict) and "kind" in behaviour:
        return dict(behaviour)
    if callable(behaviour):
        name = registry.name_of(behaviour)
        if name is not None:
            return code_for(name)
        raise UnknownBehaviourError(
            f"behaviour {behaviour!r} is not registered; register it or ship source")
    raise CodecError(f"cannot derive a CODE element from {behaviour!r}")


def code_element_copy(element: Optional[Dict[str, str]]) -> Optional[Dict[str, str]]:
    """An independent copy of a CODE element (or ``None``).

    CODE elements are flat string dicts, so a shallow copy is a full copy.
    The kernel memoises :func:`code_element_of` results per behaviour and
    hands each agent its own copy, so one agent rewriting its element (e.g.
    switching to shipped source) cannot leak into its siblings.
    """
    return dict(element) if element is not None else None


def behaviour_from_code(code_element: Dict[str, Any],
                        registry: Optional[BehaviourRegistry] = None) -> Callable:
    """Turn a CODE element back into an executable behaviour.

    ``registered`` elements are looked up in the registry; ``source``
    elements are compiled in a fresh namespace that already has the standard
    builtins — matching a fresh Tcl interpreter evaluating shipped script.
    """
    registry = registry or default_registry()
    kind = code_element.get("kind")
    if kind == "registered":
        return registry.resolve(code_element["name"])
    if kind == "source":
        source = code_element.get("source", "")
        entry = code_element.get("entry", "agent_main")
        namespace: Dict[str, Any] = {}
        try:
            compiled = compile(source, filename="<shipped-agent>", mode="exec")
            exec(compiled, namespace)  # noqa: S102 - this *is* the mobile-code feature
        except SyntaxError as exc:
            raise CodeCompilationError(f"shipped source failed to compile: {exc}") from exc
        except Exception as exc:
            raise CodeCompilationError(f"shipped source failed to execute: {exc}") from exc
        behaviour = namespace.get(entry)
        if behaviour is None or not callable(behaviour):
            raise CodeCompilationError(
                f"shipped source does not define a callable entry point {entry!r}")
        return behaviour
    raise CodecError(f"unknown CODE element kind {kind!r}")


def attach_code(briefcase: Briefcase, behaviour: Any,
                registry: Optional[BehaviourRegistry] = None) -> Briefcase:
    """Ensure *briefcase* carries a CODE folder describing *behaviour*.

    Existing CODE contents are replaced — an agent re-shipping itself always
    wants exactly one element on top of CODE.
    """
    element = code_element_of(behaviour, registry)
    briefcase.set(CODE_FOLDER, element)
    return briefcase


# ---------------------------------------------------------------------------
# Briefcase wire format
# ---------------------------------------------------------------------------

_WIRE_VERSION = 1


def pack_briefcase(briefcase: Briefcase) -> bytes:
    """Serialise a briefcase for transmission between sites."""
    try:
        return pickle.dumps({"version": _WIRE_VERSION, "briefcase": briefcase.to_wire()},
                            protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CodecError(f"briefcase could not be serialised: {exc}") from exc


def unpack_briefcase(payload: bytes) -> Briefcase:
    """Rebuild a briefcase from :func:`pack_briefcase` output."""
    try:
        wrapper = pickle.loads(payload)
    except Exception as exc:
        raise CodecError(f"briefcase payload could not be decoded: {exc}") from exc
    if not isinstance(wrapper, dict) or wrapper.get("version") != _WIRE_VERSION:
        raise CodecError("briefcase payload has an unknown wire version")
    return Briefcase.from_wire(wrapper["briefcase"])


def wire_size_of(briefcase: Briefcase) -> int:
    """Bytes charged to the network for shipping *briefcase*.

    Uses the briefcase's own size model (framing plus element bytes) rather
    than the pickle length so the bandwidth accounting is deterministic and
    independent of pickle version details.
    """
    return briefcase.wire_size()
