"""Briefcases: the named-folder collections that travel with agents.

Paper section 2: "our implementations associate with each agent a
*briefcase*, which contains a collection of named folders."  The briefcase
is also the argument list of a ``meet`` — each folder is one argument.

Briefcases must be cheap to ship, so they are a flat mapping from folder
name to :class:`~repro.core.folder.Folder` with no auxiliary indexes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.core.errors import BriefcaseError, MissingFolderError
from repro.core.folder import Folder

__all__ = ["Briefcase"]

# Folder names given special meaning by the system agents.  Kept here (and
# re-exported by repro.core) so user code and system agents agree on spelling.
CODE_FOLDER = "CODE"
HOST_FOLDER = "HOST"
CONTACT_FOLDER = "CONTACT"
SITES_FOLDER = "SITES"


class Briefcase:
    """A collection of named folders carried by an agent.

    The operations mirror what TACOMA offered: create/fetch/delete folders
    by name, merge another briefcase in, split folders out, and measure the
    wire size for the bandwidth model.  Folder names are unique within a
    briefcase.
    """

    __slots__ = ("_folders",)

    def __init__(self, folders: Optional[Iterable[Folder]] = None):
        self._folders: Dict[str, Folder] = {}
        if folders is not None:
            for folder in folders:
                self.add(folder)

    # -- folder management ----------------------------------------------------

    def add(self, folder: Folder, replace: bool = False) -> Folder:
        """Add *folder*; refuse to overwrite an existing name unless *replace*."""
        if not isinstance(folder, Folder):
            raise BriefcaseError(f"expected a Folder, got {type(folder).__name__}")
        if folder.name in self._folders and not replace:
            raise BriefcaseError(f"briefcase already has a folder named {folder.name!r}")
        self._folders[folder.name] = folder
        return folder

    def folder(self, name: str, create: bool = False) -> Folder:
        """Return the folder called *name*.

        With ``create=True`` a missing folder is created empty, which is the
        common idiom for agents accumulating results as they roam.
        """
        try:
            return self._folders[name]
        except KeyError:
            if create:
                return self.add(Folder(name))
            raise MissingFolderError(f"briefcase has no folder named {name!r}") from None

    def remove(self, name: str) -> Folder:
        """Remove and return the folder called *name*."""
        try:
            return self._folders.pop(name)
        except KeyError:
            raise MissingFolderError(f"briefcase has no folder named {name!r}") from None

    def discard(self, name: str) -> Optional[Folder]:
        """Remove the folder called *name* if present; return it or ``None``."""
        return self._folders.pop(name, None)

    def has(self, name: str) -> bool:
        """True if a folder called *name* is present."""
        return name in self._folders

    def names(self) -> List[str]:
        """Folder names, in insertion order."""
        return list(self._folders)

    def folders(self) -> List[Folder]:
        """The folders themselves, in insertion order."""
        return list(self._folders.values())

    # -- element conveniences ---------------------------------------------------
    #
    # Very common pattern in agent code: a folder holding a single value that
    # acts as a named argument.  These helpers keep that pattern short.

    def put(self, folder_name: str, element: Any) -> None:
        """Push *element* onto *folder_name*, creating the folder if needed."""
        self.folder(folder_name, create=True).push(element)

    def set(self, folder_name: str, element: Any) -> None:
        """Make *folder_name* contain exactly *element* (replacing prior contents)."""
        folder = self.folder(folder_name, create=True)
        folder.clear()
        folder.push(element)

    def get(self, folder_name: str, default: Any = None) -> Any:
        """Return the top element of *folder_name*, or *default* if absent/empty."""
        if not self.has(folder_name):
            return default
        folder = self.folder(folder_name)
        if not folder:
            return default
        return folder.peek()

    def take(self, folder_name: str) -> Any:
        """Pop and return the top element of *folder_name* (must exist)."""
        return self.folder(folder_name).pop()

    # -- whole-briefcase operations ----------------------------------------------

    def merge(self, other: "Briefcase", replace: bool = False) -> None:
        """Copy every folder of *other* into this briefcase.

        When both briefcases have a folder of the same name the elements of
        the other folder are appended, unless *replace* is set, in which case
        the other folder wins wholesale.

        Both paths copy what they take: the append path used to splice the
        other folder's stored element objects straight into ``mine``, so a
        mutable stored buffer (anything that slipped past the bytes
        normalisation) was shared between the two briefcases — while the
        replace path always copied.  Merged elements are now normalised to
        immutable ``bytes``, matching the folder contract.
        """
        for folder in other.folders():
            if folder.name in self._folders and not replace:
                mine = self._folders[folder.name]
                for stored in folder.raw_elements():
                    # noqa: SLF001 - same-class access
                    mine._elements.append(stored if type(stored) is bytes
                                          else bytes(stored))
            else:
                self._folders[folder.name] = folder.copy()

    def split(self, names: Iterable[str]) -> "Briefcase":
        """Remove the named folders and return them as a new briefcase."""
        extracted = Briefcase()
        for name in list(names):
            extracted.add(self.remove(name))
        return extracted

    def copy(self) -> "Briefcase":
        """Deep-enough copy: folders are copied, elements are immutable bytes."""
        clone = Briefcase()
        for folder in self._folders.values():
            clone.add(folder.copy())
        return clone

    def clear(self) -> None:
        """Remove every folder."""
        self._folders.clear()

    # -- size model -----------------------------------------------------------------

    def wire_size(self) -> int:
        """Bytes this briefcase occupies when shipped between sites."""
        framing = 32
        return framing + sum(folder.wire_size() for folder in self._folders.values())

    # -- dunders -----------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._folders

    def __len__(self) -> int:
        return len(self._folders)

    def __iter__(self) -> Iterator[Folder]:
        return iter(self.folders())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Briefcase):
            return NotImplemented
        return self._folders == other._folders

    def __repr__(self) -> str:
        return f"Briefcase({', '.join(self._folders) or 'empty'})"

    # -- wire representation -----------------------------------------------------

    def to_wire(self) -> dict:
        """Plain-dict representation used by the codec."""
        return {"folders": [folder.to_wire() for folder in self._folders.values()]}

    @classmethod
    def from_wire(cls, payload: dict) -> "Briefcase":
        """Rebuild a briefcase from :meth:`to_wire` output."""
        briefcase = cls()
        for folder_payload in payload["folders"]:
            briefcase.add(Folder.from_wire(folder_payload))
        return briefcase
