"""Behaviour registry: the name table for agent code.

The CONTACT folder of the paper "names the agent to be executed" at a site;
brokers are "ordinary agents whose names are well known".  The registry maps
those well-known names to Python behaviour callables so CODE folders can
reference behaviours by name instead of shipping source (shipping source is
also supported — see :mod:`repro.core.codec`).

A single process-wide default registry is provided because behaviour names
are global in TACOMA (every site knows what ``rexec`` means), but tests can
create private registries.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from repro.core.errors import UnknownBehaviourError

__all__ = ["BehaviourRegistry", "default_registry", "register_behaviour", "resolve_behaviour"]


class BehaviourRegistry:
    """A mapping from well-known behaviour names to callables."""

    def __init__(self) -> None:
        self._behaviours: Dict[str, Callable] = {}
        #: reverse index (behaviour id -> name) so :meth:`name_of` — which the
        #: kernel consults on every launch/meet/arrival to derive CODE
        #: elements — is O(1) instead of a scan over every registration.
        self._names_by_id: Dict[int, str] = {}
        #: bumped on every mutation; callers caching derived data (the
        #: kernel's CODE-element memo) invalidate against this.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter (register/unregister both bump it)."""
        return self._version

    def register(self, name: str, behaviour: Optional[Callable] = None,
                 replace: bool = False) -> Callable:
        """Register *behaviour* under *name*.

        Usable directly (``registry.register("rexec", rexec_behaviour)``) or
        as a decorator (``@registry.register("rexec")``).
        """
        if behaviour is None:
            def decorator(func: Callable) -> Callable:
                self.register(name, func, replace=replace)
                return func
            return decorator
        if name in self._behaviours and not replace and self._behaviours[name] is not behaviour:
            raise UnknownBehaviourError(
                f"behaviour name {name!r} is already registered to a different callable")
        previous = self._behaviours.get(name)
        if previous is not None and self._names_by_id.get(id(previous)) == name:
            del self._names_by_id[id(previous)]
        self._behaviours[name] = behaviour
        # First registration wins the reverse lookup (matching the historical
        # scan order when one callable is registered under several names).
        self._names_by_id.setdefault(id(behaviour), name)
        self._version += 1
        return behaviour

    def resolve(self, name: str) -> Callable:
        """Return the behaviour registered under *name*."""
        try:
            return self._behaviours[name]
        except KeyError:
            raise UnknownBehaviourError(f"no behaviour registered under {name!r}") from None

    def name_of(self, behaviour: Callable) -> Optional[str]:
        """Reverse lookup: the name *behaviour* is registered under, if any."""
        name = self._names_by_id.get(id(behaviour))
        if name is not None and self._behaviours.get(name) is behaviour:
            return name
        # Slow path: the reverse index only records one name per callable;
        # fall back to the scan when that entry went stale (e.g. replaced).
        for name, registered in self._behaviours.items():
            if registered is behaviour:
                self._names_by_id[id(behaviour)] = name
                return name
        return None

    def unregister(self, name: str) -> None:
        """Remove a registration (mostly for tests)."""
        behaviour = self._behaviours.pop(name, None)
        if behaviour is not None:
            self._version += 1
            if self._names_by_id.get(id(behaviour)) == name:
                del self._names_by_id[id(behaviour)]

    def __contains__(self, name: str) -> bool:
        return name in self._behaviours

    def __iter__(self) -> Iterator[str]:
        return iter(self._behaviours)

    def __len__(self) -> int:
        return len(self._behaviours)

    def __repr__(self) -> str:
        return f"BehaviourRegistry({len(self._behaviours)} behaviours)"


#: the process-wide registry used by the codec and the kernel by default
_DEFAULT = BehaviourRegistry()


def default_registry() -> BehaviourRegistry:
    """The process-wide behaviour registry."""
    return _DEFAULT


def register_behaviour(name: str, behaviour: Optional[Callable] = None,
                       replace: bool = False) -> Callable:
    """Register a behaviour in the default registry (usable as a decorator)."""
    return _DEFAULT.register(name, behaviour, replace=replace)


def resolve_behaviour(name: str) -> Callable:
    """Resolve a behaviour name against the default registry."""
    return _DEFAULT.resolve(name)
