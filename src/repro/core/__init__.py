"""Core TACOMA abstractions: folders, briefcases, cabinets, agents, the kernel.

This package is the paper's primary contribution.  A typical program:

>>> from repro.core import Kernel, Briefcase
>>> from repro.net import lan
>>> kernel = Kernel(lan(["tromso", "cornell"]))
>>> def hello(ctx, bc):
...     bc.put("GREETINGS", f"hello from {ctx.site_name}")
...     yield ctx.sleep(0)
...     return bc.get("GREETINGS")
>>> agent_id = kernel.launch("tromso", hello)
>>> kernel.run()  # doctest: +SKIP
>>> kernel.result_of(agent_id)  # doctest: +SKIP
'hello from tromso'
"""

from repro.core import errors
from repro.core.agent import AgentInstance, AgentSpec, AgentState
from repro.core.briefcase import (CODE_FOLDER, CONTACT_FOLDER, HOST_FOLDER, SITES_FOLDER,
                                  Briefcase)
from repro.core.cabinet import FileCabinet
from repro.core.codec import (attach_code, behaviour_from_code, code_for, code_from_source,
                              pack_briefcase, unpack_briefcase, wire_size_of)
from repro.core.context import AgentContext
from repro.core.folder import Folder
from repro.core.kernel import Kernel, KernelConfig
from repro.core.lifecycle import (AgentRecord, AgentTable, KeepAll, KeepCounts,
                                  KeepResults, RetentionPolicy, make_retention)
from repro.core.registry import (BehaviourRegistry, default_registry, register_behaviour,
                                 resolve_behaviour)
from repro.core.site import Site
from repro.core.syscalls import (EndMeet, Meet, MeetResult, Sleep, Spawn, Terminate,
                                 Transmit)
from repro.core.timing import Clock, ScheduledEvent, Scheduler, default_timer

__all__ = [
    "Clock", "Scheduler", "ScheduledEvent", "default_timer",
    "errors",
    "Folder", "Briefcase", "FileCabinet",
    "CODE_FOLDER", "HOST_FOLDER", "CONTACT_FOLDER", "SITES_FOLDER",
    "AgentSpec", "AgentInstance", "AgentState", "AgentContext",
    "Meet", "MeetResult", "EndMeet", "Sleep", "Spawn", "Transmit", "Terminate",
    "BehaviourRegistry", "default_registry", "register_behaviour", "resolve_behaviour",
    "code_for", "code_from_source", "attach_code", "behaviour_from_code",
    "pack_briefcase", "unpack_briefcase", "wire_size_of",
    "Site", "Kernel", "KernelConfig",
    "AgentTable", "AgentRecord", "RetentionPolicy",
    "KeepAll", "KeepResults", "KeepCounts", "make_retention",
]
