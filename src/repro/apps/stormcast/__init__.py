"""StormCast reimplemented on TACOMA agents (paper section 6, [J93]).

Synthetic Arctic weather sensors, the mobile filtering collector, the hub
expert system, and the client-server baseline the bandwidth experiments
compare against.
"""

from repro.apps.stormcast.baseline import (BASELINE_CABINET, WEATHER_SERVER_NAME,
                                           WEATHER_SINK_NAME, install_baseline_agents,
                                           launch_baseline_client)
from repro.apps.stormcast.collector import (COLLECTOR_NAME, STORMCAST_CABINET,
                                            collector_behaviour, launch_collector)
from repro.apps.stormcast.prediction import (EXPERT_AGENT_NAME, PREDICTIONS_CABINET,
                                             StormExpert, StormPrediction,
                                             make_expert_behaviour)
from repro.apps.stormcast.sensors import (READINGS_FOLDER, SENSOR_CABINET, WeatherGenerator,
                                          WeatherReading, populate_sensor_site,
                                          populate_sensor_sites)
from repro.apps.stormcast.workload import (StormCastParams, StormCastResult,
                                           build_stormcast_kernel, run_agent_pipeline,
                                           run_client_server)

__all__ = [
    "WeatherReading", "WeatherGenerator", "populate_sensor_site", "populate_sensor_sites",
    "SENSOR_CABINET", "READINGS_FOLDER",
    "StormExpert", "StormPrediction", "make_expert_behaviour",
    "EXPERT_AGENT_NAME", "PREDICTIONS_CABINET",
    "collector_behaviour", "launch_collector", "COLLECTOR_NAME", "STORMCAST_CABINET",
    "install_baseline_agents", "launch_baseline_client",
    "WEATHER_SERVER_NAME", "WEATHER_SINK_NAME", "BASELINE_CABINET",
    "StormCastParams", "StormCastResult", "build_stormcast_kernel",
    "run_agent_pipeline", "run_client_server",
]
