"""Synthetic Arctic weather sensors for the StormCast reproduction (paper section 6).

"We are reimplementing StormCast [J93], which uses a set of expert systems
to predict severe storms in the Arctic based on weather data obtained from
a distributed network of sensors."

The real sensor network is not available (DESIGN.md substitution table), so
this module generates synthetic weather time series with the property that
matters for the bandwidth argument of section 1: each sensor site holds a
*large* volume of raw readings of which only a *small* fraction (the storm
precursors) is relevant to the predictor.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.kernel import Kernel

__all__ = ["WeatherReading", "WeatherGenerator", "populate_sensor_site",
           "populate_sensor_sites", "SENSOR_CABINET", "READINGS_FOLDER"]

#: cabinet each sensor site stores its raw readings in
SENSOR_CABINET = "weather"
#: folder (in that cabinet) holding the raw readings, oldest first
READINGS_FOLDER = "READINGS"


@dataclass(frozen=True)
class WeatherReading:
    """One observation from one sensor station."""

    station: str
    timestamp: float
    wind_speed: float        # m/s
    pressure: float          # hPa
    temperature: float       # degrees C
    humidity: float          # %
    #: filler payload modelling the full raw record (radar slices, etc.);
    #: this is what makes shipping raw data expensive.
    raw_payload_bytes: int = 0

    def to_wire(self) -> Dict[str, object]:
        """Folder-storable record.  The padding really is carried as bytes."""
        return {
            "station": self.station, "timestamp": self.timestamp,
            "wind_speed": self.wind_speed, "pressure": self.pressure,
            "temperature": self.temperature, "humidity": self.humidity,
            "padding": b"\0" * self.raw_payload_bytes,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "WeatherReading":
        """Rebuild a reading from :meth:`to_wire` output."""
        padding = payload.get("padding", b"")
        return cls(
            station=str(payload["station"]), timestamp=float(payload["timestamp"]),
            wind_speed=float(payload["wind_speed"]), pressure=float(payload["pressure"]),
            temperature=float(payload["temperature"]), humidity=float(payload["humidity"]),
            raw_payload_bytes=len(padding),
        )

    def is_storm_precursor(self, wind_threshold: float = 20.0,
                           pressure_threshold: float = 985.0) -> bool:
        """The filter predicate collectors apply at the sensor site."""
        return self.wind_speed >= wind_threshold or self.pressure <= pressure_threshold


class WeatherGenerator:
    """Deterministic synthetic weather with injected storm events.

    The generator produces, per station, a smooth baseline (diurnal
    temperature cycle, slowly wandering pressure) and injects ``storm_rate``
    fraction of readings that are storm precursors: wind spikes and sharp
    pressure drops.  Everything is driven by one seed so experiments are
    reproducible.
    """

    def __init__(self, seed: int = 0, storm_rate: float = 0.02,
                 raw_payload_bytes: int = 512):
        if not 0.0 <= storm_rate <= 1.0:
            raise ValueError("storm_rate must be within [0, 1]")
        self.seed = seed
        self.storm_rate = storm_rate
        self.raw_payload_bytes = raw_payload_bytes

    def readings_for(self, station: str, count: int,
                     start_time: float = 0.0, interval: float = 60.0) -> List[WeatherReading]:
        """Generate *count* readings for one station."""
        rng = random.Random(f"{self.seed}:{station}")
        pressure = 1013.0 + rng.uniform(-8.0, 8.0)
        # Stations differ in how exposed they are: the effective storm rate
        # varies by a deterministic per-station factor so some stations end
        # up under warning while sheltered ones stay calm.
        exposure = 0.25 + 1.75 * rng.random()
        effective_rate = min(1.0, self.storm_rate * exposure)
        readings: List[WeatherReading] = []
        for index in range(count):
            timestamp = start_time + index * interval
            # Baseline weather.
            temperature = -5.0 + 6.0 * math.sin(2 * math.pi * (index % 1440) / 1440.0) \
                + rng.gauss(0.0, 0.8)
            pressure += rng.gauss(0.0, 0.4)
            # The calm-weather baseline stays well above the storm threshold;
            # storms are injected as transient excursions below, not by
            # dragging the baseline walk down.
            pressure = min(1040.0, max(995.0, pressure))
            wind = abs(rng.gauss(6.0, 3.0))
            humidity = min(100.0, max(20.0, rng.gauss(75.0, 10.0)))
            observed_pressure = pressure
            # Storm injection: a transient precursor event.
            if rng.random() < effective_rate:
                wind = rng.uniform(22.0, 45.0)
                observed_pressure = rng.uniform(955.0, 984.0)
                humidity = rng.uniform(85.0, 100.0)
            readings.append(WeatherReading(
                station=station, timestamp=timestamp, wind_speed=round(wind, 2),
                pressure=round(observed_pressure, 2), temperature=round(temperature, 2),
                humidity=round(humidity, 2), raw_payload_bytes=self.raw_payload_bytes,
            ))
        return readings


def populate_sensor_site(kernel: Kernel, site_name: str, readings: Iterable[WeatherReading]) -> int:
    """Store *readings* in the site's weather cabinet; returns how many were stored."""
    cabinet = kernel.site(site_name).cabinet(SENSOR_CABINET)
    folder = cabinet.folder(READINGS_FOLDER, create=True)
    stored = 0
    for reading in readings:
        folder.push(reading.to_wire())
        stored += 1
    return stored


def populate_sensor_sites(kernel: Kernel, sensor_sites: Sequence[str],
                          samples_per_site: int,
                          generator: Optional[WeatherGenerator] = None) -> Dict[str, int]:
    """Fill every sensor site with synthetic readings; returns per-site counts."""
    generator = generator or WeatherGenerator()
    return {
        site: populate_sensor_site(kernel, site,
                                   generator.readings_for(site, samples_per_site))
        for site in sensor_sites
    }
